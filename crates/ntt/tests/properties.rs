//! Property-based tests: every NTT variant is a ring isomorphism and all
//! variants agree bit-exactly.

use proptest::prelude::*;
use tensorfhe_ntt::polymul::{negacyclic_mul, schoolbook_negacyclic};
use tensorfhe_ntt::{FourStepNtt, NttOps, NttTable, TensorCoreNtt};

fn poly_strategy(n: usize, q: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..q, n)
}

fn setup(n: usize) -> (u64, NttTable, FourStepNtt, TensorCoreNtt) {
    let q = tensorfhe_math::prime::generate_ntt_primes(1, 28, n as u64)[0];
    let bf = NttTable::new(n, q);
    let fs = FourStepNtt::with_root(n, q, bf.psi());
    let tc = TensorCoreNtt::with_root(n, q, bf.psi());
    (q, bf, fs, tc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_and_cross_variant_agreement(a in poly_strategy(64, (1 << 28) - 57)) {
        let (q, bf, fs, tc) = setup(64);
        // Clamp the random values into [0, q).
        let a: Vec<u64> = a.into_iter().map(|x| x % q).collect();

        let mut x = a.clone();
        bf.forward(&mut x);
        let mut y = a.clone();
        fs.forward(&mut y);
        let mut z = a.clone();
        tc.forward(&mut z);
        prop_assert_eq!(&x, &y, "butterfly vs four-step");
        prop_assert_eq!(&x, &z, "butterfly vs tensor-core");

        bf.inverse(&mut x);
        prop_assert_eq!(x, a, "roundtrip");
    }

    #[test]
    fn convolution_theorem(
        a in poly_strategy(32, (1 << 24) - 63),
        b in poly_strategy(32, (1 << 24) - 63),
    ) {
        let n = 32;
        let q = tensorfhe_math::prime::generate_ntt_primes(1, 24, n as u64)[0];
        let a: Vec<u64> = a.into_iter().map(|x| x % q).collect();
        let b: Vec<u64> = b.into_iter().map(|x| x % q).collect();
        let t = NttTable::new(n, q);
        prop_assert_eq!(
            negacyclic_mul(&t, &a, &b),
            schoolbook_negacyclic(&a, &b, q)
        );
    }

    #[test]
    fn transform_is_linear(
        a in poly_strategy(64, (1 << 28) - 57),
        b in poly_strategy(64, (1 << 28) - 57),
    ) {
        let (q, bf, _, _) = setup(64);
        let m = tensorfhe_math::Modulus::new(q);
        let a: Vec<u64> = a.into_iter().map(|x| x % q).collect();
        let b: Vec<u64> = b.into_iter().map(|x| x % q).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();

        let (mut fa, mut fb, mut fsum) = (a, b, sum);
        bf.forward(&mut fa);
        bf.forward(&mut fb);
        bf.forward(&mut fsum);
        for i in 0..64 {
            prop_assert_eq!(fsum[i], m.add(fa[i], fb[i]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn segmentation_is_lossless(vals in proptest::collection::vec(0u64..(1 << 32), 1..64)) {
        let rows = vals.len();
        let seg = tensorfhe_ntt::SegmentedMatrix::from_rows(rows, 1, &vals);
        prop_assert_eq!(seg.fuse_planes(), vals);
    }
}
