//! Paper-scale equivalence: the GEMM formulations must match the butterfly
//! reference bit-for-bit at the degrees the paper actually runs
//! (`N = 2^12 … 2^16`, Table V), and the batched execution layer must match
//! the per-row path for ragged `B×L` blocks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_ntt::{
    BatchedGemmNtt, FourStepNtt, NttAlgorithm, NttBatchOps, NttOps, NttTable, TensorCoreNtt,
};

fn random_poly(rng: &mut StdRng, n: usize, q: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Forward + inverse of one variant against the butterfly reference at one
/// degree.
fn check_against_butterfly(ntt: &dyn NttOps, n: usize, q: u64, seed: u64) {
    let bf = NttTable::new(n, q);
    let mut rng = StdRng::seed_from_u64(seed);
    let a = random_poly(&mut rng, n, q);

    let mut want = a.clone();
    let mut got = a.clone();
    bf.forward(&mut want);
    ntt.forward(&mut got);
    assert_eq!(want, got, "forward mismatch at N={n}");

    bf.inverse(&mut want);
    ntt.inverse(&mut got);
    assert_eq!(want, got, "inverse mismatch at N={n}");
    assert_eq!(got, a, "roundtrip failed at N={n}");
}

#[test]
fn four_step_matches_butterfly_at_paper_degrees() {
    for log_n in 12u32..=16 {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        check_against_butterfly(&FourStepNtt::new(n, q), n, q, 41 + log_n as u64);
    }
}

// The tensor-core checks are split per degree so the 16-plane segmented
// GEMMs of the big transforms run on parallel test threads.

fn check_tensor_core(log_n: u32) {
    let n = 1usize << log_n;
    let q = generate_ntt_primes(1, 28, n as u64)[0];
    check_against_butterfly(&TensorCoreNtt::new(n, q), n, q, 51 + log_n as u64);
}

#[test]
fn tensor_core_matches_butterfly_at_n_2_12() {
    check_tensor_core(12);
}

#[test]
fn tensor_core_matches_butterfly_at_n_2_13() {
    check_tensor_core(13);
}

#[test]
fn tensor_core_matches_butterfly_at_n_2_14() {
    check_tensor_core(14);
}

#[test]
fn tensor_core_matches_butterfly_at_n_2_15() {
    check_tensor_core(15);
}

#[test]
fn tensor_core_matches_butterfly_at_n_2_16() {
    check_tensor_core(16);
}

#[test]
fn batched_block_matches_butterfly_rows_at_n_2_13() {
    // The acceptance shape: a B·L block at the paper's HEAX-B degree, one
    // wide GEMM pipeline per stage, bit-identical to B·L separate butterfly
    // transforms.
    let n = 1 << 13;
    let q = generate_ntt_primes(1, 28, n as u64)[0];
    let bf = NttTable::new(n, q);
    let mut rng = StdRng::seed_from_u64(61);
    let block: Vec<Vec<u64>> = (0..4).map(|_| random_poly(&mut rng, n, q)).collect();

    for algo in [NttAlgorithm::FourStep, NttAlgorithm::TensorCore] {
        let plan = BatchedGemmNtt::new(n, q, algo);
        let mut want = block.clone();
        for row in &mut want {
            bf.forward(row);
        }
        let mut got = block.clone();
        {
            let mut rows: Vec<&mut [u64]> = got.iter_mut().map(Vec::as_mut_slice).collect();
            plan.forward_batch(&mut rows);
        }
        assert_eq!(want, got, "{algo:?} batched forward at N=2^13");
        {
            let mut rows: Vec<&mut [u64]> = got.iter_mut().map(Vec::as_mut_slice).collect();
            plan.inverse_batch(&mut rows);
        }
        assert_eq!(got, block, "{algo:?} batched roundtrip at N=2^13");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged `B×L` blocks: any batch width, any (small) degree, any
    /// algorithm — the batched path must equal the per-row path exactly.
    #[test]
    fn ragged_batched_blocks_are_bit_identical(
        b in 1usize..7,
        log_n in 4u32..9,
        algo_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let algo = [
            NttAlgorithm::Butterfly,
            NttAlgorithm::FourStep,
            NttAlgorithm::TensorCore,
        ][algo_idx];
        let n = 1usize << log_n;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let plan = BatchedGemmNtt::new(n, q, algo);
        let mut rng = StdRng::seed_from_u64(seed);
        let block: Vec<Vec<u64>> = (0..b).map(|_| random_poly(&mut rng, n, q)).collect();

        let mut per_row = block.clone();
        for row in &mut per_row {
            plan.forward(row);
        }
        let mut batched = block.clone();
        {
            let mut rows: Vec<&mut [u64]> = batched.iter_mut().map(Vec::as_mut_slice).collect();
            plan.forward_batch(&mut rows);
        }
        prop_assert_eq!(&per_row, &batched);

        for row in &mut per_row {
            plan.inverse(row);
        }
        {
            let mut rows: Vec<&mut [u64]> = batched.iter_mut().map(Vec::as_mut_slice).collect();
            plan.inverse_batch(&mut rows);
        }
        prop_assert_eq!(&per_row, &batched);
        prop_assert_eq!(&batched, &block);
    }
}
