//! Batched RNS-NTT execution: the paper's headline formulation (Eq. 9 +
//! §IV-B "Data Reuse" + §IV-D operation-level batching) applied to *blocks*
//! of polynomials.
//!
//! The per-polynomial four-step NTT already replaces butterflies with
//! GEMMs, but issuing one small GEMM per residue polynomial still starves
//! wide hardware. The win the paper measures in Fig. 8 comes from packing a
//! `B×L` block — `B` ciphertext polynomials × `L` RNS limbs sharing one
//! modulus — into **single wide GEMMs per stage**:
//!
//! ```text
//! stage 1 (inner N2-NTT):  [A⁽⁰⁾; A⁽¹⁾; …]   (B·N1 × N2) × W_n2 (N2 × N2)
//! stage 2 (twiddle):        tiled Hadamard with W_tw
//! stage 3 (outer N1-DFT):   W_dft (N1 × N1) × [U⁽⁰⁾ | U⁽¹⁾ | …] (N1 × B·N2)
//! ```
//!
//! Both stacked operands share one twiddle operand, so the twiddle matrices
//! are loaded once per *block* instead of once per *polynomial* — exactly
//! the data-reuse argument of §IV-B. The same packing applies to the
//! segmented tensor-core pipeline (the u8 planes of the stacked input are
//! segmented once for all `B` rows).
//!
//! Three pieces live here:
//!
//! * [`NttBatchOps`] — the batched transform interface every NTT variant
//!   implements (the butterfly falls back to a per-row loop: there is no
//!   GEMM to widen).
//! * [`BatchedGemmNtt`] — one algorithm-selected plan for a `(N, q)` pair,
//!   dispatching to butterfly / four-step / tensor-core kernels.
//! * [`PlanCache`] — a process-wide, thread-safe cache of
//!   [`BatchedGemmNtt`] plans keyed on `(n, q, algorithm)` **and** of
//!   [`BasisConvGemm`] plans keyed on `(src primes, dst primes)`, so
//!   twiddle matrices and conversion matrices are built once and shared
//!   across CKKS contexts, limbs and the bootstrap pipeline.
//!
//! # Basis conversion on the same wide-GEMM layer
//!
//! The NTT is not the only kernel the paper lowers onto GEMMs: the fast
//! basis conversion inside `ModUp`/`ModDown` is the `(L_dst × L_src) ×
//! (L_src × B·N)` product described in `tensorfhe_math::crt` — the second
//! hottest key-switch kernel after the NTT. Its plan
//! ([`BasisConvGemm`], re-exported here) carries no degree-dependent
//! state, so the cache keys it purely on the two prime lists: every
//! key-switch digit at every level that shares a `(src, dst)` pair —
//! across contexts and levels — shares one conversion matrix.

use crate::butterfly::NttTable;
use crate::four_step::FourStepNtt;
use crate::mat::{gemm_mod_into, Mat};
use crate::tensor_core::TensorCoreNtt;
use crate::{NttAlgorithm, NttOps};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
pub use tensorfhe_math::crt::BasisConvGemm;
use tensorfhe_math::gemm_fast::{gemm_lm, gemm_rm};

/// Batched companion to [`NttOps`]: transforms a block of same-modulus
/// residue rows in one call.
///
/// The default implementations loop over the rows — correct for every
/// variant, and the honest lowering for the butterfly formulation, which
/// has no GEMM to widen. The GEMM-based variants override them with the
/// wide-GEMM packing described in the module docs; outputs are bit-identical
/// to the per-row path by construction (shared twiddle plan) and by test.
pub trait NttBatchOps: NttOps {
    /// In-place forward negacyclic NTT of every row.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `self.degree()`.
    fn forward_batch(&self, rows: &mut [&mut [u64]]) {
        for row in rows.iter_mut() {
            self.forward(row);
        }
    }

    /// In-place inverse negacyclic NTT of every row.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `self.degree()`.
    fn inverse_batch(&self, rows: &mut [&mut [u64]]) {
        for row in rows.iter_mut() {
            self.inverse(row);
        }
    }
}

/// Butterfly batching is a plain loop: each row is a dependent
/// `log N`-stage pipeline with nothing to fuse across rows (that is the
/// formulation the GEMM variants exist to replace).
impl NttBatchOps for NttTable {}

// ---------------------------------------------------------------------------
// The shared wide-GEMM pipeline.
//
// Both GEMM formulations run the same five-stage block pipeline and differ
// only in how they multiply: dense u64 GEMMs (four-step) vs segmented u8
// plane GEMMs (tensor-core). `WideGemm` captures exactly that difference so
// the nontrivial pack / twiddle / unpack layout arithmetic exists once.
// ---------------------------------------------------------------------------

/// The four wide matrix products of the batched pipeline, provided by each
/// GEMM formulation over its own twiddle operands.
pub(crate) trait WideGemm {
    /// The shared four-step plan (split, modulus, twiddle Hadamard operands).
    fn four_step_plan(&self) -> &FourStepNtt;

    /// `stacked (B·N1 × N2) × W_n2 (N2 × N2)` — the inner N2-NTT of every
    /// row in one product.
    fn gemm_n2(&self, stacked: &Mat) -> Mat;

    /// `W_dft (N1 × N1) × wide (N1 × B·N2)` — the outer N1-DFT of every row
    /// in one product.
    fn gemm_dft(&self, wide: &Mat) -> Mat;

    /// Inverse outer DFT: `W_idft × wide`.
    fn gemm_idft(&self, wide: &Mat) -> Mat;

    /// Inverse inner N2-NTT with `N^{-1}` folded in: `stacked × W_n2_inv`.
    fn gemm_n2_inv(&self, stacked: &Mat) -> Mat;
}

impl WideGemm for FourStepNtt {
    fn four_step_plan(&self) -> &FourStepNtt {
        self
    }

    fn gemm_n2(&self, stacked: &Mat) -> Mat {
        let mut out = Mat::pooled(stacked.rows, self.mat_n2().cols);
        gemm_mod_into(stacked, self.mat_n2(), self.modulus_handle(), &mut out);
        out
    }

    fn gemm_dft(&self, wide: &Mat) -> Mat {
        let mut out = Mat::pooled(self.mat_dft().rows, wide.cols);
        gemm_mod_into(self.mat_dft(), wide, self.modulus_handle(), &mut out);
        out
    }

    fn gemm_idft(&self, wide: &Mat) -> Mat {
        let mut out = Mat::pooled(self.mat_idft().rows, wide.cols);
        gemm_mod_into(self.mat_idft(), wide, self.modulus_handle(), &mut out);
        out
    }

    fn gemm_n2_inv(&self, stacked: &Mat) -> Mat {
        let mut out = Mat::pooled(stacked.rows, self.mat_n2_inv().cols);
        gemm_mod_into(stacked, self.mat_n2_inv(), self.modulus_handle(), &mut out);
        out
    }
}

/// The Montgomery fast-kernel formulation over the same four-step plan:
/// identical pipeline, but every wide product runs through the
/// cache-blocked `gemm_fast` kernels against the plan's pre-converted
/// Montgomery operands. Canonical residues out — bit-identical to the
/// Barrett [`WideGemm`] impl above, a property the tests pin across every
/// paper preset.
pub(crate) struct FastWide<'a>(pub(crate) &'a FourStepNtt);

impl WideGemm for FastWide<'_> {
    fn four_step_plan(&self) -> &FourStepNtt {
        self.0
    }

    fn gemm_n2(&self, stacked: &Mat) -> Mat {
        let b = self.0.mont_n2();
        let mut out = Mat::pooled(stacked.rows, b.cols());
        gemm_rm(&stacked.data, stacked.rows, b, &mut out.data);
        out
    }

    fn gemm_dft(&self, wide: &Mat) -> Mat {
        let a = self.0.mont_dft();
        let mut out = Mat::pooled(a.rows(), wide.cols);
        gemm_lm(a, &wide.data, wide.cols, &mut out.data);
        out
    }

    fn gemm_idft(&self, wide: &Mat) -> Mat {
        let a = self.0.mont_idft();
        let mut out = Mat::pooled(a.rows(), wide.cols);
        gemm_lm(a, &wide.data, wide.cols, &mut out.data);
        out
    }

    fn gemm_n2_inv(&self, stacked: &Mat) -> Mat {
        let b = self.0.mont_n2_inv();
        let mut out = Mat::pooled(stacked.rows, b.cols());
        gemm_rm(&stacked.data, stacked.rows, b, &mut out.data);
        out
    }
}

/// Gathers `B` coefficient rows into the vertically stacked `(B·N1) × N2`
/// input block (`A[n1][n2] = a[n1 + N1·n2]` per row — stage-1 operand).
fn gather_stacked(plan: &FourStepNtt, rows: &[&mut [u64]]) -> Mat {
    let (n1, n2) = plan.split();
    let mut stacked = Mat::pooled(rows.len() * n1, n2);
    for (b, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), plan.degree(), "input length mismatch");
        for i in 0..n1 {
            for j in 0..n2 {
                stacked.data[(b * n1 + i) * n2 + j] = row[i + n1 * j];
            }
        }
    }
    stacked
}

/// Gathers `B` evaluation rows (row-major `N1 × N2` each) into the
/// horizontally stacked `N1 × (B·N2)` block.
fn gather_wide(plan: &FourStepNtt, rows: &[&mut [u64]]) -> Mat {
    let (n1, n2) = plan.split();
    let b = rows.len();
    let mut wide = Mat::pooled(n1, b * n2);
    for (bi, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), plan.degree(), "input length mismatch");
        for i in 0..n1 {
            for j in 0..n2 {
                wide.data[i * (b * n2) + bi * n2 + j] = row[i * n2 + j];
            }
        }
    }
    wide
}

/// Tiled twiddle Hadamard + repack: vertically stacked `(B·N1) × N2` in,
/// horizontally stacked `N1 × (B·N2)` out (or the reverse).
fn twiddle_repack(src: &Mat, tw: &Mat, plan: &FourStepNtt, to_wide: bool) -> Mat {
    let (n1, n2) = plan.split();
    let q = plan.modulus_handle();
    let b = if to_wide {
        src.rows / n1
    } else {
        src.cols / n2
    };
    let mut out = if to_wide {
        Mat::pooled(n1, b * n2)
    } else {
        Mat::pooled(b * n1, n2)
    };
    for bi in 0..b {
        for i in 0..n1 {
            for j in 0..n2 {
                let (s, d) = if to_wide {
                    (src.at(bi * n1 + i, j), i * (b * n2) + bi * n2 + j)
                } else {
                    (src.at(i, bi * n2 + j), (bi * n1 + i) * n2 + j)
                };
                out.data[d] = q.mul(s, tw.at(i, j));
            }
        }
    }
    out
}

/// Scatters a horizontally stacked `N1 × (B·N2)` result to the rows in
/// row-major order (forward output layout).
fn scatter_wide(out: &Mat, plan: &FourStepNtt, rows: &mut [&mut [u64]]) {
    let (n1, n2) = plan.split();
    for (bi, row) in rows.iter_mut().enumerate() {
        for i in 0..n1 {
            for j in 0..n2 {
                row[i * n2 + j] = out.at(i, bi * n2 + j);
            }
        }
    }
}

/// Scatters a vertically stacked `(B·N1) × N2` result to the rows in the
/// negacyclic coefficient layout `a[n1 + N1·n2]` (inverse output layout).
fn scatter_stacked(res: &Mat, plan: &FourStepNtt, rows: &mut [&mut [u64]]) {
    let (n1, n2) = plan.split();
    for (bi, row) in rows.iter_mut().enumerate() {
        for i in 0..n1 {
            for j in 0..n2 {
                row[i + n1 * j] = res.at(bi * n1 + i, j);
            }
        }
    }
}

/// Batched forward: two wide GEMMs + one tiled twiddle Hadamard for the
/// whole block.
fn wide_forward_batch<G: WideGemm>(g: &G, rows: &mut [&mut [u64]]) {
    let plan = g.four_step_plan();
    let stacked = gather_stacked(plan, rows);
    let t = g.gemm_n2(&stacked);
    stacked.recycle();
    let wide = twiddle_repack(&t, plan.twiddle_forward(), plan, true);
    t.recycle();
    let out = g.gemm_dft(&wide);
    wide.recycle();
    scatter_wide(&out, plan, rows);
    out.recycle();
}

/// Batched inverse: the mirrored pipeline with `N^{-1}` folded into the
/// final wide GEMM.
fn wide_inverse_batch<G: WideGemm>(g: &G, rows: &mut [&mut [u64]]) {
    let plan = g.four_step_plan();
    let wide = gather_wide(plan, rows);
    let v = g.gemm_idft(&wide);
    wide.recycle();
    let stacked = twiddle_repack(&v, plan.twiddle_inverse(), plan, false);
    v.recycle();
    let res = g.gemm_n2_inv(&stacked);
    stacked.recycle();
    scatter_stacked(&res, plan, rows);
    res.recycle();
}

impl NttBatchOps for FourStepNtt {
    fn forward_batch(&self, rows: &mut [&mut [u64]]) {
        if !rows.is_empty() {
            wide_forward_batch(self, rows);
        }
    }

    fn inverse_batch(&self, rows: &mut [&mut [u64]]) {
        if !rows.is_empty() {
            wide_inverse_batch(self, rows);
        }
    }
}

/// The segmented pipeline rides the same block plumbing; its `WideGemm`
/// impl (in [`crate::tensor_core`], next to the plane data it touches)
/// swaps the dense products for 16-plane u8 GEMMs with the whole block
/// segmented at once.
impl NttBatchOps for TensorCoreNtt {
    fn forward_batch(&self, rows: &mut [&mut [u64]]) {
        if !rows.is_empty() {
            wide_forward_batch(self, rows);
        }
    }

    fn inverse_batch(&self, rows: &mut [&mut [u64]]) {
        if !rows.is_empty() {
            wide_inverse_batch(self, rows);
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm-selected plan + process-wide cache.
// ---------------------------------------------------------------------------

/// The concrete kernel behind a [`BatchedGemmNtt`].
#[derive(Debug, Clone)]
enum Kernel {
    Butterfly(NttTable),
    FourStep(Box<FourStepNtt>),
    TensorCore(Box<TensorCoreNtt>),
}

/// One algorithm-selected NTT plan for a `(N, q)` pair.
///
/// All three variants are constructed over the same deterministic primitive
/// root, so a given input transforms to *bit-identical* output whichever
/// algorithm is selected — switching `NttAlgorithm` changes the execution
/// formulation, never the math.
#[derive(Debug, Clone)]
pub struct BatchedGemmNtt {
    algo: NttAlgorithm,
    kernel: Kernel,
}

impl BatchedGemmNtt {
    /// Builds the plan for degree `n` and prime `q` under `algo`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the underlying variant
    /// constructor ([`NttTable::new`], [`FourStepNtt::new`],
    /// [`TensorCoreNtt::new`]); notably the GEMM variants require
    /// `q < 2^32`.
    #[must_use]
    pub fn new(n: usize, q: u64, algo: NttAlgorithm) -> Self {
        let kernel = match algo {
            NttAlgorithm::Butterfly => Kernel::Butterfly(NttTable::new(n, q)),
            NttAlgorithm::FourStep => Kernel::FourStep(Box::new(FourStepNtt::new(n, q))),
            NttAlgorithm::TensorCore => Kernel::TensorCore(Box::new(TensorCoreNtt::new(n, q))),
        };
        Self { algo, kernel }
    }

    /// The algorithm this plan lowers to.
    #[must_use]
    pub fn algorithm(&self) -> NttAlgorithm {
        self.algo
    }

    /// The primitive `2N`-th root the plan is built on.
    #[must_use]
    pub fn psi(&self) -> u64 {
        match &self.kernel {
            Kernel::Butterfly(t) => t.psi(),
            Kernel::FourStep(t) => t.psi(),
            Kernel::TensorCore(t) => t.psi(),
        }
    }
}

impl NttOps for BatchedGemmNtt {
    fn degree(&self) -> usize {
        match &self.kernel {
            Kernel::Butterfly(t) => t.degree(),
            Kernel::FourStep(t) => t.degree(),
            Kernel::TensorCore(t) => t.degree(),
        }
    }

    fn modulus(&self) -> u64 {
        match &self.kernel {
            Kernel::Butterfly(t) => t.modulus(),
            Kernel::FourStep(t) => t.modulus(),
            Kernel::TensorCore(t) => t.modulus(),
        }
    }

    fn forward(&self, a: &mut [u64]) {
        match &self.kernel {
            Kernel::Butterfly(t) => t.forward(a),
            Kernel::FourStep(t) => t.forward(a),
            Kernel::TensorCore(t) => t.forward(a),
        }
    }

    fn inverse(&self, a: &mut [u64]) {
        match &self.kernel {
            Kernel::Butterfly(t) => t.inverse(a),
            Kernel::FourStep(t) => t.inverse(a),
            Kernel::TensorCore(t) => t.inverse(a),
        }
    }
}

impl NttBatchOps for BatchedGemmNtt {
    fn forward_batch(&self, rows: &mut [&mut [u64]]) {
        match &self.kernel {
            Kernel::Butterfly(t) => t.forward_batch(rows),
            Kernel::FourStep(t) => t.forward_batch(rows),
            Kernel::TensorCore(t) => t.forward_batch(rows),
        }
    }

    fn inverse_batch(&self, rows: &mut [&mut [u64]]) {
        match &self.kernel {
            Kernel::Butterfly(t) => t.inverse_batch(rows),
            Kernel::FourStep(t) => t.inverse_batch(rows),
            Kernel::TensorCore(t) => t.inverse_batch(rows),
        }
    }
}

impl BatchedGemmNtt {
    /// [`NttBatchOps::forward_batch`] through the cache-blocked Montgomery
    /// fast kernels (the host backend's path). Only the four-step
    /// formulation has dense GEMMs to accelerate; the other variants fall
    /// back to their normal batch path. Bit-identical to
    /// [`NttBatchOps::forward_batch`] in every case.
    pub fn forward_batch_fast(&self, rows: &mut [&mut [u64]]) {
        match &self.kernel {
            Kernel::FourStep(t) if !rows.is_empty() => {
                wide_forward_batch(&FastWide(t.as_ref()), rows)
            }
            _ => self.forward_batch(rows),
        }
    }

    /// Fast-kernel companion of [`NttBatchOps::inverse_batch`].
    pub fn inverse_batch_fast(&self, rows: &mut [&mut [u64]]) {
        match &self.kernel {
            Kernel::FourStep(t) if !rows.is_empty() => {
                wide_inverse_batch(&FastWide(t.as_ref()), rows)
            }
            _ => self.inverse_batch(rows),
        }
    }
}

/// Cache key of a basis-conversion plan: the `(src, dst)` prime lists.
type BconvKey = (Vec<u64>, Vec<u64>);

/// Process-wide cache of [`BatchedGemmNtt`] plans keyed on
/// `(n, q, algorithm)` and of [`BasisConvGemm`] plans keyed on the
/// `(src, dst)` prime lists.
///
/// Twiddle and conversion matrices depend only on their key, so one plan
/// serves every CKKS context, every RNS limb with that prime, and the
/// bootstrap pipeline — the §IV-B data-reuse property promoted from
/// "per instance" to "per process". Thread-safe; plans are handed out as
/// [`Arc`]s.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<(usize, u64, NttAlgorithm), Arc<BatchedGemmNtt>>>, // lint: ordered-ok (keyed entry/len only)
    /// Basis-conversion GEMM plans keyed on `(src primes, dst primes)`.
    bconv: Mutex<HashMap<BconvKey, Arc<BasisConvGemm>>>, // lint: ordered-ok (keyed entry/len only)
}

impl PlanCache {
    /// Creates an empty cache (prefer [`PlanCache::global`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache instance.
    #[must_use]
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    /// Returns the shared plan for `(n, q, algo)`, building it on first use.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BatchedGemmNtt::new`].
    #[must_use]
    pub fn get(&self, n: usize, q: u64, algo: NttAlgorithm) -> Arc<BatchedGemmNtt> {
        if let Some(plan) = self
            .plans
            .lock()
            .expect("plan cache poisoned")
            .get(&(n, q, algo))
        {
            return Arc::clone(plan);
        }
        // Built outside the lock: plan construction is expensive (O(N)
        // twiddle matrices) and must not serialise unrelated lookups. A
        // racing builder loses to whichever insert lands first, preserving
        // the sharing guarantee.
        let built = Arc::new(BatchedGemmNtt::new(n, q, algo));
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Arc::clone(plans.entry((n, q, algo)).or_insert(built))
    }

    /// Returns the shared basis-conversion GEMM plan for `(src, dst)`,
    /// building it on first use (same build-outside-the-lock discipline as
    /// [`PlanCache::get`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BasisConvGemm::new`] (empty or
    /// duplicate source primes, or any prime `≥ 2^32`).
    #[must_use]
    pub fn get_bconv(&self, src: &[u64], dst: &[u64]) -> Arc<BasisConvGemm> {
        if let Some(plan) = self
            .bconv
            .lock()
            .expect("bconv cache poisoned")
            .get(&(src.to_vec(), dst.to_vec()))
        {
            return Arc::clone(plan);
        }
        let built = Arc::new(BasisConvGemm::new(src, dst));
        let mut plans = self.bconv.lock().expect("bconv cache poisoned");
        Arc::clone(plans.entry((src.to_vec(), dst.to_vec())).or_insert(built))
    }

    /// Number of cached NTT plans (basis-conversion plans are counted by
    /// [`PlanCache::bconv_len`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Number of cached basis-conversion plans.
    #[must_use]
    pub fn bconv_len(&self) -> usize {
        self.bconv.lock().expect("bconv cache poisoned").len()
    }

    /// Whether the cache holds no plans of either kind.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.bconv_len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_math::prime::generate_ntt_primes;

    /// The executor seam shards batches across worker threads that share
    /// one process-wide plan cache; every plan type it hands out must stay
    /// `Send + Sync` (a reintroduced `Rc`/`Cell` fails to compile here).
    #[test]
    fn plan_cache_and_plans_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanCache>();
        assert_send_sync::<BatchedGemmNtt>();
        assert_send_sync::<Arc<BatchedGemmNtt>>();
        assert_send_sync::<crate::BasisConvGemm>();
    }

    const ALGOS: [NttAlgorithm; 3] = [
        NttAlgorithm::Butterfly,
        NttAlgorithm::FourStep,
        NttAlgorithm::TensorCore,
    ];

    fn random_rows(rng: &mut StdRng, b: usize, n: usize, q: u64) -> Vec<Vec<u64>> {
        (0..b)
            .map(|_| (0..n).map(|_| rng.gen_range(0..q)).collect())
            .collect()
    }

    #[test]
    fn batched_matches_per_row_all_algorithms() {
        let mut rng = StdRng::seed_from_u64(31);
        for algo in ALGOS {
            for b in [1usize, 2, 3, 7, 16] {
                let n = 256;
                let q = generate_ntt_primes(1, 28, n as u64)[0];
                let plan = BatchedGemmNtt::new(n, q, algo);
                let orig = random_rows(&mut rng, b, n, q);

                let mut per_row = orig.clone();
                for row in &mut per_row {
                    plan.forward(row);
                }
                let mut batched = orig.clone();
                {
                    let mut rows: Vec<&mut [u64]> =
                        batched.iter_mut().map(Vec::as_mut_slice).collect();
                    plan.forward_batch(&mut rows);
                }
                assert_eq!(per_row, batched, "{algo:?} forward B={b}");

                for row in &mut per_row {
                    plan.inverse(row);
                }
                {
                    let mut rows: Vec<&mut [u64]> =
                        batched.iter_mut().map(Vec::as_mut_slice).collect();
                    plan.inverse_batch(&mut rows);
                }
                assert_eq!(per_row, batched, "{algo:?} inverse B={b}");
                assert_eq!(batched, orig, "{algo:?} roundtrip B={b}");
            }
        }
    }

    #[test]
    fn algorithms_are_bit_identical_on_shared_plan_key() {
        // The same (n, q) must transform identically whichever formulation
        // runs it — the property that lets the service pick a Variant
        // without changing results.
        let n = 128;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let mut rng = StdRng::seed_from_u64(32);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut outs = Vec::new();
        for algo in ALGOS {
            let plan = BatchedGemmNtt::new(n, q, algo);
            let mut x = a.clone();
            plan.forward(&mut x);
            outs.push(x);
        }
        assert_eq!(outs[0], outs[1], "butterfly vs four-step");
        assert_eq!(outs[1], outs[2], "four-step vs tensor-core");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let n = 64;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let plan = BatchedGemmNtt::new(n, q, NttAlgorithm::FourStep);
        let mut rows: Vec<&mut [u64]> = Vec::new();
        plan.forward_batch(&mut rows);
        plan.inverse_batch(&mut rows);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_row_length_panics() {
        let n = 64;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let plan = BatchedGemmNtt::new(n, q, NttAlgorithm::FourStep);
        let mut good = vec![0u64; n];
        let mut bad = vec![0u64; n / 2];
        let mut rows: Vec<&mut [u64]> = vec![&mut good, &mut bad];
        plan.forward_batch(&mut rows);
    }

    #[test]
    fn fast_kernels_bit_identical_to_scalar_batch() {
        let mut rng = StdRng::seed_from_u64(33);
        for algo in ALGOS {
            for b in [1usize, 3, 8] {
                let n = 256;
                let q = generate_ntt_primes(1, 28, n as u64)[0];
                let plan = BatchedGemmNtt::new(n, q, algo);
                let orig = random_rows(&mut rng, b, n, q);

                let mut scalar = orig.clone();
                let mut fast = orig.clone();
                {
                    let mut rows: Vec<&mut [u64]> =
                        scalar.iter_mut().map(Vec::as_mut_slice).collect();
                    plan.forward_batch(&mut rows);
                }
                {
                    let mut rows: Vec<&mut [u64]> =
                        fast.iter_mut().map(Vec::as_mut_slice).collect();
                    plan.forward_batch_fast(&mut rows);
                }
                assert_eq!(scalar, fast, "{algo:?} forward fast B={b}");

                {
                    let mut rows: Vec<&mut [u64]> =
                        fast.iter_mut().map(Vec::as_mut_slice).collect();
                    plan.inverse_batch_fast(&mut rows);
                }
                assert_eq!(fast, orig, "{algo:?} fast roundtrip B={b}");
            }
        }
    }

    #[test]
    fn repeated_batches_do_not_grow_scratch_state() {
        use tensorfhe_math::scratch;
        let n = 256;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let plan = BatchedGemmNtt::new(n, q, NttAlgorithm::FourStep);
        let mut rng = StdRng::seed_from_u64(34);
        let mut block = random_rows(&mut rng, 4, n, q);
        let drain = |block: &mut Vec<Vec<u64>>| {
            let mut rows: Vec<&mut [u64]> = block.iter_mut().map(Vec::as_mut_slice).collect();
            plan.forward_batch_fast(&mut rows);
            let mut rows: Vec<&mut [u64]> = block.iter_mut().map(Vec::as_mut_slice).collect();
            plan.inverse_batch_fast(&mut rows);
            let mut rows: Vec<&mut [u64]> = block.iter_mut().map(Vec::as_mut_slice).collect();
            plan.forward_batch(&mut rows);
            let mut rows: Vec<&mut [u64]> = block.iter_mut().map(Vec::as_mut_slice).collect();
            plan.inverse_batch(&mut rows);
        };
        scratch::clear_thread_pool();
        drain(&mut block);
        let warm = scratch::thread_stats();
        for _ in 0..20 {
            drain(&mut block);
        }
        assert_eq!(
            scratch::thread_stats(),
            warm,
            "batched NTT drains must reuse pooled scratch, not grow it"
        );
    }

    #[test]
    fn plan_cache_shares_plans_per_key() {
        let cache = PlanCache::new();
        let n = 64;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let a = cache.get(n, q, NttAlgorithm::TensorCore);
        let b = cache.get(n, q, NttAlgorithm::TensorCore);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one plan");
        let c = cache.get(n, q, NttAlgorithm::FourStep);
        assert!(!Arc::ptr_eq(&a, &c), "different algorithm, different plan");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bconv_plans_share_per_prime_pair() {
        let cache = PlanCache::new();
        let primes = generate_ntt_primes(5, 28, 1 << 6);
        let a = cache.get_bconv(&primes[..2], &primes[2..]);
        let b = cache.get_bconv(&primes[..2], &primes[2..]);
        assert!(Arc::ptr_eq(&a, &b), "same prime pair must share one plan");
        let c = cache.get_bconv(&primes[..3], &primes[3..]);
        assert!(!Arc::ptr_eq(&a, &c), "different sources, different plan");
        assert_eq!(cache.bconv_len(), 2);
        assert_eq!(cache.len(), 0, "bconv plans live in their own map");
        assert!(!cache.is_empty(), "bconv plans count toward emptiness");
    }

    #[test]
    fn global_cache_is_shared_across_call_sites() {
        let n = 32;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let a = PlanCache::global().get(n, q, NttAlgorithm::Butterfly);
        let b = PlanCache::global().get(n, q, NttAlgorithm::Butterfly);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
