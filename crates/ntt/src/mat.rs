//! Internal dense-matrix helpers shared by the four-step and tensor-core
//! NTT pipelines.

use tensorfhe_math::{scratch, Modulus};

/// A row-major dense matrix over `Z_q` residues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Mat {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<u64>,
}

impl Mat {
    pub(crate) fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// A zero matrix backed by this thread's scratch pool; pair with
    /// [`Mat::recycle`] so steady-state batch pipelines stop allocating.
    pub(crate) fn pooled(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: scratch::take_u64(rows * cols),
        }
    }

    /// Returns the backing buffer to this thread's scratch pool.
    pub(crate) fn recycle(self) {
        scratch::give_u64(self.data);
    }

    pub(crate) fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> u64,
    ) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    #[inline]
    pub(crate) fn at(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.cols + j]
    }
}

/// `(A × B) mod q` with a single Barrett reduction per output element.
///
/// Requires `q < 2^32` so that the `u128` accumulator cannot overflow for any
/// realistic inner dimension (`cols ≤ 2^64 / q² `): this is exactly the
/// paper's "only one modulo operation is required for each A_k" argument,
/// realised with a 128-bit accumulator instead of the paper's 64-bit one so
/// the property holds for every supported `N`.
pub(crate) fn gemm_mod(a: &Mat, b: &Mat, q: &Modulus) -> Mat {
    let mut out = Mat::zeros(a.rows, b.cols);
    gemm_mod_into(a, b, q, &mut out);
    out
}

/// [`gemm_mod`] into a caller-provided (typically pooled) output matrix.
pub(crate) fn gemm_mod_into(a: &Mat, b: &Mat, q: &Modulus, out: &mut Mat) {
    assert_eq!(a.cols, b.rows, "GEMM dimension mismatch");
    assert!(q.bits() <= 32, "GEMM NTT path requires q < 2^32");
    assert_eq!((out.rows, out.cols), (a.rows, b.cols), "output shape");
    // i-k-j loop order: stream through B rows for cache friendliness while
    // keeping one wide accumulator per output element.
    let mut acc_row = scratch::take_u128(b.cols);
    for i in 0..a.rows {
        acc_row.iter_mut().for_each(|x| *x = 0);
        for k in 0..a.cols {
            let aik = a.at(i, k) as u128;
            if aik == 0 {
                continue;
            }
            let brow = &b.data[k * b.cols..(k + 1) * b.cols];
            for (j, &bkj) in brow.iter().enumerate() {
                acc_row[j] += aik * bkj as u128;
            }
        }
        for (j, &acc) in acc_row.iter().enumerate() {
            out.data[i * b.cols + j] = q.reduce_u128(acc);
        }
    }
    scratch::give_u128(acc_row);
}

/// Element-wise product `(A ⊙ B) mod q` (the Hadamard step between the two
/// GEMMs).
pub(crate) fn hadamard_mod(a: &Mat, b: &Mat, q: &Modulus) -> Mat {
    assert_eq!(
        (a.rows, a.cols),
        (b.rows, b.cols),
        "Hadamard shape mismatch"
    );
    let data = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(&x, &y)| q.mul(x, y))
        .collect();
    Mat {
        rows: a.rows,
        cols: a.cols,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_small_identity() {
        let q = Modulus::new((1 << 30) - 35);
        let id = Mat::from_fn(3, 3, |i, j| u64::from(i == j));
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as u64);
        assert_eq!(gemm_mod(&a, &id, &q), a);
        assert_eq!(gemm_mod(&id, &a, &q), a);
    }

    #[test]
    fn gemm_matches_schoolbook() {
        let q = Modulus::new(97);
        let a = Mat::from_fn(2, 3, |i, j| ((i + 1) * (j + 2)) as u64 % 97);
        let b = Mat::from_fn(3, 4, |i, j| ((i * 7 + j * 3 + 1) % 97) as u64);
        let c = gemm_mod(&a, &b, &q);
        for i in 0..2 {
            for j in 0..4 {
                let mut acc = 0u64;
                for k in 0..3 {
                    acc = (acc + a.at(i, k) * b.at(k, j)) % 97;
                }
                assert_eq!(c.at(i, j), acc);
            }
        }
    }

    #[test]
    fn hadamard_matches_pointwise() {
        let q = Modulus::new(101);
        let a = Mat::from_fn(2, 2, |i, j| (i * 2 + j + 1) as u64);
        let b = Mat::from_fn(2, 2, |i, j| (i * 2 + j + 5) as u64);
        let h = hadamard_mod(&a, &b, &q);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(h.at(i, j), a.at(i, j) * b.at(i, j) % 101);
            }
        }
    }
}
