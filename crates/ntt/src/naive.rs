//! Reference `O(N²)` matrix–vector NTT (Eq. 8 of the paper).
//!
//! `A = (W_{N×N} × aᵀ) mod q` with `w_{ij} = ψ^{2ij+j}`. This is the
//! formulation TensorFHE-CO starts from before the four-step split; we keep
//! it as the trusted reference every fast variant is validated against, and
//! as the demonstration of the "one modulo per output element" property
//! (§IV-B *Modulo Reduction*).

use crate::NttOps;
use tensorfhe_math::prime::root_of_unity;
use tensorfhe_math::Modulus;

/// Dense-matrix negacyclic NTT. Only sensible for small `N`; construction is
/// `O(N²)` memory.
#[derive(Debug, Clone)]
pub struct NaiveNtt {
    n: usize,
    q: Modulus,
    psi: u64,
    /// Row-major forward matrix: `w[k][n] = ψ^{2kn+n}`.
    w: Vec<u64>,
    /// Row-major inverse matrix: `w_inv[n][k] = ψ^{-(2n+1)k} · N^{-1}`.
    w_inv: Vec<u64>,
}

impl NaiveNtt {
    /// Builds the dense transform matrices for degree `n` and prime `q`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q ≢ 1 (mod 2n)`.
    #[must_use]
    pub fn new(n: usize, q: u64) -> Self {
        let m = Modulus::new(q);
        let psi = root_of_unity(&m, 2 * n as u64);
        Self::with_root(n, q, psi)
    }

    /// Builds the matrices with an explicit `2n`-th root of unity.
    ///
    /// # Panics
    ///
    /// Panics if `psi` is not a primitive `2n`-th root of unity.
    #[must_use]
    pub fn with_root(n: usize, q: u64, psi: u64) -> Self {
        assert!(n.is_power_of_two(), "degree must be a power of two");
        let m = Modulus::new(q);
        assert_eq!(m.pow(psi, n as u64), q - 1, "psi must be primitive");
        let psi_inv = m.inv(psi);
        let n_inv = m.inv(n as u64);
        let mut w = vec![0u64; n * n];
        let mut w_inv = vec![0u64; n * n];
        for k in 0..n {
            for j in 0..n {
                // Forward: A_k = Σ_j a_j ψ^{(2k+1) j}
                w[k * n + j] = m.pow(psi, ((2 * k + 1) * j) as u64);
                // Inverse: a_j = N^{-1} Σ_k A_k ψ^{-(2k+1) j}
                w_inv[j * n + k] = m.mul(m.pow(psi_inv, ((2 * k + 1) * j) as u64), n_inv);
            }
        }
        Self {
            n,
            q: m,
            psi,
            w,
            w_inv,
        }
    }

    /// The 2N-th root used by the matrices.
    #[must_use]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    fn apply(&self, mat: &[u64], a: &[u64]) -> Vec<u64> {
        let n = self.n;
        let q = &self.q;
        (0..n)
            .map(|row| {
                // One modulo per output element: accumulate in u128.
                let mut acc: u128 = 0;
                for (j, &x) in a.iter().enumerate() {
                    acc += mat[row * n + j] as u128 * x as u128;
                    if acc >= 1u128 << 120 {
                        acc = q.reduce_u128(acc) as u128;
                    }
                }
                q.reduce_u128(acc)
            })
            .collect()
    }
}

impl NttOps for NaiveNtt {
    fn degree(&self) -> usize {
        self.n
    }

    fn modulus(&self) -> u64 {
        self.q.value()
    }

    fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length mismatch");
        let out = self.apply(&self.w, a);
        a.copy_from_slice(&out);
    }

    fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length mismatch");
        let out = self.apply(&self.w_inv, a);
        a.copy_from_slice(&out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_math::prime::generate_ntt_primes;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [4usize, 16, 64] {
            let q = generate_ntt_primes(1, 28, n as u64)[0];
            let t = NaiveNtt::new(n, q);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let mut b = a.clone();
            t.forward(&mut b);
            t.inverse(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn definition_matches_direct_sum() {
        // Check A_k against the textbook sum for a tiny case.
        let n = 8;
        let q = generate_ntt_primes(1, 20, n as u64)[0];
        let m = Modulus::new(q);
        let t = NaiveNtt::new(n, q);
        let a: Vec<u64> = (1..=n as u64).collect();
        let mut out = a.clone();
        t.forward(&mut out);
        for (k, &got) in out.iter().enumerate() {
            let mut acc = 0u64;
            for (j, &x) in a.iter().enumerate() {
                let tw = m.pow(t.psi(), ((2 * k + 1) * j) as u64);
                acc = m.add(acc, m.mul(x, tw));
            }
            assert_eq!(got, acc);
        }
    }

    #[test]
    fn negacyclic_wraparound_property() {
        // Multiplying by X^N must equal negation: NTT(X^N mod (X^N+1)) = -1.
        // Equivalently NTT(X)^N ⊙-style check: evaluate poly X at ψ^{2k+1},
        // raise to N-th power → ψ^{(2k+1)N} = ψ^N·(ψ^{2N})^k = -1.
        let n = 16;
        let q = generate_ntt_primes(1, 24, n as u64)[0];
        let m = Modulus::new(q);
        let t = NaiveNtt::new(n, q);
        let mut x = vec![0u64; n];
        x[1] = 1;
        t.forward(&mut x);
        for &v in &x {
            assert_eq!(m.pow(v, n as u64), q - 1);
        }
    }
}
