//! Negacyclic polynomial multiplication built on any NTT variant.
//!
//! `A(X)·B(X) mod (X^N + 1)` is `INTT(NTT(a) ⊙ NTT(b))` (Eq. 3); the
//! [`negacyclic_mul`] helper packages this, and [`schoolbook_negacyclic`]
//! provides the `O(N²)` reference used to validate the whole NTT stack end
//! to end.

use crate::NttOps;
use tensorfhe_math::Modulus;

/// Multiplies two polynomials in `Z_q[X]/(X^N + 1)` with the supplied NTT.
///
/// # Panics
///
/// Panics if the slices' lengths differ from the engine degree.
///
/// # Examples
///
/// ```
/// use tensorfhe_ntt::{NttTable, polymul::{negacyclic_mul, schoolbook_negacyclic}};
/// use tensorfhe_math::prime::generate_ntt_primes;
///
/// let n = 16;
/// let q = generate_ntt_primes(1, 28, n as u64)[0];
/// let t = NttTable::new(n, q);
/// let a: Vec<u64> = (1..=n as u64).collect();
/// let b: Vec<u64> = (2..=n as u64 + 1).collect();
/// assert_eq!(negacyclic_mul(&t, &a, &b), schoolbook_negacyclic(&a, &b, q));
/// ```
#[must_use]
pub fn negacyclic_mul<T: NttOps + ?Sized>(ntt: &T, a: &[u64], b: &[u64]) -> Vec<u64> {
    let q = Modulus::new(ntt.modulus());
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    ntt.forward(&mut fa);
    ntt.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = q.mul(*x, *y);
    }
    ntt.inverse(&mut fa);
    fa
}

/// `O(N²)` reference negacyclic product.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
#[must_use]
pub fn schoolbook_negacyclic(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    let m = Modulus::new(q);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = m.mul(ai, bj);
            let idx = i + j;
            if idx < n {
                out[idx] = m.add(out[idx], prod);
            } else {
                // X^N ≡ -1: wrapped terms subtract.
                out[idx - n] = m.sub(out[idx - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FourStepNtt, NttTable, TensorCoreNtt};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_math::prime::generate_ntt_primes;

    fn rand_poly(rng: &mut StdRng, n: usize, q: u64) -> Vec<u64> {
        (0..n).map(|_| rng.gen_range(0..q)).collect()
    }

    #[test]
    fn all_engines_agree_with_schoolbook() {
        let n = 64;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let mut rng = StdRng::seed_from_u64(31);
        let a = rand_poly(&mut rng, n, q);
        let b = rand_poly(&mut rng, n, q);
        let want = schoolbook_negacyclic(&a, &b, q);

        let bf = NttTable::new(n, q);
        assert_eq!(negacyclic_mul(&bf, &a, &b), want, "butterfly");
        let fs = FourStepNtt::with_root(n, q, bf.psi());
        assert_eq!(negacyclic_mul(&fs, &a, &b), want, "four-step");
        let tc = TensorCoreNtt::with_root(n, q, bf.psi());
        assert_eq!(negacyclic_mul(&tc, &a, &b), want, "tensor-core");
    }

    #[test]
    fn x_times_x_pow_nm1_is_minus_one() {
        // X · X^{N-1} = X^N ≡ -1 mod (X^N + 1).
        let n = 32;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        a[1] = 1;
        b[n - 1] = 1;
        let got = schoolbook_negacyclic(&a, &b, q);
        let mut want = vec![0u64; n];
        want[0] = q - 1;
        assert_eq!(got, want);

        let t = NttTable::new(n, q);
        assert_eq!(negacyclic_mul(&t, &a, &b), want);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let n = 16;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let mut rng = StdRng::seed_from_u64(32);
        let a = rand_poly(&mut rng, n, q);
        let mut one = vec![0u64; n];
        one[0] = 1;
        let t = NttTable::new(n, q);
        assert_eq!(negacyclic_mul(&t, &a, &one), a);
    }
}
