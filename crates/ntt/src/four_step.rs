//! Four-step GEMM NTT — the paper's "TensorFHE-CO" algorithm (Eq. 9).
//!
//! The length-`N` negacyclic NTT is decomposed over `N = N1·N2` into
//! *three matrix products* with no inter-stage butterfly dependencies:
//!
//! ```text
//! index split:  n = n1 + N1·n2,   k = k2 + N2·k1
//!
//! A[k2 + N2·k1] = Σ_{n1} W_dft[k1][n1] · ( W_tw[n1][k2] ⊙ Σ_{n2} a[n1][n2]·W_n2[n2][k2] )
//!
//!   W_n2[n2][k2] = ψ_{2N2}^{2·n2·k2 + n2}   (N2×N2 negacyclic NTT matrix)
//!   W_tw[n1][k2] = ψ_{2N}^{2·n1·k2 + n1}    (N1×N2 twiddle Hadamard)
//!   W_dft[k1][n1] = ψ_{2N1}^{2·k1·n1}       (N1×N1 cyclic DFT matrix)
//! ```
//!
//! with `ψ_{2N2} = ψ^{N1}` and `ψ_{2N1} = ψ^{N2}`. These are exactly the
//! three twiddle forms of Eq. 9 (`ψ_{2N1}^{2ij+j}`, `ψ_{2N}^{2ij+j}`,
//! `ψ_{2N2}^{2ij}`); the paper writes the mirrored split (negacyclic factor
//! on the `N1` side), which is the same factorisation with `N1`/`N2`
//! exchanged. We derive and verify ours against the butterfly reference.
//!
//! The three GEMMs replace the `log N` dependent butterfly stages — this is
//! what removes the RAW pipeline stalls measured in Fig. 10 — and each
//! output element incurs exactly one modulo reduction.

use crate::mat::{gemm_mod, hadamard_mod, Mat};
use crate::NttOps;
use std::sync::OnceLock;
use tensorfhe_math::gemm_fast::MontOperand;
use tensorfhe_math::prime::root_of_unity;
use tensorfhe_math::Modulus;

/// Plan (pre-computed twiddle matrices) for the four-step NTT.
///
/// The twiddle factor matrices depend only on `(N, q)` and are reused by all
/// NTT calls of a CKKS instance — the *Data Reuse* property of §IV-B.
#[derive(Debug, Clone)]
pub struct FourStepNtt {
    n: usize,
    n1: usize,
    n2: usize,
    q: Modulus,
    psi: u64,
    w_n2: Mat,
    w_tw: Mat,
    w_dft: Mat,
    w_idft: Mat,
    w_tw_inv: Mat,
    /// Inverse N2-side matrix with `N^{-1}` folded in.
    w_n2_inv: Mat,
    /// Lazily-built Montgomery-form copies of the four GEMM operands,
    /// shared by every fast-kernel call against this plan. `OnceLock` keeps
    /// the plan `Clone` (a cloned plan re-derives them on first use);
    /// boxed so the cold cache adds one pointer to the plan, not four
    /// matrices.
    mont: OnceLock<Box<MontMats>>,
}

/// The four GEMM constants in Montgomery form (host fast path).
#[derive(Debug, Clone)]
struct MontMats {
    n2: MontOperand,
    dft: MontOperand,
    idft: MontOperand,
    n2_inv: MontOperand,
}

impl FourStepNtt {
    /// Builds the plan for degree `n` (power of two) and prime `q < 2^32`
    /// with `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 4, or `q ≥ 2^32` (the GEMM
    /// single-reduction accumulator argument requires 32-bit residues,
    /// matching the paper's RNS limb width).
    #[must_use]
    pub fn new(n: usize, q: u64) -> Self {
        let m = Modulus::new(q);
        let psi = root_of_unity(&m, 2 * n as u64);
        Self::with_root(n, q, psi)
    }

    /// Builds the plan with an explicit primitive `2n`-th root.
    ///
    /// # Panics
    ///
    /// See [`FourStepNtt::new`]; additionally panics if `psi` is not
    /// primitive.
    #[must_use]
    pub fn with_root(n: usize, q: u64, psi: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "degree must be a power of two >= 4"
        );
        let m = Modulus::new(q);
        assert!(m.bits() <= 32, "four-step NTT requires q < 2^32");
        assert_eq!(m.pow(psi, n as u64), q - 1, "psi must be primitive");
        let log_n = n.trailing_zeros();
        let n1 = 1usize << log_n.div_ceil(2);
        let n2 = n / n1;
        let psi_inv = m.inv(psi);
        // ψ_{2N2} = ψ^{N1}, ψ_{2N1} = ψ^{N2}.
        let psi_2n2 = m.pow(psi, n1 as u64);
        let psi_2n2_inv = m.inv(psi_2n2);
        let psi_2n1 = m.pow(psi, n2 as u64);
        let psi_2n1_inv = m.inv(psi_2n1);
        let n_inv = m.inv(n as u64);

        let w_n2 = Mat::from_fn(n2, n2, |r, c| m.pow(psi_2n2, (2 * r * c + r) as u64));
        let w_tw = Mat::from_fn(n1, n2, |r, c| m.pow(psi, (2 * r * c + r) as u64));
        let w_dft = Mat::from_fn(n1, n1, |r, c| m.pow(psi_2n1, (2 * r * c) as u64));
        let w_idft = Mat::from_fn(n1, n1, |r, c| m.pow(psi_2n1_inv, (2 * r * c) as u64));
        let w_tw_inv = Mat::from_fn(n1, n2, |r, c| m.pow(psi_inv, (2 * r * c + r) as u64));
        let w_n2_inv = Mat::from_fn(n2, n2, |r, c| {
            m.mul(m.pow(psi_2n2_inv, (2 * r * c + c) as u64), n_inv)
        });

        Self {
            n,
            n1,
            n2,
            q: m,
            psi,
            w_n2,
            w_tw,
            w_dft,
            w_idft,
            w_tw_inv,
            w_n2_inv,
            mont: OnceLock::new(),
        }
    }

    /// The Montgomery-form GEMM operands, built on first use and cached on
    /// the plan (so [`crate::PlanCache`]-shared plans pay the conversion
    /// once per process).
    fn mont_mats(&self) -> &MontMats {
        self.mont.get_or_init(|| {
            let q = self.q.value();
            let conv = |m: &Mat| MontOperand::new(q, &m.data, m.rows, m.cols);
            Box::new(MontMats {
                n2: conv(&self.w_n2),
                dft: conv(&self.w_dft),
                idft: conv(&self.w_idft),
                n2_inv: conv(&self.w_n2_inv),
            })
        })
    }

    pub(crate) fn mont_n2(&self) -> &MontOperand {
        &self.mont_mats().n2
    }

    pub(crate) fn mont_dft(&self) -> &MontOperand {
        &self.mont_mats().dft
    }

    pub(crate) fn mont_idft(&self) -> &MontOperand {
        &self.mont_mats().idft
    }

    pub(crate) fn mont_n2_inv(&self) -> &MontOperand {
        &self.mont_mats().n2_inv
    }

    /// The `(N1, N2)` split, `N1 ≥ N2`, `N1·N2 = N`.
    #[must_use]
    pub fn split(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// The primitive root used by the plan.
    #[must_use]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Gathers the input vector into the `N1×N2` matrix `A[n1][n2] =
    /// a[n1 + N1·n2]` (stage 1 of Fig. 8).
    pub(crate) fn reshape_in(&self, a: &[u64]) -> Mat {
        Mat::from_fn(self.n1, self.n2, |n1, n2| a[n1 + self.n1 * n2])
    }

    pub(crate) fn twiddle_forward(&self) -> &Mat {
        &self.w_tw
    }

    pub(crate) fn twiddle_inverse(&self) -> &Mat {
        &self.w_tw_inv
    }

    pub(crate) fn mat_n2(&self) -> &Mat {
        &self.w_n2
    }

    pub(crate) fn mat_dft(&self) -> &Mat {
        &self.w_dft
    }

    pub(crate) fn mat_idft(&self) -> &Mat {
        &self.w_idft
    }

    pub(crate) fn mat_n2_inv(&self) -> &Mat {
        &self.w_n2_inv
    }

    pub(crate) fn modulus_handle(&self) -> &Modulus {
        &self.q
    }

    /// Scatters the forward-output matrix `Out[k1][k2]` to the vector
    /// `A[k2 + N2·k1]` — row-major flattening.
    pub(crate) fn flatten_out(&self, out: &Mat, dst: &mut [u64]) {
        dst.copy_from_slice(&out.data);
    }

    /// Scatters the inverse-output matrix `A[n1][n2]` to
    /// `a[n1 + N1·n2]` — column-major flattening.
    pub(crate) fn flatten_in(&self, out: &Mat, dst: &mut [u64]) {
        for n1 in 0..self.n1 {
            for n2 in 0..self.n2 {
                dst[n1 + self.n1 * n2] = out.at(n1, n2);
            }
        }
    }
}

impl NttOps for FourStepNtt {
    fn degree(&self) -> usize {
        self.n
    }

    fn modulus(&self) -> u64 {
        self.q.value()
    }

    fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length mismatch");
        let mat = self.reshape_in(a);
        // GEMM 1: inner negacyclic N2-NTT along each row.
        let t = gemm_mod(&mat, &self.w_n2, &self.q);
        // Hadamard twiddle.
        let u = hadamard_mod(&t, &self.w_tw, &self.q);
        // GEMM 2: outer cyclic N1-DFT. Out = W_dft × U.
        let out = gemm_mod(&self.w_dft, &u, &self.q);
        self.flatten_out(&out, a);
    }

    fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length mismatch");
        let out = Mat {
            rows: self.n1,
            cols: self.n2,
            data: a.to_vec(),
        };
        // GEMM 1: inverse cyclic N1-DFT. V = W_idft × Out.
        let v = gemm_mod(&self.w_idft, &out, &self.q);
        // Hadamard inverse twiddle.
        let vp = hadamard_mod(&v, &self.w_tw_inv, &self.q);
        // GEMM 2: inverse negacyclic N2-NTT (with N^{-1} folded in).
        let res = gemm_mod(&vp, &self.w_n2_inv, &self.q);
        self.flatten_in(&res, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::NttTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_math::prime::generate_ntt_primes;

    #[test]
    fn split_shapes() {
        let q = generate_ntt_primes(1, 28, 1 << 6)[0];
        let t = FourStepNtt::new(64, q);
        assert_eq!(t.split(), (8, 8));
        let q = generate_ntt_primes(1, 28, 1 << 7)[0];
        let t = FourStepNtt::new(128, q);
        assert_eq!(t.split(), (16, 8));
    }

    #[test]
    fn matches_butterfly_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for log_n in [2u32, 4, 5, 6, 8, 10] {
            let n = 1usize << log_n;
            let q = generate_ntt_primes(1, 28, n as u64)[0];
            let bf = NttTable::new(n, q);
            let fs = FourStepNtt::with_root(n, q, bf.psi());
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();

            let mut x = a.clone();
            let mut y = a.clone();
            bf.forward(&mut x);
            fs.forward(&mut y);
            assert_eq!(x, y, "forward mismatch at N={n}");

            bf.inverse(&mut x);
            fs.inverse(&mut y);
            assert_eq!(x, y, "inverse mismatch at N={n}");
            assert_eq!(x, a);
        }
    }

    #[test]
    fn roundtrip_rectangular_split() {
        // N = 2^9 → N1=32, N2=16 exercises the non-square path.
        let n = 512;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let t = FourStepNtt::new(n, q);
        let mut rng = StdRng::seed_from_u64(12);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "q < 2^32")]
    fn large_prime_rejected() {
        let n = 64;
        let q = generate_ntt_primes(1, 40, n as u64)[0];
        let _ = FourStepNtt::new(n, q);
    }
}
