//! Number Theoretic Transform implementations for TensorFHE.
//!
//! The paper's core contribution is a chain of three NTT formulations with
//! increasing GPU-friendliness; this crate implements all of them bit-exactly
//! plus a naive reference, and proves (in tests) that they compute the *same*
//! negacyclic transform:
//!
//! | Variant | Paper name | Module |
//! |---|---|---|
//! | Cooley–Tukey / Gentleman–Sande butterflies | TensorFHE-NT | [`butterfly`] |
//! | `O(N²)` matrix–vector product (Eq. 8) | analysis only | [`naive`] |
//! | Four-step GEMM decomposition (Eq. 9) | TensorFHE-CO | [`four_step`] |
//! | Segmented u8 GEMM + Booth fusion (Fig. 7/8) | TensorFHE | [`tensor_core`] |
//! | Batched `B×L` wide-GEMM execution + plan cache (Fig. 8, §IV-B/D) | TensorFHE batching | [`batch`] |
//!
//! The [`batch`] module is the execution layer the others plug into:
//! [`batch::NttBatchOps`] transforms a whole block of same-modulus residue
//! rows per call (single wide GEMMs per four-step stage for the GEMM
//! variants), and [`batch::PlanCache`] shares one [`batch::BatchedGemmNtt`]
//! plan per `(n, q, algorithm)` key across the entire process — twiddle
//! matrices are built once, whoever asks.
//!
//! The same cache also hands out [`batch::BasisConvGemm`] plans (keyed on
//! the `(src, dst)` prime lists) for the GEMM-lowered fast basis conversion
//! of `ModUp`/`ModDown` — the Conv kernel rides the identical wide-GEMM
//! execution layer as the NTT, converting `B·N` coefficients per matrix
//! product instead of walking them one at a time.
//!
//! All variants share the convention: `forward` maps natural-order
//! coefficients to natural-order evaluations of the *negacyclic* transform
//! `A_k = Σ_n a_n ψ^{(2k+1)n} mod q` where `ψ` is a primitive `2N`-th root of
//! unity, so `INTT(NTT(a) ⊙ NTT(b))` is exactly the product in
//! `Z_q[X]/(X^N + 1)` with no zero padding (§II-A of the paper).
//!
//! # Examples
//!
//! ```
//! use tensorfhe_ntt::{NttTable, NttOps};
//! use tensorfhe_math::prime::generate_ntt_primes;
//!
//! let n = 64;
//! let q = generate_ntt_primes(1, 30, n as u64)[0];
//! let table = NttTable::new(n, q);
//! let mut a: Vec<u64> = (0..n as u64).collect();
//! let orig = a.clone();
//! table.forward(&mut a);
//! table.inverse(&mut a);
//! assert_eq!(a, orig);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod butterfly;
pub mod four_step;
mod mat;
pub mod naive;
pub mod polymul;
pub mod tensor_core;

pub use batch::{BasisConvGemm, BatchedGemmNtt, NttBatchOps, PlanCache};
pub use butterfly::NttTable;
pub use four_step::FourStepNtt;
pub use tensor_core::{SegmentedMatrix, TensorCoreNtt};

/// Which NTT formulation an engine uses — mirrors the three TensorFHE
/// configurations of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NttAlgorithm {
    /// Butterfly NTT on CUDA cores (TensorFHE-NT).
    Butterfly,
    /// Four-step GEMM NTT on CUDA cores (TensorFHE-CO).
    FourStep,
    /// Segmented u8 GEMM NTT on tensor cores (TensorFHE).
    TensorCore,
}

impl NttAlgorithm {
    /// Human-readable name matching the paper's scheme labels.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NttAlgorithm::Butterfly => "TensorFHE-NT",
            NttAlgorithm::FourStep => "TensorFHE-CO",
            NttAlgorithm::TensorCore => "TensorFHE",
        }
    }
}

/// Common interface of every NTT implementation: an in-place, natural-order
/// negacyclic transform pair.
pub trait NttOps {
    /// Polynomial degree `N`.
    fn degree(&self) -> usize;

    /// The prime modulus `q`.
    fn modulus(&self) -> u64;

    /// In-place forward negacyclic NTT (coefficients → evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.degree()`.
    fn forward(&self, a: &mut [u64]);

    /// In-place inverse negacyclic NTT (evaluations → coefficients).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.degree()`.
    fn inverse(&self, a: &mut [u64]);
}
