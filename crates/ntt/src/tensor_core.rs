//! Segmented low-precision GEMM NTT — the paper's full "TensorFHE"
//! algorithm (Figs. 7 and 8).
//!
//! Tensor Core Units multiply only u8 operands (accumulating into s32), yet
//! the NTT needs exact 32-bit modular arithmetic. The paper's
//! *segment–fusion* scheme recovers exactness:
//!
//! 1. **Segment** (Fig. 7): each 32-bit element `m = Σ_{s=0}^{3} m_s·2^{8s}`
//!    is split into four u8 planes `M_0..M_3`.
//! 2. **TCU GEMM** (stages 2/4 of Fig. 8): the product `W × X` expands into
//!    16 plane products `O_{st} = W_s × X_t`, each an exact u8×u8→s32 GEMM —
//!    these are what the real hardware executes via CUTLASS, one stream per
//!    GEMM.
//! 3. **Fuse** (stages 3/5): `W×X = Σ_{s,t} O_{st}·2^{8(s+t)}`, a Booth-style
//!    shifted accumulation, followed by one modulo reduction.
//!
//! The s32 accumulators never overflow because each plane dot product is at
//! most `K·255² ≤ 512·65025 < 2^25` for the `N ≤ 2^18` splits the paper
//! supports; [`SegmentedMatrix::gemm`] asserts this bound at runtime exactly
//! where the hardware would wrap.
//!
//! This module computes bit-identical results to [`crate::butterfly`] — the
//! property the paper validates with successive NTT/INTT (§VI-A) and that
//! our cross-validation tests check directly.

use crate::four_step::FourStepNtt;
use crate::mat::{hadamard_mod, Mat};
use crate::NttOps;
use tensorfhe_math::Modulus;

/// Number of u8 planes per 32-bit element.
pub const SEGMENTS: usize = 4;

/// A matrix of 32-bit residues stored as four u8 planes (Fig. 7).
#[derive(Debug, Clone)]
pub struct SegmentedMatrix {
    rows: usize,
    cols: usize,
    /// `planes[s][i*cols + j]` = byte `s` of element `(i, j)`.
    planes: [Vec<u8>; SEGMENTS],
}

impl SegmentedMatrix {
    /// Segments a dense matrix of values `< 2^32`.
    ///
    /// # Panics
    ///
    /// Panics if any element needs more than 32 bits.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: &[u64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        let mut planes: [Vec<u8>; SEGMENTS] =
            std::array::from_fn(|_| Vec::with_capacity(rows * cols));
        for &v in data {
            assert!(v < (1 << 32), "element {v} exceeds 32 bits; cannot segment");
            for (s, plane) in planes.iter_mut().enumerate() {
                plane.push(((v >> (8 * s)) & 0xFF) as u8);
            }
        }
        Self { rows, cols, planes }
    }

    pub(crate) fn from_mat(m: &Mat) -> Self {
        Self::from_rows(m.rows, m.cols, &m.data)
    }

    /// Matrix dimensions `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Reconstructs the dense u64 matrix (inverse of segmentation).
    #[must_use]
    pub fn fuse_planes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.rows * self.cols];
        for (s, plane) in self.planes.iter().enumerate() {
            for (o, &b) in out.iter_mut().zip(plane) {
                *o |= (b as u64) << (8 * s);
            }
        }
        out
    }

    /// Exact modular GEMM `(self × rhs) mod q` through 16 u8-plane products
    /// with s32 accumulation and Booth fusion.
    ///
    /// Returns the result and the number of plane GEMMs executed (always 16;
    /// exposed so the cost model can count TCU work without re-deriving it).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree, or if a plane dot product
    /// would overflow the TCU's signed 32-bit accumulator (cannot happen for
    /// inner dimensions ≤ 33 025, i.e. any power-of-two split ≤ 2^15).
    #[must_use]
    pub fn gemm(&self, rhs: &SegmentedMatrix, q: &Modulus) -> Vec<u64> {
        assert_eq!(self.cols, rhs.rows, "GEMM dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert!(
            (k as u64) * 255 * 255 <= i32::MAX as u64,
            "inner dimension {k} overflows the TCU s32 accumulator"
        );
        // O_st plane products. Each is an independent GEMM — the unit the
        // paper maps to one CUDA stream (Fig. 8).
        let mut plane_out = vec![vec![0i32; m * n]; SEGMENTS * SEGMENTS];
        for s in 0..SEGMENTS {
            for t in 0..SEGMENTS {
                let lhs = &self.planes[s];
                let rhsp = &rhs.planes[t];
                let out = &mut plane_out[s * SEGMENTS + t];
                for i in 0..m {
                    let lrow = &lhs[i * k..(i + 1) * k];
                    let orow = &mut out[i * n..(i + 1) * n];
                    for (kk, &l) in lrow.iter().enumerate() {
                        if l == 0 {
                            continue;
                        }
                        let l = l as i32;
                        let rrow = &rhsp[kk * n..(kk + 1) * n];
                        for (j, &r) in rrow.iter().enumerate() {
                            // u8×u8 MAC into s32, exactly the DPU datapath.
                            orow[j] += l * r as i32;
                        }
                    }
                }
            }
        }
        // Booth fusion: Σ_{s,t} O_st · 2^{8(s+t)}, one modulo at the end.
        let mut fused = vec![0u64; m * n];
        for (idx, f) in fused.iter_mut().enumerate() {
            let mut acc: u128 = 0;
            for s in 0..SEGMENTS {
                for t in 0..SEGMENTS {
                    let o = plane_out[s * SEGMENTS + t][idx] as u128;
                    acc += o << (8 * (s + t));
                }
            }
            *f = q.reduce_u128(acc);
        }
        fused
    }
}

/// The full tensor-core NTT: the four-step plan with both GEMMs replaced by
/// segmented u8 GEMMs.
#[derive(Debug, Clone)]
pub struct TensorCoreNtt {
    plan: FourStepNtt,
    /// Pre-segmented twiddle operands (twiddle segmentation is hoisted to
    /// plan construction, as §IV-C prescribes).
    seg_n2: SegmentedMatrix,
    seg_dft: SegmentedMatrix,
    seg_idft: SegmentedMatrix,
    seg_n2_inv: SegmentedMatrix,
}

impl TensorCoreNtt {
    /// Builds the tensor-core plan for degree `n` and prime `q < 2^32`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`FourStepNtt::new`].
    #[must_use]
    pub fn new(n: usize, q: u64) -> Self {
        Self::from_plan(FourStepNtt::new(n, q))
    }

    /// Builds the plan with an explicit primitive root.
    #[must_use]
    pub fn with_root(n: usize, q: u64, psi: u64) -> Self {
        Self::from_plan(FourStepNtt::with_root(n, q, psi))
    }

    fn from_plan(plan: FourStepNtt) -> Self {
        let seg_n2 = SegmentedMatrix::from_mat(plan.mat_n2());
        let seg_dft = SegmentedMatrix::from_mat(plan.mat_dft());
        let seg_idft = SegmentedMatrix::from_mat(plan.mat_idft());
        let seg_n2_inv = SegmentedMatrix::from_mat(plan.mat_n2_inv());
        Self {
            plan,
            seg_n2,
            seg_dft,
            seg_idft,
            seg_n2_inv,
        }
    }

    /// The `(N1, N2)` split of the underlying plan.
    #[must_use]
    pub fn split(&self) -> (usize, usize) {
        self.plan.split()
    }

    /// The primitive root used by the plan.
    #[must_use]
    pub fn psi(&self) -> u64 {
        self.plan.psi()
    }
}

/// The batched pipeline's products, realised as wide segmented GEMMs: the
/// whole stacked block is split into u8 planes once, multiplied against the
/// pre-segmented twiddle planes, and Booth-fused with a single final modulo
/// (Figs. 7/8 over `B` rows at a time).
impl crate::batch::WideGemm for TensorCoreNtt {
    fn four_step_plan(&self) -> &FourStepNtt {
        &self.plan
    }

    fn gemm_n2(&self, stacked: &Mat) -> Mat {
        let seg = SegmentedMatrix::from_mat(stacked);
        Mat {
            rows: stacked.rows,
            cols: stacked.cols,
            data: seg.gemm(&self.seg_n2, self.plan.modulus_handle()),
        }
    }

    fn gemm_dft(&self, wide: &Mat) -> Mat {
        let seg = SegmentedMatrix::from_mat(wide);
        Mat {
            rows: wide.rows,
            cols: wide.cols,
            data: self.seg_dft.gemm(&seg, self.plan.modulus_handle()),
        }
    }

    fn gemm_idft(&self, wide: &Mat) -> Mat {
        let seg = SegmentedMatrix::from_mat(wide);
        Mat {
            rows: wide.rows,
            cols: wide.cols,
            data: self.seg_idft.gemm(&seg, self.plan.modulus_handle()),
        }
    }

    fn gemm_n2_inv(&self, stacked: &Mat) -> Mat {
        let seg = SegmentedMatrix::from_mat(stacked);
        Mat {
            rows: stacked.rows,
            cols: stacked.cols,
            data: seg.gemm(&self.seg_n2_inv, self.plan.modulus_handle()),
        }
    }
}

impl NttOps for TensorCoreNtt {
    fn degree(&self) -> usize {
        self.plan.degree()
    }

    fn modulus(&self) -> u64 {
        self.plan.modulus()
    }

    fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.degree(), "input length mismatch");
        let q = *self.plan.modulus_handle();
        let (n1, n2) = self.plan.split();
        // Stage 1: segment the input matrix.
        let mat = self.plan.reshape_in(a);
        let seg_in = SegmentedMatrix::from_mat(&mat);
        // Stage 2: 16 TCU GEMMs + Stage-3 fusion → T = A × W_n2 mod q.
        let t = Mat {
            rows: n1,
            cols: n2,
            data: seg_in.gemm(&self.seg_n2, &q),
        };
        // Stage 3 (cont.): Hadamard with W_tw on the CUDA cores, re-segment.
        let u = hadamard_mod(&t, self.plan.twiddle_forward(), &q);
        let seg_u = SegmentedMatrix::from_mat(&u);
        // Stage 4: 16 TCU GEMMs; Stage 5: fusion + final modulo.
        let out = self.seg_dft.gemm(&seg_u, &q);
        self.plan.flatten_out(
            &Mat {
                rows: n1,
                cols: n2,
                data: out,
            },
            a,
        );
    }

    fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.degree(), "input length mismatch");
        let q = *self.plan.modulus_handle();
        let (n1, n2) = self.plan.split();
        let seg_in = SegmentedMatrix::from_rows(n1, n2, a);
        // Inverse cyclic DFT on the N1 side.
        let v = Mat {
            rows: n1,
            cols: n2,
            data: self.seg_idft.gemm(&seg_in, &q),
        };
        let vp = hadamard_mod(&v, self.plan.twiddle_inverse(), &q);
        let seg_vp = SegmentedMatrix::from_mat(&vp);
        // Inverse negacyclic N2-NTT with N^{-1} folded in (the "extra
        // modular multiplicative inverse of N" of stage 5).
        let res = seg_vp.gemm(&self.seg_n2_inv, &q);
        self.plan.flatten_in(
            &Mat {
                rows: n1,
                cols: n2,
                data: res,
            },
            a,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::NttTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_math::prime::generate_ntt_primes;

    #[test]
    fn segmentation_roundtrip() {
        let vals = [0u64, 1, 255, 256, 0xDEAD_BEEF, u32::MAX as u64];
        let seg = SegmentedMatrix::from_rows(2, 3, &vals);
        assert_eq!(seg.fuse_planes(), vals);
    }

    #[test]
    fn segmented_gemm_matches_dense() {
        let q = Modulus::new(generate_ntt_primes(1, 30, 1 << 4)[0]);
        let mut rng = StdRng::seed_from_u64(21);
        let (m, k, n) = (5usize, 7, 6);
        let a: Vec<u64> = (0..m * k).map(|_| rng.gen_range(0..q.value())).collect();
        let b: Vec<u64> = (0..k * n).map(|_| rng.gen_range(0..q.value())).collect();
        let sa = SegmentedMatrix::from_rows(m, k, &a);
        let sb = SegmentedMatrix::from_rows(k, n, &b);
        let got = sa.gemm(&sb, &q);
        for i in 0..m {
            for j in 0..n {
                let mut acc: u128 = 0;
                for kk in 0..k {
                    acc += a[i * k + kk] as u128 * b[kk * n + j] as u128;
                }
                assert_eq!(got[i * n + j], q.reduce_u128(acc));
            }
        }
    }

    #[test]
    fn matches_butterfly_exactly() {
        let mut rng = StdRng::seed_from_u64(22);
        for log_n in [2u32, 4, 6, 8, 10] {
            let n = 1usize << log_n;
            let q = generate_ntt_primes(1, 30, n as u64)[0];
            let bf = NttTable::new(n, q);
            let tc = TensorCoreNtt::with_root(n, q, bf.psi());
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();

            let mut x = a.clone();
            let mut y = a.clone();
            bf.forward(&mut x);
            tc.forward(&mut y);
            assert_eq!(x, y, "forward mismatch at N={n}");

            bf.inverse(&mut x);
            tc.inverse(&mut y);
            assert_eq!(x, y, "inverse mismatch at N={n}");
            assert_eq!(x, a, "roundtrip failed at N={n}");
        }
    }

    #[test]
    fn successive_ntt_intt_identity() {
        // The paper's own correctness check (§VI-A): NTT then INTT returns
        // the original input exactly.
        let n = 1 << 8;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let tc = TensorCoreNtt::new(n, q);
        let mut rng = StdRng::seed_from_u64(23);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut b = a.clone();
        tc.forward(&mut b);
        tc.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn oversized_element_rejected() {
        let _ = SegmentedMatrix::from_rows(1, 1, &[1u64 << 32]);
    }

    #[test]
    fn max_supported_inner_dimension_accepted() {
        // k = 512 (the N = 2^18 split) must satisfy the s32 bound.
        assert!(512u64 * 255 * 255 <= i32::MAX as u64);
    }
}
