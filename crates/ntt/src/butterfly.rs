//! Butterfly negacyclic NTT (the paper's "TensorFHE-NT" baseline).
//!
//! Forward uses Cooley–Tukey (CT) butterflies with the `ψ` powers merged into
//! the twiddle table (Longa–Naehrig style), inverse uses Gentleman–Sande
//! (GS) butterflies — exactly the two butterfly flavours of Fig. 2. The raw
//! CT pass produces bit-reversed output; the public [`NttOps`] interface
//! hides this behind a final permutation so every variant in this crate
//! agrees on natural ordering.

use crate::NttOps;
use tensorfhe_math::bitrev::{bit_reverse_permute, reverse_bits};
use tensorfhe_math::prime::root_of_unity;
use tensorfhe_math::{Modulus, ShoupMul};

/// Pre-computed twiddle tables for one `(N, q)` pair.
///
/// Tables are built once per CKKS instance and shared by every NTT call —
/// the "data reuse" property §IV-B credits to the matrix formulation holds
/// for the butterfly tables as well.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    q: Modulus,
    /// ψ, the primitive 2N-th root of unity.
    psi: u64,
    /// `psi_rev[i] = ψ^{brv(i)}` with Shoup pre-scaling (CT forward table).
    psi_rev: Vec<ShoupMul>,
    /// `psi_inv_rev[i] = ψ^{-brv(i)}` with Shoup pre-scaling (GS inverse).
    psi_inv_rev: Vec<ShoupMul>,
    /// `N^{-1} mod q`.
    n_inv: ShoupMul,
}

impl NttTable {
    /// Builds the tables for degree `n` (a power of two) and prime `q` with
    /// `q ≡ 1 (mod 2n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `q` lacks a `2n`-th root.
    #[must_use]
    pub fn new(n: usize, q: u64) -> Self {
        assert!(n.is_power_of_two(), "degree must be a power of two");
        let m = Modulus::new(q);
        let psi = root_of_unity(&m, 2 * n as u64);
        Self::with_root(n, q, psi)
    }

    /// Builds the tables with an explicit `2n`-th root (used by tests that
    /// need a fixed root across variants).
    ///
    /// # Panics
    ///
    /// Panics if `psi` is not a primitive `2n`-th root of unity mod `q`.
    #[must_use]
    pub fn with_root(n: usize, q: u64, psi: u64) -> Self {
        let m = Modulus::new(q);
        assert_eq!(m.pow(psi, 2 * n as u64), 1, "psi^2N must be 1");
        assert_eq!(
            m.pow(psi, n as u64),
            q - 1,
            "psi must be primitive (ψ^N = -1)"
        );
        let bits = n.trailing_zeros();
        let psi_inv = m.inv(psi);
        let mut psi_rev = Vec::with_capacity(n);
        let mut psi_inv_rev = Vec::with_capacity(n);
        for i in 0..n {
            let r = reverse_bits(i, bits) as u64;
            psi_rev.push(ShoupMul::new(m.pow(psi, r), &m));
            psi_inv_rev.push(ShoupMul::new(m.pow(psi_inv, r), &m));
        }
        let n_inv = ShoupMul::new(m.inv(n as u64), &m);
        Self {
            n,
            q: m,
            psi,
            psi_rev,
            psi_inv_rev,
            n_inv,
        }
    }

    /// The primitive 2N-th root of unity ψ used by this table.
    #[must_use]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Underlying modulus handle.
    #[must_use]
    pub fn modulus_handle(&self) -> &Modulus {
        &self.q
    }

    /// Number of butterfly stages (`log2 N`), the quantity that drives the
    /// RAW-dependency chain measured in Fig. 4.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// CT forward pass: natural-order input → bit-reversed output.
    ///
    /// Exposed because the GPU cost model replays the exact stage structure.
    pub fn forward_bitrev(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length mismatch");
        let q = &self.q;
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let w = &self.psi_rev[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    // CT butterfly: (u, v) -> (u + w·v, u - w·v)
                    let u = a[j];
                    let v = w.mul(a[j + t], q);
                    a[j] = q.add(u, v);
                    a[j + t] = q.sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    /// GS inverse pass: bit-reversed input → natural-order output, including
    /// the final `N^{-1}` scaling.
    pub fn inverse_from_bitrev(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length mismatch");
        let q = &self.q;
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = &self.psi_inv_rev[h + i];
                for j in j1..j1 + t {
                    // GS butterfly: (u, v) -> (u + v, (u - v)·w)
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = q.add(u, v);
                    a[j + t] = w.mul(q.sub(u, v), q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }
}

impl NttOps for NttTable {
    fn degree(&self) -> usize {
        self.n
    }

    fn modulus(&self) -> u64 {
        self.q.value()
    }

    fn forward(&self, a: &mut [u64]) {
        self.forward_bitrev(a);
        bit_reverse_permute(a);
    }

    fn inverse(&self, a: &mut [u64]) {
        bit_reverse_permute(a);
        self.inverse_from_bitrev(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveNtt;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_math::prime::generate_ntt_primes;

    fn random_poly(rng: &mut StdRng, n: usize, q: u64) -> Vec<u64> {
        (0..n).map(|_| rng.gen_range(0..q)).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        for log_n in [2u32, 4, 6, 8, 10, 12] {
            let n = 1usize << log_n;
            let q = generate_ntt_primes(1, 30, n as u64)[0];
            let t = NttTable::new(n, q);
            let a = random_poly(&mut rng, n, q);
            let mut b = a.clone();
            t.forward(&mut b);
            assert_ne!(a, b, "transform should not be identity");
            t.inverse(&mut b);
            assert_eq!(a, b, "roundtrip failed for N={n}");
        }
    }

    #[test]
    fn matches_naive_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [8usize, 32, 128] {
            let q = generate_ntt_primes(1, 28, n as u64)[0];
            let t = NttTable::new(n, q);
            let naive = NaiveNtt::with_root(n, q, t.psi());
            let a = random_poly(&mut rng, n, q);
            let mut fast = a.clone();
            t.forward(&mut fast);
            let mut reference = a.clone();
            naive.forward(&mut reference);
            assert_eq!(fast, reference, "butterfly != naive at N={n}");
        }
    }

    #[test]
    fn large_prime_support() {
        // 59-bit prime exercises the full Barrett width on the butterfly path.
        let n = 256;
        let q = generate_ntt_primes(1, 59, n as u64)[0];
        let t = NttTable::new(n, q);
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_poly(&mut rng, n, q);
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn transform_is_linear() {
        let n = 64;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let m = Modulus::new(q);
        let t = NttTable::new(n, q);
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_poly(&mut rng, n, q);
        let b = random_poly(&mut rng, n, q);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();

        let (mut fa, mut fb, mut fsum) = (a, b, sum);
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fsum);
        for i in 0..n {
            assert_eq!(fsum[i], m.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn constant_polynomial_transforms_to_constant_vector() {
        // NTT of (c, 0, 0, …) is (c, c, …, c): ψ^0 contribution only.
        let n = 32;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let t = NttTable::new(n, q);
        let mut a = vec![0u64; n];
        a[0] = 12345;
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 12345));
    }

    #[test]
    fn x_transforms_to_psi_odd_powers() {
        // NTT of X is (ψ^{2k+1})_k in natural order.
        let n = 16;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let t = NttTable::new(n, q);
        let m = Modulus::new(q);
        let mut a = vec![0u64; n];
        a[1] = 1;
        t.forward(&mut a);
        for (k, &v) in a.iter().enumerate() {
            assert_eq!(v, m.pow(t.psi(), 2 * k as u64 + 1));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let n = 16;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let t = NttTable::new(n, q);
        let mut a = vec![0u64; n / 2];
        t.forward(&mut a);
    }
}
