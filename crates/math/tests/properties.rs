//! Property-based tests of the modular arithmetic and CRT substrate.

use proptest::prelude::*;
use tensorfhe_math::crt::RnsBasis;
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_math::{Modulus, ShoupMul};

const P30: u64 = (1 << 30) - 35;
const P61: u64 = (1 << 61) - 1;

proptest! {
    #[test]
    fn mul_matches_u128_reference(a in 0..P61, b in 0..P61) {
        let m = Modulus::new(P61);
        prop_assert_eq!(m.mul(a, b), (a as u128 * b as u128 % P61 as u128) as u64);
    }

    #[test]
    fn reduce_u128_matches_reference(x in any::<u128>()) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.reduce_u128(x), (x % P30 as u128) as u64);
    }

    #[test]
    fn field_axioms(a in 0..P30, b in 0..P30, c in 0..P30) {
        let m = Modulus::new(P30);
        // Commutativity and associativity of both operations.
        prop_assert_eq!(m.add(a, b), m.add(b, a));
        prop_assert_eq!(m.mul(a, b), m.mul(b, a));
        prop_assert_eq!(m.add(m.add(a, b), c), m.add(a, m.add(b, c)));
        prop_assert_eq!(m.mul(m.mul(a, b), c), m.mul(a, m.mul(b, c)));
        // Distributivity.
        prop_assert_eq!(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
    }

    #[test]
    fn inverses_cancel(a in 1..P30) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.mul(a, m.inv(a)), 1);
        prop_assert_eq!(m.add(a, m.neg(a)), 0);
    }

    #[test]
    fn shoup_agrees_with_barrett(w in 0..P30, x in 0..P30) {
        let m = Modulus::new(P30);
        let s = ShoupMul::new(w, &m);
        prop_assert_eq!(s.mul(x, &m), m.mul(w, x));
    }

    #[test]
    fn pow_is_repeated_multiplication(base in 0..P30, exp in 0u64..64) {
        let m = Modulus::new(P30);
        let mut want = 1u64;
        for _ in 0..exp {
            want = m.mul(want, base);
        }
        prop_assert_eq!(m.pow(base, exp), want);
    }

    #[test]
    fn centered_representation_roundtrips(v in -(1i64 << 40)..(1i64 << 40)) {
        let m = Modulus::new(P61);
        prop_assert_eq!(m.to_centered(m.from_i64(v)), v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crt_compose_decompose_roundtrip(v in -(1i128 << 80)..(1i128 << 80)) {
        let primes = generate_ntt_primes(4, 28, 1 << 8);
        let basis = RnsBasis::new(&primes);
        let residues = basis.decompose_i128(v);
        prop_assert_eq!(basis.compose_centered(&residues), v);
    }

    #[test]
    fn crt_is_additive(a in -(1i128 << 60)..(1i128 << 60), b in -(1i128 << 60)..(1i128 << 60)) {
        let primes = generate_ntt_primes(3, 28, 1 << 8);
        let basis = RnsBasis::new(&primes);
        let ra = basis.decompose_i128(a);
        let rb = basis.decompose_i128(b);
        let sum: Vec<u64> = ra
            .iter()
            .zip(&rb)
            .zip(basis.moduli())
            .map(|((&x, &y), m)| m.add(x, y))
            .collect();
        prop_assert_eq!(basis.compose_centered(&sum), a + b);
    }
}
