//! Bit-reversal permutation helpers shared by the NTT implementations.

/// Reverses the low `bits` bits of `x`.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::bitrev::reverse_bits;
/// assert_eq!(reverse_bits(0b0011, 4), 0b1100);
/// assert_eq!(reverse_bits(1, 3), 4);
/// ```
#[inline]
#[must_use]
pub fn reverse_bits(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Applies the in-place bit-reversal permutation to a slice whose length is a
/// power of two.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = reverse_bits(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_roundtrip() {
        for bits in 1..16u32 {
            for x in [0usize, 1, (1 << bits) - 1, (1 << bits) / 3] {
                assert_eq!(reverse_bits(reverse_bits(x, bits), bits), x);
            }
        }
    }

    #[test]
    fn permutation_is_involution() {
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn known_order_8() {
        let mut v: Vec<u32> = (0..8).collect();
        bit_reverse_permute(&mut v);
        assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn singleton_is_fixed() {
        let mut v = vec![42u8];
        bit_reverse_permute(&mut v);
        assert_eq!(v, vec![42]);
    }
}
