//! Barrett-reduced modular arithmetic over word-sized primes.
//!
//! All TensorFHE residue arithmetic runs in `Z_q` for primes `q < 2^62`.
//! [`Modulus`] caches the Barrett constant `⌊2^128 / q⌋` so multiplication
//! costs two widening multiplies and at most one correction subtraction.
//! [`ShoupMul`] specialises multiplication for a fixed multiplicand (twiddle
//! factors), the trick used by every production NTT.

/// A prime (or odd) modulus together with pre-computed Barrett constants.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::Modulus;
///
/// let m = Modulus::new(0x1000_0000_0600_1u64); // a 52-bit prime-like value
/// assert_eq!(m.add(m.value() - 1, 2), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    q: u64,
    /// High 64 bits of ⌊2^128 / q⌋.
    barrett_hi: u64,
    /// Low 64 bits of ⌊2^128 / q⌋.
    barrett_lo: u64,
}

impl Modulus {
    /// Creates a new modulus.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62` (the headroom keeps lazy sums
    /// correctable with a single subtraction).
    #[must_use]
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be >= 2");
        assert!(q < (1u64 << 62), "modulus must be < 2^62");
        // ⌊2^128 / q⌋ via 128-bit long division done in two halves.
        let hi = u128::MAX / q as u128; // = ⌊(2^128 - 1)/q⌋ ; adjust below.
                                        // (2^128 - 1)/q and (2^128)/q differ only when q divides 2^128,
                                        // impossible for q >= 2 unless q is a power of two; handle exactly:
        let (barrett, _rem) = {
            let b = hi;
            let r = u128::MAX - b * q as u128;
            if r + 1 == q as u128 {
                (b + 1, 0u128)
            } else {
                (b, r + 1)
            }
        };
        Self {
            q,
            barrett_hi: (barrett >> 64) as u64,
            barrett_lo: barrett as u64,
        }
    }

    /// The raw modulus value.
    #[inline]
    #[must_use]
    pub fn value(&self) -> u64 {
        self.q
    }

    /// Number of significant bits in `q`.
    #[inline]
    #[must_use]
    pub fn bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }

    /// Reduces an arbitrary 64-bit value into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn reduce(&self, a: u64) -> u64 {
        if a < self.q {
            a
        } else {
            a % self.q
        }
    }

    /// Reduces a 128-bit value into `[0, q)` using Barrett reduction.
    #[inline]
    #[must_use]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        // Estimate quotient: ⌊a * barrett / 2^128⌋ where barrett ≈ 2^128/q.
        let a_lo = a as u64;
        let a_hi = (a >> 64) as u64;
        // a * barrett = (a_hi*2^64 + a_lo) * (b_hi*2^64 + b_lo); we need bits >= 128.
        let lo_lo = (a_lo as u128) * (self.barrett_lo as u128);
        let lo_hi = (a_lo as u128) * (self.barrett_hi as u128);
        let hi_lo = (a_hi as u128) * (self.barrett_lo as u128);
        let hi_hi = (a_hi as u128) * (self.barrett_hi as u128);
        let mid = (lo_lo >> 64) + (lo_hi & 0xFFFF_FFFF_FFFF_FFFF) + (hi_lo & 0xFFFF_FFFF_FFFF_FFFF);
        let q_est = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
        let r = a.wrapping_sub(q_est.wrapping_mul(self.q as u128)) as u64;
        // Barrett quotient may be short by at most 2.
        let r = if r >= self.q { r - self.q } else { r };
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Modular addition of two values already in `[0, q)`.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction of two values already in `[0, q)`.
    #[inline]
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Modular negation of a value already in `[0, q)`.
    #[inline]
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Modular multiplication via Barrett reduction.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add: `(a*b + c) mod q`.
    #[inline]
    #[must_use]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Modular exponentiation by squaring.
    #[must_use]
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse for prime moduli via Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no inverse).
    #[must_use]
    pub fn inv(&self, a: u64) -> u64 {
        assert!(!a.is_multiple_of(self.q), "zero has no modular inverse");
        self.pow(a, self.q - 2)
    }

    /// Maps a signed integer into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn from_i64(&self, a: i64) -> u64 {
        let r = a.rem_euclid(self.q as i64);
        r as u64
    }

    /// Maps a signed 128-bit integer into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn from_i128(&self, a: i128) -> u64 {
        a.rem_euclid(self.q as i128) as u64
    }

    /// Interprets a residue as a centered representative in `(-q/2, q/2]`.
    #[inline]
    #[must_use]
    pub fn to_centered(&self, a: u64) -> i64 {
        debug_assert!(a < self.q);
        if a > self.q / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }
}

/// Shoup pre-scaled multiplication by a fixed constant.
///
/// For a constant `w` and modulus `q`, caches `w' = ⌊w·2^64/q⌋`; then
/// `mul(x)` computes `w·x mod q` with one `mulhi`, one `mullo` and one
/// conditional subtraction. This is the standard twiddle-factor fast path in
/// butterfly NTTs.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::{Modulus, ShoupMul};
///
/// let m = Modulus::new((1 << 30) - 35); // 2^30 - 35 is prime
/// let w = ShoupMul::new(123_456_789 % m.value(), &m);
/// assert_eq!(w.mul(987_654_321 % m.value(), &m), m.mul(123_456_789 % m.value(), 987_654_321 % m.value()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    /// The constant itself, in `[0, q)`.
    pub w: u64,
    /// Pre-scaled constant `⌊w·2^64/q⌋`.
    pub w_shoup: u64,
}

impl ShoupMul {
    /// Pre-computes the Shoup representation of `w` modulo `m`.
    #[inline]
    #[must_use]
    pub fn new(w: u64, m: &Modulus) -> Self {
        debug_assert!(w < m.value());
        let w_shoup = ((w as u128) << 64) / m.value() as u128;
        Self {
            w,
            w_shoup: w_shoup as u64,
        }
    }

    /// Computes `w·x mod q` (result in `[0, q)`).
    #[inline]
    #[must_use]
    pub fn mul(&self, x: u64, m: &Modulus) -> u64 {
        let q = m.value();
        let hi = ((self.w_shoup as u128 * x as u128) >> 64) as u64;
        let r = (self.w as u128 * x as u128 - hi as u128 * q as u128) as u64;
        if r >= q {
            r - q
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P30: u64 = (1 << 30) - 35;
    const P61: u64 = (1 << 61) - 1; // Mersenne prime.

    #[test]
    fn barrett_matches_naive_small() {
        let m = Modulus::new(97);
        for a in 0..97u64 {
            for b in 0..97u64 {
                assert_eq!(m.mul(a, b), a * b % 97);
            }
        }
    }

    #[test]
    fn barrett_matches_naive_large() {
        let m = Modulus::new(P61);
        let cases = [
            (0u64, 0u64),
            (P61 - 1, P61 - 1),
            (123_456_789_012_345, 987_654_321_098_765),
            (1, P61 - 1),
        ];
        for (a, b) in cases {
            assert_eq!(m.mul(a, b), (a as u128 * b as u128 % P61 as u128) as u64);
        }
    }

    #[test]
    fn reduce_u128_extremes() {
        let m = Modulus::new(P30);
        assert_eq!(m.reduce_u128(u128::MAX), (u128::MAX % P30 as u128) as u64);
        assert_eq!(m.reduce_u128(0), 0);
        assert_eq!(m.reduce_u128(P30 as u128), 0);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let m = Modulus::new(P30);
        let a = 123_456_789 % P30;
        let b = 987_654_321 % P30;
        assert_eq!(m.sub(m.add(a, b), b), a);
        assert_eq!(m.add(a, m.neg(a)), 0);
        assert_eq!(m.neg(0), 0);
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(P30);
        assert_eq!(m.pow(2, 10), 1024);
        assert_eq!(m.pow(5, 0), 1);
        let a = 424_242;
        assert_eq!(m.mul(a, m.inv(a)), 1);
    }

    #[test]
    fn signed_conversions() {
        let m = Modulus::new(P30);
        assert_eq!(m.from_i64(-1), P30 - 1);
        assert_eq!(m.from_i64(P30 as i64), 0);
        assert_eq!(m.to_centered(P30 - 1), -1);
        assert_eq!(m.to_centered(1), 1);
        assert_eq!(m.from_i128(-(P30 as i128) - 5), P30 - 5);
    }

    #[test]
    fn shoup_matches_barrett() {
        let m = Modulus::new(P30);
        for w in [0u64, 1, 2, P30 / 2, P30 - 1] {
            let s = ShoupMul::new(w, &m);
            for x in [0u64, 1, 12345, P30 - 1] {
                assert_eq!(s.mul(x, &m), m.mul(w, x), "w={w} x={x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "modular inverse")]
    fn inv_zero_panics() {
        let _ = Modulus::new(P30).inv(0);
    }

    #[test]
    fn mul_add_matches() {
        let m = Modulus::new(P61);
        let (a, b, c) = (P61 - 2, P61 - 3, P61 - 4);
        assert_eq!(m.mul_add(a, b, c), m.add(m.mul(a, b), c));
    }
}
