//! Thread-local reusable scratch buffers for the hot GEMM paths.
//!
//! The batched NTT and basis-conversion kernels stage their operands in
//! short-lived dense buffers (gather/twiddle repacks, `y`-rows, wide
//! accumulators). Allocating those per call is invisible at simulation
//! scale but shows up as allocator churn once the host backend executes
//! the same GEMMs for real on every drain. This module keeps a small
//! per-thread pool of `u64`/`u128` buffers: a kernel *takes* a buffer of
//! the length it needs (zero-filled), uses it, and *gives* it back, so a
//! steady-state drain loop reuses the same allocations instead of growing
//! the heap — the property `scratch` tests pin via [`thread_stats`].
//!
//! The pool is thread-local on purpose: worker threads never contend, no
//! ordering is introduced (determinism lints stay trivially satisfied),
//! and buffers follow the thread that does the GEMM work.

use std::cell::RefCell;

/// Retention bound per element type: a pool never holds more than this
/// many idle buffers (excess `give`s drop the smallest so peak shapes
/// stay cached).
const MAX_POOLED: usize = 16;

#[derive(Default)]
struct Pool {
    u64s: Vec<Vec<u64>>,
    u128s: Vec<Vec<u128>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Snapshot of this thread's pool, for allocation-churn tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Idle `u64` buffers held.
    pub u64_buffers: usize,
    /// Total capacity (elements) across idle `u64` buffers.
    pub u64_capacity: usize,
    /// Idle `u128` buffers held.
    pub u128_buffers: usize,
    /// Total capacity (elements) across idle `u128` buffers.
    pub u128_capacity: usize,
}

/// This thread's pool occupancy. Stable across repeated identical
/// workloads once warm — the "no allocation growth" property.
#[must_use]
pub fn thread_stats() -> ScratchStats {
    POOL.with(|p| {
        let p = p.borrow();
        ScratchStats {
            u64_buffers: p.u64s.len(),
            u64_capacity: p.u64s.iter().map(Vec::capacity).sum(),
            u128_buffers: p.u128s.len(),
            u128_capacity: p.u128s.iter().map(Vec::capacity).sum(),
        }
    })
}

/// Drops every pooled buffer on this thread (test isolation).
pub fn clear_thread_pool() {
    POOL.with(|p| *p.borrow_mut() = Pool::default());
}

/// Best-fit take: the smallest pooled buffer whose capacity covers `len`,
/// else the largest available (it will regrow once and then be retained),
/// else a fresh allocation.
fn take_from<T: Clone + Default>(pool: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
    let mut best: Option<usize> = None;
    for (i, buf) in pool.iter().enumerate() {
        let cap = buf.capacity();
        let better = match best {
            None => true,
            Some(j) => {
                let bcap = pool[j].capacity();
                if bcap >= len {
                    cap >= len && cap < bcap
                } else {
                    cap > bcap
                }
            }
        };
        if better {
            best = Some(i);
        }
    }
    let mut buf = match best {
        Some(i) => pool.swap_remove(i),
        None => Vec::new(),
    };
    buf.clear();
    buf.resize(len, T::default());
    buf
}

fn give_to<T>(pool: &mut Vec<Vec<T>>, buf: Vec<T>) {
    if buf.capacity() == 0 {
        return;
    }
    pool.push(buf);
    if pool.len() > MAX_POOLED {
        // Drop the smallest so the pool keeps the shapes worth caching.
        let min = pool
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .expect("non-empty pool");
        pool.swap_remove(min);
    }
}

/// Takes a zero-filled `u64` buffer of exactly `len` elements.
#[must_use]
pub fn take_u64(len: usize) -> Vec<u64> {
    POOL.with(|p| take_from(&mut p.borrow_mut().u64s, len))
}

/// Returns a `u64` buffer to this thread's pool.
pub fn give_u64(buf: Vec<u64>) {
    POOL.with(|p| give_to(&mut p.borrow_mut().u64s, buf));
}

/// Takes a zero-filled `u128` buffer of exactly `len` elements.
#[must_use]
pub fn take_u128(len: usize) -> Vec<u128> {
    POOL.with(|p| take_from(&mut p.borrow_mut().u128s, len))
}

/// Returns a `u128` buffer to this thread's pool.
pub fn give_u128(buf: Vec<u128>) {
    POOL.with(|p| give_to(&mut p.borrow_mut().u128s, buf));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_and_exact_length() {
        clear_thread_pool();
        let mut a = take_u64(10);
        a.iter_mut().for_each(|x| *x = 7);
        give_u64(a);
        let b = take_u64(6);
        assert_eq!(b.len(), 6);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be zeroed");
        give_u64(b);
    }

    #[test]
    fn steady_state_stops_growing() {
        clear_thread_pool();
        let workload = || {
            let a = take_u64(1000);
            let b = take_u64(64);
            let c = take_u128(256);
            give_u128(c);
            give_u64(b);
            give_u64(a);
        };
        workload();
        let warm = thread_stats();
        for _ in 0..50 {
            workload();
        }
        assert_eq!(thread_stats(), warm, "pool grew under a repeated workload");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        clear_thread_pool();
        give_u64(Vec::with_capacity(1000));
        give_u64(Vec::with_capacity(100));
        let b = take_u64(50);
        assert!(b.capacity() >= 50 && b.capacity() <= 100, "best fit");
        give_u64(b);
    }

    #[test]
    fn pool_retention_is_bounded() {
        clear_thread_pool();
        for i in 1..=(MAX_POOLED + 10) {
            give_u64(Vec::with_capacity(i));
        }
        let s = thread_stats();
        assert!(s.u64_buffers <= MAX_POOLED);
        clear_thread_pool();
    }
}
