//! NTT-friendly prime generation and primitive roots of unity.
//!
//! Negacyclic NTT over `Z_q[X]/(X^N + 1)` needs a primitive `2N`-th root of
//! unity `ψ` in `Z_q`, which exists exactly when `q ≡ 1 (mod 2N)`. The
//! functions here generate such primes deterministically (scanning downward
//! from a bit-size target, exactly as SEAL/Lattigo do) and find generators.

use crate::modulus::Modulus;

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the fixed witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`
/// which is known to be sufficient for every 64-bit integer.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::prime::is_prime;
/// assert!(is_prime((1 << 61) - 1));
/// assert!(!is_prime(1 << 61));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    let mulmod = |a: u64, b: u64| (a as u128 * b as u128 % n as u128) as u64;
    let powmod = |mut base: u64, mut exp: u64| {
        let mut acc = 1u64;
        base %= n;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = mulmod(acc, base);
            }
            base = mulmod(base, base);
            exp >>= 1;
        }
        acc
    };
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes of (at most) `bits` bits with
/// `q ≡ 1 (mod 2N)`, scanning downward from `2^bits`.
///
/// The result is sorted in descending order and deterministic for a given
/// `(count, bits, n)` triple, so parameter sets are reproducible.
///
/// # Panics
///
/// Panics if `n` is not a power of two, if `bits` is not in `[14, 61]`, or if
/// fewer than `count` such primes exist above `2^(bits-1)`.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::prime::generate_ntt_primes;
/// let primes = generate_ntt_primes(3, 30, 1 << 12);
/// assert_eq!(primes.len(), 3);
/// for q in primes {
///     assert_eq!(q % (2 << 12), 1);
/// }
/// ```
#[must_use]
pub fn generate_ntt_primes(count: usize, bits: u32, n: u64) -> Vec<u64> {
    assert!(
        n.is_power_of_two(),
        "polynomial degree must be a power of two"
    );
    assert!(
        (14..=61).contains(&bits),
        "prime size must be in [14, 61] bits"
    );
    let two_n = 2 * n;
    let mut primes = Vec::with_capacity(count);
    // Largest candidate ≡ 1 (mod 2N) strictly below 2^bits.
    let top = (1u64 << bits) - 1;
    let mut candidate = top - ((top - 1) % two_n);
    let floor = 1u64 << (bits - 1);
    while primes.len() < count {
        assert!(
            candidate > floor,
            "not enough {bits}-bit NTT primes for N={n} (found {})",
            primes.len()
        );
        if is_prime(candidate) {
            primes.push(candidate);
        }
        candidate -= two_n;
    }
    primes
}

/// Generates primes avoiding collisions with an existing set (used for the
/// special primes `p_k`, which must differ from the `q_l`).
#[must_use]
pub fn generate_ntt_primes_excluding(count: usize, bits: u32, n: u64, exclude: &[u64]) -> Vec<u64> {
    let mut all = generate_ntt_primes(count + exclude.len(), bits, n);
    all.retain(|q| !exclude.contains(q));
    all.truncate(count);
    assert_eq!(all.len(), count, "insufficient primes after exclusion");
    all
}

/// Finds the smallest generator of the multiplicative group `Z_q^*`.
///
/// # Panics
///
/// Panics if `q` is not prime (detected indirectly by factorization failure).
#[must_use]
pub fn primitive_root(m: &Modulus) -> u64 {
    let q = m.value();
    let phi = q - 1;
    let factors = factorize(phi);
    'candidate: for g in 2..q {
        for &f in &factors {
            if m.pow(g, phi / f) == 1 {
                continue 'candidate;
            }
        }
        return g;
    }
    unreachable!("no primitive root found; modulus {q} is not prime")
}

/// Returns a primitive `order`-th root of unity in `Z_q`.
///
/// # Panics
///
/// Panics if `order` does not divide `q - 1`.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::{Modulus, prime::{generate_ntt_primes, root_of_unity}};
/// let n = 1u64 << 10;
/// let q = generate_ntt_primes(1, 30, n)[0];
/// let m = Modulus::new(q);
/// let psi = root_of_unity(&m, 2 * n);
/// assert_eq!(m.pow(psi, 2 * n), 1);
/// assert_ne!(m.pow(psi, n), 1); // primitive: ψ^N = -1
/// ```
#[must_use]
pub fn root_of_unity(m: &Modulus, order: u64) -> u64 {
    let q = m.value();
    assert_eq!((q - 1) % order, 0, "order must divide q - 1");
    let g = primitive_root(m);
    let root = m.pow(g, (q - 1) / order);
    debug_assert_eq!(m.pow(root, order), 1);
    root
}

/// Trial-division factorization of a `u64` into distinct prime factors.
fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut push = |f: u64, n: &mut u64| {
        factors.push(f);
        while (*n).is_multiple_of(f) {
            *n /= f;
        }
    };
    if n.is_multiple_of(2) {
        push(2, &mut n);
    }
    let mut f = 3u64;
    while f.saturating_mul(f) <= n {
        if n.is_multiple_of(f) {
            push(f, &mut n);
        }
        f += 2;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 9973, 999_999_937];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in [1u64, 4, 9, 100, 9975, 999_999_938] {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729 are Carmichael numbers that fool Fermat tests.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_prime(c), "{c} is a Carmichael number, not prime");
        }
    }

    #[test]
    fn ntt_primes_have_correct_residue() {
        let n = 1u64 << 14;
        let primes = generate_ntt_primes(5, 40, n);
        assert_eq!(primes.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for q in primes {
            assert!(is_prime(q));
            assert_eq!(q % (2 * n), 1);
            assert!(q < (1 << 40) && q > (1 << 39));
            assert!(seen.insert(q), "primes must be distinct");
        }
    }

    #[test]
    fn exclusion_respected() {
        let n = 1u64 << 10;
        let base = generate_ntt_primes(3, 30, n);
        let extra = generate_ntt_primes_excluding(2, 30, n, &base);
        for p in &extra {
            assert!(!base.contains(p));
        }
    }

    #[test]
    fn roots_of_unity_are_primitive() {
        let n = 1u64 << 10;
        let q = generate_ntt_primes(1, 30, n)[0];
        let m = Modulus::new(q);
        let psi = root_of_unity(&m, 2 * n);
        // ψ^N ≡ -1 (primitivity of the 2N-th root).
        assert_eq!(m.pow(psi, n), q - 1);
        // Orders below 2N never hit 1 for divisor-power checks.
        assert_ne!(m.pow(psi, n / 2), 1);
    }

    #[test]
    fn primitive_root_generates_group() {
        let m = Modulus::new(97);
        let g = primitive_root(&m);
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u64;
        for _ in 0..96 {
            x = m.mul(x, g);
            seen.insert(x);
        }
        assert_eq!(seen.len(), 96);
    }
}
