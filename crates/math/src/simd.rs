//! Portable SIMD micro-kernels for the Montgomery GEMM register tiles.
//!
//! [`crate::gemm_fast`]'s tiled kernel bottoms out in an `MR×NR`
//! register tile: `MR` data rows multiply-accumulated against a packed
//! `k×NR` column panel, one `REDC` per output. This module makes that
//! tile pluggable behind the [`MicroKernel`] trait and provides two
//! implementations:
//!
//! * [`ScalarTile`] — the PR-9 reference tile: each lane accumulates in a
//!   single `u128` (`acc += a·b'` with a 64×64→128 multiply). Exact, but
//!   128-bit lanes defeat autovectorization, so every MAC is a serial
//!   `mul`/`add`/`adc` chain.
//! * [`Simd4`] — the lane-parallel tile. Residues and Montgomery-form
//!   panel entries are both `< 2^32` (asserted by
//!   [`crate::gemm_fast::MontOperand`]), so each product fits one `u64`:
//!   a 32×32→64 multiply. The tile therefore splits every product into
//!   32-bit limbs and accumulates **two** `u64` vectors per lane group —
//!   `lo += p mod 2^32`, `hi += ⌊p / 2^32⌋` — with *no* `u128` arithmetic
//!   in the inner loop. The compiler turns the masked multiplies into
//!   packed 32×32→64 instructions (`pmuludq` / `vpmuludq`) and the limb
//!   adds into packed 64-bit adds, four-plus lanes wide.
//!
//! # Why the limb split is exact
//!
//! Every product is `p = a·b′ < q² < 2^64` with `p = p_lo + 2^32·p_hi`.
//! Summing limbs separately over the `k` inner terms,
//!
//! ```text
//!   Σ p  =  Σ p_lo  +  2^32 · Σ p_hi        (exactly, over ℤ)
//! ```
//!
//! and each limb sum stays below `k·2^32`, which fits a `u64` for every
//! `k < 2^32` (asserted; the GEMM layer already requires the much tighter
//! `k·q < 2^64`). The tile reconstructs the exact 96-bit-bounded sum
//! `t = lo + (hi << 32)` in `u128` **once per output element**, then
//! applies the same single `REDC(t) = Σ a·b mod q` lazy reduction as the
//! scalar tile — so the two kernels are bit-identical by construction,
//! a property the proptest suites pin across all nine paper presets.
//!
//! # Selection
//!
//! A kernel is selected **once per plan**: [`crate::gemm_fast::MontOperand`]
//! captures [`active`]'s choice at construction, and every GEMM against
//! that operand dispatches through it. [`active`] always returns
//! [`Simd4`] — it is portable safe Rust with no feature detection to go
//! wrong — while [`ScalarTile`] stays reachable through the `*_with`
//! GEMM entry points for the A/B benches and the equivalence proofs.

use crate::montgomery::Montgomery;

/// Register-tile height (data rows per tile). Mirrored by
/// [`crate::gemm_fast`]'s blocking.
pub const MR: usize = 4;
/// Register-tile width (panel columns per tile).
pub const NR: usize = 8;

/// One `MR×NR` register tile of the Montgomery lazy-reduction GEMM.
///
/// Implementations must produce canonical residues bit-identical to the
/// Barrett reference: the accumulation is exact over ℤ and the only
/// reduction is the final per-output `REDC`.
pub trait MicroKernel: Send + Sync + std::fmt::Debug {
    /// Stable kernel name (bench tables, `ServiceStats`).
    fn label(&self) -> &'static str;

    /// Parallel lanes the inner loop is written for (1 = scalar).
    fn lanes(&self) -> usize;

    /// Computes one full tile.
    ///
    /// `a` holds the `MR` data rows of the tile back to back with stride
    /// `k` (`a.len() == MR·k`, row `ii` at `a[ii·k..][..k]`); `panel` is
    /// the packed `k×NR` column panel; `out` receives the `MR×NR`
    /// canonical residues row-major.
    fn tile(&self, a: &[u64], k: usize, panel: &[u64], mont: &Montgomery, out: &mut [u64; MR * NR]);
}

/// The PR-9 scalar register tile: one `u128` accumulator per lane.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarTile;

impl MicroKernel for ScalarTile {
    fn label(&self) -> &'static str {
        "scalar-tile"
    }

    fn lanes(&self) -> usize {
        1
    }

    fn tile(
        &self,
        a: &[u64],
        k: usize,
        panel: &[u64],
        mont: &Montgomery,
        out: &mut [u64; MR * NR],
    ) {
        debug_assert_eq!(a.len(), MR * k);
        debug_assert_eq!(panel.len(), k * NR);
        let mut acc = [[0u128; NR]; MR];
        for kk in 0..k {
            let prow: &[u64; NR] = panel[kk * NR..(kk + 1) * NR]
                .try_into()
                .expect("panel row width");
            for (ii, acc_row) in acc.iter_mut().enumerate() {
                let av = a[ii * k + kk] as u128;
                for (jj, lane) in acc_row.iter_mut().enumerate() {
                    *lane += av * prow[jj] as u128;
                }
            }
        }
        for (ii, acc_row) in acc.iter().enumerate() {
            for (jj, &lane) in acc_row.iter().enumerate() {
                out[ii * NR + jj] = mont.redc(lane);
            }
        }
    }
}

/// 32-bit mask exposing the zero high halves to the autovectorizer.
const LO32: u64 = 0xFFFF_FFFF;

/// The lane-parallel tile: 32×32→64 products, 32-bit limb-split `u64`
/// accumulators, no `u128` in the inner loop (see the module docs for the
/// exactness argument).
#[derive(Debug, Clone, Copy, Default)]
pub struct Simd4;

impl MicroKernel for Simd4 {
    fn label(&self) -> &'static str {
        "simd4"
    }

    fn lanes(&self) -> usize {
        4
    }

    fn tile(
        &self,
        a: &[u64],
        k: usize,
        panel: &[u64],
        mont: &Montgomery,
        out: &mut [u64; MR * NR],
    ) {
        debug_assert_eq!(a.len(), MR * k);
        debug_assert_eq!(panel.len(), k * NR);
        // Limb sums of k terms each < 2^32 must fit u64. Always true in
        // practice (the GEMM layer requires k·q < 2^64 with q ≥ 2^27).
        assert!(k < (1usize << 32), "inner dimension overflows limb sums");
        let mut lo = [[0u64; NR]; MR];
        let mut hi = [[0u64; NR]; MR];
        for kk in 0..k {
            let prow: &[u64; NR] = panel[kk * NR..(kk + 1) * NR]
                .try_into()
                .expect("panel row width");
            for ii in 0..MR {
                // Residues are < 2^32; the masks prove it to the
                // vectorizer, which lowers the multiply to packed
                // 32×32→64 (`vpmuludq`) instead of a serial 64×64 chain.
                let av = a[ii * k + kk] & LO32;
                for jj in 0..NR {
                    let p = av.wrapping_mul(prow[jj] & LO32);
                    lo[ii][jj] = lo[ii][jj].wrapping_add(p & LO32);
                    hi[ii][jj] = hi[ii][jj].wrapping_add(p >> 32);
                }
            }
        }
        for ii in 0..MR {
            for jj in 0..NR {
                // Exact reconstruction: one u128 op per *output*, not per
                // MAC. t = Σ a·b′ < k·q² < q·2^64, inside REDC's domain.
                let t = lo[ii][jj] as u128 + ((hi[ii][jj] as u128) << 32);
                out[ii * NR + jj] = mont.redc(t);
            }
        }
    }
}

static SCALAR_TILE: ScalarTile = ScalarTile;
static SIMD4: Simd4 = Simd4;

/// The scalar reference tile instance.
#[must_use]
pub fn scalar_tile() -> &'static dyn MicroKernel {
    &SCALAR_TILE
}

/// The lane-parallel tile instance.
#[must_use]
pub fn simd4() -> &'static dyn MicroKernel {
    &SIMD4
}

/// The micro-kernel new plans capture: always [`Simd4`]. Portable safe
/// Rust — there is no feature probe to mis-detect, and the kernel is
/// bit-identical to [`ScalarTile`] everywhere, so the selection is a pure
/// perf choice made once per plan (see the module docs).
#[must_use]
pub fn active() -> &'static dyn MicroKernel {
    &SIMD4
}

/// Lane count of the [`active`] micro-kernel (what `ServiceStats`
/// reports as `simd_lanes` for the fast host backend).
#[must_use]
pub fn active_lanes() -> usize {
    active().lanes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn fill(len: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) % q
            })
            .collect()
    }

    #[test]
    fn simd_tile_matches_scalar_tile() {
        let q = generate_ntt_primes(1, 28, 1 << 8)[0];
        let mont = Montgomery::new(q);
        for k in [1usize, 2, 7, 16, 64, 257] {
            let a = fill(MR * k, q, 7 + k as u64);
            let panel = fill(k * NR, q, 99 + k as u64);
            let mut want = [0u64; MR * NR];
            let mut got = [0u64; MR * NR];
            scalar_tile().tile(&a, k, &panel, &mont, &mut want);
            simd4().tile(&a, k, &panel, &mont, &mut got);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn saturated_tile_does_not_overflow() {
        // Worst case: every entry q−1 at the widest supported modulus.
        let q = (1u64 << 32) - 5;
        let mont = Montgomery::new(q);
        let k = 256usize;
        let a = vec![q - 1; MR * k];
        let panel = vec![q - 1; k * NR];
        let mut want = [0u64; MR * NR];
        let mut got = [0u64; MR * NR];
        scalar_tile().tile(&a, k, &panel, &mont, &mut want);
        simd4().tile(&a, k, &panel, &mont, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn selection_is_simd() {
        assert_eq!(active().label(), "simd4");
        assert_eq!(active_lanes(), 4);
        assert_eq!(scalar_tile().lanes(), 1);
    }
}
