//! Montgomery-form modular multiplication.
//!
//! The GPU FHE literature (e.g. the Barrett-vs-Montgomery comparison the
//! paper cites via Knezevic et al.) uses Montgomery multiplication where a
//! long chain of products shares one modulus: values are kept in Montgomery
//! form `aR mod q` (`R = 2^64`) and each product costs one `REDC` instead of
//! a full Barrett reduction. This module provides the alternative backend;
//! the Criterion bench `kernels` compares it against [`crate::Modulus`].

use crate::modulus::Modulus;

/// Montgomery-form arithmetic for an odd modulus `q < 2^62`.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::montgomery::Montgomery;
///
/// let m = Montgomery::new((1 << 30) - 35);
/// let a = m.to_mont(123_456);
/// let b = m.to_mont(654_321);
/// let prod = m.mul(a, b);
/// assert_eq!(m.from_mont(prod), 123_456u64 * 654_321 % ((1 << 30) - 35));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Montgomery {
    q: u64,
    /// `-q^{-1} mod 2^64`.
    q_inv_neg: u64,
    /// `R² mod q` (for conversion into Montgomery form).
    r2: u64,
}

impl Montgomery {
    /// Creates the Montgomery context.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even or `q >= 2^62` (Montgomery needs `gcd(q, R) = 1`).
    #[must_use]
    pub fn new(q: u64) -> Self {
        assert!(q % 2 == 1, "Montgomery requires an odd modulus");
        assert!(q < (1 << 62), "modulus must be < 2^62");
        // Newton iteration for q^{-1} mod 2^64 (doubles correct bits).
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
        }
        debug_assert_eq!(q.wrapping_mul(inv), 1);
        let m = Modulus::new(q);
        // R mod q then square: R² mod q.
        let r_mod_q = m.reduce_u128(1u128 << 64);
        let r2 = m.mul(r_mod_q, r_mod_q);
        Self {
            q,
            q_inv_neg: inv.wrapping_neg(),
            r2,
        }
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Montgomery reduction: given `t < qR`, returns `tR^{-1} mod q`.
    #[inline]
    #[must_use]
    pub fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.q_inv_neg);
        let t2 = (t + m as u128 * self.q as u128) >> 64;
        let r = t2 as u64;
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Converts into Montgomery form (`a → aR mod q`).
    #[inline]
    #[must_use]
    pub fn to_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        self.redc(a as u128 * self.r2 as u128)
    }

    /// Converts out of Montgomery form (`aR → a mod q`).
    #[inline]
    #[must_use]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.redc(a as u128)
    }

    /// Multiplies two Montgomery-form values (result in Montgomery form).
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.redc(a as u128 * b as u128)
    }

    /// Montgomery-form exponentiation of a *plain* base.
    #[must_use]
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.to_mont(base % self.q);
        let mut acc = self.to_mont(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        self.from_mont(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P30: u64 = (1 << 30) - 35;
    const P61: u64 = (1 << 61) - 1;

    #[test]
    fn roundtrip_conversion() {
        let m = Montgomery::new(P30);
        for a in [0u64, 1, 2, P30 / 2, P30 - 1] {
            assert_eq!(m.from_mont(m.to_mont(a)), a);
        }
    }

    #[test]
    fn mul_matches_barrett() {
        let mont = Montgomery::new(P61);
        let barrett = Modulus::new(P61);
        let cases = [
            (0u64, 5u64),
            (P61 - 1, P61 - 1),
            (123_456_789_012_345, 987_654_321_098_765),
        ];
        for (a, b) in cases {
            let am = mont.to_mont(a);
            let bm = mont.to_mont(b);
            assert_eq!(mont.from_mont(mont.mul(am, bm)), barrett.mul(a, b));
        }
    }

    #[test]
    fn pow_matches_barrett() {
        let mont = Montgomery::new(P30);
        let barrett = Modulus::new(P30);
        for (b, e) in [(3u64, 100u64), (12345, 65537), (P30 - 2, 2)] {
            assert_eq!(mont.pow(b, e), barrett.pow(b, e));
        }
    }

    #[test]
    fn chain_of_products_stays_exact() {
        // The Montgomery use case: a long product chain with one conversion
        // at each end.
        let mont = Montgomery::new(P30);
        let barrett = Modulus::new(P30);
        let xs: Vec<u64> = (1..200u64).map(|i| i * 5_000_003 % P30).collect();
        let mut acc_m = mont.to_mont(1);
        let mut acc_b = 1u64;
        for &x in &xs {
            acc_m = mont.mul(acc_m, mont.to_mont(x));
            acc_b = barrett.mul(acc_b, x);
        }
        assert_eq!(mont.from_mont(acc_m), acc_b);
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(1 << 20);
    }
}
