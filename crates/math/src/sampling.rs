//! Random distributions used by CKKS key generation and encryption.
//!
//! Three distributions appear in the scheme (Cheon et al. 2017):
//! uniform polynomials over `Z_q` (the `a` component of ciphertexts and
//! evaluation keys), ternary secrets with entries in `{-1, 0, 1}`, and a
//! centered discrete Gaussian for the error `e` (σ = 3.2 by convention).

use rand::Rng;

/// Standard deviation of the CKKS error distribution.
pub const DEFAULT_SIGMA: f64 = 3.2;

/// Samples a polynomial with coefficients uniform in `[0, q)`.
pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, q: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Samples a ternary polynomial with i.i.d. coefficients in `{-1, 0, 1}`.
pub fn sample_ternary<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1..=1)).collect()
}

/// Samples a ternary polynomial with exactly `hamming_weight` non-zero
/// coefficients (sparse secrets, as used by bootstrapping-oriented papers).
///
/// # Panics
///
/// Panics if `hamming_weight > n`.
pub fn sample_sparse_ternary<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    hamming_weight: usize,
) -> Vec<i64> {
    assert!(hamming_weight <= n, "hamming weight exceeds degree");
    let mut out = vec![0i64; n];
    let mut placed = 0;
    while placed < hamming_weight {
        let idx = rng.gen_range(0..n);
        if out[idx] == 0 {
            out[idx] = if rng.gen_bool(0.5) { 1 } else { -1 };
            placed += 1;
        }
    }
    out
}

/// Samples a centered discrete Gaussian with standard deviation `sigma` by
/// rounding a Box–Muller normal (the conventional software approximation).
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64) -> Vec<i64> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box–Muller produces two independent normals per draw.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        let theta = 2.0 * std::f64::consts::PI * u2;
        out.push((r * theta.cos()).round() as i64);
        if out.len() < n {
            out.push((r * theta.sin()).round() as i64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = 1_000_003;
        let v = sample_uniform(&mut rng, 4096, q);
        assert_eq!(v.len(), 4096);
        assert!(v.iter().all(|&x| x < q));
        // Mean of U[0,q) is q/2; loose 5% sanity band.
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!((mean - q as f64 / 2.0).abs() < q as f64 * 0.05);
    }

    #[test]
    fn ternary_values_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = sample_ternary(&mut rng, 10_000);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        let pos = v.iter().filter(|&&x| x == 1).count() as f64;
        let neg = v.iter().filter(|&&x| x == -1).count() as f64;
        assert!((pos / 10_000.0 - 1.0 / 3.0).abs() < 0.03);
        assert!((neg / 10_000.0 - 1.0 / 3.0).abs() < 0.03);
    }

    #[test]
    fn sparse_ternary_weight_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = sample_sparse_ternary(&mut rng, 1024, 64);
        assert_eq!(v.iter().filter(|&&x| x != 0).count(), 64);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = sample_gaussian(&mut rng, 100_000, DEFAULT_SIGMA);
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        let var = v.iter().map(|&x| x as f64 * x as f64).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!(
            (var - DEFAULT_SIGMA * DEFAULT_SIGMA).abs() < 0.5,
            "variance {var} too far from σ²"
        );
        // Tails: essentially everything within 6σ.
        assert!(v.iter().all(|&x| x.unsigned_abs() < 32));
    }

    #[test]
    fn odd_length_gaussian() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_gaussian(&mut rng, 7, 1.0).len(), 7);
    }
}
