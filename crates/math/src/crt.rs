//! Chinese-Remainder (RNS) reconstruction and fast basis conversion tables.
//!
//! Full-RNS CKKS never materialises the wide modulus `Q = Π q_i`; every
//! polynomial lives as `L+1` residue polynomials. Two places still need to
//! reason about the composite value:
//!
//! * **Decoding** — the decoder must recover the *centered* integer
//!   coefficient from its residues. [`RnsBasis::compose_centered`] does this
//!   exactly with Garner's mixed-radix algorithm plus a small big-unsigned
//!   helper (values that survive decryption fit in `i128` by construction).
//! * **Fast basis conversion (`Conv`)** — `ModUp`/`ModDown` approximate
//!   `x mod p_j` from residues in another basis using the classic
//!   `Σ_i [x_i·q̂_i^{-1}]_{q_i}·(q̂_i mod p_j)` formula of the full-RNS
//!   literature; [`BasisConvTable`] holds the pre-computed constants.
//!
//! # Basis conversion as a wide GEMM
//!
//! The conversion formula is a matrix product in disguise. Writing
//! `y_i = [x_i·q̂_i^{-1}]_{q_i}` (a per-source-limb element-wise scaling),
//! the whole conversion of a block of `W` coefficients is
//!
//! ```text
//! Out (L_dst × W)  =  M (L_dst × L_src)  ×  Y (L_src × W)   (row j mod p_j)
//! ```
//!
//! with the constant matrix `M[j][i] = q̂_i mod p_j`. [`BasisConvGemm`]
//! precomputes `M` in row-major GEMM layout (plus the `Q mod p_j`
//! correction row the exact variants need) and converts limb-major blocks
//! — `W = B·N` coefficients across a whole batch of polynomials — in one
//! wide matrix product per target limb, exactly the TensorFHE lowering
//! that replaces the per-coefficient scalar walk of
//! [`BasisConvTable::convert_coeff`].

use crate::modulus::Modulus;
use crate::montgomery::Montgomery;
use crate::scratch;

/// A little-endian multi-word unsigned integer, just big enough for CRT
/// composition (`Π q_i` for ≲ 64 thirty-bit primes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Creates a big integer from a single word.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        Self { limbs: vec![v] }
    }

    /// `self = self * m + a`, the Horner step of CRT composition.
    pub fn mul_small_add(&mut self, m: u64, a: u64) {
        let mut carry: u128 = a as u128;
        for limb in &mut self.limbs {
            let v = *limb as u128 * m as u128 + carry;
            *limb = v as u64;
            carry = v >> 64;
        }
        while carry > 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
        self.normalize();
    }

    /// Compares two big integers.
    #[must_use]
    pub fn cmp_big(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `self - other`, which must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    #[must_use]
    pub fn sub_big(&self, other: &Self) -> Self {
        assert!(self.cmp_big(other) != std::cmp::Ordering::Less, "underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let rhs = *other.limbs.get(i).unwrap_or(&0) as i128;
            let v = self.limbs[i] as i128 - rhs - borrow;
            if v < 0 {
                out.push((v + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(v as u64);
                borrow = 0;
            }
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Halves the value (floor).
    #[must_use]
    pub fn half(&self) -> Self {
        let mut out = self.limbs.clone();
        let mut carry = 0u64;
        for limb in out.iter_mut().rev() {
            let new_carry = *limb & 1;
            *limb = (*limb >> 1) | (carry << 63);
            carry = new_carry;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Converts to `i128`.
    ///
    /// Returns `None` if the value needs more than 127 bits.
    #[must_use]
    pub fn to_i128(&self) -> Option<i128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as i128),
            2 => {
                let v = (self.limbs[1] as u128) << 64 | self.limbs[0] as u128;
                if v > i128::MAX as u128 {
                    None
                } else {
                    Some(v as i128)
                }
            }
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (used only for diagnostics).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.844_674_407_370_955_2e19 + limb as f64;
        }
        acc
    }

    fn normalize(&mut self) {
        while self.limbs.len() > 1 && *self.limbs.last().expect("non-empty") == 0 {
            self.limbs.pop();
        }
    }
}

/// An RNS basis `{q_0, …, q_{L}}` with the constants needed for Garner
/// reconstruction and for sourcing fast basis conversions.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    /// `garner[i][j]` = `q_i^{-1} mod q_j` for `i < j`.
    garner: Vec<Vec<u64>>,
    /// `(Q/q_i)^{-1} mod q_i`.
    qhat_inv: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from distinct primes.
    ///
    /// # Panics
    ///
    /// Panics if `primes` is empty or contains duplicates.
    #[must_use]
    pub fn new(primes: &[u64]) -> Self {
        assert!(!primes.is_empty(), "basis must contain at least one prime");
        let moduli: Vec<Modulus> = primes.iter().map(|&q| Modulus::new(q)).collect();
        for (i, a) in primes.iter().enumerate() {
            for b in &primes[i + 1..] {
                assert_ne!(a, b, "duplicate prime {a} in basis");
            }
        }
        let n = moduli.len();
        let mut garner = vec![vec![0u64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                garner[i][j] = moduli[j].inv(moduli[j].reduce(moduli[i].value()));
            }
        }
        let mut qhat_inv = vec![0u64; n];
        for i in 0..n {
            let mi = &moduli[i];
            let mut prod = 1u64;
            for (j, mj) in moduli.iter().enumerate() {
                if j != i {
                    prod = mi.mul(prod, mi.reduce(mj.value()));
                }
            }
            qhat_inv[i] = mi.inv(prod);
        }
        Self {
            moduli,
            garner,
            qhat_inv,
        }
    }

    /// The moduli of the basis, in order.
    #[must_use]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Number of primes in the basis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the basis is empty (never true for a constructed basis).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// `(Q/q_i)^{-1} mod q_i` for each prime.
    #[must_use]
    pub fn qhat_inv(&self) -> &[u64] {
        &self.qhat_inv
    }

    /// The product `Q = Π q_i` as a big integer.
    #[must_use]
    pub fn product(&self) -> BigUint {
        let mut p = BigUint::from_u64(1);
        for m in &self.moduli {
            p.mul_small_add(m.value(), 0);
        }
        p
    }

    /// Garner mixed-radix digits `v` such that
    /// `x = v_0 + v_1·q_0 + v_2·q_0·q_1 + …`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    #[must_use]
    pub fn garner_digits(&self, residues: &[u64]) -> Vec<u64> {
        assert_eq!(residues.len(), self.moduli.len(), "residue count mismatch");
        let n = residues.len();
        let mut v = vec![0u64; n];
        for k in 0..n {
            let mk = &self.moduli[k];
            let mut t = mk.reduce(residues[k]);
            // t = (t - v_j) * q_j^{-1} mod q_k, folded over j < k.
            for (vj, garner_row) in v.iter().zip(&self.garner).take(k) {
                t = mk.mul(mk.sub(t, mk.reduce(*vj)), garner_row[k]);
            }
            v[k] = t;
        }
        v
    }

    /// Exactly reconstructs the centered representative of `x mod Q` from its
    /// residues.
    ///
    /// # Panics
    ///
    /// Panics if the centered value does not fit in `i128` — for valid CKKS
    /// ciphertexts the coefficient magnitude is bounded by the scale times
    /// the message bound, far below `2^127`.
    #[must_use]
    pub fn compose_centered(&self, residues: &[u64]) -> i128 {
        let digits = self.garner_digits(residues);
        // Horner from the highest digit: x = (((v_{n-1})·q_{n-2} + v_{n-2})·…)
        let mut x = BigUint::from_u64(*digits.last().expect("non-empty basis"));
        for k in (0..digits.len() - 1).rev() {
            x.mul_small_add(self.moduli[k].value(), digits[k]);
        }
        let q = self.product();
        let half = q.half();
        if x.cmp_big(&half) == std::cmp::Ordering::Greater {
            let neg = q.sub_big(&x);
            -neg.to_i128().expect("centered value exceeds i128")
        } else {
            x.to_i128().expect("centered value exceeds i128")
        }
    }

    /// Decomposes a signed integer into residues over this basis.
    #[must_use]
    pub fn decompose_i128(&self, v: i128) -> Vec<u64> {
        self.moduli.iter().map(|m| m.from_i128(v)).collect()
    }
}

/// Pre-computed constants for the fast (approximate) basis conversion
/// `Conv_{C→B}` of the full-RNS CKKS literature.
///
/// Given `x` represented in the source basis `C = {q_i}`, the conversion to a
/// target prime `p_j` is
///
/// ```text
/// Conv(x)_j = Σ_i [x_i · q̂_i^{-1}]_{q_i} · (q̂_i mod p_j)   (mod p_j)
///           = x + α·Q mod p_j,  0 ≤ α ≤ len(C)
/// ```
///
/// The small `α·Q` overshoot is the documented approximation error of this
/// conversion; `ModDown` divides it away.
#[derive(Debug, Clone)]
pub struct BasisConvTable {
    /// `q̂_i^{-1} mod q_i` (copied from the source basis).
    src_qhat_inv: Vec<u64>,
    src_moduli: Vec<Modulus>,
    dst_moduli: Vec<Modulus>,
    /// `qhat_mod_p[j][i]` = `q̂_i mod p_j`.
    qhat_mod_p: Vec<Vec<u64>>,
    /// `Q mod p_j` (useful for the exact variants and ModRaise).
    q_mod_p: Vec<u64>,
}

impl BasisConvTable {
    /// Builds the conversion table from basis `src` to the primes of `dst`.
    #[must_use]
    pub fn new(src: &RnsBasis, dst: &[Modulus]) -> Self {
        let src_moduli = src.moduli().to_vec();
        let mut qhat_mod_p = Vec::with_capacity(dst.len());
        let mut q_mod_p = Vec::with_capacity(dst.len());
        for pj in dst {
            let mut row = Vec::with_capacity(src_moduli.len());
            for i in 0..src_moduli.len() {
                let mut prod = 1u64;
                for (k, qk) in src_moduli.iter().enumerate() {
                    if k != i {
                        prod = pj.mul(prod, pj.reduce(qk.value()));
                    }
                }
                row.push(prod);
            }
            qhat_mod_p.push(row);
            let mut q = 1u64;
            for qk in &src_moduli {
                q = pj.mul(q, pj.reduce(qk.value()));
            }
            q_mod_p.push(q);
        }
        Self {
            src_qhat_inv: src.qhat_inv().to_vec(),
            src_moduli,
            dst_moduli: dst.to_vec(),
            qhat_mod_p,
            q_mod_p,
        }
    }

    /// Source moduli.
    #[must_use]
    pub fn src_moduli(&self) -> &[Modulus] {
        &self.src_moduli
    }

    /// Destination moduli.
    #[must_use]
    pub fn dst_moduli(&self) -> &[Modulus] {
        &self.dst_moduli
    }

    /// `Q mod p_j` for each destination prime.
    #[must_use]
    pub fn q_mod_p(&self) -> &[u64] {
        &self.q_mod_p
    }

    /// Converts a single coefficient: `residues[i] = x mod q_i` →
    /// `out[j] ≈ x mod p_j` (up to the additive `α·Q` overshoot).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` does not match the source basis.
    #[must_use]
    pub fn convert_coeff(&self, residues: &[u64]) -> Vec<u64> {
        assert_eq!(residues.len(), self.src_moduli.len());
        // y_i = [x_i * qhat_i^{-1}] mod q_i  (shared across targets)
        let y: Vec<u64> = residues
            .iter()
            .zip(&self.src_moduli)
            .zip(&self.src_qhat_inv)
            .map(|((&x, m), &inv)| m.mul(m.reduce(x), inv))
            .collect();
        self.dst_moduli
            .iter()
            .enumerate()
            .map(|(j, pj)| {
                let mut acc: u128 = 0;
                for (i, &yi) in y.iter().enumerate() {
                    acc += yi as u128 * self.qhat_mod_p[j][i] as u128;
                    // Lazy reduction: keep the accumulator below 2^127.
                    if acc >= 1u128 << 120 {
                        acc = pj.reduce_u128(acc) as u128;
                    }
                }
                pj.reduce_u128(acc)
            })
            .collect()
    }

    /// Converts with the shared `y_i` vector pre-computed by the caller
    /// (kernel layer fast path: `y` is reused across all target primes).
    #[must_use]
    pub fn convert_from_y(&self, y: &[u64], j: usize) -> u64 {
        let pj = &self.dst_moduli[j];
        let mut acc: u128 = 0;
        for (i, &yi) in y.iter().enumerate() {
            acc += yi as u128 * self.qhat_mod_p[j][i] as u128;
            if acc >= 1u128 << 120 {
                acc = pj.reduce_u128(acc) as u128;
            }
        }
        pj.reduce_u128(acc)
    }

    /// Computes the shared `y_i = [x_i · q̂_i^{-1}]_{q_i}` vector.
    #[must_use]
    pub fn y_vector(&self, residues: &[u64]) -> Vec<u64> {
        residues
            .iter()
            .zip(&self.src_moduli)
            .zip(&self.src_qhat_inv)
            .map(|((&x, m), &inv)| m.mul(m.reduce(x), inv))
            .collect()
    }
}

/// The GEMM formulation of the fast basis conversion (see the module docs):
/// a [`BasisConvTable`] whose `q̂_i mod p_j` constants are packed into a
/// row-major `(L_dst × L_src)` matrix operand, converting limb-major blocks
/// of `W = B·N` coefficients in one wide matrix product per target limb.
///
/// Bit-exact with the scalar path: every output residue is the same
/// `Σ_i y_i·(q̂_i mod p_j)` accumulated in 128 bits and reduced once, so
/// [`BasisConvGemm::convert_block`] agrees with
/// [`BasisConvTable::convert_coeff`] coefficient by coefficient (a property
/// the test suite pins for every paper parameter shape).
#[derive(Debug, Clone)]
pub struct BasisConvGemm {
    table: BasisConvTable,
    /// Row-major `(L_dst × L_src)` GEMM operand: `mat[j·L_src + i]` =
    /// `q̂_i mod p_j`.
    mat: Vec<u64>,
    /// Per-target-limb Montgomery contexts and matrix rows in Montgomery
    /// form (`(q̂_i mod p_j)·R mod p_j`). Each target row reduces by its own
    /// `p_j`, so the fast path needs one context per row rather than a
    /// single [`crate::gemm_fast::MontOperand`].
    mont_rows: Vec<(Montgomery, Vec<u64>)>,
}

impl BasisConvGemm {
    /// Builds the plan converting from the `src` primes to the `dst` primes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty or has duplicates, or if any prime is
    /// `≥ 2^32` (the single-reduction wide accumulation needs 32-bit
    /// residues, the same bound as the GEMM NTT path).
    #[must_use]
    pub fn new(src: &[u64], dst: &[u64]) -> Self {
        let src_basis = RnsBasis::new(src);
        let dst_mods: Vec<Modulus> = dst.iter().map(|&p| Modulus::new(p)).collect();
        Self::from_table(BasisConvTable::new(&src_basis, &dst_mods))
    }

    /// Builds the plan from an existing conversion table.
    ///
    /// # Panics
    ///
    /// Panics if any source or destination prime is `≥ 2^32`.
    #[must_use]
    pub fn from_table(table: BasisConvTable) -> Self {
        for m in table.src_moduli().iter().chain(table.dst_moduli()) {
            assert!(
                m.bits() <= 32,
                "GEMM basis conversion requires primes < 2^32, got {}",
                m.value()
            );
        }
        let l_src = table.src_moduli().len();
        let mut mat = Vec::with_capacity(table.dst_moduli().len() * l_src);
        for row in &table.qhat_mod_p {
            mat.extend_from_slice(row);
        }
        let mont_rows = table
            .dst_moduli()
            .iter()
            .zip(&table.qhat_mod_p)
            .map(|(pj, row)| {
                let mont = Montgomery::new(pj.value());
                let mrow = row.iter().map(|&m| mont.to_mont(m)).collect();
                (mont, mrow)
            })
            .collect();
        Self {
            table,
            mat,
            mont_rows,
        }
    }

    /// The underlying scalar conversion table (reference path, `Q mod p_j`
    /// correction row, moduli accessors).
    #[must_use]
    pub fn table(&self) -> &BasisConvTable {
        &self.table
    }

    /// Source moduli.
    #[must_use]
    pub fn src_moduli(&self) -> &[Modulus] {
        self.table.src_moduli()
    }

    /// Destination moduli.
    #[must_use]
    pub fn dst_moduli(&self) -> &[Modulus] {
        self.table.dst_moduli()
    }

    /// Source-basis size `L_src`.
    #[must_use]
    pub fn l_src(&self) -> usize {
        self.table.src_moduli().len()
    }

    /// Destination-basis size `L_dst`.
    #[must_use]
    pub fn l_dst(&self) -> usize {
        self.table.dst_moduli().len()
    }

    /// The batched `y`-stage: `y[i][c] = [src[i][c] · q̂_i^{-1}]_{q_i}` for
    /// every source limb `i` and block coefficient `c` — one element-wise
    /// scaling pass over the whole `L_src × W` block, shared by every
    /// target limb of the GEMM.
    ///
    /// # Panics
    ///
    /// Panics if `src_rows` does not have one row per source limb or the
    /// rows have unequal widths.
    #[must_use]
    pub fn y_rows(&self, src_rows: &[&[u64]]) -> Vec<Vec<u64>> {
        assert_eq!(src_rows.len(), self.l_src(), "source limb count mismatch");
        let width = src_rows.first().map_or(0, |r| r.len());
        src_rows
            .iter()
            .zip(self.table.src_moduli())
            .zip(&self.table.src_qhat_inv)
            .map(|((row, m), &inv)| {
                assert_eq!(row.len(), width, "ragged source block");
                row.iter().map(|&x| m.mul(m.reduce(x), inv)).collect()
            })
            .collect()
    }

    /// Converts a limb-major block: `src_rows[i][c] = x_c mod q_i` →
    /// `out_rows[j][c] ≈ x_c mod p_j` (up to the additive `α·Q` overshoot),
    /// as one wide `(L_dst × L_src) × (L_src × W)` GEMM with a single
    /// reduction per output element.
    ///
    /// # Panics
    ///
    /// Panics on limb-count or width mismatches between `src_rows` and
    /// `out_rows`.
    pub fn convert_block_into(&self, src_rows: &[&[u64]], out_rows: &mut [&mut [u64]]) {
        self.convert_block_impl(src_rows, out_rows, false);
    }

    /// Montgomery-kernel variant of [`BasisConvGemm::convert_block_into`]:
    /// identical tiling and accumulation order, but each target row
    /// multiplies against its pre-converted Montgomery-form matrix row and
    /// folds the accumulator with one `REDC` instead of a Barrett
    /// reduction. `REDC(Σ y_i·m′_ji) = Σ y_i·m_ji mod p_j`, so outputs are
    /// bit-identical to the Barrett path.
    ///
    /// # Panics
    ///
    /// Panics on limb-count or width mismatches between `src_rows` and
    /// `out_rows`.
    pub fn convert_block_into_mont(&self, src_rows: &[&[u64]], out_rows: &mut [&mut [u64]]) {
        self.convert_block_impl(src_rows, out_rows, true);
    }

    fn convert_block_impl(&self, src_rows: &[&[u64]], out_rows: &mut [&mut [u64]], mont: bool) {
        assert_eq!(out_rows.len(), self.l_dst(), "target limb count mismatch");
        assert_eq!(src_rows.len(), self.l_src(), "source limb count mismatch");
        let width = src_rows.first().map_or(0, |r| r.len());
        for out in out_rows.iter_mut() {
            assert_eq!(out.len(), width, "ragged target block");
        }
        let l_src = self.l_src();
        // y stage into pooled scratch (flattened L_src × W): repeated
        // drains reuse the same staging allocation instead of growing the
        // heap per call.
        let mut y = scratch::take_u64(l_src * width);
        for (i, row) in src_rows.iter().enumerate() {
            assert_eq!(row.len(), width, "ragged source block");
            let m = &self.table.src_moduli[i];
            let inv = self.table.src_qhat_inv[i];
            for (yv, &x) in y[i * width..(i + 1) * width].iter_mut().zip(row.iter()) {
                *yv = m.mul(m.reduce(x), inv);
            }
        }
        // Column-tiled t-j-i-c loops: within one column tile, the y block
        // and the accumulator row stay cache-resident while every target
        // limb streams over them — the GEMM operand-reuse argument of
        // §IV-B applied to the conversion matrix. Products are < 2^64
        // (32-bit residues), so `L_src` terms never overflow the u128
        // accumulator and a single reduction per output element suffices
        // — the paper's "one modulo per A_k" argument applied to the Conv
        // kernel.
        const TILE: usize = 1 << 11;
        let mut acc = scratch::take_u128(TILE.min(width));
        for start in (0..width).step_by(TILE) {
            let end = (start + TILE).min(width);
            let acc = &mut acc[..end - start];
            for (j, out) in out_rows.iter_mut().enumerate() {
                let row = if mont {
                    &self.mont_rows[j].1[..]
                } else {
                    &self.mat[j * l_src..(j + 1) * l_src]
                };
                acc.iter_mut().for_each(|a| *a = 0);
                for (i, &mji) in row.iter().enumerate() {
                    if mji == 0 {
                        continue;
                    }
                    let m = mji as u128;
                    let yi = &y[i * width + start..i * width + end];
                    for (a, &yv) in acc.iter_mut().zip(yi.iter()) {
                        *a += m * yv as u128;
                    }
                }
                if mont {
                    let ctx = &self.mont_rows[j].0;
                    for (o, &a) in out[start..end].iter_mut().zip(acc.iter()) {
                        *o = ctx.redc(a);
                    }
                } else {
                    let pj = &self.table.dst_moduli[j];
                    for (o, &a) in out[start..end].iter_mut().zip(acc.iter()) {
                        *o = pj.reduce_u128(a);
                    }
                }
            }
        }
        scratch::give_u128(acc);
        scratch::give_u64(y);
    }

    /// Allocating variant of [`BasisConvGemm::convert_block_into`].
    #[must_use]
    pub fn convert_block(&self, src_rows: &[&[u64]]) -> Vec<Vec<u64>> {
        let width = src_rows.first().map_or(0, |r| r.len());
        let mut out = vec![vec![0u64; width]; self.l_dst()];
        {
            let mut views: Vec<&mut [u64]> = out.iter_mut().map(Vec::as_mut_slice).collect();
            self.convert_block_into(src_rows, &mut views);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn basis(count: usize) -> RnsBasis {
        RnsBasis::new(&generate_ntt_primes(count, 30, 1 << 10))
    }

    #[test]
    fn biguint_mul_add_and_compare() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.mul_small_add(u64::MAX, u64::MAX);
        // (2^64-1)^2 + (2^64-1) = (2^64-1)·2^64
        let expected = {
            let mut e = BigUint::from_u64(u64::MAX);
            e.mul_small_add(0, 0); // no-op times zero? (times 0 then add 0 → 0)
            e
        };
        // times-zero collapses to zero; rebuild expected properly:
        let mut e = BigUint::from_u64(u64::MAX);
        e.mul_small_add(1 << 63, 0);
        e.mul_small_add(2, 0);
        assert_eq!(a.cmp_big(&e), std::cmp::Ordering::Equal);
        let _ = expected;
    }

    #[test]
    fn biguint_sub_half_roundtrip() {
        let mut a = BigUint::from_u64(1);
        for _ in 0..5 {
            a.mul_small_add(1_000_000_007, 123);
        }
        let h = a.half();
        let rest = a.sub_big(&h);
        // rest == h or h+1 depending on parity
        let diff = rest.sub_big(&h);
        let d = diff.to_i128().expect("diff fits");
        assert!(d == 0 || d == 1);
    }

    #[test]
    fn compose_roundtrip_positive_and_negative() {
        let b = basis(4);
        for v in [
            0i128,
            1,
            -1,
            123_456_789_123,
            -987_654_321_987,
            i64::MAX as i128,
        ] {
            let res = b.decompose_i128(v);
            assert_eq!(b.compose_centered(&res), v, "value {v}");
        }
    }

    #[test]
    fn compose_single_prime() {
        let b = basis(1);
        let q = b.moduli()[0].value() as i128;
        assert_eq!(b.compose_centered(&[1]), 1);
        assert_eq!(b.compose_centered(&[(q - 1) as u64]), -1);
    }

    #[test]
    fn garner_digits_reconstruct() {
        let b = basis(3);
        let v: i128 = 999_999_999_999;
        let digits = b.garner_digits(&b.decompose_i128(v));
        // x = v0 + v1*q0 + v2*q0*q1
        let q0 = b.moduli()[0].value() as i128;
        let q1 = b.moduli()[1].value() as i128;
        let x = digits[0] as i128 + digits[1] as i128 * q0 + digits[2] as i128 * q0 * q1;
        assert_eq!(x, v);
    }

    #[test]
    fn basis_conversion_is_exact_up_to_alpha_q() {
        let src = basis(3);
        let dst_primes = generate_ntt_primes(2, 31, 1 << 10);
        let dst: Vec<Modulus> = dst_primes.iter().map(|&p| Modulus::new(p)).collect();
        let table = BasisConvTable::new(&src, &dst);
        let q = src.product();
        let q_i128 = q.to_i128().expect("3 thirty-bit primes fit i128");

        for v in [5i128, -5, 1 << 40, -(1 << 40), 0] {
            let res = src.decompose_i128(v);
            let out = table.convert_coeff(&res);
            for (j, pj) in dst.iter().enumerate() {
                // out_j ≡ v + α·Q (mod p_j) for some 0 ≤ α ≤ 3.
                let got = out[j] as i128;
                let mut ok = false;
                for alpha in 0..=3i128 {
                    let want = (v + alpha * q_i128).rem_euclid(pj.value() as i128);
                    if got == want {
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "conversion of {v} to p_{j} out of α range");
            }
        }
    }

    #[test]
    fn q_mod_p_consistent() {
        let src = basis(2);
        let dst = [Modulus::new(generate_ntt_primes(3, 31, 1 << 10)[2])];
        let table = BasisConvTable::new(&src, &dst);
        let q = src.product().to_i128().expect("fits");
        assert_eq!(
            table.q_mod_p()[0] as i128,
            q.rem_euclid(dst[0].value() as i128)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate prime")]
    fn duplicate_primes_rejected() {
        let _ = RnsBasis::new(&[97, 97]);
    }

    #[test]
    fn gemm_conversion_matches_scalar_exactly() {
        let primes = generate_ntt_primes(7, 30, 1 << 10);
        let (src, dst) = primes.split_at(4);
        let gemm = BasisConvGemm::new(src, dst);
        // A limb-major block of 33 coefficients (odd width on purpose).
        let width = 33usize;
        let src_rows: Vec<Vec<u64>> = src
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                (0..width)
                    .map(|c| ((c as u64 * 2_654_435_761).wrapping_add(i as u64 * 97)) % q)
                    .collect()
            })
            .collect();
        let views: Vec<&[u64]> = src_rows.iter().map(Vec::as_slice).collect();
        let block = gemm.convert_block(&views);
        assert_eq!(block.len(), dst.len());
        for c in 0..width {
            let residues: Vec<u64> = src_rows.iter().map(|r| r[c]).collect();
            let scalar = gemm.table().convert_coeff(&residues);
            for (j, row) in block.iter().enumerate() {
                assert_eq!(row[c], scalar[j], "coefficient {c}, target limb {j}");
            }
        }
    }

    #[test]
    fn gemm_conversion_single_source_limb() {
        // α = 1 (the paper's Default preset): the GEMM degenerates to a
        // broadcast scale — must still agree with the scalar path.
        let primes = generate_ntt_primes(3, 28, 1 << 10);
        let gemm = BasisConvGemm::new(&primes[..1], &primes[1..]);
        let src_row: Vec<u64> = (0..16).map(|c| (c * 12_345 + 7) % primes[0]).collect();
        let block = gemm.convert_block(&[&src_row]);
        for (c, &x) in src_row.iter().enumerate() {
            let scalar = gemm.table().convert_coeff(&[x]);
            for j in 0..2 {
                assert_eq!(block[j][c], scalar[j]);
            }
        }
    }

    #[test]
    fn gemm_conversion_empty_block_is_noop() {
        let primes = generate_ntt_primes(4, 28, 1 << 10);
        let gemm = BasisConvGemm::new(&primes[..2], &primes[2..]);
        let empty: [&[u64]; 2] = [&[], &[]];
        let block = gemm.convert_block(&empty);
        assert_eq!(block.len(), 2);
        assert!(block.iter().all(Vec::is_empty));
    }

    #[test]
    fn mont_conversion_is_bit_identical_to_barrett() {
        let primes = generate_ntt_primes(9, 30, 1 << 10);
        let (src, dst) = primes.split_at(5);
        let gemm = BasisConvGemm::new(src, dst);
        let width = 70usize; // spans a register-tile edge
        let src_rows: Vec<Vec<u64>> = src
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                (0..width)
                    .map(|c| {
                        ((c as u64)
                            .wrapping_mul(0x9e37_79b9)
                            .wrapping_add(i as u64 * 31))
                            % q
                    })
                    .collect()
            })
            .collect();
        let views: Vec<&[u64]> = src_rows.iter().map(Vec::as_slice).collect();
        let barrett = gemm.convert_block(&views);
        let mut mont = vec![vec![0u64; width]; gemm.l_dst()];
        {
            let mut out: Vec<&mut [u64]> = mont.iter_mut().map(Vec::as_mut_slice).collect();
            gemm.convert_block_into_mont(&views, &mut out);
        }
        assert_eq!(mont, barrett, "mont kernel must match Barrett bit-for-bit");
    }

    #[test]
    #[should_panic(expected = "ragged source block")]
    fn gemm_conversion_rejects_ragged_rows() {
        let primes = generate_ntt_primes(3, 28, 1 << 10);
        let gemm = BasisConvGemm::new(&primes[..2], &primes[2..]);
        let (a, b) = ([1u64, 2, 3], [4u64, 5]);
        let _ = gemm.convert_block(&[&a, &b]);
    }
}
