//! Scalar mathematics substrate for the TensorFHE reproduction.
//!
//! This crate provides everything the higher layers need to do exact
//! arithmetic in prime fields `Z_q` and to move between residue bases:
//!
//! * [`Modulus`] — Barrett-reduced modular arithmetic over `u64` primes,
//!   including Shoup multiplication for hot loops with a fixed multiplicand.
//! * [`prime`] — Miller–Rabin primality testing and generation of
//!   NTT-friendly primes (`q ≡ 1 mod 2N`) together with primitive roots.
//! * [`crt`] — Chinese-Remainder reconstruction (Garner mixed radix) and the
//!   pre-computed tables used by the fast basis conversion (`Conv`) kernel.
//! * [`complex`] — a minimal `Complex64` used by the CKKS canonical-embedding
//!   encoder.
//! * [`sampling`] — the three random distributions CKKS needs (uniform mod
//!   `q`, ternary secrets, centered discrete Gaussian noise).
//! * [`gemm_fast`] — cache-blocked, register-tiled Montgomery GEMM kernels,
//!   the host fast path for the batched-NTT and basis-conversion products
//!   (bit-identical to the Barrett scalar reference).
//! * [`simd`] — the pluggable register tiles behind [`gemm_fast`]: the
//!   lane-parallel 32×32→64 limb-split Montgomery tile (`Simd4`) and the
//!   `u128`-accumulator scalar reference tile, selected once per plan.
//! * [`scratch`] — thread-local reusable buffer pools backing the hot GEMM
//!   paths, so steady-state drains stop allocating.
//!
//! # Examples
//!
//! ```
//! use tensorfhe_math::{Modulus, prime::generate_ntt_primes};
//!
//! let q = generate_ntt_primes(1, 30, 1 << 10)[0];
//! let m = Modulus::new(q);
//! let a = m.mul(12345, 67890);
//! assert_eq!(a, (12345u128 * 67890 % q as u128) as u64);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitrev;
pub mod complex;
pub mod crt;
pub mod gemm_fast;
pub mod modulus;
pub mod montgomery;
pub mod prime;
pub mod sampling;
pub mod scratch;
pub mod simd;

pub use complex::Complex64;
pub use modulus::{Modulus, ShoupMul};
