//! A minimal complex-number type for the CKKS canonical-embedding encoder.
//!
//! The encoder only needs add/sub/mul/conjugate and unit-circle
//! exponentials, so we keep a tiny dependency-free implementation instead of
//! pulling in an external numerics crate.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use tensorfhe_math::Complex64;
/// let i = Complex64::new(0.0, 1.0);
/// assert!((i * i + Complex64::new(1.0, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from its rectangular components.
    #[inline]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline]
    #[must_use]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity.
    #[inline]
    #[must_use]
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// `e^{iθ}` on the unit circle.
    #[inline]
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Euclidean norm `|z|`.
    #[inline]
    #[must_use]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    #[inline]
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::zero(), z);
        assert_eq!(z * Complex64::one(), z);
        assert_eq!((z - z).norm(), 0.0);
        assert!((z / z - Complex64::one()).norm() < 1e-15);
    }

    #[test]
    fn norm_and_conj() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.norm() - 5.0).abs() < 1e-15);
        assert!(((z * z.conj()).re - 25.0).abs() < 1e-12);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let t = std::f64::consts::PI * k as f64 / 8.0;
            assert!((Complex64::cis(t).norm() - 1.0).abs() < 1e-14);
        }
        // cis(π/2) == i.
        let i = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!(i.re.abs() < 1e-15 && (i.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
