//! Cache-blocked, register-tiled Montgomery GEMM over `Z_q`.
//!
//! The four-step NTT and the fast basis conversion both bottom out in
//! dense `u64` matrix products against a *constant* operand (twiddle or
//! conversion matrices). The scalar reference path accumulates each output
//! in 128 bits and pays one Barrett reduction per element; this module is
//! the host fast path for the same products:
//!
//! * The constant operand is pre-converted to Montgomery form once per
//!   plan ([`MontOperand`], `b′ = b·R mod q`), so the inner kernel's only
//!   reduction is a single `REDC` per output element:
//!   `REDC(Σ aᵢ·b′ᵢ) = Σ aᵢ·bᵢ mod q` — the lazy-reduction identity that
//!   makes the result **bit-identical** to the Barrett path (both produce
//!   the canonical residue).
//! * The kernel is blocked for the memory hierarchy: the constant operand
//!   is packed into `k×8` column panels that stay L1-resident while every
//!   row of the data operand streams through, and each `4×8` output tile
//!   is accumulated in registers before its eight `REDC`s. The register
//!   tile itself is pluggable ([`crate::simd::MicroKernel`]): each
//!   [`MontOperand`] captures [`crate::simd::active`]'s choice once at
//!   construction — the lane-parallel [`crate::simd::Simd4`] limb-split
//!   tile by default — and every product against that operand dispatches
//!   through it. All tiles are bit-identical; see [`crate::simd`] for the
//!   limb-splitting derivation.
//!
//! Overflow never occurs: residues are `< 2^32` (asserted), so `k` terms
//! accumulate to `< k·q² < q·2^64`, within `REDC`'s `t < q·R` domain for
//! every supported inner dimension.
//!
//! The kernel is symmetric in which side carries the Montgomery form —
//! exactly one operand must. [`gemm_rm`] keeps the *right* operand
//! constant (`stacked × W`), [`gemm_lm`] the *left* (`W × wide`), covering
//! both GEMM orientations of the batched NTT pipeline.

use crate::montgomery::Montgomery;
use crate::scratch;
use crate::simd::{MicroKernel, MR, NR};

/// A constant GEMM operand held in Montgomery form.
///
/// Built once per plan from canonical residues; [`gemm_rm`] / [`gemm_lm`]
/// then multiply plain data against it with one `REDC` per output.
#[derive(Debug, Clone)]
pub struct MontOperand {
    mont: Montgomery,
    rows: usize,
    cols: usize,
    /// Row-major `rows × cols`, each entry `b·R mod q`.
    data: Vec<u64>,
    /// Register tile selected once at construction (plan build time).
    kernel: &'static dyn MicroKernel,
}

impl MontOperand {
    /// Converts a row-major `rows × cols` matrix of canonical residues
    /// into Montgomery form.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even or `≥ 2^32` (the lazy-reduction overflow
    /// argument needs 32-bit residues), if `data.len() ≠ rows·cols`, or if
    /// any entry is `≥ q`.
    #[must_use]
    pub fn new(q: u64, data: &[u64], rows: usize, cols: usize) -> Self {
        assert!(q < (1 << 32), "Montgomery GEMM requires q < 2^32");
        assert_eq!(data.len(), rows * cols, "operand shape mismatch");
        let mont = Montgomery::new(q);
        let data = data
            .iter()
            .map(|&b| {
                assert!(b < q, "operand entry {b} not reduced mod {q}");
                mont.to_mont(b)
            })
            .collect();
        Self {
            mont,
            rows,
            cols,
            data,
            kernel: crate::simd::active(),
        }
    }

    /// The register tile this operand's products dispatch through.
    #[must_use]
    pub fn kernel(&self) -> &'static dyn MicroKernel {
        self.kernel
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The modulus the operand is reduced by.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.mont.modulus()
    }
}

/// `C (m×n) = A (m×k) × B (k×n) mod q` where the **right** operand is the
/// Montgomery-form constant: the `stacked × W_n2` orientation.
///
/// Outputs are canonical residues, bit-identical to the Barrett reference.
///
/// # Panics
///
/// Panics on shape mismatches (`a.len() ≠ m·k`, `out.len() ≠ m·n`).
pub fn gemm_rm(a: &[u64], m: usize, b: &MontOperand, out: &mut [u64]) {
    gemm_rm_with(a, m, b, b.kernel, out);
}

/// [`gemm_rm`] with an explicit register tile, overriding the one the
/// operand captured — the A/B hook for benches and equivalence tests.
pub fn gemm_rm_with(
    a: &[u64],
    m: usize,
    b: &MontOperand,
    kernel: &dyn MicroKernel,
    out: &mut [u64],
) {
    gemm_tiled(a, m, b.rows, &b.data, b.cols, &b.mont, kernel, out);
}

/// `C (m×n) = A (m×k) × B (k×n) mod q` where the **left** operand is the
/// Montgomery-form constant: the `W_dft × wide` orientation.
///
/// # Panics
///
/// Panics on shape mismatches (`b.len() ≠ k·n`, `out.len() ≠ m·n`).
pub fn gemm_lm(a: &MontOperand, b: &[u64], n: usize, out: &mut [u64]) {
    gemm_lm_with(a, b, n, a.kernel, out);
}

/// [`gemm_lm`] with an explicit register tile (see [`gemm_rm_with`]).
pub fn gemm_lm_with(
    a: &MontOperand,
    b: &[u64],
    n: usize,
    kernel: &dyn MicroKernel,
    out: &mut [u64],
) {
    assert_eq!(b.len(), a.cols * n, "data operand shape mismatch");
    gemm_tiled(&a.data, a.rows, a.cols, b, n, &a.mont, kernel, out);
}

/// Scalar (untiled) reference of the same lazy-reduction product, for the
/// equivalence proofs: identical math, no blocking.
#[must_use]
pub fn gemm_rm_ref(a: &[u64], m: usize, b: &MontOperand) -> Vec<u64> {
    assert_eq!(a.len(), m * b.rows, "data operand shape mismatch");
    let (k, n) = (b.rows, b.cols);
    let mut out = vec![0u64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0u128;
            for kk in 0..k {
                acc += a[i * k + kk] as u128 * b.data[kk * n + j] as u128;
            }
            out[i * n + j] = b.mont.redc(acc);
        }
    }
    out
}

/// The shared tiled kernel. Exactly one of `a`/`b` is in Montgomery form;
/// `REDC` folds the `R` factor away either way. Full `MR×NR` tiles go
/// through `kernel`; edge rows and narrow panels share the scalar path
/// below (bit-identical, off the hot path).
// The GEMM shape (two operands + dims + modulus + tile) is irreducibly
// eight values; bundling them into a struct for one private fn obscures
// the call sites.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled(
    a: &[u64],
    m: usize,
    k: usize,
    b: &[u64],
    n: usize,
    mont: &Montgomery,
    kernel: &dyn MicroKernel,
    out: &mut [u64],
) {
    assert_eq!(a.len(), m * k, "left operand shape mismatch");
    assert_eq!(b.len(), k * n, "right operand shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    // k terms of a·b′ < q² each: k·q² < q·2^64 ⇔ k·q < 2^64.
    assert!(
        (k as u128) * (mont.modulus() as u128) < (1u128 << 64),
        "inner dimension too large for lazy reduction"
    );
    if m == 0 || n == 0 {
        return;
    }
    let mut pack = scratch::take_u64(k * NR);
    for j0 in (0..n).step_by(NR) {
        let nr = NR.min(n - j0);
        // Pack the k×nr column panel contiguously; it stays L1-resident
        // while every data row streams through it.
        for kk in 0..k {
            pack[kk * nr..kk * nr + nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
        }
        let mut i0 = 0;
        // Full MR×NR register tiles: fixed-size accumulator arrays the
        // compiler keeps in registers and unrolls.
        if nr == NR {
            let mut tile = [0u64; MR * NR];
            while i0 + MR <= m {
                // The MR data rows are contiguous in `a` (stride k), which
                // is exactly the tile contract.
                kernel.tile(
                    &a[i0 * k..(i0 + MR) * k],
                    k,
                    &pack[..k * NR],
                    mont,
                    &mut tile,
                );
                for ii in 0..MR {
                    out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + NR]
                        .copy_from_slice(&tile[ii * NR..(ii + 1) * NR]);
                }
                i0 += MR;
            }
        }
        // Edge rows (and edge panels): same math, dynamic tile bounds.
        for i in i0..m {
            let mut acc = [0u128; NR];
            let arow = &a[i * k..(i + 1) * k];
            for (kk, &av) in arow.iter().enumerate() {
                let av = av as u128;
                let prow = &pack[kk * nr..kk * nr + nr];
                for (lane, &p) in acc[..nr].iter_mut().zip(prow.iter()) {
                    *lane += av * p as u128;
                }
            }
            let orow = &mut out[i * n + j0..i * n + j0 + nr];
            for (o, &lane) in orow.iter_mut().zip(acc[..nr].iter()) {
                *o = mont.redc(lane);
            }
        }
    }
    scratch::give_u64(pack);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::Modulus;
    use crate::prime::generate_ntt_primes;

    /// Naive Barrett schoolbook — the value-level ground truth.
    fn barrett_gemm(a: &[u64], m: usize, k: usize, b: &[u64], n: usize, q: u64) -> Vec<u64> {
        let md = Modulus::new(q);
        let mut out = vec![0u64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0u128;
                for kk in 0..k {
                    acc += a[i * k + kk] as u128 * b[kk * n + j] as u128;
                }
                out[i * n + j] = md.reduce_u128(acc);
            }
        }
        out
    }

    fn fill(m: usize, k: usize, q: u64, seed: u64) -> Vec<u64> {
        // Deterministic splitmix64 stream reduced mod q.
        let mut state = seed;
        (0..m * k)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) % q
            })
            .collect()
    }

    #[test]
    fn matches_barrett_across_shapes() {
        let q = generate_ntt_primes(1, 28, 1 << 8)[0];
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 3, 9),
            (13, 16, 17),
            (64, 16, 16),
            (3, 60, 40),
            (7, 1, 12),
        ] {
            let a = fill(m, k, q, 11);
            let b = fill(k, n, q, 23);
            let want = barrett_gemm(&a, m, k, &b, n, q);

            let bm = MontOperand::new(q, &b, k, n);
            let mut got = vec![0u64; m * n];
            gemm_rm(&a, m, &bm, &mut got);
            assert_eq!(got, want, "gemm_rm m={m} k={k} n={n}");
            assert_eq!(gemm_rm_ref(&a, m, &bm), want, "ref m={m} k={k} n={n}");

            let am = MontOperand::new(q, &a, m, k);
            let mut got_l = vec![0u64; m * n];
            gemm_lm(&am, &b, n, &mut got_l);
            assert_eq!(got_l, want, "gemm_lm m={m} k={k} n={n}");

            // Both register tiles must reproduce the same bits through
            // the full blocked kernel, not just in isolation.
            for kernel in [crate::simd::scalar_tile(), crate::simd::simd4()] {
                let mut got_k = vec![0u64; m * n];
                gemm_rm_with(&a, m, &bm, kernel, &mut got_k);
                assert_eq!(got_k, want, "{} m={m} k={k} n={n}", kernel.label());
                let mut got_kl = vec![0u64; m * n];
                gemm_lm_with(&am, &b, n, kernel, &mut got_kl);
                assert_eq!(got_kl, want, "lm {} m={m} k={k} n={n}", kernel.label());
            }
        }
    }

    #[test]
    fn saturated_entries_do_not_overflow() {
        // Worst case: every entry q−1, deep inner dimension.
        let q = (1u64 << 32) - 5; // odd, < 2^32
        let (m, k, n) = (5usize, 256usize, 9usize);
        let a = vec![q - 1; m * k];
        let b = vec![q - 1; k * n];
        let want = barrett_gemm(&a, m, k, &b, n, q);
        let bm = MontOperand::new(q, &b, k, n);
        let mut got = vec![0u64; m * n];
        gemm_rm(&a, m, &bm, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_dims_are_noops() {
        let q = generate_ntt_primes(1, 28, 1 << 6)[0];
        let bm = MontOperand::new(q, &[], 0, 4);
        let mut out: Vec<u64> = Vec::new();
        gemm_rm(&[], 0, &bm, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "q < 2^32")]
    fn wide_modulus_rejected() {
        let _ = MontOperand::new((1 << 61) - 1, &[0, 0], 1, 2);
    }

    #[test]
    #[should_panic(expected = "not reduced")]
    fn unreduced_entries_rejected() {
        let q = generate_ntt_primes(1, 28, 1 << 6)[0];
        let _ = MontOperand::new(q, &[q], 1, 1);
    }
}
