//! Reorder-invariant fuzzing and tamper checks: out-of-order drains must
//! replay clean through the structural verifier at every matrix corner,
//! and a doctored trace must trip the *specific* reorder invariant it
//! breaks — program order per key, the aging bound, the greedy-then-oldest
//! priority rule, and the freeze/admit tick bookkeeping.

use proptest::prelude::*;
use tensorfhe_analyze::{verify_schedule, verify_service, Violation};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::sched::{AdmissionMode, BatchRecord, SchedPolicy};
use tensorfhe_core::service::{FheRequest, FheService, ServiceStats};
use tensorfhe_core::SessionConfig;

fn service(admission: AdmissionMode, workers: usize, depth: usize) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .devices(4)
        .sched(
            SchedPolicy::new()
                .workers(workers)
                .pipeline_depth(depth)
                .admission(admission),
        )
        .service()
        .expect("valid service config")
}

/// The workers × depth corners the CI matrix pins for the OOO dimension.
const MATRIX: [(usize, usize); 4] = [(1, 2), (1, 4), (4, 4), (4, 8)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any non-deadline stream shape — weighted sessions, anonymous
    /// traffic, interleaved pumps, ragged widths — must replay clean
    /// through the reorder-aware verifier when the scoreboard is allowed
    /// to admit past a blocked head. (Deadline sessions are excluded:
    /// they force the documented in-order fallback, which the base
    /// matrix fuzz already covers.)
    #[test]
    fn ooo_streams_verify_clean_across_the_matrix(
        seed in 0u64..10_000,
        queue_cap in 4usize..32,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for &(workers, depth) in &MATRIX {
            let mut svc = service(AdmissionMode::OutOfOrder, workers, depth);
            let max_level = svc.params().max_level();
            let cap = svc.batch_cap();
            let heavy = svc
                .register_session(
                    SessionConfig::new("heavy").weight(2.0).queue_cap(queue_cap),
                )
                .expect("valid");
            let light = svc
                .register_session(SessionConfig::new("light"))
                .expect("valid");
            let mut rng = StdRng::seed_from_u64(seed);
            let ops = [FheOp::HMult, FheOp::HAdd, FheOp::HRotate, FheOp::Rescale];
            for i in 0..rng.gen_range(6..20) {
                let op = ops[rng.gen_range(0..ops.len())];
                let level = rng.gen_range(1..=max_level);
                let count = rng.gen_range(1..=cap * 2);
                let req = match i % 3 {
                    0 => FheRequest::in_session(op, level, count, heavy),
                    1 => FheRequest::in_session(op, level, count, light),
                    _ => FheRequest::new(op, level, count, format!("anon{}", i % 5)),
                };
                svc.submit(req).expect("admission never errors");
                if i % 3 == 2 {
                    svc.pump();
                }
            }
            loop {
                if svc.drain().is_empty() {
                    break;
                }
            }
            let report = verify_service(&svc);
            prop_assert!(
                report.is_clean(),
                "workers={workers} depth={depth} seed={seed}:\n{report}"
            );
        }
    }
}

/// One clean quiescent OOO drain of the adversarial head-blocked stream:
/// dependent `HMult → Rescale` client pairs at distinct levels, so the
/// scoreboard genuinely reorders (later clients' HMults overtake each
/// blocked Rescale link).
fn reordered_fixture() -> (Vec<BatchRecord>, ServiceStats) {
    let mut svc = service(AdmissionMode::OutOfOrder, 1, 4);
    let max_level = svc.params().max_level();
    for k in 1..=max_level {
        svc.submit(FheRequest::new(FheOp::HMult, k, 1, format!("c{k}")))
            .expect("valid");
        svc.submit(FheRequest::new(FheOp::Rescale, k, 1, format!("c{k}")))
            .expect("valid");
    }
    let _ = svc.drain();
    let trace = svc.schedule_trace().to_vec();
    let stats = svc.stats();
    assert!(
        stats.reorder_distance > 0,
        "the fixture must actually reorder"
    );
    assert!(
        verify_schedule(&trace, &stats, 0, 4).is_clean(),
        "the untampered fixture must verify clean"
    );
    (trace, stats)
}

#[test]
fn swapped_serials_on_one_key_trip_program_order() {
    let (mut trace, stats) = reordered_fixture();
    // A client's Rescale always plans after its HMult; swapping the two
    // serial indices claims the dependent link was planned first.
    let (a, b) = {
        let hmult = trace
            .iter()
            .position(|r| r.op == FheOp::HMult && r.level == 1)
            .expect("fixture has the pair");
        let rescale = trace
            .iter()
            .position(|r| r.op == FheOp::Rescale && r.level == 1)
            .expect("fixture has the pair");
        (hmult, rescale)
    };
    let (sa, sb) = (trace[a].serial_seq, trace[b].serial_seq);
    trace[a].serial_seq = sb;
    trace[b].serial_seq = sa;
    let report = verify_schedule(&trace, &stats, 0, 4);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ProgramOrderViolated { .. })),
        "swapped serials on a shared key must trip program order:\n{report}"
    );
}

#[test]
fn inflated_bypass_count_trips_the_aging_bound() {
    let (mut trace, stats) = reordered_fixture();
    let victim = trace
        .iter()
        .position(|r| r.seq != r.serial_seq)
        .expect("fixture reorders");
    trace[victim].bypassed = stats.aging_bound + 1;
    let report = verify_schedule(&trace, &stats, 0, 4);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AgingExceeded { .. })),
        "a bypass count past the bound must trip aging:\n{report}"
    );
}

#[test]
fn faked_freeze_tick_trips_reorder_bookkeeping() {
    let (mut trace, stats) = reordered_fixture();
    // Claim a batch was frozen only after it was admitted.
    trace[1].planned_at = trace[1].admitted_at + 1;
    let report = verify_schedule(&trace, &stats, 0, 4);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReorderInconsistent { .. })),
        "an admit-before-freeze tick must trip bookkeeping:\n{report}"
    );
}

#[test]
fn swapped_admissions_trip_the_priority_rule() {
    let (mut trace, stats) = reordered_fixture();
    // Swap two independent-key admissions wholesale (records, admission
    // indices, and ticks): the replayed scoreboard now sees a younger
    // eligible plan admitted while a strictly older one — the pick the
    // greedy-then-oldest rule dictates — was left pending.
    let i = trace
        .iter()
        .zip(trace.iter().skip(1))
        .position(|(a, b)| {
            a.serial_seq < b.serial_seq
                && a.op == FheOp::HMult
                && b.op == FheOp::HMult
                && a.keys.iter().all(|k| !b.keys.contains(k))
        })
        .expect("fixture admits independent HMults back to back");
    let (sa, sb) = (trace[i].seq, trace[i + 1].seq);
    let (aa, ab) = (trace[i].admitted_at, trace[i + 1].admitted_at);
    let (ja, jb) = (trace[i].joined_at, trace[i + 1].joined_at);
    trace.swap(i, i + 1);
    trace[i].seq = sa;
    trace[i + 1].seq = sb;
    trace[i].admitted_at = aa;
    trace[i + 1].admitted_at = ab;
    trace[i].joined_at = ja;
    trace[i + 1].joined_at = jb;
    let report = verify_schedule(&trace, &stats, 0, 4);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::PriorityViolated { .. })),
        "an admission against the priority rule must be flagged:\n{report}"
    );
}
