//! Schedule-invariant fuzzing: random multi-session request streams are
//! driven through the service at every workers × pipeline-depth corner,
//! and the structural verifier must find zero violations — device
//! intervals non-overlapping, gang starts legal, joins in order, uploads
//! charged exactly once per sessioned gang, windows independent, and the
//! accounting closed.

use proptest::prelude::*;
use tensorfhe_analyze::verify_service;
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::service::{FheRequest, FheService};
use tensorfhe_core::SessionConfig;

fn service(workers: usize, depth: usize) -> FheService {
    TensorFhe::builder(&CkksParams::test_small())
        .workers(workers)
        .pipeline_depth(depth)
        .service()
        .expect("valid service config")
}

/// The workers × depth corners the CI matrix pins.
const MATRIX: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any stream shape — mixed sessions, anonymous traffic, tight
    /// deadlines, admission caps, interleaved pumps — must replay clean
    /// through the verifier at every matrix corner.
    #[test]
    fn random_streams_verify_clean_across_the_matrix(
        seed in 0u64..10_000,
        deadline_scale in 1u32..6,
        queue_cap in 4usize..32,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for &(workers, depth) in &MATRIX {
            let mut svc = service(workers, depth);
            let max_level = svc.params().max_level();
            let cap = svc.batch_cap();
            // One deadline-bound session (tight enough to shed under
            // load), one weighted heavy hitter, one default client.
            let rt = svc
                .register_session(
                    SessionConfig::new("rt")
                        .deadline_us(f64::from(deadline_scale) * 5_000.0)
                        .queue_cap(queue_cap),
                )
                .expect("valid");
            let heavy = svc
                .register_session(SessionConfig::new("heavy").weight(2.0))
                .expect("valid");
            let light = svc
                .register_session(SessionConfig::new("light"))
                .expect("valid");
            let mut rng = StdRng::seed_from_u64(seed);
            let ops = [FheOp::HMult, FheOp::HAdd, FheOp::HRotate, FheOp::Rescale];
            for i in 0..rng.gen_range(6..20) {
                let op = ops[rng.gen_range(0..ops.len())];
                let level = rng.gen_range(1..=max_level);
                let count = rng.gen_range(1..=cap * 2);
                let req = match i % 4 {
                    0 => FheRequest::in_session(op, level, count, rt),
                    1 => FheRequest::in_session(op, level, count, heavy),
                    2 => FheRequest::in_session(op, level, count, light),
                    _ => FheRequest::new(op, level, count, "anon"),
                };
                svc.submit(req).expect("admission never errors");
                if i % 3 == 2 {
                    // Interleave partial drains so batches join while
                    // later requests are still arriving.
                    svc.pump();
                }
            }
            loop {
                // Shedding can leave later work runnable; drain to a
                // fixpoint before auditing the trace.
                if svc.drain().is_empty() {
                    break;
                }
            }
            let report = verify_service(&svc);
            prop_assert!(
                report.is_clean(),
                "workers={workers} depth={depth} seed={seed}:\n{report}"
            );
        }
    }
}
