//! L001 bad: reads the host wall clock outside `crates/bench`.

pub fn elapsed_us() -> f64 {
    let t0 = std::time::Instant::now();
    busy_work();
    t0.elapsed().as_secs_f64() * 1e6
}
