//! L004 good: the `unsafe` block documents its proof obligation.

pub fn first_lane(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *xs.as_ptr() }
}
