//! L002 bad: ambient OS entropy in result-affecting code.

use rand::Rng;

pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(-0.5..0.5)
}
