//! L003 bad: unannotated `HashMap` in result-affecting code, then
//! iterated — completion order leaks the per-process hash seed.

use std::collections::HashMap;

pub fn drain_order(costs: &[(usize, f64)]) -> Vec<usize> {
    let mut pending: HashMap<usize, f64> = costs.iter().copied().collect();
    let mut order = Vec::new();
    for &id in pending.keys() {
        order.push(id);
    }
    pending.clear();
    order
}
