//! L003 good: ordered container where iteration order matters, and an
//! annotated hash map where only keyed lookup is used.

use std::collections::{BTreeMap, HashMap};

pub fn drain_order(costs: &[(usize, f64)]) -> Vec<usize> {
    let pending: BTreeMap<usize, f64> = costs.iter().copied().collect();
    pending.keys().copied().collect()
}

pub fn lookup(costs: &[(usize, f64)], id: usize) -> Option<f64> {
    // lint: ordered-ok (keyed get only; never iterated)
    let cache: HashMap<usize, f64> = costs.iter().copied().collect();
    cache.get(&id).copied()
}
