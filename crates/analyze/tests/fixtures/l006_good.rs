//! L006 good: configuration arrives explicitly through the builder.

pub struct Builder {
    workers: usize,
}

impl Builder {
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }
}
