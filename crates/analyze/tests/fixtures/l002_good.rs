//! L002 good: randomness comes from a caller-seeded generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn noise(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(-0.5..0.5)
}
