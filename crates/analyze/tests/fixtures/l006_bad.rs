//! L006 bad: ambient environment probe outside the sanctioned paths.

pub fn workers() -> usize {
    std::env::var("TENSORFHE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
