//! L004 bad: an `unsafe` block whose proof obligation is nowhere
//! stated.

pub fn first_lane(xs: &[u64]) -> u64 {
    let p = xs.as_ptr();
    unsafe { *p }
}
