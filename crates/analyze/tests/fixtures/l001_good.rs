//! L001 good: time flows in as simulated microseconds, never from the
//! host clock.

pub fn elapsed_us(start_us: f64, now_us: f64) -> f64 {
    now_us - start_us
}
