//! L005 bad: a bare `#[allow]` with no justification comment.

#[allow(clippy::too_many_arguments)]
pub fn step(a: u32, b: u32, c: u32, d: u32, e: u32, f: u32, g: u32, h: u32) -> u32 {
    a + b + c + d + e + f + g + h
}
