//! Lint self-test: one bad and one good fixture per lint id.
//!
//! The fixtures live under `tests/fixtures/`, a directory name both
//! `FileScope::classify` and the workspace walker skip — so the bad
//! snippets exercise the lints here without ever failing the real
//! `tfhe-lint --deny-all` run.

use tensorfhe_analyze::lint::{lint_source, FileScope, LintId};

/// Scope the fixtures pretend to live in: result-affecting crate source,
/// neither bench nor test code — the strictest classification, where
/// every lint is armed.
fn strict() -> FileScope {
    FileScope {
        bench_crate: false,
        test_code: false,
        result_affecting: true,
    }
}

fn check(lint: LintId, bad: &str, good: &str) {
    let rel = format!("crates/fake/src/{}.rs", lint.code());
    let bad_hits: Vec<_> = lint_source(&rel, bad, strict())
        .into_iter()
        .filter(|d| d.lint == lint)
        .collect();
    assert!(
        !bad_hits.is_empty(),
        "{} bad fixture should fire {}, got nothing",
        lint.code(),
        lint.code()
    );
    let good_hits = lint_source(&rel, good, strict());
    assert!(
        good_hits.is_empty(),
        "{} good fixture should be clean, got: {:?}",
        lint.code(),
        good_hits
    );
}

#[test]
fn l001_ambient_time_fixtures() {
    check(
        LintId::AmbientTime,
        include_str!("fixtures/l001_bad.rs"),
        include_str!("fixtures/l001_good.rs"),
    );
}

#[test]
fn l002_ambient_randomness_fixtures() {
    check(
        LintId::AmbientRandomness,
        include_str!("fixtures/l002_bad.rs"),
        include_str!("fixtures/l002_good.rs"),
    );
}

#[test]
fn l003_ordered_iteration_fixtures() {
    check(
        LintId::OrderedIteration,
        include_str!("fixtures/l003_bad.rs"),
        include_str!("fixtures/l003_good.rs"),
    );
}

#[test]
fn l004_undocumented_unsafe_fixtures() {
    check(
        LintId::UndocumentedUnsafe,
        include_str!("fixtures/l004_bad.rs"),
        include_str!("fixtures/l004_good.rs"),
    );
}

#[test]
fn l005_unjustified_allow_fixtures() {
    check(
        LintId::UnjustifiedAllow,
        include_str!("fixtures/l005_bad.rs"),
        include_str!("fixtures/l005_good.rs"),
    );
}

#[test]
fn l006_ambient_env_fixtures() {
    check(
        LintId::AmbientEnv,
        include_str!("fixtures/l006_bad.rs"),
        include_str!("fixtures/l006_good.rs"),
    );
}

#[test]
fn bad_fixtures_fire_only_their_own_lint() {
    // Each bad fixture is a *focused* reproducer: it must not trip
    // unrelated lints, or a fixture edit could silently change which
    // lint the suite actually covers.
    let cases: [(LintId, &str); 6] = [
        (LintId::AmbientTime, include_str!("fixtures/l001_bad.rs")),
        (
            LintId::AmbientRandomness,
            include_str!("fixtures/l002_bad.rs"),
        ),
        (
            LintId::OrderedIteration,
            include_str!("fixtures/l003_bad.rs"),
        ),
        (
            LintId::UndocumentedUnsafe,
            include_str!("fixtures/l004_bad.rs"),
        ),
        (
            LintId::UnjustifiedAllow,
            include_str!("fixtures/l005_bad.rs"),
        ),
        (LintId::AmbientEnv, include_str!("fixtures/l006_bad.rs")),
    ];
    for (lint, text) in cases {
        let rel = format!("crates/fake/src/{}.rs", lint.code());
        let stray: Vec<_> = lint_source(&rel, text, strict())
            .into_iter()
            .filter(|d| d.lint != lint)
            .collect();
        assert!(
            stray.is_empty(),
            "{} bad fixture tripped unrelated lints: {:?}",
            lint.code(),
            stray
        );
    }
}

#[test]
fn fixtures_are_out_of_workspace_scope() {
    // The walker and classifier must both skip `fixtures/` paths, or the
    // bad snippets above would fail the workspace `--deny-all` run.
    assert!(FileScope::classify("crates/analyze/tests/fixtures/l001_bad.rs").is_none());
}
