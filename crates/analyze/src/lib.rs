//! Determinism tooling for the TensorFHE workspace: a source lint engine
//! and a schedule-invariant verifier.
//!
//! Every headline number this repository pins — the fig08–fig12 ratios in
//! `BENCH_baseline.json`, the depth-4 overlap, the key-affinity win — is
//! only credible because the overlap clock, kernel traces, and service
//! stats are *deterministic and internally consistent*. This crate turns
//! those implicit contracts into enforced ones:
//!
//! * [`lint`] — the `tfhe-lint` source pass: token/line-level custom
//!   lints clippy cannot know about (ambient time, ambient randomness,
//!   order-dependent hash iteration in result paths, undocumented
//!   `unsafe`, unjustified `#[allow]`, unsanctioned `std::env::var`),
//!   with stable `file:line [L00x]` diagnostics, a committed allowlist
//!   (`tfhe-lint.allow`), suppression annotations
//!   (`// lint: ordered-ok (reason)`), and a `--deny-all` exit code for
//!   CI.
//! * [`verify`] — the schedule-invariant verifier: a structural checker
//!   over the scheduler's [`tensorfhe_core::sched::BatchRecord`] trace,
//!   the service's accounting, and [`tensorfhe_gpu::DeviceSim`] launch
//!   intervals. It replays the overlap clock independently and reports a
//!   [`verify::ScheduleReport`] with a typed violation list: per-device
//!   intervals non-overlapping and monotone, gang starts legal, joins in
//!   submission order, key uploads charged only where the residency model
//!   placed them (and never on anonymous plans), in-flight window
//!   independence, and closed op/time accounting.
//!
//! Both engines are pure observers: linting reads source text, and
//! verification replays recorded traces without touching a clock, so a
//! verified run is bit-identical to an unverified one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lint;
pub mod verify;

pub use lint::{lint_source, lint_workspace, Diagnostic, FileScope, LintId};
pub use verify::{
    verify_launch_intervals, verify_schedule, verify_service, ScheduleReport, Violation,
};
