//! The `tfhe-lint` source pass: token/line-level custom lints enforcing
//! workspace determinism invariants clippy cannot know about.
//!
//! # Lints
//!
//! | id   | name                  | invariant                                                        |
//! |------|-----------------------|------------------------------------------------------------------|
//! | L001 | `ambient-time`        | no `std::time::Instant`/`SystemTime` outside `crates/bench`      |
//! | L002 | `ambient-randomness`  | no entropy sources (`thread_rng`, `OsRng`, …) outside tests/shims|
//! | L003 | `ordered-iteration`   | no `HashMap`/`HashSet` in result-affecting code unless annotated |
//! | L004 | `undocumented-unsafe` | `unsafe` requires a `// SAFETY:` comment                         |
//! | L005 | `unjustified-allow`   | `#[allow(...)]` requires an adjacent `//` justification          |
//! | L006 | `ambient-env`         | `std::env::var` only in allowlisted builder/env-probe paths      |
//!
//! # Annotation grammar
//!
//! A violation line (or the line directly above it) can carry a
//! suppression annotation naming the lint's slug and a non-empty reason:
//!
//! ```text
//! // lint: ordered-ok (keyed get/insert only; never iterated)
//! cost_cache: HashMap<CostKey, CostProfile>,
//! ```
//!
//! The slugs are `time-ok`, `random-ok`, `ordered-ok`, and `env-ok`
//! (L004/L005 use their own grammar: a `// SAFETY:` comment and an
//! adjacent `//` justification respectively). An empty reason — `()` —
//! does not suppress: the reason *is* the point.
//!
//! # Allowlist
//!
//! `tfhe-lint.allow` at the workspace root sanctions whole files or
//! directories per lint: `L006 crates/core/src/service.rs # builder env
//! knobs`. `*` matches every lint. Diagnostics are reported in stable
//! `(file, line, id)` order as `file:line [L00x] message`.

use std::fmt;
use std::path::Path;

/// The custom lints, one stable id each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// L001: ambient wall-clock reads in result paths.
    AmbientTime,
    /// L002: ambient entropy sources outside tests and vendored shims.
    AmbientRandomness,
    /// L003: order-dependent hash containers in result-affecting code.
    OrderedIteration,
    /// L004: `unsafe` without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// L005: `#[allow(...)]` without an adjacent justification comment.
    UnjustifiedAllow,
    /// L006: `std::env::var` outside the sanctioned builder/probe paths.
    AmbientEnv,
}

impl LintId {
    /// Every lint, in id order.
    pub const ALL: [LintId; 6] = [
        LintId::AmbientTime,
        LintId::AmbientRandomness,
        LintId::OrderedIteration,
        LintId::UndocumentedUnsafe,
        LintId::UnjustifiedAllow,
        LintId::AmbientEnv,
    ];

    /// The stable diagnostic code (`L001`…`L006`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintId::AmbientTime => "L001",
            LintId::AmbientRandomness => "L002",
            LintId::OrderedIteration => "L003",
            LintId::UndocumentedUnsafe => "L004",
            LintId::UnjustifiedAllow => "L005",
            LintId::AmbientEnv => "L006",
        }
    }

    /// The human-readable lint name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintId::AmbientTime => "ambient-time",
            LintId::AmbientRandomness => "ambient-randomness",
            LintId::OrderedIteration => "ordered-iteration",
            LintId::UndocumentedUnsafe => "undocumented-unsafe",
            LintId::UnjustifiedAllow => "unjustified-allow",
            LintId::AmbientEnv => "ambient-env",
        }
    }

    /// The suppression-annotation slug (`// lint: <slug>-ok (reason)`),
    /// when the lint supports one.
    #[must_use]
    pub fn suppression_slug(self) -> Option<&'static str> {
        match self {
            LintId::AmbientTime => Some("time-ok"),
            LintId::AmbientRandomness => Some("random-ok"),
            LintId::OrderedIteration => Some("ordered-ok"),
            LintId::AmbientEnv => Some("env-ok"),
            LintId::UndocumentedUnsafe | LintId::UnjustifiedAllow => None,
        }
    }
}

/// One lint violation, pinned to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The lint that fired.
    pub lint: LintId,
    /// What the line does wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file,
            self.line,
            self.lint.code(),
            self.message
        )
    }
}

/// How a file's path scopes the lints that apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Inside `crates/bench/` — the one crate allowed to read wall-clock
    /// time (host benchmarking is its whole point).
    pub bench_crate: bool,
    /// Test-shaped code: `tests/`, `benches/`, or `examples/` directories.
    /// (`#[cfg(test)]` modules inside `src` files are detected per line.)
    pub test_code: bool,
    /// Result-affecting crate source: code whose iteration order or float
    /// fold order can reach a pinned number.
    pub result_affecting: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path, or `None` when the file is
    /// out of lint scope entirely (vendored shims, build output, lint
    /// fixtures, non-Rust files).
    #[must_use]
    pub fn classify(rel: &str) -> Option<FileScope> {
        if !rel.ends_with(".rs") {
            return None;
        }
        let skip_components = ["vendor", "target", ".git", "fixtures", "BENCH_history"];
        if rel.split('/').any(|c| skip_components.contains(&c)) {
            return None;
        }
        let result_src = [
            "crates/math/src/",
            "crates/ntt/src/",
            "crates/gpu/src/",
            "crates/ckks/src/",
            "crates/boot/src/",
            "crates/core/src/",
            "crates/workloads/src/",
            "crates/analyze/src/",
            "src/",
        ];
        Some(FileScope {
            bench_crate: rel.starts_with("crates/bench/"),
            test_code: rel
                .split('/')
                .any(|c| matches!(c, "tests" | "benches" | "examples")),
            result_affecting: result_src.iter().any(|p| rel.starts_with(p)),
        })
    }
}

/// The committed allowlist (`tfhe-lint.allow`): `<code|*> <path> [# why]`
/// per line, where a trailing `/` on the path sanctions a directory.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format, ignoring blank lines and `#` comments.
    #[must_use]
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(code), Some(path)) = (parts.next(), parts.next()) {
                entries.push((code.to_string(), path.to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Whether a diagnostic at `rel` for `lint` is sanctioned.
    #[must_use]
    pub fn permits(&self, lint: LintId, rel: &str) -> bool {
        self.entries.iter().any(|(code, path)| {
            (code == "*" || code == lint.code())
                && (rel == path || (path.ends_with('/') && rel.starts_with(path.as_str())))
        })
    }
}

/// Strips string/char literals and `//` comments from one source line so
/// token scans never fire inside text. Single-line literals only: a token
/// inside a multi-line raw string would still be scanned, which errs on
/// the strict side for a lint.
fn strip_literals(line: &str) -> String {
    let bytes: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        // Comment: drop the rest of the line.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            break;
        }
        // Raw string r"…" / r#"…"# (single-line).
        if c == 'r' && matches!(bytes.get(i + 1), Some('"') | Some('#')) {
            let mut j = i + 1;
            let mut hashes = 0;
            while bytes.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&'"') {
                j += 1;
                'raw: while j < bytes.len() {
                    if bytes[j] == '"' {
                        let mut k = 0;
                        while k < hashes && bytes.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                out.push(' ');
                i = j;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let mut j = i + 1;
            while j < bytes.len() {
                if bytes[j] == '\\' {
                    j += 2;
                    continue;
                }
                if bytes[j] == '"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            out.push(' ');
            i = j;
            continue;
        }
        // Char literal (distinguished from lifetimes by a closing quote).
        if c == '\'' {
            let close = if bytes.get(i + 1) == Some(&'\\') {
                bytes.get(i + 3) == Some(&'\'') || bytes.get(i + 4) == Some(&'\'')
            } else {
                bytes.get(i + 2) == Some(&'\'')
            };
            if close {
                let skip = if bytes.get(i + 1) == Some(&'\\') {
                    if bytes.get(i + 3) == Some(&'\'') {
                        4
                    } else {
                        5
                    }
                } else {
                    3
                };
                out.push(' ');
                i += skip;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `hay` with identifier boundaries on both
/// sides (so `unsafe` never matches `unsafe_code`).
fn has_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_word(hay[..at].chars().next_back().unwrap_or(' '));
        let after_ok = hay[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_word(c));
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Whether `raw` (the violation line) or `above` carries a suppression
/// annotation for `slug` with a non-empty parenthesised reason.
fn suppressed(slug: &str, raw: &str, above: Option<&str>) -> bool {
    let marker = format!("lint: {slug}");
    let check = |line: &str| {
        let Some(pos) = line.find("//") else {
            return false;
        };
        let comment = &line[pos..];
        let Some(at) = comment.find(marker.as_str()) else {
            return false;
        };
        let rest = &comment[at + marker.len()..];
        // Require "(reason)" with at least one non-space character.
        let Some(open) = rest.find('(') else {
            return false;
        };
        let Some(close) = rest[open..].find(')') else {
            return false;
        };
        !rest[open + 1..open + close].trim().is_empty()
    };
    check(raw) || above.is_some_and(check)
}

/// Identifier immediately before a `:` or `=` at byte offset `at`.
fn ident_before(s: &str, at: usize) -> Option<&str> {
    let head = s[..at].trim_end();
    let end = head.len();
    let start = head
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_word(*c))
        .last()
        .map(|(i, _)| i)?;
    let id = &head[start..end];
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(id)
    }
}

/// Registers identifiers a line binds to a hash container, so later
/// iteration over them can be flagged. Heuristic but effective: `let`
/// bindings initialised from `HashMap::new`/`HashSet::new` (or typed as
/// one), and field/param declarations `name: …HashMap<…`.
fn register_hash_names(clean: &str, names: &mut Vec<String>) {
    let mut push = |id: &str| {
        if !names.iter().any(|n| n == id) {
            names.push(id.to_string());
        }
    };
    let hashy = |s: &str| has_token(s, "HashMap") || has_token(s, "HashSet");
    // `let [mut] name[: T] = <hash-ish>`
    if let Some(let_pos) = clean.find("let ") {
        if let Some(eq) = clean[let_pos..].find('=').map(|p| p + let_pos) {
            if hashy(&clean[eq..]) || hashy(&clean[let_pos..eq]) {
                let head = clean[let_pos + 4..eq].trim_start();
                let head = head.strip_prefix("mut ").unwrap_or(head).trim();
                let name: String = head.chars().take_while(|&c| is_word(c)).collect();
                if !name.is_empty() {
                    push(&name);
                }
            }
        }
    }
    // `name: … HashMap< …` field or parameter declarations.
    let mut from = 0;
    while let Some(colon) = clean[from..].find(':') {
        let at = from + colon;
        let rhs = &clean[at + 1..];
        let rhs_head: String = rhs.chars().take_while(|&c| c != ',' && c != ';').collect();
        if hashy(&rhs_head) {
            if let Some(id) = ident_before(clean, at) {
                push(id);
            }
        }
        from = at + 1;
    }
}

/// Whether a cleaned line iterates one of the registered hash names.
fn iterates_hash_name(clean: &str, names: &[String]) -> Option<String> {
    const ITER_METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    for name in names {
        for m in ITER_METHODS {
            let call = format!("{name}{m}");
            if clean.contains(&call) {
                return Some(format!("{name}{m}"));
            }
        }
        // `for x in &name` / `for x in &mut name` / `for x in name`
        if let Some(pos) = clean.find(" in ") {
            let tail = clean[pos + 4..].trim_start();
            let tail = tail.strip_prefix("&mut ").unwrap_or(tail);
            let tail = tail.strip_prefix('&').unwrap_or(tail);
            let id: String = tail.chars().take_while(|&c| is_word(c)).collect();
            if &id == name {
                return Some(format!("for … in {name}"));
            }
        }
    }
    None
}

const TIME_TOKENS: [&str; 3] = ["std::time::Instant", "Instant::now", "SystemTime"];
const RAND_TOKENS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "rand::random",
    "OsRng",
    "getrandom",
    "RandomState",
];
const ENV_TOKENS: [&str; 2] = ["env::var", "env::var_os"];

/// Lints one file's source text under the given scope. `rel` is the
/// workspace-relative path used in diagnostics. Pure (no I/O), so the
/// fixture self-tests drive it directly.
#[must_use]
pub fn lint_source(rel: &str, text: &str, scope: FileScope) -> Vec<Diagnostic> {
    let raw_lines: Vec<&str> = text.lines().collect();
    let clean_lines: Vec<String> = raw_lines.iter().map(|l| strip_literals(l)).collect();
    let mut hash_names: Vec<String> = Vec::new();
    let mut out = Vec::new();
    let mut in_test_module = false;
    let mut diag = |line: usize, lint: LintId, message: String| {
        out.push(Diagnostic {
            file: rel.to_string(),
            line: line + 1,
            lint,
            message,
        });
    };
    for (i, clean) in clean_lines.iter().enumerate() {
        let raw = raw_lines[i];
        let above = i.checked_sub(1).map(|j| raw_lines[j]);
        if raw.starts_with("#[cfg(test)]") {
            in_test_module = true;
        }
        let testish = scope.test_code || in_test_module;

        // L001 — ambient time.
        if !scope.bench_crate
            && TIME_TOKENS.iter().any(|t| clean.contains(t))
            && !suppressed("time-ok", raw, above)
        {
            diag(
                i,
                LintId::AmbientTime,
                "ambient wall-clock read; result paths must use the simulated clock \
                 (only crates/bench may time the host)"
                    .into(),
            );
        }

        // L002 — ambient randomness.
        if !testish
            && RAND_TOKENS.iter().any(|t| has_token(clean, t))
            && !suppressed("random-ok", raw, above)
        {
            diag(
                i,
                LintId::AmbientRandomness,
                "ambient entropy source; derive randomness from a seeded StdRng so \
                 every run replays bit-identically"
                    .into(),
            );
        }

        // L003 — order-dependent hash containers in result paths.
        if scope.result_affecting && !testish {
            register_hash_names(clean, &mut hash_names);
            let is_use = clean.trim_start().starts_with("use ");
            let declares = !is_use && (clean.contains("HashMap<") || clean.contains("HashSet<"));
            let iterates = iterates_hash_name(clean, &hash_names);
            if (declares || iterates.is_some()) && !suppressed("ordered-ok", raw, above) {
                let what = iterates.map_or_else(
                    || "hash container in a result path".to_string(),
                    |call| format!("order-dependent iteration ({call}) in a result path"),
                );
                diag(
                    i,
                    LintId::OrderedIteration,
                    format!(
                        "{what}; convert to BTreeMap/BTreeSet (or sort before folding), \
                         or annotate `// lint: ordered-ok (reason)` if access is keyed-only"
                    ),
                );
            }
        }

        // L004 — undocumented unsafe.
        if has_token(clean, "unsafe") {
            let lookback = 3.min(i);
            let documented = (i - lookback..=i).any(|j| raw_lines[j].contains("SAFETY:"));
            if !documented {
                diag(
                    i,
                    LintId::UndocumentedUnsafe,
                    "`unsafe` without a `// SAFETY:` comment on or directly above the line".into(),
                );
            }
        }

        // L005 — unjustified allow.
        if clean.contains("#[allow(") || clean.contains("#![allow(") {
            let trailing = raw
                .find("//")
                .is_some_and(|p| raw[p + 2..].trim().len() > 1);
            let above_comment = above.is_some_and(|a| {
                let t = a.trim_start();
                t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!")
            });
            if !trailing && !above_comment {
                diag(
                    i,
                    LintId::UnjustifiedAllow,
                    "`#[allow(...)]` without a justification: add a `//` comment directly \
                     above (or trailing) saying why the lint is wrong here"
                        .into(),
                );
            }
        }

        // L006 — ambient environment reads.
        if !testish
            && ENV_TOKENS.iter().any(|t| clean.contains(t))
            && !suppressed("env-ok", raw, above)
        {
            diag(
                i,
                LintId::AmbientEnv,
                "`std::env::var` outside the sanctioned builder/env-probe paths; \
                 plumb configuration through the builder or allowlist this probe"
                    .into(),
            );
        }
    }
    out
}

/// Recursively collects the workspace's `.rs` files (relative,
/// forward-slash paths), skipping out-of-scope directories.
fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "vendor" | "target" | ".git" | "fixtures" | "BENCH_history" | ".github"
            ) {
                continue;
            }
            collect_sources(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`, applying the committed
/// `tfhe-lint.allow` allowlist. Diagnostics come back in stable
/// `(file, line, id)` order.
///
/// # Errors
///
/// Propagates I/O errors from walking the tree or reading sources.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let allow = match std::fs::read_to_string(root.join("tfhe-lint.allow")) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let Some(scope) = FileScope::classify(&rel) else {
            continue;
        };
        let text = std::fs::read_to_string(root.join(&rel))?;
        out.extend(
            lint_source(&rel, &text, scope)
                .into_iter()
                .filter(|d| !allow.permits(d.lint, &rel)),
        );
    }
    out.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.lint.cmp(&b.lint))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> FileScope {
        FileScope {
            bench_crate: false,
            test_code: false,
            result_affecting: true,
        }
    }

    #[test]
    fn strip_literals_removes_strings_and_comments() {
        assert_eq!(
            strip_literals(r#"let x = "HashMap"; // HashMap"#),
            "let x =  ; "
        );
        assert_eq!(
            strip_literals("let c = '\"'; let y = 1;"),
            "let c =  ; let y = 1;"
        );
    }

    #[test]
    fn token_boundaries_hold() {
        assert!(has_token("unsafe fn f()", "unsafe"));
        assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
    }

    #[test]
    fn ordered_ok_requires_a_reason() {
        let with_reason = "m.keys() // lint: ordered-ok (min fold, order-free)";
        let without = "m.keys() // lint: ordered-ok ()";
        assert!(suppressed("ordered-ok", with_reason, None));
        assert!(!suppressed("ordered-ok", without, None));
    }

    #[test]
    fn cfg_test_scope_disables_result_lints() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    fn f() { let s: HashSet<u8> = Default::default(); }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src, scope()).is_empty());
    }

    #[test]
    fn allowlist_matches_files_and_directories() {
        let a = Allowlist::parse("L006 crates/core/src/service.rs # knobs\n* crates/bench/\n");
        assert!(a.permits(LintId::AmbientEnv, "crates/core/src/service.rs"));
        assert!(!a.permits(LintId::AmbientTime, "crates/core/src/service.rs"));
        assert!(a.permits(LintId::AmbientTime, "crates/bench/src/report.rs"));
    }
}
