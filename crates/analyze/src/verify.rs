//! The schedule-invariant verifier: replays the scheduler's structural
//! trace and the device launch streams, and reports every violation of
//! the invariants the pinned benchmarks rest on.
//!
//! The checker is deliberately *independent*: it recomputes the join
//! frontier, the per-device free times, and the accounting totals from
//! the [`BatchRecord`] stream alone, then compares them against what the
//! scheduler claims. Where the reference implementation accumulates a
//! float in a known order, the verifier folds the same sequence and
//! demands exact equality; only cross-order sums (interval time vs the
//! canonical shard attribution) get a relative epsilon.
//!
//! Invariants checked, per [`verify_schedule`]:
//!
//! 1. **Per-device intervals** are non-overlapping and monotone: every
//!    shard starts at or after its device's previous free time.
//! 2. **Gang start** `≥ max(join frontier, chosen device free times)`,
//!    with the key-upload stall applied on top — and the frontier itself
//!    must equal the max completion of exactly the batches joined before
//!    admission.
//! 3. **Joins settle in submission order** (one global event counter
//!    orders admissions and joins; both must be strictly increasing).
//! 4. **Key uploads** are charged before the first gang compute (every
//!    placement starts at the post-upload gang start) and never on
//!    anonymous plans.
//! 5. **Window independence**: two batches simultaneously in flight never
//!    share a `(client, level)` key.
//! 6. **Accounting closure**: `busy_us` = Σ batch walls (exact fold),
//!    `elapsed_us` = makespan (exact fold), Σ intervals ≈ Σ per-device
//!    attribution, upload count/time match, and
//!    `ops_submitted = completed + shed + rejected + pending`.
//! 7. **Program order**: two batches sharing a `(client, level)` key are
//!    admitted in serial plan order — the scoreboard never reorders one
//!    client stream against itself.
//! 8. **Reorder accounting**: every plan is frozen before it is admitted,
//!    no plan is bypassed more than the aging bound, the frontier never
//!    moves backwards while a plan is pending, and
//!    `reorder_distance` / `head_blocked_us` replay from the trace. Under
//!    in-order admission the records must be degenerate: planned =
//!    admitted, serial order = admission order, zero bypasses.
//! 9. **Priority-rule replay** (quiescent out-of-order traces): the
//!    verifier re-simulates every freeze/admit/join event against the
//!    scheduler's documented greedy-then-oldest rule — lookahead bound,
//!    key eligibility, aging gate, greedy group preference with
//!    reset-on-empty-window, bypass bumping — and rejects any admission
//!    the rule would not have made.
//!
//! [`verify_launch_intervals`] holds a [`DeviceSim`]'s per-stream launch
//! records to the FIFO-stream contract (non-overlapping, monotone).
//!
//! [`DeviceSim`]: tensorfhe_gpu::DeviceSim

use std::collections::BTreeMap;
use std::fmt;
use tensorfhe_core::sched::{AdmissionMode, BatchRecord};
use tensorfhe_core::service::{FheService, ServiceStats};

/// Relative tolerance for sums folded in a different order than the
/// reference accumulation.
const REL_EPS: f64 = 1e-9;

/// One violated schedule invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A shard started before its device's previous shard finished.
    DeviceOverlap {
        /// Batch submission index.
        seq: usize,
        /// Device the shard was placed on.
        device: usize,
        /// The shard's start time (µs).
        start_us: f64,
        /// The device's free time when the shard started (µs).
        free_us: f64,
    },
    /// The recorded stall point disagrees with the replayed
    /// `max(frontier, chosen free times)`.
    StallMismatch {
        /// Batch submission index.
        seq: usize,
        /// Replayed stall point (µs).
        expected_us: f64,
        /// Recorded stall point (µs).
        got_us: f64,
    },
    /// The recorded join frontier disagrees with the max completion over
    /// the batches joined before admission.
    FrontierMismatch {
        /// Batch submission index.
        seq: usize,
        /// Replayed frontier (µs).
        expected_us: f64,
        /// Recorded frontier (µs).
        got_us: f64,
    },
    /// Admissions or joins left submission order.
    OutOfOrder {
        /// Batch submission index.
        seq: usize,
        /// What went out of order.
        detail: String,
    },
    /// A key upload was charged incorrectly: on an anonymous plan, after
    /// gang compute, or with a non-finite/negative stall.
    UploadMisapplied {
        /// Batch submission index.
        seq: usize,
        /// What the charge violated.
        detail: String,
    },
    /// Two simultaneously in-flight batches shared an independence key.
    WindowConflict {
        /// Earlier batch (by submission index).
        first: usize,
        /// Later batch admitted while `first` was still in flight.
        second: usize,
        /// The shared `(client, level)` key.
        key: (String, usize),
    },
    /// A batch's internal times are inconsistent (completion ≠ start +
    /// wall, wall ≠ longest shard, non-finite fields).
    BatchInconsistent {
        /// Batch submission index.
        seq: usize,
        /// The broken relation.
        detail: String,
    },
    /// A cumulative stat disagrees with the trace replay.
    AccountingMismatch {
        /// Which stat failed to close.
        stat: &'static str,
        /// Value replayed from the trace.
        expected: f64,
        /// Value the service reported.
        got: f64,
    },
    /// Submitted ops did not equal completed + shed + rejected + pending.
    OpsNotClosed {
        /// Ops ever submitted.
        submitted: usize,
        /// Ops completed.
        completed: usize,
        /// Ops shed.
        shed: usize,
        /// Ops rejected.
        rejected: usize,
        /// Ops still queued or in flight.
        pending: usize,
    },
    /// Two batches sharing a `(client, level)` key were admitted out of
    /// serial plan order — one client stream was reordered against
    /// itself.
    ProgramOrderViolated {
        /// The batch planned first (by serial index).
        first: usize,
        /// The batch planned later but admitted earlier.
        second: usize,
        /// The shared `(client, level)` key.
        key: (String, usize),
    },
    /// A plan was bypassed more times than the scheduler's aging bound
    /// permits.
    AgingExceeded {
        /// Batch admission index.
        seq: usize,
        /// Recorded bypass count.
        bypassed: usize,
        /// The scheduler's aging bound.
        bound: usize,
    },
    /// An admission disagrees with the greedy-then-oldest priority rule
    /// (or was made while key-blocked / nothing was admissible).
    PriorityViolated {
        /// Batch admission index.
        seq: usize,
        /// What the rule replay says instead.
        detail: String,
    },
    /// The reorder bookkeeping is internally inconsistent (freeze/admit
    /// tick relations, serial permutation, lookahead or window bounds,
    /// bypass counts, pending-frontier snapshots).
    ReorderInconsistent {
        /// Batch admission index.
        seq: usize,
        /// The broken relation.
        detail: String,
    },
    /// Two kernels on one FIFO stream overlapped or ran backwards.
    StreamOverlap {
        /// The stream id.
        stream: usize,
        /// Index of the offending kernel within the stream's records.
        index: usize,
        /// The violated relation.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DeviceOverlap {
                seq,
                device,
                start_us,
                free_us,
            } => write!(
                f,
                "batch {seq}: shard on device {device} starts at {start_us} µs before the \
                 device is free at {free_us} µs"
            ),
            Violation::StallMismatch {
                seq,
                expected_us,
                got_us,
            } => write!(
                f,
                "batch {seq}: stall point {got_us} µs, replay says {expected_us} µs"
            ),
            Violation::FrontierMismatch {
                seq,
                expected_us,
                got_us,
            } => write!(
                f,
                "batch {seq}: join frontier {got_us} µs, replay says {expected_us} µs"
            ),
            Violation::OutOfOrder { seq, detail } => write!(f, "batch {seq}: {detail}"),
            Violation::UploadMisapplied { seq, detail } => write!(f, "batch {seq}: {detail}"),
            Violation::WindowConflict { first, second, key } => write!(
                f,
                "batches {first} and {second} in flight together share key ({}, {})",
                key.0, key.1
            ),
            Violation::BatchInconsistent { seq, detail } => write!(f, "batch {seq}: {detail}"),
            Violation::AccountingMismatch {
                stat,
                expected,
                got,
            } => write!(f, "{stat}: service reports {got}, trace replays {expected}"),
            Violation::OpsNotClosed {
                submitted,
                completed,
                shed,
                rejected,
                pending,
            } => write!(
                f,
                "op conservation broken: submitted {submitted} ≠ completed {completed} + \
                 shed {shed} + rejected {rejected} + pending {pending}"
            ),
            Violation::ProgramOrderViolated { first, second, key } => write!(
                f,
                "batches {first} and {second} share key ({}, {}) but admitted out of serial \
                 plan order",
                key.0, key.1
            ),
            Violation::AgingExceeded {
                seq,
                bypassed,
                bound,
            } => write!(
                f,
                "batch {seq}: bypassed {bypassed} times, aging bound is {bound}"
            ),
            Violation::PriorityViolated { seq, detail } => write!(f, "batch {seq}: {detail}"),
            Violation::ReorderInconsistent { seq, detail } => write!(f, "batch {seq}: {detail}"),
            Violation::StreamOverlap {
                stream,
                index,
                detail,
            } => write!(f, "stream {stream}, kernel {index}: {detail}"),
        }
    }
}

/// The verifier's verdict: what was checked and every invariant that
/// failed. An empty violation list is the contract every integration run
/// must meet.
#[derive(Debug, Clone, Default)]
pub struct ScheduleReport {
    /// Batches replayed from the trace.
    pub batches: usize,
    /// Shard placements (or stream kernels) interval-checked.
    pub intervals: usize,
    /// Every violated invariant, in detection order.
    pub violations: Vec<Violation>,
}

impl ScheduleReport {
    /// Whether the schedule satisfied every invariant.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report into this one (summing coverage counters).
    pub fn merge(&mut self, other: ScheduleReport) {
        self.batches += other.batches;
        self.intervals += other.intervals;
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule report: {} batches, {} intervals, {} violation(s)",
            self.batches,
            self.intervals,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_EPS * a.abs().max(b.abs()).max(1.0)
}

/// Re-simulates the scoreboard against a quiescent trace: freezes,
/// admissions and joins share one tick counter, so sorting the per-record
/// ticks totally orders every scoreboard event (an in-order fallback
/// record freezes and admits on the same tick and replays as an immediate
/// pick from a one-plan scoreboard). Each replayed admission must be
/// exactly the plan the documented greedy-then-oldest rule picks.
fn replay_scoreboard(trace: &[BatchRecord], stats: &ServiceStats, v: &mut Vec<Violation>) {
    use std::collections::{BTreeSet, VecDeque};
    use std::sync::Arc;

    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Ev {
        Freeze,
        Admit,
        Join,
    }

    let mut events: Vec<(u64, Ev, usize)> = Vec::with_capacity(trace.len() * 3);
    for (k, rec) in trace.iter().enumerate() {
        events.push((rec.planned_at, Ev::Freeze, k));
        events.push((rec.admitted_at, Ev::Admit, k));
        events.push((rec.joined_at, Ev::Join, k));
    }
    events.sort_unstable();

    // `pending` holds trace indices in freeze (= serial) order, so
    // position order is age order, exactly like the scheduler's deque.
    let mut pending: Vec<usize> = Vec::new();
    let mut bypassed = vec![0usize; trace.len()];
    let mut window: VecDeque<usize> = VecDeque::new();
    let mut inflight: BTreeSet<(Arc<str>, usize)> = BTreeSet::new();
    let mut last_group: Option<(tensorfhe_core::FheOp, usize)> = None;
    let mut next_serial = 0usize;

    for (_, ev, k) in events {
        let rec = &trace[k];
        match ev {
            Ev::Freeze => {
                if rec.serial_seq != next_serial {
                    v.push(Violation::ReorderInconsistent {
                        seq: rec.seq,
                        detail: format!(
                            "frozen as serial {} but {next_serial} plans froze before it",
                            rec.serial_seq
                        ),
                    });
                }
                next_serial += 1;
                if pending.len() >= stats.lookahead {
                    v.push(Violation::ReorderInconsistent {
                        seq: rec.seq,
                        detail: format!("frozen past the lookahead bound {}", stats.lookahead),
                    });
                }
                pending.push(k);
            }
            Ev::Admit => {
                let Some(pos) = pending.iter().position(|&i| i == k) else {
                    v.push(Violation::ReorderInconsistent {
                        seq: rec.seq,
                        detail: "admitted without a pending freeze".into(),
                    });
                    continue;
                };
                if window.len() >= stats.pipeline_depth {
                    v.push(Violation::ReorderInconsistent {
                        seq: rec.seq,
                        detail: format!(
                            "admitted into a full depth-{} window",
                            stats.pipeline_depth
                        ),
                    });
                }
                // Key eligibility: disjoint from every in-flight batch
                // and from every older pending plan (program order).
                let eligible: Vec<bool> = (0..pending.len())
                    .map(|p| {
                        let r = &trace[pending[p]];
                        r.keys.iter().all(|key| !inflight.contains(key))
                            && pending[..p]
                                .iter()
                                .all(|&o| trace[o].keys.iter().all(|key| !r.keys.contains(key)))
                    })
                    .collect();
                // Aging gate: once any plan starves, only plans at or
                // before its serial position may admit.
                let starve_min = pending
                    .iter()
                    .filter(|&&i| bypassed[i] >= stats.aging_bound)
                    .map(|&i| trace[i].serial_seq)
                    .min();
                let gated: Vec<usize> = (0..pending.len())
                    .filter(|&p| eligible[p])
                    .filter(|&p| starve_min.is_none_or(|m| trace[pending[p]].serial_seq <= m))
                    .collect();
                // Greedy-then-oldest: prefer the last admitted
                // `(op, level)` group, oldest among matches; else oldest.
                let expected = last_group
                    .and_then(|g| {
                        gated.iter().copied().find(|&p| {
                            let r = &trace[pending[p]];
                            (r.op, r.level) == g
                        })
                    })
                    .or_else(|| gated.first().copied());
                match expected {
                    None => v.push(Violation::PriorityViolated {
                        seq: rec.seq,
                        detail: "admitted while no pending plan was admissible".into(),
                    }),
                    Some(e) if e != pos => v.push(Violation::PriorityViolated {
                        seq: rec.seq,
                        detail: format!(
                            "rule picks serial {}, schedule admitted serial {}",
                            trace[pending[e]].serial_seq, rec.serial_seq
                        ),
                    }),
                    Some(_) => {}
                }
                // Only key-eligible older plans age.
                for p in 0..pos {
                    if eligible[p] {
                        bypassed[pending[p]] += 1;
                    }
                }
                if bypassed[k] != rec.bypassed {
                    v.push(Violation::ReorderInconsistent {
                        seq: rec.seq,
                        detail: format!(
                            "records {} bypasses, replay counts {}",
                            rec.bypassed, bypassed[k]
                        ),
                    });
                }
                pending.remove(pos);
                for key in &rec.keys {
                    inflight.insert(key.clone());
                }
                window.push_back(k);
                last_group = Some((rec.op, rec.level));
            }
            Ev::Join => {
                if window.front() != Some(&k) {
                    v.push(Violation::ReorderInconsistent {
                        seq: rec.seq,
                        detail: "joined out of admission order".into(),
                    });
                    window.retain(|&i| i != k);
                } else {
                    window.pop_front();
                }
                for key in &rec.keys {
                    inflight.remove(key);
                }
                // An empty window starts a fresh schedule epoch: the
                // greedy preference does not leak across it.
                if window.is_empty() {
                    last_group = None;
                }
            }
        }
    }
    if !pending.is_empty() || !window.is_empty() {
        v.push(Violation::ReorderInconsistent {
            seq: 0,
            detail: "quiescent trace left plans pending or in flight after replay".into(),
        });
    }
}

/// Verifies the scheduler trace against the service's cumulative stats.
///
/// `pending_ops` is the service's live op count (queued + in flight) at
/// the moment `stats` was taken; `devices` bounds placement indices.
/// Pass the trace of a *quiescent or mid-drain* service — the checks are
/// valid at any point, since every record is final once joined.
#[must_use]
pub fn verify_schedule(
    trace: &[BatchRecord],
    stats: &ServiceStats,
    pending_ops: usize,
    devices: usize,
) -> ScheduleReport {
    let mut report = ScheduleReport {
        batches: trace.len(),
        ..ScheduleReport::default()
    };
    let v = &mut report.violations;

    // --- Ordering: one global tick orders admissions and joins. ---
    for (k, rec) in trace.iter().enumerate() {
        if rec.seq != k {
            v.push(Violation::OutOfOrder {
                seq: rec.seq,
                detail: format!("trace position {k} holds seq {}", rec.seq),
            });
        }
        if rec.admitted_at >= rec.joined_at {
            v.push(Violation::OutOfOrder {
                seq: rec.seq,
                detail: format!(
                    "joined (tick {}) before admitted (tick {})",
                    rec.joined_at, rec.admitted_at
                ),
            });
        }
        if k > 0 {
            let prev = &trace[k - 1];
            if prev.admitted_at >= rec.admitted_at {
                v.push(Violation::OutOfOrder {
                    seq: rec.seq,
                    detail: "admitted out of submission order".into(),
                });
            }
            if prev.joined_at >= rec.joined_at {
                v.push(Violation::OutOfOrder {
                    seq: rec.seq,
                    detail: "joined out of submission order".into(),
                });
            }
        }
        let joins_before = trace[..k]
            .iter()
            .filter(|r| r.joined_at < rec.admitted_at)
            .count();
        if joins_before != rec.joins_at_admit {
            v.push(Violation::OutOfOrder {
                seq: rec.seq,
                detail: format!(
                    "claims {} joins at admission, ticks say {joins_before}",
                    rec.joins_at_admit
                ),
            });
        }
    }

    // --- Frontier, stall, placement, and per-batch consistency. ---
    let mut free_at = vec![0.0f64; devices];
    for rec in trace {
        // Frontier: max completion over exactly the joined-before prefix.
        let expected_frontier = trace[..rec.joins_at_admit.min(trace.len())]
            .iter()
            .fold(0.0f64, |m, r| m.max(r.completion_us));
        if expected_frontier != rec.frontier_us {
            v.push(Violation::FrontierMismatch {
                seq: rec.seq,
                expected_us: expected_frontier,
                got_us: rec.frontier_us,
            });
        }
        // Stall: frontier joined with the chosen devices' free times.
        let mut expected_stall = rec.frontier_us;
        let mut seen = Vec::new();
        for &(d, start, dur) in &rec.placements {
            report.intervals += 1;
            if d >= devices {
                v.push(Violation::BatchInconsistent {
                    seq: rec.seq,
                    detail: format!("placement on device {d} of {devices}"),
                });
                continue;
            }
            if seen.contains(&d) {
                v.push(Violation::BatchInconsistent {
                    seq: rec.seq,
                    detail: format!("two shards on device {d}"),
                });
            }
            seen.push(d);
            if !(start.is_finite() && dur.is_finite()) || dur < 0.0 {
                v.push(Violation::BatchInconsistent {
                    seq: rec.seq,
                    detail: format!("degenerate interval ({start}, {dur}) on device {d}"),
                });
                continue;
            }
            expected_stall = expected_stall.max(free_at[d]);
            if start < free_at[d] {
                v.push(Violation::DeviceOverlap {
                    seq: rec.seq,
                    device: d,
                    start_us: start,
                    free_us: free_at[d],
                });
            }
            if start != rec.start_us {
                v.push(Violation::UploadMisapplied {
                    seq: rec.seq,
                    detail: format!(
                        "shard on device {d} starts at {start} µs, not at the post-upload \
                         gang start {} µs (uploads must precede all compute)",
                        rec.start_us
                    ),
                });
            }
        }
        if expected_stall != rec.stall_us {
            v.push(Violation::StallMismatch {
                seq: rec.seq,
                expected_us: expected_stall,
                got_us: rec.stall_us,
            });
        }
        for &(d, start, dur) in &rec.placements {
            if d < devices && dur >= 0.0 && start.is_finite() {
                free_at[d] = start + dur;
            }
        }
        // Upload charging.
        if !(rec.upload_us.is_finite() && rec.upload_us >= 0.0) {
            v.push(Violation::UploadMisapplied {
                seq: rec.seq,
                detail: format!("degenerate upload charge {} µs", rec.upload_us),
            });
        } else if !rec.sessioned && rec.upload_us != 0.0 {
            v.push(Violation::UploadMisapplied {
                seq: rec.seq,
                detail: format!("anonymous plan charged a {} µs key upload", rec.upload_us),
            });
        } else {
            let expected_start = if rec.upload_us > 0.0 {
                rec.stall_us + rec.upload_us
            } else {
                rec.stall_us
            };
            if expected_start != rec.start_us {
                v.push(Violation::UploadMisapplied {
                    seq: rec.seq,
                    detail: format!(
                        "gang start {} µs ≠ stall {} µs + upload {} µs",
                        rec.start_us, rec.stall_us, rec.upload_us
                    ),
                });
            }
        }
        // Internal consistency.
        if rec.start_us + rec.wall_us != rec.completion_us {
            v.push(Violation::BatchInconsistent {
                seq: rec.seq,
                detail: format!(
                    "completion {} µs ≠ start {} µs + wall {} µs",
                    rec.completion_us, rec.start_us, rec.wall_us
                ),
            });
        }
        if !rec.placements.is_empty() {
            let longest = rec
                .placements
                .iter()
                .fold(0.0f64, |m, &(_, _, dur)| m.max(dur));
            if !close(longest, rec.wall_us) {
                v.push(Violation::BatchInconsistent {
                    seq: rec.seq,
                    detail: format!("wall {} µs ≠ longest shard {longest} µs", rec.wall_us),
                });
            }
        }
    }

    // --- Window independence. ---
    for (k, rec) in trace.iter().enumerate() {
        // In flight at rec's admission: every earlier batch not yet joined.
        for prev in trace[..k].iter().rev() {
            if prev.joined_at < rec.admitted_at {
                break; // joins are in order: everything earlier left too
            }
            if let Some(shared) = prev.keys.iter().find(|k| rec.keys.contains(k)) {
                v.push(Violation::WindowConflict {
                    first: prev.seq,
                    second: rec.seq,
                    key: (shared.0.to_string(), shared.1),
                });
            }
        }
    }

    // --- Reorder invariants: per-record relations (valid mid-drain). ---
    for rec in trace {
        if rec.planned_at > rec.admitted_at {
            v.push(Violation::ReorderInconsistent {
                seq: rec.seq,
                detail: format!(
                    "admitted (tick {}) before planned (tick {})",
                    rec.admitted_at, rec.planned_at
                ),
            });
        }
        if rec.frontier_us < rec.planned_frontier_us {
            v.push(Violation::ReorderInconsistent {
                seq: rec.seq,
                detail: format!(
                    "join frontier moved backwards while pending ({} µs at freeze, {} µs at \
                     admission)",
                    rec.planned_frontier_us, rec.frontier_us
                ),
            });
        }
        // Pending-frontier snapshot: max completion over exactly the
        // batches joined before the freeze tick (joins are monotone, so
        // that set is a trace prefix).
        let joins_before_freeze = trace
            .iter()
            .filter(|r| r.joined_at < rec.planned_at)
            .count();
        let expected = trace[..joins_before_freeze.min(trace.len())]
            .iter()
            .fold(0.0f64, |m, r| m.max(r.completion_us));
        if expected != rec.planned_frontier_us {
            v.push(Violation::ReorderInconsistent {
                seq: rec.seq,
                detail: format!(
                    "pending frontier {} µs, replay says {expected} µs",
                    rec.planned_frontier_us
                ),
            });
        }
        if rec.bypassed > stats.aging_bound {
            v.push(Violation::AgingExceeded {
                seq: rec.seq,
                bypassed: rec.bypassed,
                bound: stats.aging_bound,
            });
        }
        if stats.admission == AdmissionMode::InOrder {
            // In-order admission must be degenerate: planning and
            // admission are one step and nothing is ever bypassed.
            if rec.serial_seq != rec.seq {
                v.push(Violation::ReorderInconsistent {
                    seq: rec.seq,
                    detail: format!("in-order batch admitted as serial {}", rec.serial_seq),
                });
            }
            if rec.planned_at != rec.admitted_at {
                v.push(Violation::ReorderInconsistent {
                    seq: rec.seq,
                    detail: format!(
                        "in-order batch planned at tick {} but admitted at tick {}",
                        rec.planned_at, rec.admitted_at
                    ),
                });
            }
            if rec.bypassed != 0 {
                v.push(Violation::ReorderInconsistent {
                    seq: rec.seq,
                    detail: format!("in-order batch claims {} bypasses", rec.bypassed),
                });
            }
        }
    }

    // --- Program order: one client stream is never reordered. ---
    for (k, rec) in trace.iter().enumerate() {
        for prev in &trace[..k] {
            if prev.serial_seq >= rec.serial_seq
                && prev.keys.iter().any(|key| rec.keys.contains(key))
            {
                let shared = prev
                    .keys
                    .iter()
                    .find(|key| rec.keys.contains(key))
                    .expect("checked above");
                v.push(Violation::ProgramOrderViolated {
                    first: rec.seq,
                    second: prev.seq,
                    key: (shared.0.to_string(), shared.1),
                });
            }
        }
    }

    // --- Priority-rule replay (quiescent traces only: a mid-drain trace
    // --- is missing the frozen-but-unjoined plans the rule saw). ---
    if pending_ops == 0 {
        let mut serials: Vec<usize> = trace.iter().map(|r| r.serial_seq).collect();
        serials.sort_unstable();
        if serials.iter().enumerate().any(|(i, &s)| i != s) {
            v.push(Violation::ReorderInconsistent {
                seq: 0,
                detail: "serial indices of a drained trace are not a permutation of 0..n".into(),
            });
        }
        if stats.admission == AdmissionMode::OutOfOrder {
            replay_scoreboard(trace, stats, v);
        }
    }

    // --- Reorder accounting. The service accumulates both stats at
    // --- admission (= trace order), so a mid-drain trace replays a
    // --- prefix: the replay may trail the stat but never exceed it.
    let head_blocked: f64 = trace
        .iter()
        .fold(0.0, |acc, r| acc + (r.frontier_us - r.planned_frontier_us));
    if head_blocked > stats.head_blocked_us
        || (pending_ops == 0 && head_blocked != stats.head_blocked_us)
    {
        v.push(Violation::AccountingMismatch {
            stat: "head_blocked_us",
            expected: head_blocked,
            got: stats.head_blocked_us,
        });
    }
    let reorder = trace
        .iter()
        .map(|r| r.seq.abs_diff(r.serial_seq))
        .max()
        .unwrap_or(0);
    if reorder > stats.reorder_distance || (pending_ops == 0 && reorder != stats.reorder_distance) {
        v.push(Violation::AccountingMismatch {
            stat: "reorder_distance",
            expected: reorder as f64,
            got: stats.reorder_distance as f64,
        });
    }

    // --- Accounting closure. The service accumulates `busy_us` at
    // --- settle time, and the reorder buffer settles in *serial* plan
    // --- order — so the exact-equality fold must run over the trace
    // --- sorted by `serial_seq`, not by admission. (In-order traces are
    // --- unchanged: there the two orders coincide.) ---
    let mut settle_order: Vec<&BatchRecord> = trace.iter().collect();
    settle_order.sort_by_key(|r| r.serial_seq);
    let busy: f64 = settle_order.iter().fold(0.0, |acc, r| acc + r.wall_us);
    if busy != stats.busy_us {
        v.push(Violation::AccountingMismatch {
            stat: "busy_us",
            expected: busy,
            got: stats.busy_us,
        });
    }
    let makespan = trace.iter().fold(0.0f64, |m, r| m.max(r.completion_us));
    if makespan != stats.elapsed_us {
        v.push(Violation::AccountingMismatch {
            stat: "elapsed_us",
            expected: makespan,
            got: stats.elapsed_us,
        });
    }
    let interval_sum: f64 = trace
        .iter()
        .flat_map(|r| r.placements.iter())
        .map(|&(_, _, dur)| dur)
        .sum();
    let attributed: f64 = stats.device_busy_us.iter().sum();
    if !close(interval_sum, attributed) {
        v.push(Violation::AccountingMismatch {
            stat: "interval sum vs device attribution",
            expected: interval_sum,
            got: attributed,
        });
    }
    let uploads = trace.iter().filter(|r| r.upload_us > 0.0).count();
    if uploads != stats.key_uploads {
        v.push(Violation::AccountingMismatch {
            stat: "key_uploads",
            expected: uploads as f64,
            got: stats.key_uploads as f64,
        });
    }
    // Uploads are charged when a plan *freezes*, i.e. along the serial
    // walk — fold in serial order for the same reason as `busy_us`.
    let upload_us: f64 = settle_order.iter().fold(0.0, |acc, r| acc + r.upload_us);
    if upload_us != stats.key_upload_us {
        v.push(Violation::AccountingMismatch {
            stat: "key_upload_us",
            expected: upload_us,
            got: stats.key_upload_us,
        });
    }
    let widths: usize = trace.iter().map(|r| r.width).sum();
    if widths != stats.ops_completed {
        v.push(Violation::AccountingMismatch {
            stat: "ops_completed",
            expected: widths as f64,
            got: stats.ops_completed as f64,
        });
    }
    if trace.len() != stats.batches_dispatched {
        v.push(Violation::AccountingMismatch {
            stat: "batches_dispatched",
            expected: trace.len() as f64,
            got: stats.batches_dispatched as f64,
        });
    }
    if stats.ops_submitted
        != stats.ops_completed + stats.ops_shed + stats.ops_rejected + pending_ops
    {
        v.push(Violation::OpsNotClosed {
            submitted: stats.ops_submitted,
            completed: stats.ops_completed,
            shed: stats.ops_shed,
            rejected: stats.ops_rejected,
            pending: pending_ops,
        });
    }

    report
}

/// Verifies a service end to end: its scheduler trace against its own
/// cumulative stats. Call at any drain point; a clean report means the
/// overlap clock, residency charging, window discipline, and accounting
/// all reconcile.
#[must_use]
pub fn verify_service(svc: &FheService) -> ScheduleReport {
    verify_schedule(
        svc.schedule_trace(),
        &svc.stats(),
        svc.pending_ops(),
        svc.devices(),
    )
}

/// Verifies `(stream, start_us, end_us)` launch records — e.g. from
/// [`tensorfhe_gpu::DeviceSim::intervals`] — against the FIFO-stream
/// contract: within a stream, kernels run forward in time and never
/// overlap.
#[must_use]
pub fn verify_launch_intervals(
    intervals: impl IntoIterator<Item = (usize, f64, f64)>,
) -> ScheduleReport {
    let mut report = ScheduleReport::default();
    let mut streams: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    for (stream, start, end) in intervals {
        streams.entry(stream).or_default().push((start, end));
    }
    for (stream, kernels) in &streams {
        let mut prev_end = f64::NEG_INFINITY;
        for (i, &(start, end)) in kernels.iter().enumerate() {
            report.intervals += 1;
            if !(start.is_finite() && end.is_finite()) || end < start {
                report.violations.push(Violation::StreamOverlap {
                    stream: *stream,
                    index: i,
                    detail: format!("degenerate interval [{start}, {end}]"),
                });
                continue;
            }
            if start < prev_end {
                report.violations.push(Violation::StreamOverlap {
                    stream: *stream,
                    index: i,
                    detail: format!(
                        "starts at {start} µs before the previous kernel ends at {prev_end} µs"
                    ),
                });
            }
            prev_end = prev_end.max(end);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_intervals_pass() {
        let r = verify_launch_intervals(vec![(0, 0.0, 1.0), (0, 1.0, 2.5), (1, 0.5, 3.0)]);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.intervals, 3);
    }

    #[test]
    fn overlapping_stream_intervals_fail() {
        let r = verify_launch_intervals(vec![(0, 0.0, 2.0), (0, 1.5, 3.0)]);
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(r.violations[0], Violation::StreamOverlap { .. }));
    }
}
