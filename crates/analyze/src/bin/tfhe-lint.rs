//! Workspace determinism linter.
//!
//! ```text
//! tfhe-lint [--deny-all] [--root <dir>] [--list]
//! ```
//!
//! Walks the workspace (auto-discovered from the current directory unless
//! `--root` is given), runs the L001–L006 determinism lints, applies the
//! committed `tfhe-lint.allow` allowlist, and prints diagnostics in
//! stable `file:line [L00x] message` order. Exit codes: `0` clean (or
//! report-only mode), `1` violations under `--deny-all`, `2` usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use tensorfhe_analyze::lint::{lint_workspace, LintId};

fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("tfhe-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for lint in LintId::ALL {
                    println!("{} {}", lint.code(), lint.name());
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tfhe-lint: unknown argument {other}");
                eprintln!("usage: tfhe-lint [--deny-all] [--root <dir>] [--list]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(workspace_root) else {
        eprintln!("tfhe-lint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    match lint_workspace(&root) {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                eprintln!("tfhe-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("tfhe-lint: {} violation(s)", diags.len());
                if deny_all {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        Err(e) => {
            eprintln!("tfhe-lint: {e}");
            ExitCode::from(2)
        }
    }
}
