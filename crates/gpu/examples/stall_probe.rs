//! Developer probe: prints the stall profile of the Fig. 4 kernels so the
//! templates can be calibrated against the paper's GPGPUSim measurements.

use tensorfhe_gpu::{DeviceConfig, DeviceSim, KernelClass, KernelDesc, StallKind};

fn main() {
    let mut sim = DeviceSim::new(DeviceConfig::gtx1080ti());
    let kernels = [
        (
            "NTT (block 128)",
            KernelDesc::new(
                KernelClass::ButterflyNtt {
                    n: 1 << 14,
                    batch: 4,
                },
                "ntt",
            )
            .with_block_size(128),
        ),
        (
            "FFT (block 192)",
            KernelDesc::new(
                KernelClass::FftButterfly {
                    n: 1 << 14,
                    batch: 4,
                },
                "fft",
            )
            .with_block_size(192),
        ),
        (
            "DWT (block 256)",
            KernelDesc::new(
                KernelClass::DwtLifting {
                    n: 1 << 14,
                    batch: 4,
                },
                "dwt",
            )
            .with_block_size(256),
        ),
        (
            "TensorFHE-CO GEMM",
            KernelDesc::new(
                KernelClass::GemmCuda {
                    m: 128,
                    k: 128,
                    cols: 128,
                    batch: 4,
                },
                "gemm",
            ),
        ),
    ];
    for (name, k) in kernels {
        let b = sim.stall_profile(&k);
        print!("{name:22} total={:5.1}%", b.stall_fraction() * 100.0);
        for kind in StallKind::ALL {
            print!(
                " {}={:4.1}%",
                kind.label().split(' ').next().unwrap_or(""),
                b.fraction(kind) * 100.0
            );
        }
        println!();
    }
}
