//! Kernel descriptors: the bridge between FHE kernels and the device model.
//!
//! Each launch is described by a [`KernelClass`] (what shape of computation
//! it is) plus launch geometry. The class determines three things the engine
//! needs:
//!
//! 1. a per-thread [`InstrTemplate`] for the warp simulator (CUDA-core
//!    kernels only),
//! 2. the total work (thread-iterations), DRAM traffic and TCU MAC count,
//! 3. how much of the device the kernel can use by itself
//!    (`parallel fraction`), which drives the stream-overlap model.
//!
//! The templates encode the *algorithmic* properties the paper's analysis
//! rests on: the butterfly NTT carries a long RAW chain and per-stage
//! barriers; the GEMM formulation has independent accumulators and near-zero
//! chains; element-wise kernels are bandwidth-bound.

use crate::warp_sim::{Instr, InstrTemplate};

/// Bytes per RNS residue on the device (the paper stores limbs as 32-bit
/// words — `N × 32-bits` data entries, Fig. 9).
pub const RESIDUE_BYTES: u64 = 4;

/// Effective host→device DMA bandwidth in GB/s for key-set uploads.
///
/// The paper's A100 platform sits on PCIe 4.0 ×16 (31.5 GB/s raw); large
/// pinned-memory copies sustain ≈ 25 GB/s in practice, and key-switch key
/// sets are exactly that shape — hundreds of MB of contiguous limb data.
/// One figure for every device model keeps the residency cost model simple:
/// the interconnect, unlike the SM array, does not differ first-order
/// across the paper's three GPUs.
pub const H2D_BANDWIDTH_GBPS: f64 = 25.0;

/// The computation shape of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// One pass of butterfly NTT/INTT over `batch` polynomials of degree
    /// `n` (all `log2 n` stages).
    ButterflyNtt {
        /// Polynomial degree.
        n: usize,
        /// Number of (limb × operation) polynomials processed together.
        batch: usize,
    },
    /// Modular GEMM on CUDA cores: `(m×k) × (k×cols)`, `batch` independent
    /// instances (the TensorFHE-CO path).
    GemmCuda {
        /// Rows of the left operand.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of the right operand.
        cols: usize,
        /// Independent GEMM instances in this launch.
        batch: usize,
    },
    /// One u8-plane GEMM on tensor cores (one of the 16 segment products of
    /// Fig. 8), `batch` independent instances.
    GemmTcu {
        /// Rows of the left operand.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of the right operand.
        cols: usize,
        /// Independent GEMM instances in this launch.
        batch: usize,
    },
    /// Streaming element-wise kernel (Hada-Mult, Ele-Add, Ele-Sub, twiddle
    /// Hadamard, segmentation, fusion, modulus correction…).
    Elementwise {
        /// Number of output elements.
        elems: u64,
        /// Arithmetic ops per element (1 = add, 2 = mul+correct, …).
        ops_per_elem: u32,
        /// DRAM bytes touched per element (reads + writes).
        bytes_per_elem: u32,
    },
    /// Data-dependent permutation (FrobeniusMap, Conjugate): gather with
    /// poor locality.
    Permute {
        /// Number of elements permuted.
        elems: u64,
    },
    /// Scalar fast-basis-conversion kernel (the TensorFHE-NT lowering of
    /// `Conv`): one thread per output residue, each walking a serial
    /// dot product of length `l_src` with the `y` scaling recomputed in
    /// the chain — no independent accumulators, and the source block is
    /// re-read for every target limb. The GEMM variants lower `Conv` to
    /// an element-wise `y` stage plus a wide [`KernelClass::GemmCuda`]
    /// launch instead.
    BasisConv {
        /// Output residues produced.
        elems: u64,
        /// Source-basis size (dot-product length).
        l_src: usize,
    },
    /// Host→device DMA of a client's key-switch key set (galois +
    /// relinearisation keys). Not a compute kernel: the copy engine
    /// streams `bytes` over PCIe while the SMs stay free, so the service
    /// charges it to the overlap clock, never to kernel occupancy.
    KeyUpload {
        /// Bytes of key material copied host→device.
        bytes: u64,
    },
    /// Complex FFT butterfly reference kernel (Fig. 4 only).
    FftButterfly {
        /// Transform size.
        n: usize,
        /// Batched transforms.
        batch: usize,
    },
    /// Discrete wavelet transform lifting reference kernel (Fig. 4 only).
    DwtLifting {
        /// Signal length.
        n: usize,
        /// Batched transforms.
        batch: usize,
    },
}

impl KernelClass {
    /// Maximum resident warps per scheduler, bounded by the kernel's shared
    /// memory / register footprint. Butterfly-style kernels stage large
    /// tiles in shared memory and therefore achieve low residency — the
    /// root cause of their unhidden stalls in Fig. 4.
    #[must_use]
    pub fn resident_warp_cap(&self) -> u64 {
        match self {
            // Shared-memory footprint limits butterfly kernels to ~1.5
            // resident blocks of the paper's Fig. 4 launch geometries.
            KernelClass::ButterflyNtt { .. } => 5,
            KernelClass::FftButterfly { .. } => 9,
            KernelClass::DwtLifting { .. } => 16,
            _ => 16,
        }
    }

    /// Short class tag used in profiles.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            KernelClass::ButterflyNtt { .. } => "butterfly-ntt",
            KernelClass::GemmCuda { .. } => "gemm-cuda",
            KernelClass::GemmTcu { .. } => "gemm-tcu",
            KernelClass::Elementwise { .. } => "elementwise",
            KernelClass::Permute { .. } => "permute",
            KernelClass::KeyUpload { .. } => "key-upload",
            KernelClass::BasisConv { .. } => "basis-conv",
            KernelClass::FftButterfly { .. } => "fft",
            KernelClass::DwtLifting { .. } => "dwt",
        }
    }
}

/// A fully-specified kernel launch.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Computation shape.
    pub class: KernelClass,
    /// Kernel name shown in profiles (e.g. `"ntt-fwd"`, `"hada-mult"`).
    pub name: String,
    /// Threads per block.
    pub block_size: u32,
    /// Launch exactly this many threads instead of the natural geometry
    /// (used by the Fig. 5 thread sweep).
    pub threads_override: Option<u64>,
    /// Whether batched loads are contiguous — `true` for the optimised
    /// `(L, B, N)` layout, `false` for the naive `(B, L, N)` layout (Fig. 9).
    pub coalesced: bool,
}

impl KernelDesc {
    /// Creates a descriptor with the default geometry (block size 256,
    /// coalesced layout).
    #[must_use]
    pub fn new(class: KernelClass, name: impl Into<String>) -> Self {
        Self {
            class,
            name: name.into(),
            block_size: 256,
            threads_override: None,
            coalesced: true,
        }
    }

    /// Sets the block size.
    #[must_use]
    pub fn with_block_size(mut self, block_size: u32) -> Self {
        self.block_size = block_size;
        self
    }

    /// Overrides the total thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: u64) -> Self {
        self.threads_override = Some(threads);
        self
    }

    /// Marks the launch as reading the strided `(B, L, N)` layout.
    #[must_use]
    pub fn with_strided_layout(mut self) -> Self {
        self.coalesced = false;
        self
    }

    /// Total thread-iterations of work in this launch.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        match self.class {
            KernelClass::ButterflyNtt { n, batch } => {
                let stages = n.trailing_zeros() as u64;
                stages * (n as u64 / 2) * batch as u64
            }
            KernelClass::GemmCuda { m, k, cols, batch } => {
                // One thread per output element, k/3 template iterations
                // each (3 modular MACs per iteration — wide accumulation
                // costs roughly twice a plain MAD on INT32 cores).
                (m * cols * batch) as u64 * (k as u64).div_ceil(3)
            }
            KernelClass::GemmTcu { m, k, cols, batch } => (m * k * cols * batch) as u64,
            KernelClass::Elementwise { elems, .. } => elems,
            KernelClass::Permute { elems } => elems,
            // The copy engine moves one residue per "iteration"; the SMs do
            // no work, but the unit keeps the accounting uniform.
            KernelClass::KeyUpload { bytes } => bytes.div_ceil(RESIDUE_BYTES).max(1),
            // One dependent MAC per source term: the serial chain cannot
            // pack multiple accumulators per template iteration.
            KernelClass::BasisConv { elems, l_src } => elems * l_src as u64,
            KernelClass::FftButterfly { n, batch } => {
                let stages = n.trailing_zeros() as u64;
                stages * (n as u64 / 2) * batch as u64
            }
            KernelClass::DwtLifting { n, batch } => n as u64 * batch as u64,
        }
    }

    /// Natural thread-count (before any override).
    #[must_use]
    pub fn natural_threads(&self) -> u64 {
        let t = match self.class {
            KernelClass::ButterflyNtt { n, batch } => (n as u64 / 2) * batch as u64,
            KernelClass::GemmCuda { m, cols, batch, .. } => (m * cols * batch) as u64,
            KernelClass::GemmTcu { m, cols, batch, .. } => {
                // One warp per 16×8 tile.
                let tiles = (m as u64).div_ceil(16) * (cols as u64).div_ceil(8) * batch as u64;
                tiles * 32
            }
            // Streaming kernels use grid-stride loops: four elements per
            // thread keeps 16-byte vectorised accesses (no thin-thread
            // bandwidth penalty).
            KernelClass::Elementwise { elems, .. } => elems.div_ceil(4),
            KernelClass::Permute { elems } => elems.div_ceil(4),
            KernelClass::KeyUpload { bytes } => bytes.div_ceil(RESIDUE_BYTES).div_ceil(4),
            KernelClass::BasisConv { elems, .. } => elems,
            KernelClass::FftButterfly { n, batch } => (n as u64 / 2) * batch as u64,
            KernelClass::DwtLifting { n, batch } => (n as u64 / 2) * batch as u64,
        };
        t.max(1)
    }

    /// Threads actually launched.
    #[must_use]
    pub fn threads(&self) -> u64 {
        self.threads_override
            .unwrap_or_else(|| self.natural_threads())
    }

    /// Template iterations per thread.
    #[must_use]
    pub fn iters_per_thread(&self) -> u64 {
        self.total_work().div_ceil(self.threads()).max(1)
    }

    /// Host→device copy time over the PCIe model (µs); zero for compute
    /// kernels. DMA classes bypass the warp simulator — the copy engine,
    /// not the SM array, bounds them.
    #[must_use]
    pub fn dma_us(&self) -> f64 {
        match self.class {
            KernelClass::KeyUpload { bytes } => bytes as f64 / (H2D_BANDWIDTH_GBPS * 1e3),
            _ => 0.0,
        }
    }

    /// DRAM bytes moved by the launch (reads + writes).
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        match self.class {
            KernelClass::ButterflyNtt { n, batch } => {
                // Every stage streams the whole working set in and out.
                let stages = n.trailing_zeros() as u64;
                stages * (n * batch) as u64 * RESIDUE_BYTES * 2
            }
            KernelClass::GemmCuda { m, k, cols, batch } => {
                // Tiled: operands once per tile wave + output once.
                let ops = (m * k + k * cols + m * cols) as u64;
                ops * RESIDUE_BYTES * batch as u64
            }
            KernelClass::GemmTcu { m, k, cols, batch } => {
                // Each u8 input plane is read once from DRAM and then shared
                // by its four plane-pair GEMMs via L2; twiddle planes are
                // tiny and cache-resident; the s32 partials never leave L2
                // (the fusion epilogue consumes them and its write traffic
                // is charged to the fusion kernel). Charging full partial
                // traffic would make the tensor-core path memory-bound in a
                // way the paper's measured NTT throughput (913 KOPS) rules
                // out.
                (m * k * batch) as u64 / 4 + (k * cols * batch) as u64 / 16
            }
            KernelClass::Elementwise {
                elems,
                bytes_per_elem,
                ..
            } => elems * bytes_per_elem as u64,
            KernelClass::Permute { elems } => elems * RESIDUE_BYTES * 2,
            // The DMA writes the key set into device DRAM once; the host
            // side of the copy does not touch device bandwidth.
            KernelClass::KeyUpload { bytes } => bytes,
            KernelClass::BasisConv { elems, l_src } => {
                // Every output residue re-reads its l_src source residues
                // (no cross-target operand reuse in the scalar kernel) and
                // writes itself once — the data-movement cost the GEMM
                // lowering removes by tiling the y block through shared
                // memory.
                elems * (l_src as u64 + 1) * RESIDUE_BYTES
            }
            KernelClass::FftButterfly { n, batch } => {
                let stages = n.trailing_zeros() as u64;
                stages * (n * batch) as u64 * 8 * 2 // complex f32
            }
            KernelClass::DwtLifting { n, batch } => (n * batch) as u64 * 4 * 3,
        }
    }

    /// Tensor-core MACs (after tile padding); zero for non-TCU kernels.
    #[must_use]
    pub fn tcu_macs(&self) -> u64 {
        match self.class {
            KernelClass::GemmTcu { m, k, cols, batch } => {
                let mp = (m as u64).div_ceil(16) * 16;
                let np = (cols as u64).div_ceil(8) * 8;
                let kp = (k as u64).div_ceil(32) * 32;
                mp * np * kp * batch as u64
            }
            _ => 0,
        }
    }

    /// The warp-simulator template, or `None` for TCU kernels (their timing
    /// comes from the tensor-core pipeline model).
    #[must_use]
    pub fn template(&self) -> Option<InstrTemplate> {
        let t = match self.class {
            KernelClass::ButterflyNtt { .. } => InstrTemplate {
                // One butterfly: the tile is staged in shared memory (the
                // standard GPU NTT structure; DRAM traffic is charged by the
                // bandwidth model), then a Shoup multiply chain
                // (hi → lo → correct) feeds the dependent add/sub pair — the
                // RAW source of Fig. 4 — with a barrier at each stage.
                body: vec![
                    // Consume the tile element prefetched by the previous
                    // iteration (double-buffered global traffic).
                    // Consume the element prefetched by the previous
                    // iteration (double-buffered global traffic), then issue
                    // the next prefetch — distance ≈ one full body.
                    Instr::Alu {
                        dst: 1,
                        srcs: [10, 0],
                    },
                    Instr::LdGlobal {
                        dst: 10,
                        coalesced: self.coalesced,
                    },
                    Instr::LdShared { dst: 2 },
                    // 32-bit Barrett/Shoup modmul lowers to a serial
                    // mul.lo/mul.hi/correction sequence on INT32 cores.
                    Instr::Mul {
                        dst: 3,
                        srcs: [2, 0],
                    },
                    Instr::Mul {
                        dst: 4,
                        srcs: [3, 0],
                    },
                    Instr::Mul {
                        dst: 5,
                        srcs: [4, 0],
                    },
                    Instr::Mul {
                        dst: 11,
                        srcs: [5, 0],
                    },
                    Instr::Mul {
                        dst: 12,
                        srcs: [11, 0],
                    },
                    Instr::Alu {
                        dst: 6,
                        srcs: [12, 2],
                    },
                    Instr::Alu {
                        dst: 7,
                        srcs: [6, 0],
                    },
                    Instr::Alu {
                        dst: 8,
                        srcs: [1, 7],
                    },
                    Instr::Alu {
                        dst: 9,
                        srcs: [1, 7],
                    },
                    Instr::StGlobal { src: 8 },
                    Instr::StGlobal { src: 9 },
                    Instr::Bar,
                ],
                code_footprint: 4.0,
                loop_redirect_cycles: 6,
            },
            KernelClass::BasisConv { .. } => InstrTemplate {
                // One serial dot-product step: load the source residue from
                // DRAM, recompute its y scaling (two dependent multiplies)
                // and fold it into the single accumulator — a RAW chain
                // with nothing to dual-issue, the Conv analogue of the
                // butterfly NTT's Fig. 4 stall pathology.
                body: vec![
                    Instr::LdGlobal {
                        dst: 1,
                        coalesced: self.coalesced,
                    },
                    Instr::Mul {
                        dst: 2,
                        srcs: [1, 0],
                    },
                    Instr::Mul {
                        dst: 3,
                        srcs: [2, 0],
                    },
                    Instr::Mad {
                        dst: 4,
                        srcs: [3, 4],
                    },
                ],
                code_footprint: 1.0,
                loop_redirect_cycles: 2,
            },
            KernelClass::GemmCuda { .. } => InstrTemplate {
                // Tiled modular GEMM inner step: two shared loads feed three
                // independent wide accumulators — no RAW chain, no barrier
                // in the steady state.
                body: vec![
                    Instr::LdShared { dst: 1 },
                    Instr::LdShared { dst: 2 },
                    Instr::Mad {
                        dst: 3,
                        srcs: [1, 2],
                    },
                    Instr::Mad {
                        dst: 4,
                        srcs: [1, 2],
                    },
                    Instr::Mad {
                        dst: 5,
                        srcs: [1, 2],
                    },
                ],
                code_footprint: 1.0,
                loop_redirect_cycles: 2,
            },
            KernelClass::Elementwise { ops_per_elem, .. } => {
                let mut body = vec![Instr::LdGlobal {
                    dst: 1,
                    coalesced: self.coalesced,
                }];
                for i in 0..ops_per_elem.min(4) {
                    let dst = 2 + i as u8;
                    let src = 1 + i as u8;
                    body.push(Instr::Mul {
                        dst,
                        srcs: [src, 0],
                    });
                }
                body.push(Instr::StGlobal {
                    src: 2 + ops_per_elem.min(4) as u8 - 1,
                });
                InstrTemplate {
                    body,
                    code_footprint: 0.8,
                    loop_redirect_cycles: 2,
                }
            }
            KernelClass::Permute { .. } => InstrTemplate {
                body: vec![
                    Instr::LdGlobal {
                        dst: 1,
                        coalesced: false,
                    },
                    Instr::StGlobal { src: 1 },
                ],
                code_footprint: 0.8,
                loop_redirect_cycles: 2,
            },
            KernelClass::FftButterfly { .. } => InstrTemplate {
                // Complex butterfly (shared-memory staged): cross mul/add
                // with a shorter dependency chain than the Shoup sequence.
                body: vec![
                    Instr::Alu {
                        dst: 1,
                        srcs: [10, 0],
                    },
                    Instr::LdGlobal {
                        dst: 10,
                        coalesced: self.coalesced,
                    },
                    Instr::LdShared { dst: 2 },
                    Instr::Mul {
                        dst: 3,
                        srcs: [2, 0],
                    },
                    Instr::Mul {
                        dst: 4,
                        srcs: [2, 0],
                    },
                    Instr::Alu {
                        dst: 5,
                        srcs: [3, 4],
                    },
                    Instr::Alu {
                        dst: 6,
                        srcs: [1, 5],
                    },
                    Instr::Alu {
                        dst: 7,
                        srcs: [1, 5],
                    },
                    Instr::StGlobal { src: 6 },
                    Instr::StGlobal { src: 7 },
                    Instr::Bar,
                ],
                code_footprint: 3.0,
                loop_redirect_cycles: 6,
            },
            KernelClass::DwtLifting { .. } => InstrTemplate {
                // Lifting step: neighbour loads from shared memory feed two
                // independent MADs.
                body: vec![
                    Instr::Alu {
                        dst: 1,
                        srcs: [10, 0],
                    },
                    Instr::LdGlobal {
                        dst: 10,
                        coalesced: self.coalesced,
                    },
                    Instr::LdShared { dst: 2 },
                    Instr::Mad {
                        dst: 3,
                        srcs: [1, 2],
                    },
                    Instr::Mad {
                        dst: 4,
                        srcs: [1, 2],
                    },
                    Instr::StGlobal { src: 3 },
                    Instr::Bar,
                ],
                code_footprint: 2.0,
                loop_redirect_cycles: 4,
            },
            // TCU kernels are timed by the tensor-core pipeline model and
            // DMA uploads by the copy-engine model; neither runs warps.
            KernelClass::GemmTcu { .. } | KernelClass::KeyUpload { .. } => return None,
        };
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_work_counts_all_stages() {
        let k = KernelDesc::new(KernelClass::ButterflyNtt { n: 1024, batch: 2 }, "ntt");
        assert_eq!(k.total_work(), 10 * 512 * 2);
        assert_eq!(k.natural_threads(), 1024);
        assert_eq!(k.iters_per_thread(), 10);
    }

    #[test]
    fn threads_override_raises_iterations() {
        let k = KernelDesc::new(KernelClass::ButterflyNtt { n: 1024, batch: 1 }, "ntt")
            .with_threads(128);
        assert_eq!(k.threads(), 128);
        assert_eq!(k.iters_per_thread(), 10 * 512 / 128);
    }

    #[test]
    fn tcu_macs_padded_to_tiles() {
        let k = KernelDesc::new(
            KernelClass::GemmTcu {
                m: 17,
                k: 33,
                cols: 9,
                batch: 1,
            },
            "gemm",
        );
        // 17→32, 9→16, 33→64.
        assert_eq!(k.tcu_macs(), 32 * 16 * 64);
        assert!(k.template().is_none());
    }

    #[test]
    fn templates_exist_for_cuda_classes() {
        let classes = [
            KernelClass::ButterflyNtt { n: 64, batch: 1 },
            KernelClass::GemmCuda {
                m: 8,
                k: 8,
                cols: 8,
                batch: 1,
            },
            KernelClass::Elementwise {
                elems: 64,
                ops_per_elem: 2,
                bytes_per_elem: 12,
            },
            KernelClass::Permute { elems: 64 },
            KernelClass::BasisConv {
                elems: 64,
                l_src: 8,
            },
            KernelClass::FftButterfly { n: 64, batch: 1 },
            KernelClass::DwtLifting { n: 64, batch: 1 },
        ];
        for c in classes {
            let d = KernelDesc::new(c, "k");
            assert!(d.template().is_some(), "{} needs a template", c.tag());
            assert!(d.total_work() > 0);
            assert!(d.bytes_moved() > 0);
        }
    }

    #[test]
    fn key_upload_is_a_pcie_dma_not_a_compute_kernel() {
        // A HEAX-Set-C-sized key set: ~52 MB over 25 GB/s ≈ 2.1 ms.
        let bytes = 52 * 1024 * 1024;
        let k = KernelDesc::new(KernelClass::KeyUpload { bytes }, "key-upload");
        assert_eq!(k.class.tag(), "key-upload");
        assert!(k.template().is_none(), "DMA never runs warps");
        assert_eq!(k.bytes_moved(), bytes, "DRAM sees the key set once");
        let us = k.dma_us();
        let expect = bytes as f64 / (H2D_BANDWIDTH_GBPS * 1e3);
        assert!((us - expect).abs() < 1e-9, "got {us}, want {expect}");
        // Copy time scales linearly in bytes.
        let half = KernelDesc::new(KernelClass::KeyUpload { bytes: bytes / 2 }, "key-upload");
        assert!((half.dma_us() * 2.0 - us).abs() < 1e-9);
        // Compute kernels report zero DMA time.
        let p = KernelDesc::new(KernelClass::Permute { elems: 64 }, "p");
        assert_eq!(p.dma_us(), 0.0);
    }

    #[test]
    fn strided_layout_marks_uncoalesced_loads() {
        let k = KernelDesc::new(
            KernelClass::Elementwise {
                elems: 64,
                ops_per_elem: 1,
                bytes_per_elem: 12,
            },
            "e",
        )
        .with_strided_layout();
        let t = k.template().expect("template");
        let has_uncoalesced = t.body.iter().any(|i| {
            matches!(
                i,
                Instr::LdGlobal {
                    coalesced: false,
                    ..
                }
            )
        });
        assert!(has_uncoalesced);
    }

    #[test]
    fn butterfly_template_has_barrier_and_chain() {
        let k = KernelDesc::new(KernelClass::ButterflyNtt { n: 64, batch: 1 }, "ntt");
        let t = k.template().expect("template");
        assert!(t.body.iter().any(|i| matches!(i, Instr::Bar)));
        assert!(t.code_footprint > 1.0);
    }
}
