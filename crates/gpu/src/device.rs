//! Static GPU machine descriptions.
//!
//! Numbers are taken from the vendor whitepapers cited by the paper
//! ([NVIDIA V100/A100 architecture papers], [Jia et al. T4
//! microbenchmarking]) and from Table III. Only first-order quantities are
//! modelled: anything the paper's evaluation does not exercise (e.g. FP64
//! pipes) is omitted.

/// A GPU device description consumed by the simulator.
///
/// Construct via the presets ([`DeviceConfig::a100`], [`DeviceConfig::v100`],
/// [`DeviceConfig::gtx1080ti`]) or customise a preset through the public
/// fields.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Warp schedulers per SM (4 on Volta/Ampere).
    pub schedulers_per_sm: u32,
    /// CUDA (INT32/FP32) lanes per SM.
    pub cuda_cores_per_sm: u32,
    /// Tensor core units per SM (0 = no TCU support).
    pub tensor_cores_per_sm: u32,
    /// INT8 multiply-accumulates per TCU per cycle (A100 3rd-gen: 512;
    /// V100 has no INT8 path so we model u8 GEMM via the FP16 pipe at 128).
    pub tcu_int8_macs_per_cycle: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Device memory capacity in GiB (bounds the feasible batch size, §VI-E).
    pub vram_gib: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Board power under sustained load, watts (the paper measures a stable
    /// 264 W on the A100 via `nvidia-smi`, §VI-D).
    pub power_watts: f64,
    /// Host-side kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
    /// Global memory latency in cycles for a coalesced access.
    pub mem_latency_cycles: u32,
    /// Shared memory latency in cycles.
    pub shared_latency_cycles: u32,
}

impl DeviceConfig {
    /// NVIDIA A100-SXM-40GB — the paper's primary platform (Table III).
    #[must_use]
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100-SXM-40GB".to_string(),
            sm_count: 108,
            schedulers_per_sm: 4,
            cuda_cores_per_sm: 64,
            tensor_cores_per_sm: 4,
            // 624 INT8 TOPS (dense) = 312 TMAC/s over 108 SM × 4 TCU × 1.41 GHz
            // → ≈ 512 MAC/cycle/TCU.
            tcu_int8_macs_per_cycle: 512,
            clock_ghz: 1.41,
            mem_bandwidth_gbps: 1555.0,
            vram_gib: 40.0,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            warp_size: 32,
            power_watts: 264.0,
            kernel_launch_us: 4.0,
            mem_latency_cycles: 380,
            shared_latency_cycles: 25,
        }
    }

    /// NVIDIA Tesla V100 16 GB — the platform of PrivFT and 100x.
    #[must_use]
    pub fn v100() -> Self {
        Self {
            name: "NVIDIA Tesla V100-16GB".to_string(),
            sm_count: 80,
            schedulers_per_sm: 4,
            cuda_cores_per_sm: 64,
            tensor_cores_per_sm: 8,
            // First-gen tensor cores are FP16-only; u8 plane GEMMs run as
            // promoted FP16 with dp4a assists on the CUDA cores, giving an
            // effective 8-bit MAC rate of ~128/cycle/TCU.
            tcu_int8_macs_per_cycle: 128,
            clock_ghz: 1.38,
            mem_bandwidth_gbps: 900.0,
            vram_gib: 16.0,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            warp_size: 32,
            power_watts: 250.0,
            kernel_launch_us: 5.0,
            mem_latency_cycles: 420,
            shared_latency_cycles: 28,
        }
    }

    /// NVIDIA GTX 1080 Ti — the GPGPUSim target of the Fig. 4/10 stall study.
    #[must_use]
    pub fn gtx1080ti() -> Self {
        Self {
            name: "NVIDIA GTX 1080 Ti".to_string(),
            sm_count: 28,
            schedulers_per_sm: 4,
            cuda_cores_per_sm: 128,
            tensor_cores_per_sm: 0,
            tcu_int8_macs_per_cycle: 0,
            clock_ghz: 1.58,
            mem_bandwidth_gbps: 484.0,
            vram_gib: 11.0,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            warp_size: 32,
            power_watts: 250.0,
            kernel_launch_us: 6.0,
            mem_latency_cycles: 450,
            shared_latency_cycles: 30,
        }
    }

    /// Peak INT8 tensor-core MAC throughput, in MAC/s for the whole device.
    #[must_use]
    pub fn tcu_macs_per_second(&self) -> f64 {
        self.sm_count as f64
            * self.tensor_cores_per_sm as f64
            * self.tcu_int8_macs_per_cycle as f64
            * self.clock_ghz
            * 1e9
    }

    /// Peak CUDA-core integer ops per second for the whole device.
    #[must_use]
    pub fn cuda_ops_per_second(&self) -> f64 {
        self.sm_count as f64 * self.cuda_cores_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Total resident-warp capacity of the device.
    #[must_use]
    pub fn total_warp_slots(&self) -> u64 {
        self.sm_count as u64 * self.max_warps_per_sm as u64
    }

    /// Whether the device can run the TCU path at all.
    #[must_use]
    pub fn has_tensor_cores(&self) -> bool {
        self.tensor_cores_per_sm > 0
    }

    /// VRAM capacity in bytes.
    #[must_use]
    pub fn vram_bytes(&self) -> u64 {
        (self.vram_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_headline_rates() {
        let d = DeviceConfig::a100();
        // ≈ 312 TMAC/s INT8 (624 TOPS counting mul+add separately).
        let tmacs = d.tcu_macs_per_second() / 1e12;
        assert!(
            (tmacs - 312.0).abs() < 15.0,
            "A100 INT8 ≈ 312 TMAC/s, got {tmacs}"
        );
        // ≈ 9.7 TIOPS on CUDA cores.
        let tiops = d.cuda_ops_per_second() / 1e12;
        assert!(
            (tiops - 9.75).abs() < 0.5,
            "A100 INT32 ≈ 9.7 TOPS, got {tiops}"
        );
    }

    #[test]
    fn v100_slower_than_a100_everywhere() {
        let a = DeviceConfig::a100();
        let v = DeviceConfig::v100();
        assert!(v.tcu_macs_per_second() < a.tcu_macs_per_second());
        assert!(v.mem_bandwidth_gbps < a.mem_bandwidth_gbps);
        assert!(v.vram_gib < a.vram_gib);
    }

    #[test]
    fn gtx1080ti_has_no_tcu() {
        let g = DeviceConfig::gtx1080ti();
        assert!(!g.has_tensor_cores());
        assert_eq!(g.tcu_macs_per_second(), 0.0);
    }

    #[test]
    fn vram_bytes_round() {
        assert_eq!(DeviceConfig::a100().vram_bytes(), 40 * 1024 * 1024 * 1024);
    }
}
