//! Pipeline-stall taxonomy of the Fig. 4 / Fig. 10 analysis.

use std::fmt;
use std::ops::{Add, AddAssign};

/// The six unhidden-stall categories the paper measures with GPGPUSim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Read-after-write dependency on an in-flight ALU result — the dominant
    /// butterfly-NTT stall (20.9% of cycles in Fig. 4).
    Raw,
    /// Waiting on an outstanding long-latency (global memory) access.
    LongLatency,
    /// Instruction-cache miss on fetch.
    L1iMiss,
    /// Control hazard (branch redirect at loop boundaries).
    ControlHazard,
    /// Required function unit already occupied this cycle.
    FunctionUnitBusy,
    /// Blocked at a block-wide barrier (`__syncthreads`).
    Barrier,
}

impl StallKind {
    /// All categories in the paper's plotting order.
    pub const ALL: [StallKind; 6] = [
        StallKind::Raw,
        StallKind::LongLatency,
        StallKind::L1iMiss,
        StallKind::ControlHazard,
        StallKind::FunctionUnitBusy,
        StallKind::Barrier,
    ];

    /// Label used in figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::Raw => "RAW Stall",
            StallKind::LongLatency => "Long Latency Stall",
            StallKind::L1iMiss => "L1I Miss Stall",
            StallKind::ControlHazard => "Control Hazard Stall",
            StallKind::FunctionUnitBusy => "Function Unit Busy Stall",
            StallKind::Barrier => "Barrier Stall",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycle counts per stall category, plus the issue/total cycle counters
/// needed to express them as "% of total cycles" like the paper's plots.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StallBreakdown {
    /// Cycles in which at least one instruction issued.
    pub issued_cycles: u64,
    /// Unhidden stall cycles attributed to each [`StallKind`]
    /// (index = position in [`StallKind::ALL`]).
    pub stalls: [u64; 6],
}

impl StallBreakdown {
    /// A zeroed breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stalled cycle of the given kind.
    pub fn record(&mut self, kind: StallKind) {
        let idx = StallKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL");
        self.stalls[idx] += 1;
    }

    /// Stall cycles of one category.
    #[must_use]
    pub fn get(&self, kind: StallKind) -> u64 {
        let idx = StallKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL");
        self.stalls[idx]
    }

    /// All stall cycles.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Total pipeline cycles (issued + stalled).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.issued_cycles + self.total_stalls()
    }

    /// Fraction of total cycles lost to the given stall kind, in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self, kind: StallKind) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.get(kind) as f64 / t as f64
        }
    }

    /// Fraction of total cycles lost to any stall.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            0.0
        } else {
            self.total_stalls() as f64 / t as f64
        }
    }
}

impl Add for StallBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for StallBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.issued_cycles += rhs.issued_cycles;
        for i in 0..6 {
            self.stalls[i] += rhs.stalls[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fractions() {
        let mut b = StallBreakdown::new();
        b.issued_cycles = 60;
        for _ in 0..30 {
            b.record(StallKind::Raw);
        }
        for _ in 0..10 {
            b.record(StallKind::Barrier);
        }
        assert_eq!(b.total_cycles(), 100);
        assert!((b.fraction(StallKind::Raw) - 0.30).abs() < 1e-12);
        assert!((b.stall_fraction() - 0.40).abs() < 1e-12);
        assert_eq!(b.get(StallKind::L1iMiss), 0);
    }

    #[test]
    fn addition_accumulates() {
        let mut a = StallBreakdown::new();
        a.issued_cycles = 5;
        a.record(StallKind::LongLatency);
        let mut b = StallBreakdown::new();
        b.issued_cycles = 7;
        b.record(StallKind::LongLatency);
        b.record(StallKind::ControlHazard);
        let c = a + b;
        assert_eq!(c.issued_cycles, 12);
        assert_eq!(c.get(StallKind::LongLatency), 2);
        assert_eq!(c.get(StallKind::ControlHazard), 1);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = StallBreakdown::new();
        assert_eq!(b.stall_fraction(), 0.0);
        assert_eq!(b.fraction(StallKind::Raw), 0.0);
    }

    #[test]
    fn labels_are_paper_strings() {
        assert_eq!(StallKind::Raw.label(), "RAW Stall");
        assert_eq!(StallKind::Barrier.to_string(), "Barrier Stall");
    }
}
