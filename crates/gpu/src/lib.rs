//! A first-order GPGPU performance model — the hardware substrate of the
//! TensorFHE reproduction.
//!
//! The paper evaluates on real NVIDIA GPUs (A100/V100) and on GPGPUSim (for
//! the 1080Ti stall analysis). Neither is available here, so this crate
//! models the three machines at the level the paper's numbers depend on:
//!
//! * [`device`] — static machine descriptions (SMs, clocks, CUDA cores,
//!   tensor cores, HBM bandwidth, VRAM, power) for A100, V100 and GTX1080Ti.
//! * [`warp_sim`] — an in-order, scoreboarded warp scheduler simulator that
//!   executes per-thread instruction templates and classifies every unhidden
//!   stall cycle into the six buckets of Fig. 4 (RAW, long latency, L1I
//!   miss, control hazard, function-unit busy, barrier).
//! * [`kernel`] — kernel descriptors: the instruction template, thread
//!   geometry and memory traffic of each TensorFHE kernel class (butterfly
//!   NTT, CUDA-core GEMM, TCU GEMM, element-wise, permutation, basis
//!   conversion, plus the FFT/DWT reference kernels of Fig. 4).
//! * [`engine`] — a discrete-event device engine with CUDA-stream semantics
//!   (concurrent kernels water-fill the SM pool, which is how the 16
//!   segmented GEMMs of Fig. 8 overlap), per-launch statistics, occupancy
//!   and an energy model.
//! * [`profiler`] — aggregation of per-launch stats into the per-kernel and
//!   per-operation breakdowns reported in Figs. 10–13 and Tables IX/XI.
//!
//! Nothing in this crate knows about FHE; it executes abstract kernel
//! descriptions. The kernel layer of `tensorfhe-core` translates CKKS
//! kernels into [`kernel::KernelDesc`]s, so the performance ordering between
//! TensorFHE-NT/-CO/full TensorFHE *emerges* from the model rather than
//! being tabulated.
//!
//! # Examples
//!
//! ```
//! use tensorfhe_gpu::device::DeviceConfig;
//! use tensorfhe_gpu::engine::DeviceSim;
//! use tensorfhe_gpu::kernel::{KernelClass, KernelDesc};
//!
//! let mut sim = DeviceSim::new(DeviceConfig::a100());
//! let s = sim.create_stream();
//! sim.launch(s, KernelDesc::new(KernelClass::Elementwise {
//!     elems: 1 << 20,
//!     ops_per_elem: 2,
//!     bytes_per_elem: 24,
//! }, "ele-add"));
//! let stats = sim.synchronize();
//! assert_eq!(stats.len(), 1);
//! assert!(stats[0].duration_us > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod engine;
pub mod kernel;
pub mod profiler;
pub mod stall;
pub mod warp_sim;

pub use device::DeviceConfig;
pub use engine::{DeviceSim, KernelStats, StreamId};
pub use kernel::{KernelClass, KernelDesc, H2D_BANDWIDTH_GBPS};
pub use profiler::Profiler;
pub use stall::{StallBreakdown, StallKind};
