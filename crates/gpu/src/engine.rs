//! The discrete-event device engine.
//!
//! Kernels are launched into CUDA streams; the engine advances virtual time,
//! letting concurrently-runnable kernels share the machine. Each kernel's
//! *standalone* cost (latency with the whole device to itself) comes from
//! the warp simulator (CUDA-core kernels) or the tensor-core pipeline model
//! (TCU GEMMs), combined with a bandwidth model; concurrent kernels then
//! water-fill the two execution pools (CUDA cores and TCUs, which genuinely
//! overlap on the hardware) subject to each kernel's maximum parallel
//! fraction. This is what makes the paper's 16-streams-of-small-GEMMs
//! pattern (Fig. 8) profitable in the model, for the same reason it is
//! profitable on the real machine.
//!
//! Host-side launch overhead is modelled as a serial CPU enqueue: every
//! launch advances the host clock by `kernel_launch_us`, and a kernel can
//! never start before its enqueue completes.

use crate::device::DeviceConfig;
use crate::kernel::{KernelClass, KernelDesc};
use crate::stall::{StallBreakdown, StallKind};
use crate::warp_sim::simulate_scheduler;
use std::collections::{BTreeMap, HashMap};

/// Handle to a CUDA stream created by [`DeviceSim::create_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(usize);

/// Which resource ultimately bounded a kernel's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundBy {
    /// Issue-limited on the CUDA cores.
    Compute,
    /// DRAM-bandwidth limited.
    Memory,
    /// Tensor-core throughput limited.
    TensorCore,
    /// Dominated by host launch overhead.
    Launch,
}

/// Per-launch measurement record.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Kernel name from the descriptor.
    pub name: String,
    /// Class tag (`"butterfly-ntt"`, `"gemm-tcu"`, …).
    pub class_tag: &'static str,
    /// Operation scope active at launch time (`"HMULT"`, …).
    pub op_tag: String,
    /// Stream index.
    pub stream: usize,
    /// Virtual start time (µs).
    pub start_us: f64,
    /// Virtual end time (µs).
    pub end_us: f64,
    /// Wall duration on the device (µs).
    pub duration_us: f64,
    /// Standalone (exclusive-device) duration (µs).
    pub standalone_us: f64,
    /// Stall accounting from the warp simulator (empty for TCU kernels).
    pub breakdown: StallBreakdown,
    /// Achieved occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// DRAM bytes moved.
    pub bytes: u64,
    /// Tensor-core MACs executed.
    pub tcu_macs: u64,
    /// Energy attributed to this kernel (J).
    pub energy_j: f64,
    /// Limiting resource.
    pub bound: BoundBy,
}

/// Pool a kernel executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Cuda,
    Tcu,
}

#[derive(Debug, Clone)]
struct CostProfile {
    standalone_us: f64,
    parallel_fraction: f64,
    breakdown: StallBreakdown,
    occupancy: f64,
    bound: BoundBy,
    pool: Pool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CostKey {
    class: ClassKey,
    block: u32,
    threads: Option<u64>,
    coalesced: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ClassKey {
    Butterfly(usize, usize),
    GemmCuda(usize, usize, usize, usize),
    GemmTcu(usize, usize, usize, usize),
    Elementwise(u64, u32, u32),
    Permute(u64),
    KeyUpload(u64),
    BasisConv(u64, usize),
    Fft(usize, usize),
    Dwt(usize, usize),
}

fn class_key(c: &KernelClass) -> ClassKey {
    match *c {
        KernelClass::ButterflyNtt { n, batch } => ClassKey::Butterfly(n, batch),
        KernelClass::GemmCuda { m, k, cols, batch } => ClassKey::GemmCuda(m, k, cols, batch),
        KernelClass::GemmTcu { m, k, cols, batch } => ClassKey::GemmTcu(m, k, cols, batch),
        KernelClass::Elementwise {
            elems,
            ops_per_elem,
            bytes_per_elem,
        } => ClassKey::Elementwise(elems, ops_per_elem, bytes_per_elem),
        KernelClass::Permute { elems } => ClassKey::Permute(elems),
        KernelClass::KeyUpload { bytes } => ClassKey::KeyUpload(bytes),
        KernelClass::BasisConv { elems, l_src } => ClassKey::BasisConv(elems, l_src),
        KernelClass::FftButterfly { n, batch } => ClassKey::Fft(n, batch),
        KernelClass::DwtLifting { n, batch } => ClassKey::Dwt(n, batch),
    }
}

#[derive(Debug)]
struct Pending {
    desc: KernelDesc,
    op_tag: String,
    stream: usize,
    host_ready_us: f64,
    cost: CostProfile,
    /// Device-µs of work remaining (standalone_us × parallel_fraction).
    remaining_work: f64,
    started_us: Option<f64>,
}

/// Effective DRAM efficiency for a launch.
fn mem_efficiency(desc: &KernelDesc) -> f64 {
    let base = if desc.coalesced { 0.85 } else { 0.30 };
    // Threads that each touch very little data waste transactions (the
    // 32K-thread regression of Fig. 5).
    let bytes_per_thread = desc.bytes_moved() as f64 / desc.threads().max(1) as f64;
    let thin = (bytes_per_thread / 32.0).clamp(0.25, 1.0);
    base * thin.sqrt()
}

/// Simulated GPU device executing [`KernelDesc`] launches on streams.
#[derive(Debug)]
pub struct DeviceSim {
    config: DeviceConfig,
    streams: usize,
    host_clock_us: f64,
    device_clock_us: f64,
    /// FIFO launch queue per stream.
    queues: Vec<std::collections::VecDeque<Pending>>,
    pending_count: usize,
    completed: Vec<KernelStats>,
    // lint: ordered-ok (keyed get/insert only; never iterated)
    cost_cache: HashMap<CostKey, CostProfile>,
    op_tag: String,
    seq: usize,
    vram_used: u64,
    /// Maximum warp-sim iterations before linear extrapolation.
    sim_iter_cap: u64,
}

impl DeviceSim {
    /// Creates a device simulator.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            streams: 0,
            host_clock_us: 0.0,
            device_clock_us: 0.0,
            queues: Vec::new(),
            pending_count: 0,
            completed: Vec::new(),
            cost_cache: HashMap::new(),
            op_tag: String::new(),
            seq: 0,
            vram_used: 0,
            sim_iter_cap: 48,
        }
    }

    /// The device description.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Creates a new stream and returns its handle.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.streams);
        self.streams += 1;
        self.queues.push(std::collections::VecDeque::new());
        id
    }

    /// Tags subsequent launches with an operation scope (e.g. `"HMULT"`),
    /// used by the profiler's per-operation breakdowns.
    pub fn set_scope(&mut self, tag: impl Into<String>) {
        self.op_tag = tag.into();
    }

    /// Current operation scope.
    #[must_use]
    pub fn scope(&self) -> &str {
        &self.op_tag
    }

    /// Reserves device memory; returns `false` (and reserves nothing) if the
    /// allocation would exceed VRAM. Batch-size selection queries this.
    pub fn try_alloc(&mut self, bytes: u64) -> bool {
        if self.vram_used + bytes > self.config.vram_bytes() {
            false
        } else {
            self.vram_used += bytes;
            true
        }
    }

    /// Releases device memory.
    ///
    /// # Panics
    ///
    /// Panics if more bytes are freed than are allocated.
    pub fn free(&mut self, bytes: u64) {
        assert!(bytes <= self.vram_used, "freeing unallocated VRAM");
        self.vram_used -= bytes;
    }

    /// Bytes of VRAM currently reserved.
    #[must_use]
    pub fn vram_used(&self) -> u64 {
        self.vram_used
    }

    /// Enqueues a kernel on a stream. Returns immediately (asynchronous
    /// semantics); call [`DeviceSim::synchronize`] to drain.
    ///
    /// # Panics
    ///
    /// Panics if the stream was not created by this simulator, or if a TCU
    /// kernel is launched on a device without tensor cores.
    pub fn launch(&mut self, stream: StreamId, desc: KernelDesc) {
        assert!(stream.0 < self.streams, "unknown stream");
        if matches!(desc.class, KernelClass::GemmTcu { .. }) {
            assert!(
                self.config.has_tensor_cores(),
                "device {} has no tensor cores",
                self.config.name
            );
        }
        // Host enqueue cost.
        self.host_clock_us = self.host_clock_us.max(self.device_clock_us);
        self.host_clock_us += self.config.kernel_launch_us;
        let cost = self.cost_of(&desc);
        let work = cost.standalone_us * cost.parallel_fraction;
        self.queues[stream.0].push_back(Pending {
            op_tag: self.op_tag.clone(),
            stream: stream.0,
            host_ready_us: self.host_clock_us,
            remaining_work: work.max(1e-9),
            started_us: None,
            cost,
            desc,
        });
        self.pending_count += 1;
        self.seq += 1;
    }

    /// Runs the event loop until every pending kernel has completed, and
    /// returns the stats of kernels completed by *this* call in completion
    /// order.
    pub fn synchronize(&mut self) -> Vec<KernelStats> {
        let first_new = self.completed.len();
        while self.pending_count > 0 {
            self.step();
        }
        self.device_clock_us = self.device_clock_us.max(self.host_clock_us);
        // Completion order for the newly retired window (sorting once here
        // instead of on every retire keeps long runs linear).
        self.completed[first_new..]
            .sort_by(|a, b| a.end_us.partial_cmp(&b.end_us).expect("finite times"));
        self.completed[first_new..].to_vec()
    }

    /// Virtual time elapsed on the device so far (µs).
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.device_clock_us
    }

    /// All stats recorded since construction (or the last [`Self::reset`]).
    #[must_use]
    pub fn stats(&self) -> &[KernelStats] {
        &self.completed
    }

    /// The launch-interval records of every retired kernel:
    /// `(stream, start_us, end_us)` in retirement order. This is the raw
    /// material for the schedule verifier's per-stream structural checks
    /// (FIFO streams must produce non-overlapping, monotone intervals).
    pub fn intervals(&self) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        self.completed
            .iter()
            .map(|k| (k.stream, k.start_us, k.end_us))
    }

    /// Clears recorded stats and clocks, keeping the cost cache.
    pub fn reset(&mut self) {
        assert!(self.pending_count == 0, "reset with kernels in flight");
        self.completed.clear();
        self.host_clock_us = 0.0;
        self.device_clock_us = 0.0;
        self.op_tag.clear();
    }

    /// One event-loop step: advance to the next arrival or completion.
    /// Only the head of each stream queue is eligible (FIFO streams), so
    /// every step is O(#streams).
    fn step(&mut self) {
        let t = self.device_clock_us;
        // Head-of-line kernel per stream.
        let mut active: Vec<usize> = Vec::new();
        let mut next_arrival = f64::INFINITY;
        for (sid, q) in self.queues.iter().enumerate() {
            if let Some(p) = q.front() {
                if p.host_ready_us <= t + 1e-12 {
                    active.push(sid);
                } else {
                    next_arrival = next_arrival.min(p.host_ready_us);
                }
            }
        }
        if active.is_empty() {
            assert!(next_arrival.is_finite(), "device engine stalled");
            self.device_clock_us = next_arrival;
            return;
        }

        // Water-fill each pool independently over the active heads. Keyed
        // by stream index in a `BTreeMap` deliberately: the retire loop
        // below iterates it, and pushing simultaneous completions into
        // `completed` in hash order would survive the stable end-time sort
        // in `synchronize` and leak a per-process-random tiebreak into
        // completion order (a `HashMap` here is exactly the bug the L003
        // lint exists to catch).
        let mut alloc: BTreeMap<usize, f64> = BTreeMap::new();
        for pool in [Pool::Cuda, Pool::Tcu] {
            let mut caps: Vec<(usize, f64)> = active
                .iter()
                .copied()
                .filter(|&sid| self.queues[sid].front().expect("head").cost.pool == pool)
                .map(|sid| {
                    let cap = self.queues[sid]
                        .front()
                        .expect("head")
                        .cost
                        .parallel_fraction
                        .clamp(1e-6, 1.0);
                    (sid, cap)
                })
                .collect();
            if caps.is_empty() {
                continue;
            }
            caps.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
            let mut capacity = 1.0f64;
            let mut remaining = caps.len();
            for (sid, cap) in caps {
                let share = capacity / remaining as f64;
                let a = cap.min(share);
                alloc.insert(sid, a);
                capacity -= a;
                remaining -= 1;
            }
        }

        // Next event: earliest completion or next arrival.
        let mut dt = next_arrival - t;
        for (&sid, &a) in &alloc {
            if a > 0.0 {
                dt = dt.min(self.queues[sid].front().expect("head").remaining_work / a);
            }
        }
        assert!(dt.is_finite(), "device engine stalled with work pending");
        let dt = dt.max(1e-9);

        // Progress the active heads.
        for (&sid, &a) in &alloc {
            let p = self.queues[sid].front_mut().expect("head");
            if p.started_us.is_none() {
                p.started_us = Some(t);
            }
            p.remaining_work -= a * dt;
        }
        self.device_clock_us = t + dt;

        // Retire finished heads.
        let now = self.device_clock_us;
        let power = self.config.power_watts;
        for &sid in alloc.keys() {
            let done = self.queues[sid]
                .front()
                .is_some_and(|p| p.remaining_work <= 1e-9);
            if done {
                let p = self.queues[sid].pop_front().expect("head");
                self.pending_count -= 1;
                let start = p.started_us.unwrap_or(now);
                let work = p.cost.standalone_us * p.cost.parallel_fraction;
                self.completed.push(KernelStats {
                    name: p.desc.name.clone(),
                    class_tag: p.desc.class.tag(),
                    op_tag: p.op_tag,
                    stream: p.stream,
                    start_us: start,
                    end_us: now,
                    duration_us: now - start,
                    standalone_us: p.cost.standalone_us,
                    breakdown: p.cost.breakdown,
                    occupancy: p.cost.occupancy,
                    bytes: p.desc.bytes_moved(),
                    tcu_macs: p.desc.tcu_macs(),
                    energy_j: work * power / 1e6,
                    bound: p.cost.bound,
                });
            }
        }
    }

    /// Standalone cost of a launch (memoised).
    fn cost_of(&mut self, desc: &KernelDesc) -> CostProfile {
        let key = CostKey {
            class: class_key(&desc.class),
            block: desc.block_size,
            threads: desc.threads_override,
            coalesced: desc.coalesced,
        };
        if let Some(c) = self.cost_cache.get(&key) {
            return c.clone();
        }
        let cost = self.compute_cost(desc);
        self.cost_cache.insert(key, cost.clone());
        cost
    }

    fn compute_cost(&self, desc: &KernelDesc) -> CostProfile {
        let d = &self.config;
        let mem_eff = mem_efficiency(desc);
        let mem_us = desc.bytes_moved() as f64 / (d.mem_bandwidth_gbps * 1e3 * mem_eff);

        if let KernelClass::KeyUpload { .. } = desc.class {
            // Copy-engine model: PCIe, not DRAM or the SM array, bounds a
            // key-set upload, and the DMA barely contends with compute —
            // streams overlap it almost entirely.
            return CostProfile {
                standalone_us: desc.dma_us().max(d.kernel_launch_us),
                parallel_fraction: 0.05,
                breakdown: StallBreakdown::new(),
                occupancy: 0.0,
                bound: BoundBy::Memory,
                pool: Pool::Cuda,
            };
        }

        if let KernelClass::GemmTcu { m, cols, batch, .. } = desc.class {
            // Tensor-core pipeline model: padded MACs over peak rate, scaled
            // by how many tiles the launch can spread over the TCUs.
            let tiles = (m as f64 / 16.0).ceil() * (cols as f64 / 8.0).ceil() * batch as f64;
            let tcu_slots = (d.sm_count * d.tensor_cores_per_sm) as f64 * 2.0;
            let p = (tiles / tcu_slots).clamp(1e-4, 1.0);
            let rate = d.tcu_macs_per_second().max(1.0);
            let compute_us = desc.tcu_macs() as f64 / rate * 1e6 / p;
            let (standalone, bound) = if mem_us > compute_us {
                (mem_us, BoundBy::Memory)
            } else {
                (compute_us, BoundBy::TensorCore)
            };
            return CostProfile {
                standalone_us: standalone.max(0.5),
                parallel_fraction: p,
                breakdown: StallBreakdown::new(),
                occupancy: p * 0.92,
                bound,
                pool: Pool::Tcu,
            };
        }

        let template = desc.template().expect("every non-TCU class has a template");
        let threads = desc.threads();
        let warps_total = threads.div_ceil(d.warp_size as u64).max(1);
        let sched_total = (d.sm_count * d.schedulers_per_sm) as u64;
        let warps_per_block = (desc.block_size / d.warp_size).max(1) as u64;
        let warps_per_sched_cap = ((d.max_warps_per_sm / d.schedulers_per_sm).max(1) as u64)
            .min(desc.class.resident_warp_cap())
            .max(warps_per_block.min(8));
        let resident = (warps_total.div_ceil(sched_total)).clamp(1, warps_per_sched_cap);
        let iters = desc.iters_per_thread();
        let sim_iters = iters.min(self.sim_iter_cap).max(1);
        let sim = simulate_scheduler(
            d,
            &template,
            resident as usize,
            sim_iters,
            (warps_per_block as usize).min(resident as usize),
        );
        let cycles = sim.cycles as f64 * iters as f64 / sim_iters as f64;
        let waves = (warps_total as f64 / (sched_total * resident) as f64).max(1.0);
        let compute_us = waves * cycles / (d.clock_ghz * 1e3);

        // The stall profile is the *pipeline* view (GPGPUSim-style); the
        // bandwidth bound is reported separately via `bound` so Fig. 4/10
        // percentages are not diluted by DRAM time.
        let breakdown = sim.breakdown;
        let (standalone, bound) = if mem_us > compute_us {
            (mem_us, BoundBy::Memory)
        } else {
            (compute_us, BoundBy::Compute)
        };

        // Achieved occupancy is residency-driven (NSight counts resident
        // warps per cycle; warps waiting on memory still count), with a
        // small duty term separating saturated compute from pure streaming.
        let resident_frac = (warps_total as f64 / d.total_warp_slots() as f64).clamp(0.0, 1.0);
        let duty = (compute_us / standalone.max(1e-12)).clamp(0.05, 1.0);
        let occupancy = (resident_frac * (0.85 + 0.15 * duty)).clamp(0.0, 1.0);
        let parallel_fraction = resident_frac.max(1e-4);

        CostProfile {
            standalone_us: standalone.max(0.5),
            parallel_fraction,
            breakdown,
            occupancy,
            bound,
            pool: Pool::Cuda,
        }
    }

    /// Exposes the standalone cost of a descriptor without launching it —
    /// used by the API layer's batch-size search and by unit tests.
    pub fn peek_cost(&mut self, desc: &KernelDesc) -> (f64, StallBreakdown, f64) {
        let c = self.cost_of(desc);
        (c.standalone_us, c.breakdown, c.occupancy)
    }

    /// Attribution of a full launch's stall profile (Fig. 4/10 data): runs
    /// the kernel in isolation and returns its breakdown without touching
    /// the clocks.
    pub fn stall_profile(&mut self, desc: &KernelDesc) -> StallBreakdown {
        self.cost_of(desc).breakdown
    }

    /// Convenience: fraction of cycles stalled for `kind` when the kernel
    /// runs standalone.
    pub fn stall_fraction(&mut self, desc: &KernelDesc, kind: StallKind) -> f64 {
        self.stall_profile(desc).fraction(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-device simulators are owned by executor worker threads, so the
    /// simulator state must be `Send` (plain data, no shared interior
    /// mutability).
    #[test]
    fn device_sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DeviceSim>();
        assert_send::<DeviceConfig>();
    }

    fn sim() -> DeviceSim {
        DeviceSim::new(DeviceConfig::a100())
    }

    fn ew(elems: u64) -> KernelDesc {
        KernelDesc::new(
            KernelClass::Elementwise {
                elems,
                ops_per_elem: 2,
                bytes_per_elem: 12,
            },
            "ew",
        )
    }

    #[test]
    fn single_kernel_runs_and_reports() {
        let mut s = sim();
        let st = s.create_stream();
        s.set_scope("HADD");
        s.launch(st, ew(1 << 20));
        let done = s.synchronize();
        assert_eq!(done.len(), 1);
        let k = &done[0];
        assert!(k.duration_us > 0.0);
        assert_eq!(k.op_tag, "HADD");
        assert!(k.end_us >= k.start_us);
    }

    #[test]
    fn key_upload_launch_is_costed_by_the_copy_engine() {
        let mut s = sim();
        let st = s.create_stream();
        s.set_scope("KEY-UPLOAD");
        let bytes = 256 * 1024 * 1024; // a paper-scale galois key set slice
        let desc = KernelDesc::new(KernelClass::KeyUpload { bytes }, "key-upload");
        let expect_us = desc.dma_us();
        s.launch(st, desc);
        let done = s.synchronize();
        assert_eq!(done.len(), 1);
        let k = &done[0];
        // PCIe-bound: the launch takes at least the DMA time, and nowhere
        // near the DRAM-bandwidth time a compute kernel would be charged.
        assert!(
            k.duration_us >= expect_us * 0.99,
            "DMA undercharged: {} vs {}",
            k.duration_us,
            expect_us
        );
        assert_eq!(k.occupancy, 0.0, "the copy engine occupies no SMs");
        assert_eq!(k.tcu_macs, 0);
    }

    #[test]
    fn same_stream_serializes() {
        let mut s = sim();
        let st = s.create_stream();
        s.launch(st, ew(1 << 22));
        s.launch(st, ew(1 << 22));
        let done = s.synchronize();
        assert_eq!(done.len(), 2);
        assert!(
            done[1].start_us >= done[0].end_us - 1e-6,
            "stream order violated"
        );
    }

    #[test]
    fn streams_overlap_small_kernels() {
        // 16 deep-but-narrow TCU GEMMs (few tiles → small parallel fraction,
        // deep k → real duration) across 16 streams vs serial on one stream.
        let gemm = KernelDesc::new(
            KernelClass::GemmTcu {
                m: 64,
                k: 65536,
                cols: 64,
                batch: 1,
            },
            "gemm",
        );
        let mut serial = sim();
        let st = serial.create_stream();
        for _ in 0..16 {
            serial.launch(st, gemm.clone());
        }
        serial.synchronize();
        let t_serial = serial.elapsed_us();

        let mut par = sim();
        let streams: Vec<StreamId> = (0..16).map(|_| par.create_stream()).collect();
        for s_id in &streams {
            par.launch(*s_id, gemm.clone());
        }
        par.synchronize();
        let t_par = par.elapsed_us();
        assert!(
            t_par < t_serial * 0.75,
            "stream overlap must help small GEMMs: serial {t_serial} vs parallel {t_par}"
        );
    }

    #[test]
    fn bigger_launches_take_longer() {
        let mut s = sim();
        let (a, _, _) = s.peek_cost(&ew(1 << 18));
        let (b, _, _) = s.peek_cost(&ew(1 << 24));
        assert!(
            b > a * 10.0,
            "64× the elements must cost much more: {a} vs {b}"
        );
    }

    #[test]
    fn strided_layout_slower_than_coalesced() {
        let mut s = sim();
        let (fast, _, _) = s.peek_cost(&ew(1 << 22));
        let (slow, _, _) = s.peek_cost(&ew(1 << 22).with_strided_layout());
        assert!(
            slow > fast * 1.5,
            "strided {slow} should be ≥1.5× coalesced {fast}"
        );
    }

    #[test]
    fn butterfly_ntt_has_raw_stalls_gemm_does_not() {
        let mut s = DeviceSim::new(DeviceConfig::gtx1080ti());
        let ntt = KernelDesc::new(
            KernelClass::ButterflyNtt {
                n: 1 << 12,
                batch: 8,
            },
            "ntt",
        )
        .with_block_size(128);
        let gemm = KernelDesc::new(
            KernelClass::GemmCuda {
                m: 64,
                k: 64,
                cols: 64,
                batch: 8,
            },
            "gemm",
        );
        let raw_ntt = s.stall_fraction(&ntt, StallKind::Raw);
        let raw_gemm = s.stall_fraction(&gemm, StallKind::Raw);
        assert!(
            raw_ntt > raw_gemm + 0.02,
            "butterfly RAW ({raw_ntt}) must exceed GEMM RAW ({raw_gemm})"
        );
    }

    #[test]
    fn v100_slower_than_a100_for_same_kernel() {
        let gemm = KernelDesc::new(
            KernelClass::GemmTcu {
                m: 256,
                k: 256,
                cols: 256,
                batch: 45,
            },
            "gemm",
        );
        let mut a = DeviceSim::new(DeviceConfig::a100());
        let mut v = DeviceSim::new(DeviceConfig::v100());
        let (ta, _, _) = a.peek_cost(&gemm);
        let (tv, _, _) = v.peek_cost(&gemm);
        assert!(tv > ta, "V100 ({tv}) must be slower than A100 ({ta})");
    }

    #[test]
    fn tcu_kernel_rejected_without_tensor_cores() {
        let mut s = DeviceSim::new(DeviceConfig::gtx1080ti());
        let st = s.create_stream();
        let gemm = KernelDesc::new(
            KernelClass::GemmTcu {
                m: 16,
                k: 16,
                cols: 16,
                batch: 1,
            },
            "gemm",
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.launch(st, gemm);
        }));
        assert!(r.is_err(), "launching TCU kernel on 1080Ti must panic");
    }

    #[test]
    fn butterfly_profile_shows_barrier_stalls() {
        // The Fig. 4 configuration produces a small but non-zero barrier
        // component (blocks assemble while sibling blocks hold the issue
        // slots).
        let mut s = DeviceSim::new(DeviceConfig::gtx1080ti());
        let ntt = KernelDesc::new(
            KernelClass::ButterflyNtt {
                n: 1 << 14,
                batch: 4,
            },
            "ntt",
        )
        .with_block_size(128);
        let b = s.stall_profile(&ntt);
        assert!(
            b.get(StallKind::Barrier) > 0,
            "expected barrier stalls: {b:?}"
        );
        // And the headline Fig. 4 shape: roughly 40-50% total stalls.
        let f = b.stall_fraction();
        assert!(
            (0.30..0.60).contains(&f),
            "NTT stall fraction {f} out of band"
        );
    }

    #[test]
    fn vram_accounting() {
        let mut s = sim();
        assert!(s.try_alloc(10 << 30));
        assert!(!s.try_alloc(31 << 30), "40 GiB card cannot hold 41 GiB");
        s.free(10 << 30);
        assert_eq!(s.vram_used(), 0);
    }

    #[test]
    fn energy_scales_with_work() {
        let mut s = sim();
        let st = s.create_stream();
        s.launch(st, ew(1 << 20));
        s.launch(st, ew(1 << 24));
        let done = s.synchronize();
        assert!(done[1].energy_j > done[0].energy_j * 4.0);
    }

    #[test]
    fn batching_improves_throughput_per_item() {
        // One batched launch of 64 polys beats 64 separate launches.
        let mut s = sim();
        let st = s.create_stream();
        for _ in 0..64 {
            s.launch(
                st,
                KernelDesc::new(
                    KernelClass::ButterflyNtt {
                        n: 1 << 12,
                        batch: 1,
                    },
                    "ntt",
                ),
            );
        }
        s.synchronize();
        let t_individual = s.elapsed_us();

        let mut s2 = sim();
        let st2 = s2.create_stream();
        s2.launch(
            st2,
            KernelDesc::new(
                KernelClass::ButterflyNtt {
                    n: 1 << 12,
                    batch: 64,
                },
                "ntt",
            ),
        );
        s2.synchronize();
        let t_batched = s2.elapsed_us();
        assert!(
            t_batched < t_individual / 2.0,
            "batching must amortise launches: {t_batched} vs {t_individual}"
        );
    }
}
