//! In-order scoreboarded warp-scheduler simulator.
//!
//! This is the reproduction's stand-in for the GPGPUSim experiments of
//! §III-A: each kernel class is lowered to a small per-iteration instruction
//! template ([`Instr`] sequence), and the simulator executes `warps`
//! resident warps round-robin on one warp scheduler with realistic
//! latencies, issue-port conflicts, instruction-cache misses, loop-redirect
//! penalties and block barriers. Every cycle in which the scheduler issues
//! nothing is attributed to one of the six [`StallKind`] buckets — "only the
//! stall cycles that cannot be hidden", exactly the counting rule of Fig. 4.
//!
//! The butterfly-NTT template carries a genuine RAW chain
//! (`load → mulhi → mullo → correct → add/sub`), so the large RAW fraction
//! of the butterfly kernel and its disappearance under the GEMM formulation
//! (Fig. 10) are *emergent* behaviours, not table lookups.

use crate::device::DeviceConfig;
use crate::stall::{StallBreakdown, StallKind};

/// Maximum virtual registers addressable by a template.
pub const MAX_REGS: usize = 16;

/// One per-thread (per-warp, since warps run in lockstep) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Integer ALU op (add/sub/compare), 4-cycle latency.
    Alu {
        /// Destination register.
        dst: u8,
        /// Source registers.
        srcs: [u8; 2],
    },
    /// Integer multiply (or `mul.hi`), 5-cycle latency.
    Mul {
        /// Destination register.
        dst: u8,
        /// Source registers.
        srcs: [u8; 2],
    },
    /// Fused multiply-add into an accumulator, 5-cycle latency.
    Mad {
        /// Destination (accumulator) register.
        dst: u8,
        /// Source registers.
        srcs: [u8; 2],
    },
    /// Global-memory load.
    LdGlobal {
        /// Destination register.
        dst: u8,
        /// Whether the warp's accesses coalesce into few transactions.
        coalesced: bool,
    },
    /// Shared-memory load.
    LdShared {
        /// Destination register.
        dst: u8,
    },
    /// Global-memory store (fire-and-forget).
    StGlobal {
        /// Source register.
        src: u8,
    },
    /// Block-wide barrier (`__syncthreads`).
    Bar,
}

/// A kernel's steady-state loop body plus fetch-pressure metadata.
#[derive(Debug, Clone)]
pub struct InstrTemplate {
    /// The loop body executed once per iteration.
    pub body: Vec<Instr>,
    /// Relative instruction-footprint factor; >1 means the unrolled kernel
    /// overflows L1I more often (butterfly NTTs with per-stage specialisation
    /// are the canonical example).
    pub code_footprint: f64,
    /// Cycles lost re-steering the pipeline at each loop-trip boundary.
    pub loop_redirect_cycles: u32,
}

/// Result of simulating one warp scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Total cycles until all warps finished all iterations.
    pub cycles: u64,
    /// Issue/stall accounting.
    pub breakdown: StallBreakdown,
    /// Total warp-instructions issued.
    pub instructions: u64,
}

impl SimResult {
    /// Issued instructions per cycle (≤ 1 for the single-issue scheduler).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

const ALU_LATENCY: u64 = 4;
const MUL_LATENCY: u64 = 5;
const ICACHE_MISS_PENALTY: u64 = 12;
const ICACHE_BASE_WINDOW: f64 = 480.0;
/// Issue-port reissue intervals (cycles a port stays busy after an issue).
const ALU_PORT_INTERVAL: u64 = 1;
const MUL_PORT_INTERVAL: u64 = 1;
const LSU_PORT_INTERVAL: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpBlock {
    Ready,
    Raw,
    LongLatency,
    L1iMiss,
    ControlHazard,
    FuBusy,
    Barrier,
    Done,
}

#[derive(Debug, Clone)]
struct WarpState {
    pc: usize,
    iter: u64,
    /// Cycle at which each register's value becomes available.
    reg_ready: [u64; MAX_REGS],
    /// Which registers were produced by a memory load (for stall typing).
    reg_from_mem: [bool; MAX_REGS],
    /// Warp is frozen until this cycle (icache / redirect).
    frozen_until: u64,
    frozen_reason: Option<StallKind>,
    /// Dynamic instructions fetched since the last icache miss.
    fetch_count: f64,
    waiting_barrier: bool,
    done: bool,
}

/// Simulates `warps` resident warps executing `iters` iterations of the
/// template on a single warp scheduler of `device`.
///
/// Barriers synchronise `warps_per_block`-sized groups (thread blocks);
/// warps of other blocks keep issuing across a barrier, exactly as
/// `__syncthreads` behaves on hardware.
///
/// Deterministic: same inputs always give the same cycle counts.
///
/// # Panics
///
/// Panics if the template references a register ≥ [`MAX_REGS`], or if
/// `warps == 0`, `warps_per_block == 0`, or the body is empty.
#[must_use]
pub fn simulate_scheduler(
    device: &DeviceConfig,
    template: &InstrTemplate,
    warps: usize,
    iters: u64,
    warps_per_block: usize,
) -> SimResult {
    assert!(warps > 0, "need at least one resident warp");
    assert!(warps_per_block > 0, "need at least one warp per block");
    assert!(!template.body.is_empty(), "template body must not be empty");
    for instr in &template.body {
        let regs: &[u8] = match instr {
            Instr::Alu { dst, srcs } | Instr::Mul { dst, srcs } | Instr::Mad { dst, srcs } => {
                &[*dst, srcs[0], srcs[1]]
            }
            Instr::LdGlobal { dst, .. } | Instr::LdShared { dst } => std::slice::from_ref(dst),
            Instr::StGlobal { src } => std::slice::from_ref(src),
            Instr::Bar => &[],
        };
        for &r in regs {
            assert!((r as usize) < MAX_REGS, "register {r} out of range");
        }
    }

    let icache_window = ICACHE_BASE_WINDOW / template.code_footprint.max(0.1);
    let mut warps_state: Vec<WarpState> = (0..warps)
        .map(|i| WarpState {
            pc: 0,
            iter: 0,
            reg_ready: [0; MAX_REGS],
            reg_from_mem: [false; MAX_REGS],
            frozen_until: 0,
            frozen_reason: None,
            // Stagger fetch counters so icache misses don't align artificially.
            fetch_count: (i as f64 * 7.0) % icache_window,
            waiting_barrier: false,
            done: false,
        })
        .collect();

    let mut breakdown = StallBreakdown::new();
    let mut instructions: u64 = 0;
    let mut cycle: u64 = 0;
    let mut rr_next = 0usize;
    // Issue-port busy-until markers.
    let mut alu_free = 0u64;
    let mut mul_free = 0u64;
    let mut lsu_free = 0u64;
    // The instruction cache is shared by the scheduler: a miss freezes
    // fetch for every resident warp.
    let mut icache_frozen_until = 0u64;
    // Hard safety valve against accidental deadlock.
    let max_cycles = 10_000_000u64 + iters * warps as u64 * template.body.len() as u64 * 64;

    let all_done = |ws: &[WarpState]| ws.iter().all(|w| w.done);
    while !all_done(&warps_state) {
        assert!(cycle < max_cycles, "warp simulator failed to converge");
        if icache_frozen_until > cycle {
            breakdown.record(StallKind::L1iMiss);
            cycle += 1;
            continue;
        }
        // Barrier release, per thread block: when every non-done warp of a
        // block is waiting, that block proceeds.
        for block_start in (0..warps_state.len()).step_by(warps_per_block) {
            let block_end = (block_start + warps_per_block).min(warps_state.len());
            let block = &warps_state[block_start..block_end];
            if block.iter().any(|w| w.waiting_barrier)
                && block.iter().all(|w| w.done || w.waiting_barrier)
            {
                for w in &mut warps_state[block_start..block_end] {
                    if w.waiting_barrier {
                        w.waiting_barrier = false;
                        w.pc += 1;
                        advance_loop(w, template, iters, cycle);
                    }
                }
            }
        }

        // Find an issueable warp, round-robin from rr_next.
        let mut issued = false;
        let mut blocks: Vec<WarpBlock> = Vec::with_capacity(warps);
        for off in 0..warps {
            let idx = (rr_next + off) % warps;
            let (block, can_issue) = classify(
                &warps_state[idx],
                template,
                cycle,
                alu_free,
                mul_free,
                lsu_free,
            );
            if can_issue && !issued {
                issue(
                    &mut warps_state[idx],
                    template,
                    device,
                    cycle,
                    iters,
                    icache_window,
                    &mut alu_free,
                    &mut mul_free,
                    &mut lsu_free,
                    &mut icache_frozen_until,
                );
                instructions += 1;
                issued = true;
                rr_next = (idx + 1) % warps;
            } else {
                blocks.push(block);
            }
        }

        if issued {
            breakdown.issued_cycles += 1;
        } else {
            // Attribute the dead cycle proportionally over the blocked
            // warps' reasons (deterministic round-robin), mirroring
            // per-warp-slot accounting.
            let kind = attribute(&blocks, cycle);
            breakdown.record(kind);
        }
        cycle += 1;
    }

    SimResult {
        cycles: cycle,
        breakdown,
        instructions,
    }
}

fn classify(
    w: &WarpState,
    template: &InstrTemplate,
    cycle: u64,
    alu_free: u64,
    mul_free: u64,
    lsu_free: u64,
) -> (WarpBlock, bool) {
    if w.done {
        return (WarpBlock::Done, false);
    }
    if w.waiting_barrier {
        return (WarpBlock::Barrier, false);
    }
    if w.frozen_until > cycle {
        let b = match w.frozen_reason {
            Some(StallKind::L1iMiss) => WarpBlock::L1iMiss,
            Some(StallKind::ControlHazard) => WarpBlock::ControlHazard,
            _ => WarpBlock::ControlHazard,
        };
        return (b, false);
    }
    let instr = &template.body[w.pc];
    // Source readiness.
    let srcs: &[u8] = match instr {
        Instr::Alu { srcs, .. } | Instr::Mul { srcs, .. } | Instr::Mad { srcs, .. } => srcs,
        Instr::StGlobal { src } => std::slice::from_ref(src),
        _ => &[],
    };
    let mut blocked_mem = false;
    let mut blocked_raw = false;
    for &s in srcs {
        if w.reg_ready[s as usize] > cycle {
            if w.reg_from_mem[s as usize] {
                blocked_mem = true;
            } else {
                blocked_raw = true;
            }
        }
    }
    if blocked_mem {
        return (WarpBlock::LongLatency, false);
    }
    if blocked_raw {
        return (WarpBlock::Raw, false);
    }
    // Issue-port availability.
    let port_free = match instr {
        Instr::Alu { .. } => alu_free,
        Instr::Mul { .. } | Instr::Mad { .. } => mul_free,
        Instr::LdGlobal { .. } | Instr::LdShared { .. } | Instr::StGlobal { .. } => lsu_free,
        Instr::Bar => 0,
    };
    if port_free > cycle {
        return (WarpBlock::FuBusy, false);
    }
    (WarpBlock::Ready, true)
}

// Issue threads the whole per-cycle pipeline state (warp, template,
// device, scoreboard, counters) by reference; a context struct would
// borrow-conflict with the mutable warp updates below.
#[allow(clippy::too_many_arguments)]
fn issue(
    w: &mut WarpState,
    template: &InstrTemplate,
    device: &DeviceConfig,
    cycle: u64,
    iters: u64,
    icache_window: f64,
    alu_free: &mut u64,
    mul_free: &mut u64,
    lsu_free: &mut u64,
    icache_frozen_until: &mut u64,
) {
    let instr = template.body[w.pc];
    match instr {
        Instr::Alu { dst, .. } => {
            w.reg_ready[dst as usize] = cycle + ALU_LATENCY;
            w.reg_from_mem[dst as usize] = false;
            *alu_free = cycle + ALU_PORT_INTERVAL;
        }
        Instr::Mul { dst, .. } | Instr::Mad { dst, .. } => {
            w.reg_ready[dst as usize] = cycle + MUL_LATENCY;
            w.reg_from_mem[dst as usize] = false;
            *mul_free = cycle + MUL_PORT_INTERVAL;
        }
        Instr::LdGlobal { dst, coalesced } => {
            // Coalesced streaming accesses mostly hit L2 / ride the DRAM
            // pipeline (≈ a third of the raw latency); uncoalesced gathers
            // pay the full round trip.
            let lat = if coalesced {
                device.mem_latency_cycles as u64 * 3 / 10
            } else {
                device.mem_latency_cycles as u64
            };
            w.reg_ready[dst as usize] = cycle + lat;
            w.reg_from_mem[dst as usize] = true;
            *lsu_free = cycle + LSU_PORT_INTERVAL;
        }
        Instr::LdShared { dst } => {
            w.reg_ready[dst as usize] = cycle + device.shared_latency_cycles as u64;
            // Shared-memory waits are short data hazards (RAW), not
            // long-latency stalls — only DRAM loads set the memory flag.
            w.reg_from_mem[dst as usize] = false;
            *lsu_free = cycle + LSU_PORT_INTERVAL;
        }
        Instr::StGlobal { .. } => {
            *lsu_free = cycle + LSU_PORT_INTERVAL;
        }
        Instr::Bar => {
            w.waiting_barrier = true;
            // pc advances when the barrier releases.
            w.fetch_count += 1.0;
            return;
        }
    }
    w.fetch_count += 1.0;
    if w.fetch_count >= icache_window {
        w.fetch_count = 0.0;
        *icache_frozen_until = cycle + ICACHE_MISS_PENALTY;
    }
    w.pc += 1;
    advance_loop(w, template, iters, cycle);
}

fn advance_loop(w: &mut WarpState, template: &InstrTemplate, iters: u64, cycle: u64) {
    if w.pc >= template.body.len() {
        w.pc = 0;
        w.iter += 1;
        if w.iter >= iters {
            w.done = true;
        } else if template.loop_redirect_cycles > 0 {
            let until = cycle + template.loop_redirect_cycles as u64;
            if until > w.frozen_until {
                w.frozen_until = until;
                w.frozen_reason = Some(StallKind::ControlHazard);
            }
        }
    }
}

fn attribute(blocks: &[WarpBlock], cycle: u64) -> StallKind {
    let mut reasons: Vec<StallKind> = Vec::with_capacity(blocks.len());
    for b in blocks {
        let kind = match b {
            WarpBlock::Raw => StallKind::Raw,
            WarpBlock::LongLatency => StallKind::LongLatency,
            WarpBlock::L1iMiss => StallKind::L1iMiss,
            WarpBlock::ControlHazard => StallKind::ControlHazard,
            WarpBlock::FuBusy => StallKind::FunctionUnitBusy,
            WarpBlock::Barrier => StallKind::Barrier,
            WarpBlock::Ready | WarpBlock::Done => continue,
        };
        reasons.push(kind);
    }
    if reasons.is_empty() {
        // Every warp done but loop not yet exited, or transient: call it FU.
        return StallKind::FunctionUnitBusy;
    }
    reasons[(cycle as usize) % reasons.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceConfig {
        DeviceConfig::gtx1080ti()
    }

    /// A serial dependency chain: every op reads the previous result.
    fn chain_template() -> InstrTemplate {
        InstrTemplate {
            body: vec![
                Instr::Mul {
                    dst: 1,
                    srcs: [0, 0],
                },
                Instr::Mul {
                    dst: 2,
                    srcs: [1, 1],
                },
                Instr::Alu {
                    dst: 3,
                    srcs: [2, 2],
                },
                Instr::Alu {
                    dst: 4,
                    srcs: [3, 3],
                },
            ],
            code_footprint: 1.0,
            loop_redirect_cycles: 0,
        }
    }

    /// Independent ops: no chains at all.
    fn ilp_template() -> InstrTemplate {
        InstrTemplate {
            body: vec![
                Instr::Mad {
                    dst: 1,
                    srcs: [0, 0],
                },
                Instr::Mad {
                    dst: 2,
                    srcs: [0, 0],
                },
                Instr::Mad {
                    dst: 3,
                    srcs: [0, 0],
                },
                Instr::Mad {
                    dst: 4,
                    srcs: [0, 0],
                },
            ],
            code_footprint: 1.0,
            loop_redirect_cycles: 0,
        }
    }

    #[test]
    fn single_warp_chain_is_raw_bound() {
        let r = simulate_scheduler(&device(), &chain_template(), 1, 200, 1);
        assert!(
            r.breakdown.fraction(StallKind::Raw) > 0.5,
            "serial chain with one warp must be RAW-dominated, got {:?}",
            r.breakdown
        );
    }

    #[test]
    fn more_warps_hide_raw_stalls() {
        let few = simulate_scheduler(&device(), &chain_template(), 2, 200, 2);
        let many = simulate_scheduler(&device(), &chain_template(), 12, 200, 12);
        assert!(
            many.breakdown.stall_fraction() < few.breakdown.stall_fraction(),
            "warp parallelism must hide dependency stalls"
        );
        assert!(many.ipc() > few.ipc());
    }

    #[test]
    fn ilp_template_out_issues_chain() {
        let chain = simulate_scheduler(&device(), &chain_template(), 4, 200, 4);
        let ilp = simulate_scheduler(&device(), &ilp_template(), 4, 200, 4);
        assert!(
            ilp.ipc() > chain.ipc(),
            "independent MADs ({}) must beat the chain ({})",
            ilp.ipc(),
            chain.ipc()
        );
        assert!(ilp.breakdown.fraction(StallKind::Raw) < chain.breakdown.fraction(StallKind::Raw));
    }

    #[test]
    fn memory_loads_cause_long_latency_stalls() {
        let t = InstrTemplate {
            body: vec![
                Instr::LdGlobal {
                    dst: 1,
                    coalesced: true,
                },
                Instr::Alu {
                    dst: 2,
                    srcs: [1, 1],
                },
            ],
            code_footprint: 1.0,
            loop_redirect_cycles: 0,
        };
        let r = simulate_scheduler(&device(), &t, 2, 100, 2);
        assert!(
            r.breakdown.fraction(StallKind::LongLatency) > 0.5,
            "dependent loads with 2 warps must be memory-latency bound: {:?}",
            r.breakdown
        );
    }

    #[test]
    fn barrier_waits_are_classified() {
        // A straggler block blocked on DRAM while a sibling block has
        // assembled at its barrier yields dead cycles attributed to Barrier.
        // The realistic reproduction lives in the engine test
        // `engine::tests::butterfly_profile_shows_barrier_stalls`; here we
        // check the classifier directly on a handcrafted scenario.
        let t = InstrTemplate {
            body: vec![
                Instr::LdGlobal {
                    dst: 1,
                    coalesced: false,
                },
                Instr::Mul {
                    dst: 2,
                    srcs: [1, 1],
                },
                Instr::Mul {
                    dst: 3,
                    srcs: [2, 2],
                },
                Instr::Mul {
                    dst: 4,
                    srcs: [3, 3],
                },
                Instr::Mul {
                    dst: 5,
                    srcs: [4, 4],
                },
                Instr::Mul {
                    dst: 6,
                    srcs: [5, 5],
                },
                Instr::Alu {
                    dst: 7,
                    srcs: [6, 6],
                },
                Instr::Bar,
            ],
            code_footprint: 4.0,
            loop_redirect_cycles: 6,
        };
        let r = simulate_scheduler(&device(), &t, 5, 200, 4);
        // The classifier must at minimum never lose cycles: issued + stalls
        // equals total, and the RAW chain must register.
        assert_eq!(r.breakdown.total_cycles(), r.cycles);
        assert!(r.breakdown.get(StallKind::Raw) > 0);
    }

    #[test]
    fn barrier_synchronisation_costs_cycles() {
        // The same body with a barrier can never be faster than without.
        let body = vec![
            Instr::LdGlobal {
                dst: 1,
                coalesced: true,
            },
            Instr::Mul {
                dst: 2,
                srcs: [1, 1],
            },
            Instr::Alu {
                dst: 3,
                srcs: [2, 2],
            },
        ];
        let free = InstrTemplate {
            body: body.clone(),
            code_footprint: 1.0,
            loop_redirect_cycles: 0,
        };
        let mut with_bar = body;
        with_bar.push(Instr::Bar);
        let barred = InstrTemplate {
            body: with_bar,
            code_footprint: 1.0,
            loop_redirect_cycles: 0,
        };
        let rf = simulate_scheduler(&device(), &free, 8, 100, 8);
        let rb = simulate_scheduler(&device(), &barred, 8, 100, 8);
        assert!(rb.cycles >= rf.cycles);
    }

    #[test]
    fn icache_pressure_scales_with_footprint() {
        // A single resident warp cannot hide fetch stalls, making the
        // footprint effect observable.
        let mut small = ilp_template();
        small.code_footprint = 1.0;
        let mut big = ilp_template();
        big.code_footprint = 8.0;
        let rs = simulate_scheduler(&device(), &small, 1, 500, 1);
        let rb = simulate_scheduler(&device(), &big, 1, 500, 1);
        assert!(
            rb.breakdown.get(StallKind::L1iMiss) > rs.breakdown.get(StallKind::L1iMiss),
            "bigger code footprint must miss L1I more"
        );
    }

    #[test]
    fn redirect_penalty_produces_control_hazards() {
        let mut t = ilp_template();
        t.loop_redirect_cycles = 8;
        let r = simulate_scheduler(&device(), &t, 1, 100, 1);
        assert!(r.breakdown.get(StallKind::ControlHazard) > 0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_scheduler(&device(), &chain_template(), 6, 123, 6);
        let b = simulate_scheduler(&device(), &chain_template(), 6, 123, 6);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn instruction_count_exact() {
        let warps = 3u64;
        let iters = 17u64;
        let r = simulate_scheduler(
            &device(),
            &ilp_template(),
            warps as usize,
            iters,
            warps as usize,
        );
        assert_eq!(r.instructions, warps * iters * 4);
    }
}
