//! Aggregation of per-launch stats into the paper's reporting units.
//!
//! Figures 11–13 report execution-time *breakdowns* (per kernel within an
//! operation, per kernel within a workload, per operation within a
//! workload); Table IX reports occupancy per operation; Table XI reports
//! energy. [`Profiler`] computes all of these from a flat slice of
//! [`KernelStats`].

use crate::engine::KernelStats;
use crate::stall::StallBreakdown;
use std::collections::BTreeMap;

/// Aggregated view over a set of kernel launches.
#[derive(Debug, Clone)]
pub struct Profiler {
    stats: Vec<KernelStats>,
}

impl Profiler {
    /// Builds a profiler over a snapshot of launch stats.
    #[must_use]
    pub fn new(stats: Vec<KernelStats>) -> Self {
        Self { stats }
    }

    /// Underlying records.
    #[must_use]
    pub fn records(&self) -> &[KernelStats] {
        &self.stats
    }

    /// Wall-clock span covered by the launches (µs): latest end minus
    /// earliest start. This is the "execution time" of tables VI/VII/X.
    #[must_use]
    pub fn span_us(&self) -> f64 {
        let start = self
            .stats
            .iter()
            .map(|s| s.start_us)
            .fold(f64::INFINITY, f64::min);
        let end = self.stats.iter().map(|s| s.end_us).fold(0.0, f64::max);
        if start.is_finite() && end > start {
            end - start
        } else {
            0.0
        }
    }

    /// Sum of per-kernel device time (µs). Exceeds `span_us` when streams
    /// overlap.
    #[must_use]
    pub fn busy_us(&self) -> f64 {
        self.stats.iter().map(|s| s.duration_us).sum()
    }

    /// Device time grouped by kernel name, descending.
    #[must_use]
    pub fn time_by_kernel(&self) -> Vec<(String, f64)> {
        let mut m: BTreeMap<String, f64> = BTreeMap::new();
        for s in &self.stats {
            *m.entry(s.name.clone()).or_insert(0.0) += s.duration_us;
        }
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        v
    }

    /// Device time grouped by operation scope, descending.
    #[must_use]
    pub fn time_by_op(&self) -> Vec<(String, f64)> {
        let mut m: BTreeMap<String, f64> = BTreeMap::new();
        for s in &self.stats {
            *m.entry(s.op_tag.clone()).or_insert(0.0) += s.duration_us;
        }
        let mut v: Vec<_> = m.into_iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        v
    }

    /// Fractional kernel breakdown (sums to 1) — the Fig. 11/12 bars.
    #[must_use]
    pub fn kernel_fractions(&self) -> Vec<(String, f64)> {
        let total = self.busy_us();
        if total <= 0.0 {
            return Vec::new();
        }
        self.time_by_kernel()
            .into_iter()
            .map(|(k, t)| (k, t / total))
            .collect()
    }

    /// Fractional operation breakdown (sums to 1) — the Fig. 13 bars.
    #[must_use]
    pub fn op_fractions(&self) -> Vec<(String, f64)> {
        let total = self.busy_us();
        if total <= 0.0 {
            return Vec::new();
        }
        self.time_by_op()
            .into_iter()
            .map(|(k, t)| (k, t / total))
            .collect()
    }

    /// Restricts to launches inside one operation scope.
    #[must_use]
    pub fn for_op(&self, op: &str) -> Profiler {
        Profiler::new(
            self.stats
                .iter()
                .filter(|s| s.op_tag == op)
                .cloned()
                .collect(),
        )
    }

    /// Restricts to launches of one kernel name.
    #[must_use]
    pub fn for_kernel(&self, name: &str) -> Profiler {
        Profiler::new(
            self.stats
                .iter()
                .filter(|s| s.name == name)
                .cloned()
                .collect(),
        )
    }

    /// Time-weighted average occupancy in `[0, 1]` (Table IX).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let total = self.busy_us();
        if total <= 0.0 {
            return 0.0;
        }
        self.stats
            .iter()
            .map(|s| s.occupancy * s.duration_us)
            .sum::<f64>()
            / total
    }

    /// Total attributed energy in joules (Table XI).
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.stats.iter().map(|s| s.energy_j).sum()
    }

    /// Total DRAM traffic in bytes.
    #[must_use]
    pub fn dram_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }

    /// Summed stall breakdown over all launches.
    #[must_use]
    pub fn stall_breakdown(&self) -> StallBreakdown {
        let mut b = StallBreakdown::new();
        for s in &self.stats {
            b += s.breakdown;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::engine::DeviceSim;
    use crate::kernel::{KernelClass, KernelDesc};

    fn run_two_ops() -> Profiler {
        let mut sim = DeviceSim::new(DeviceConfig::a100());
        let st = sim.create_stream();
        sim.set_scope("HADD");
        sim.launch(
            st,
            KernelDesc::new(
                KernelClass::Elementwise {
                    elems: 1 << 20,
                    ops_per_elem: 1,
                    bytes_per_elem: 12,
                },
                "ele-add",
            ),
        );
        sim.set_scope("HMULT");
        sim.launch(
            st,
            KernelDesc::new(
                KernelClass::ButterflyNtt {
                    n: 1 << 14,
                    batch: 16,
                },
                "ntt",
            ),
        );
        sim.launch(
            st,
            KernelDesc::new(
                KernelClass::Elementwise {
                    elems: 1 << 20,
                    ops_per_elem: 2,
                    bytes_per_elem: 12,
                },
                "hada-mult",
            ),
        );
        sim.synchronize();
        Profiler::new(sim.stats().to_vec())
    }

    #[test]
    fn fractions_sum_to_one() {
        let p = run_two_ops();
        let sum: f64 = p.kernel_fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let sum: f64 = p.op_fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn op_filter_isolates_kernels() {
        let p = run_two_ops();
        let hmult = p.for_op("HMULT");
        assert_eq!(hmult.records().len(), 2);
        assert!(hmult.time_by_kernel().iter().any(|(k, _)| k == "ntt"));
        assert!(!hmult.time_by_kernel().iter().any(|(k, _)| k == "ele-add"));
    }

    #[test]
    fn ntt_dominates_its_op() {
        let p = run_two_ops().for_op("HMULT");
        let by_kernel = p.time_by_kernel();
        assert_eq!(by_kernel[0].0, "ntt", "NTT should dominate: {by_kernel:?}");
    }

    #[test]
    fn span_and_busy_consistent() {
        let p = run_two_ops();
        assert!(p.span_us() > 0.0);
        // Single stream → busy cannot exceed span by much (no overlap).
        assert!(p.busy_us() <= p.span_us() * 1.001);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = Profiler::new(Vec::new());
        assert_eq!(p.span_us(), 0.0);
        assert_eq!(p.occupancy(), 0.0);
        assert!(p.kernel_fractions().is_empty());
    }

    #[test]
    fn energy_positive() {
        let p = run_two_ops();
        assert!(p.energy_j() > 0.0);
    }
}
