//! Cross-kernel bit-identity: the cache-blocked Montgomery fast kernels
//! (host backend) vs the Barrett scalar reference, across the conversion
//! shapes of all nine paper presets and the batched-NTT block shapes —
//! including both register tiles (the 4-lane limb-split SIMD tile and
//! the scalar `u128` tile) on every preset's GEMM shapes — plus the
//! no-allocation-growth property of the pooled scratch arenas under
//! repeated key-switch drains.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tensorfhe_ckks::keyswitch::{mod_down_batch, ExtPoly};
use tensorfhe_ckks::trace::Tracing;
use tensorfhe_ckks::{CkksContext, CkksParams, Domain};
use tensorfhe_math::gemm_fast::{gemm_lm_with, gemm_rm_with, MontOperand};
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_math::scratch;
use tensorfhe_math::simd::{scalar_tile, simd4};
use tensorfhe_math::Modulus;
use tensorfhe_ntt::{NttAlgorithm, NttBatchOps, PlanCache};

/// All nine paper parameter presets (Table V, Table VII, HEAX sets).
fn presets() -> [CkksParams; 9] {
    [
        CkksParams::table_v_default(),
        CkksParams::table_v_resnet20(),
        CkksParams::table_v_lr(),
        CkksParams::table_v_lstm(),
        CkksParams::table_v_packed_boot(),
        CkksParams::table_vii_bootstrap(),
        CkksParams::heax_set_a(),
        CkksParams::heax_set_b(),
        CkksParams::heax_set_c(),
    ]
}

/// Every `(L_src, L_dst)` conversion shape a parameter set exercises
/// (ModUp digits at every level, ModDown at every level).
fn conversion_shapes(params: &CkksParams) -> BTreeSet<(usize, usize)> {
    let (alpha, k) = (params.alpha(), params.special_primes());
    let mut shapes = BTreeSet::new();
    for level in 0..=params.max_level() {
        let limbs = level + 1;
        for digit in 0..limbs.div_ceil(alpha) {
            let src = alpha.min(limbs - digit * alpha);
            shapes.insert((src, limbs - src + k));
        }
        shapes.insert((k, limbs));
    }
    shapes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The Montgomery conversion kernel must be bit-identical to the
    /// Barrett path on every conversion shape any paper preset uses, at
    /// arbitrary block widths (tile-edge widths included).
    #[test]
    fn mont_conv_bit_identical_across_paper_presets(
        width in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mut shapes = BTreeSet::new();
        for p in &presets() {
            shapes.extend(conversion_shapes(p));
        }
        let max_src = shapes.iter().map(|&(s, _)| s).max().expect("non-empty");
        let max_dst = shapes.iter().map(|&(_, d)| d).max().expect("non-empty");
        let pool = generate_ntt_primes(max_src + max_dst, 28, 1 << 10);

        let mut rng = StdRng::seed_from_u64(seed);
        for &(l_src, l_dst) in &shapes {
            let (src, rest) = pool.split_at(l_src);
            let dst = &rest[..l_dst];
            // Shared through the process-wide cache, like the service path.
            let gemm = PlanCache::global().get_bconv(src, dst);
            let src_rows: Vec<Vec<u64>> = src
                .iter()
                .map(|&q| (0..width).map(|_| rng.gen_range(0..q)).collect())
                .collect();
            let views: Vec<&[u64]> = src_rows.iter().map(Vec::as_slice).collect();
            let barrett = gemm.convert_block(&views);
            let mut mont = vec![vec![0u64; width]; l_dst];
            {
                let mut out: Vec<&mut [u64]> =
                    mont.iter_mut().map(Vec::as_mut_slice).collect();
                gemm.convert_block_into_mont(&views, &mut out);
            }
            prop_assert_eq!(
                mont, barrett,
                "shape ({} → {}) width {}", l_src, l_dst, width
            );
        }
    }

    /// Both register tiles of the blocked Montgomery GEMM — the 4-lane
    /// limb-split SIMD tile and the scalar `u128` tile — must reproduce
    /// the Barrett schoolbook result bit-for-bit on every paper preset's
    /// GEMM shapes: the preset's widest basis-conversion matrix and its
    /// four-step NTT twiddle panel (clamped to 64 so the debug-build
    /// replay stays fast; the full-size panels are covered in release by
    /// the cross-backend suite and `fig15_simd_steal`). Regression seeds
    /// live in `proptest-regressions/fast_kernels.txt` and replay first
    /// on every run.
    #[test]
    fn simd_tile_bit_identical_across_paper_presets(
        width in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let q = generate_ntt_primes(1, 30, 1 << 10)[0];
        let modulus = Modulus::new(q);
        let mut rng = StdRng::seed_from_u64(seed);
        for params in &presets() {
            let (l_src, l_dst) = conversion_shapes(params)
                .into_iter()
                .max_by_key(|&(s, d)| s * d)
                .expect("presets have conversion shapes");
            let panel = (1usize << (params.n().trailing_zeros() / 2)).min(64);
            for &(k, n) in &[(l_src, l_dst), (panel, panel)] {
                let a: Vec<u64> = (0..width * k).map(|_| rng.gen_range(0..q)).collect();
                let b: Vec<u64> = (0..k * n).map(|_| rng.gen_range(0..q)).collect();
                let mut want = vec![0u64; width * n];
                for i in 0..width {
                    for j in 0..n {
                        let mut acc = 0u64;
                        for kk in 0..k {
                            acc = modulus.mul_add(a[i * k + kk], b[kk * n + j], acc);
                        }
                        want[i * n + j] = acc;
                    }
                }
                let bm = MontOperand::new(q, &b, k, n);
                let am = MontOperand::new(q, &a, width, k);
                for kernel in [scalar_tile(), simd4()] {
                    let mut got = vec![0u64; width * n];
                    gemm_rm_with(&a, width, &bm, kernel, &mut got);
                    prop_assert_eq!(
                        &got, &want,
                        "rm {} n_poly={} k={} n={} width={}",
                        kernel.label(), params.n(), k, n, width
                    );
                    let mut got_l = vec![0u64; width * n];
                    gemm_lm_with(&am, &b, n, kernel, &mut got_l);
                    prop_assert_eq!(
                        &got_l, &want,
                        "lm {} n_poly={} k={} n={} width={}",
                        kernel.label(), params.n(), k, n, width
                    );
                }
            }
        }
    }

    /// The fast batched-NTT pipeline must be bit-identical to the scalar
    /// batch path (and invert it) at every degree/batch/algorithm corner.
    #[test]
    fn fast_ntt_batch_bit_identical_to_scalar(
        log_n in 6u32..11,
        b in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let n = 1usize << log_n;
        let q = generate_ntt_primes(1, 28, n as u64)[0];
        let mut rng = StdRng::seed_from_u64(seed);
        for algo in [
            NttAlgorithm::Butterfly,
            NttAlgorithm::FourStep,
            NttAlgorithm::TensorCore,
        ] {
            let plan = PlanCache::global().get(n, q, algo);
            let orig: Vec<Vec<u64>> = (0..b)
                .map(|_| (0..n).map(|_| rng.gen_range(0..q)).collect())
                .collect();
            let mut scalar = orig.clone();
            let mut fast = orig.clone();
            {
                let mut rows: Vec<&mut [u64]> =
                    scalar.iter_mut().map(Vec::as_mut_slice).collect();
                plan.forward_batch(&mut rows);
            }
            {
                let mut rows: Vec<&mut [u64]> =
                    fast.iter_mut().map(Vec::as_mut_slice).collect();
                plan.forward_batch_fast(&mut rows);
            }
            prop_assert_eq!(&scalar, &fast, "{:?} forward n={} b={}", algo, n, b);
            {
                let mut rows: Vec<&mut [u64]> =
                    fast.iter_mut().map(Vec::as_mut_slice).collect();
                plan.inverse_batch_fast(&mut rows);
            }
            prop_assert_eq!(&fast, &orig, "{:?} roundtrip n={} b={}", algo, n, b);
        }
    }
}

/// Repeated `mod_down_batch` drains must reach a scratch steady state: the
/// pooled staging buffers (concatenated special-prime block, conversion
/// output, NTT intermediates) are reused, not re-grown, per drain.
#[test]
fn repeated_mod_down_drains_do_not_grow_scratch_state() {
    let ctx = CkksContext::new(&CkksParams::toy()).expect("ctx");
    let level = ctx.params().max_level();
    let mut rng = StdRng::seed_from_u64(4242);
    let mut accs = Vec::new();
    for _ in 0..3 {
        let mut e = ExtPoly::zero(&ctx, level, Domain::Ntt);
        for (i, limb) in e.q_limbs.iter_mut().enumerate() {
            let q = ctx.q_mod(i).value();
            limb.iter_mut().for_each(|x| *x = rng.gen_range(0..q));
        }
        for (k, limb) in e.p_limbs.iter_mut().enumerate() {
            let p = ctx.p_mod(k).value();
            limb.iter_mut().for_each(|x| *x = rng.gen_range(0..p));
        }
        accs.push(e);
    }
    let views: Vec<&ExtPoly> = accs.iter().collect();

    let drain = || {
        let mut tr = Tracing::new(None);
        let out = mod_down_batch(&ctx, &mut tr, &views);
        assert_eq!(out.len(), views.len());
    };
    scratch::clear_thread_pool();
    drain();
    drain();
    let warm = scratch::thread_stats();
    for _ in 0..10 {
        drain();
    }
    assert_eq!(
        scratch::thread_stats(),
        warm,
        "ModDown drains must reuse pooled scratch, not grow it"
    );
}
