//! The batched RNS-NTT execution layer seen from the CKKS substrate:
//! `RnsPoly::ntt_forward_batch` / `ntt_inverse_batch` must be bit-identical
//! to the per-limb transforms under **all three** `NttAlgorithm` variants,
//! and contexts must share twiddle plans through the process-wide cache.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_ckks::poly::Domain;
use tensorfhe_ckks::{CkksContext, CkksParams, RnsPoly};
use tensorfhe_ntt::NttAlgorithm;

const ALGOS: [NttAlgorithm; 3] = [
    NttAlgorithm::Butterfly,
    NttAlgorithm::FourStep,
    NttAlgorithm::TensorCore,
];

fn random_poly(ctx: &CkksContext, rng: &mut StdRng, level: usize) -> RnsPoly {
    let n = ctx.params().n();
    let limbs = (0..=level)
        .map(|l| {
            let q = ctx.q_primes()[l];
            (0..n).map(|_| rng.gen_range(0..q)).collect()
        })
        .collect();
    RnsPoly::from_limbs(limbs, Domain::Coeff)
}

/// The acceptance property of the batched layer: `ntt_forward_batch` output
/// equals per-limb `ntt_forward` output exactly, for every algorithm, and
/// the three algorithms agree with each other.
#[test]
fn ntt_forward_batch_bit_identical_across_all_variants() {
    let params = CkksParams::test_small();
    let level = 3;
    let mut rng = StdRng::seed_from_u64(71);
    // One shared set of limb data reused across algorithms (primes are a
    // pure function of the parameters, so limbs are interchangeable).
    let reference = CkksContext::new(&params).expect("ctx");
    let block: Vec<RnsPoly> = (0..3)
        .map(|_| random_poly(&reference, &mut rng, level))
        .collect();

    let mut per_algo: Vec<Vec<RnsPoly>> = Vec::new();
    for algo in ALGOS {
        let ctx = CkksContext::with_algorithm(&params, algo).expect("ctx");
        assert_eq!(ctx.ntt_algorithm(), algo);

        let mut per_limb = block.clone();
        for p in &mut per_limb {
            p.ntt_forward(&ctx);
        }
        let mut batched = block.clone();
        {
            let mut views: Vec<&mut RnsPoly> = batched.iter_mut().collect();
            RnsPoly::ntt_forward_batch(&ctx, &mut views);
        }
        assert_eq!(per_limb, batched, "{algo:?}: batched forward != per-limb");

        // And back: batched inverse matches per-limb inverse and restores
        // the input.
        let mut inv_per_limb = per_limb.clone();
        for p in &mut inv_per_limb {
            p.ntt_inverse(&ctx);
        }
        {
            let mut views: Vec<&mut RnsPoly> = batched.iter_mut().collect();
            RnsPoly::ntt_inverse_batch(&ctx, &mut views);
        }
        assert_eq!(
            inv_per_limb, batched,
            "{algo:?}: batched inverse != per-limb"
        );
        assert_eq!(batched, block, "{algo:?}: roundtrip failed");

        per_algo.push(per_limb);
    }
    assert_eq!(per_algo[0], per_algo[1], "butterfly vs four-step");
    assert_eq!(per_algo[1], per_algo[2], "four-step vs tensor-core");
}

#[test]
fn contexts_share_plans_through_the_global_cache() {
    let params = CkksParams::toy();
    let a = CkksContext::with_algorithm(&params, NttAlgorithm::TensorCore).expect("ctx");
    let b = CkksContext::with_algorithm(&params, NttAlgorithm::TensorCore).expect("ctx");
    // Same (N, q, algorithm) key ⇒ the very same plan allocation.
    assert!(
        std::ptr::eq(a.ntt_q(0), b.ntt_q(0)),
        "contexts must share cached twiddle plans"
    );
    // A different algorithm gets its own plan.
    let c = CkksContext::with_algorithm(&params, NttAlgorithm::FourStep).expect("ctx");
    assert!(!std::ptr::eq(a.ntt_q(0), c.ntt_q(0)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Ragged `B×L` blocks at the CKKS layer: any batch width and any
    /// level, batched and per-limb paths agree exactly.
    #[test]
    fn ragged_rns_blocks_match_per_limb(
        b in 1usize..5,
        level in 0usize..4,
        algo_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let params = CkksParams::toy();
        let ctx = CkksContext::with_algorithm(&params, ALGOS[algo_idx]).expect("ctx");
        let mut rng = StdRng::seed_from_u64(seed);
        let block: Vec<RnsPoly> = (0..b).map(|_| random_poly(&ctx, &mut rng, level)).collect();

        let mut per_limb = block.clone();
        for p in &mut per_limb {
            p.ntt_forward(&ctx);
        }
        let mut batched = block.clone();
        {
            let mut views: Vec<&mut RnsPoly> = batched.iter_mut().collect();
            RnsPoly::ntt_forward_batch(&ctx, &mut views);
        }
        prop_assert_eq!(&per_limb, &batched);
        {
            let mut views: Vec<&mut RnsPoly> = batched.iter_mut().collect();
            RnsPoly::ntt_inverse_batch(&ctx, &mut views);
        }
        prop_assert_eq!(&batched, &block);
    }
}
