//! GEMM-lowered basis conversion: exact equivalence with the scalar
//! reference across every conversion shape the paper's parameter sets use,
//! plus a ragged-batch property test at the key-switch layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tensorfhe_ckks::keyswitch::{mod_down_batch, mod_up, ExtPoly};
use tensorfhe_ckks::trace::Tracing;
use tensorfhe_ckks::{CkksContext, CkksParams, Domain, RnsPoly};
use tensorfhe_math::crt::BasisConvGemm;
use tensorfhe_math::prime::generate_ntt_primes;

/// Every `(L_src, L_dst)` conversion shape a parameter set exercises:
/// ModUp digits (full and partial) at every level, plus ModDown at every
/// level.
fn conversion_shapes(params: &CkksParams) -> BTreeSet<(usize, usize)> {
    let (alpha, k) = (params.alpha(), params.special_primes());
    let mut shapes = BTreeSet::new();
    for level in 0..=params.max_level() {
        let limbs = level + 1;
        for digit in 0..limbs.div_ceil(alpha) {
            let src = alpha.min(limbs - digit * alpha);
            shapes.insert((src, limbs - src + k));
        }
        shapes.insert((k, limbs));
    }
    shapes
}

#[test]
fn gemm_matches_scalar_for_all_paper_conversion_shapes() {
    let presets = [
        CkksParams::table_v_default(),
        CkksParams::table_v_resnet20(),
        CkksParams::table_v_lr(),
        CkksParams::table_v_lstm(),
        CkksParams::table_v_packed_boot(),
        CkksParams::table_vii_bootstrap(),
        CkksParams::heax_set_a(),
        CkksParams::heax_set_b(),
        CkksParams::heax_set_c(),
    ];
    let mut shapes = BTreeSet::new();
    for p in &presets {
        shapes.extend(conversion_shapes(p));
    }
    assert!(shapes.len() > 50, "paper presets span many shapes");

    // One shared prime pool (prime count = widest src + widest dst shape);
    // the equivalence depends only on shapes, not on the degree the primes
    // were generated for.
    let max_src = shapes.iter().map(|&(s, _)| s).max().expect("non-empty");
    let max_dst = shapes.iter().map(|&(_, d)| d).max().expect("non-empty");
    let pool = generate_ntt_primes(max_src + max_dst, 28, 1 << 10);

    let width = 9usize;
    let mut rng = StdRng::seed_from_u64(1009);
    for &(l_src, l_dst) in &shapes {
        let (src, rest) = pool.split_at(l_src);
        let dst = &rest[..l_dst];
        let gemm = BasisConvGemm::new(src, dst);
        let src_rows: Vec<Vec<u64>> = src
            .iter()
            .map(|&q| (0..width).map(|_| rng.gen_range(0..q)).collect())
            .collect();
        let views: Vec<&[u64]> = src_rows.iter().map(Vec::as_slice).collect();
        let block = gemm.convert_block(&views);
        for c in 0..width {
            let residues: Vec<u64> = src_rows.iter().map(|r| r[c]).collect();
            let scalar = gemm.table().convert_coeff(&residues);
            for (j, row) in block.iter().enumerate() {
                assert_eq!(
                    row[c], scalar[j],
                    "shape ({l_src} → {l_dst}), coefficient {c}, target {j}"
                );
            }
        }
    }
}

#[test]
fn mod_up_matches_per_coefficient_scalar_reference() {
    let ctx = CkksContext::new(&CkksParams::test_small()).expect("ctx");
    let n = ctx.params().n();
    let level = ctx.params().max_level();
    let mut rng = StdRng::seed_from_u64(71);
    let coeffs: Vec<i128> = (0..n)
        .map(|_| i128::from(rng.gen_range(-(1i64 << 20)..1i64 << 20)))
        .collect();
    let d = RnsPoly::from_i128_coeffs(&ctx, &coeffs, level);

    for digit in 0..(level + 1).div_ceil(ctx.params().alpha()) {
        let mut tr = Tracing::new(None);
        let ext = mod_up(&ctx, &mut tr, &d, digit);
        let table = ctx.modup_table(digit, level);
        let (s0, s1) = (table.src_start, table.src_end);
        for c in 0..n {
            let residues: Vec<u64> = (s0..s1).map(|i| d.limb(i)[c]).collect();
            let y = table.conv.table().y_vector(&residues);
            let mut dst_idx = 0usize;
            for i in 0..=level {
                if i >= s0 && i < s1 {
                    assert_eq!(ext.q_limbs[i][c], d.limb(i)[c], "own limb copied");
                    continue;
                }
                assert_eq!(
                    ext.q_limbs[i][c],
                    table.conv.table().convert_from_y(&y, dst_idx),
                    "digit {digit}, q-limb {i}, coefficient {c}"
                );
                dst_idx += 1;
            }
            for (kk, p_limb) in ext.p_limbs.iter().enumerate() {
                assert_eq!(
                    p_limb[c],
                    table.conv.table().convert_from_y(&y, dst_idx),
                    "digit {digit}, p-limb {kk}, coefficient {c}"
                );
                dst_idx += 1;
            }
        }
    }
}

/// A random NTT-domain extended polynomial (any residue vector is some
/// polynomial's NTT image).
fn random_ext(ctx: &CkksContext, rng: &mut StdRng, level: usize) -> ExtPoly {
    let mut e = ExtPoly::zero(ctx, level, Domain::Ntt);
    for (i, limb) in e.q_limbs.iter_mut().enumerate() {
        let q = ctx.q_mod(i).value();
        limb.iter_mut().for_each(|x| *x = rng.gen_range(0..q));
    }
    for (k, limb) in e.p_limbs.iter_mut().enumerate() {
        let p = ctx.p_mod(k).value();
        limb.iter_mut().for_each(|x| *x = rng.gen_range(0..p));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Ragged ModDown batches at the key-switch layer: for any batch width
    /// and level, the batched wide-GEMM path must agree bit-exactly with
    /// an independent scalar reimplementation of ModDown (per-limb INTT,
    /// per-coefficient conversion walk, scaled subtraction, per-limb NTT).
    #[test]
    fn ragged_mod_down_batch_matches_scalar_reference(
        b in 1usize..5,
        level in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let ctx = CkksContext::new(&CkksParams::toy()).expect("ctx");
        let n = ctx.params().n();
        let k = ctx.params().special_primes();
        let mut rng = StdRng::seed_from_u64(seed);
        let accs: Vec<ExtPoly> = (0..b).map(|_| random_ext(&ctx, &mut rng, level)).collect();

        let mut tr = Tracing::new(None);
        let views: Vec<&ExtPoly> = accs.iter().collect();
        let batched = mod_down_batch(&ctx, &mut tr, &views);

        let table = ctx.moddown_table(level);
        for (acc, got) in accs.iter().zip(&batched) {
            let mut work = acc.clone();
            work.ntt_inverse(&ctx);
            let mut limbs = Vec::with_capacity(level + 1);
            for i in 0..=level {
                let m = ctx.q_mod(i);
                let p_inv = table.p_inv_mod_q[i];
                let limb: Vec<u64> = (0..n)
                    .map(|c| {
                        let residues: Vec<u64> =
                            (0..k).map(|kk| work.p_limbs[kk][c]).collect();
                        let y = table.conv.table().y_vector(&residues);
                        let conv = table.conv.table().convert_from_y(&y, i);
                        m.mul(m.sub(work.q_limbs[i][c], conv), p_inv)
                    })
                    .collect();
                limbs.push(limb);
            }
            let mut want = RnsPoly::from_limbs(limbs, Domain::Coeff);
            want.ntt_forward(&ctx);
            prop_assert_eq!(&want, got);
        }
    }
}
