//! Property-based tests of the CKKS scheme: homomorphism laws over random
//! slot vectors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensorfhe_ckks::{CkksContext, CkksParams, Evaluator, KeyChain};
use tensorfhe_math::Complex64;

fn slot_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, n)
}

fn to_z(v: &[f64]) -> Vec<Complex64> {
    v.iter().map(|&x| Complex64::new(x, 0.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn encode_decode_roundtrip(v in slot_vec(16)) {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let pt = ctx.encode(&to_z(&v), params.scale()).expect("encode");
        let back = ctx.decode(&pt).expect("decode");
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b.re).abs() < 1e-4, "{a} vs {}", b.re);
        }
    }

    #[test]
    fn addition_is_homomorphic(a in slot_vec(8), b in slot_vec(8)) {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(1);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let ca = keys.encrypt(&ctx.encode(&to_z(&a), params.scale()).expect("enc"), &mut rng);
        let cb = keys.encrypt(&ctx.encode(&to_z(&b), params.scale()).expect("enc"), &mut rng);
        let sum = eval.hadd(&ca, &cb).expect("hadd");
        let dec = ctx.decode(&keys.decrypt(&sum)).expect("dec");
        for i in 0..8 {
            prop_assert!((dec[i].re - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn multiplication_is_homomorphic(a in slot_vec(4), b in slot_vec(4)) {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(2);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let ca = keys.encrypt(&ctx.encode(&to_z(&a), params.scale()).expect("enc"), &mut rng);
        let cb = keys.encrypt(&ctx.encode(&to_z(&b), params.scale()).expect("enc"), &mut rng);
        let prod = eval.hmult(&ca, &cb, &keys).expect("hmult");
        let prod = eval.rescale(&prod).expect("rescale");
        let dec = ctx.decode(&keys.decrypt(&prod)).expect("dec");
        for i in 0..4 {
            prop_assert!(
                (dec[i].re - a[i] * b[i]).abs() < 5e-2,
                "slot {i}: {} vs {}",
                dec[i].re,
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn rotation_permutes_slots(v in slot_vec(16), r in 1i64..8) {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(3);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[r], &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let ct = keys.encrypt(&ctx.encode(&to_z(&v), params.scale()).expect("enc"), &mut rng);
        let rot = eval.hrotate(&ct, r, &keys).expect("rotate");
        let dec = ctx.decode(&keys.decrypt(&rot)).expect("dec");
        for i in 0..16 {
            let want = v[(i + r as usize) % 16];
            prop_assert!((dec[i].re - want).abs() < 1e-2);
        }
    }
}
