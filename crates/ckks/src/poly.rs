//! RNS polynomials, plaintexts and ciphertexts.

use crate::context::{CkksContext, GaloisTables};
use tensorfhe_ntt::{NttBatchOps, NttOps};

/// Representation domain of a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Coefficient (power-basis) representation.
    Coeff,
    /// Evaluation (NTT/point-value) representation, natural order.
    Ntt,
}

/// A polynomial in `R_Q = Z_Q[X]/(X^N + 1)` stored as RNS limbs.
///
/// Limb `i` holds the residues modulo `q_i`; the active level is
/// `limbs.len() - 1`. Every operation takes the shared [`CkksContext`] for
/// the modulus handles and NTT tables.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    limbs: Vec<Vec<u64>>,
    domain: Domain,
    n: usize,
}

impl RnsPoly {
    /// The all-zero polynomial with `level + 1` limbs.
    #[must_use]
    pub fn zero(ctx: &CkksContext, level: usize, domain: Domain) -> Self {
        let n = ctx.params().n();
        Self {
            limbs: vec![vec![0u64; n]; level + 1],
            domain,
            n,
        }
    }

    /// Builds a coefficient-domain polynomial from signed big coefficients,
    /// reducing each modulo every active prime.
    #[must_use]
    pub fn from_i128_coeffs(ctx: &CkksContext, coeffs: &[i128], level: usize) -> Self {
        let n = ctx.params().n();
        assert_eq!(coeffs.len(), n, "coefficient count must equal N");
        let limbs = (0..=level)
            .map(|l| {
                let m = ctx.q_mod(l);
                coeffs.iter().map(|&c| m.from_i128(c)).collect()
            })
            .collect();
        Self {
            limbs,
            domain: Domain::Coeff,
            n,
        }
    }

    /// Builds a coefficient-domain polynomial from small signed values
    /// (secrets and noise), broadcast across limbs.
    #[must_use]
    pub fn from_signed(ctx: &CkksContext, values: &[i64], level: usize) -> Self {
        let n = ctx.params().n();
        assert_eq!(values.len(), n);
        let limbs = (0..=level)
            .map(|l| {
                let m = ctx.q_mod(l);
                values.iter().map(|&v| m.from_i64(v)).collect()
            })
            .collect();
        Self {
            limbs,
            domain: Domain::Coeff,
            n,
        }
    }

    /// Builds from explicit limb data.
    #[must_use]
    pub fn from_limbs(limbs: Vec<Vec<u64>>, domain: Domain) -> Self {
        assert!(!limbs.is_empty(), "polynomial needs at least one limb");
        let n = limbs[0].len();
        assert!(limbs.iter().all(|l| l.len() == n), "ragged limbs");
        Self { limbs, domain, n }
    }

    /// Polynomial degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current level (number of limbs − 1).
    #[must_use]
    pub fn level(&self) -> usize {
        self.limbs.len() - 1
    }

    /// Representation domain.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Residues modulo `q_i`.
    #[must_use]
    pub fn limb(&self, i: usize) -> &[u64] {
        &self.limbs[i]
    }

    /// Mutable residues modulo `q_i`.
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.limbs[i]
    }

    /// All limbs.
    #[must_use]
    pub fn limbs(&self) -> &[Vec<u64>] {
        &self.limbs
    }

    /// Drops the highest limb (rescale / level switch helper).
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn drop_last_limb(&mut self) -> Vec<u64> {
        assert!(self.limbs.len() > 1, "cannot drop the last limb");
        self.limbs.pop().expect("non-empty")
    }

    /// Truncates to `level + 1` limbs (plaintext/ciphertext alignment).
    pub fn truncate_level(&mut self, level: usize) {
        assert!(level < self.limbs.len(), "cannot raise level by truncation");
        self.limbs.truncate(level + 1);
    }

    /// In-place forward NTT on every limb.
    ///
    /// # Panics
    ///
    /// Panics if already in NTT domain.
    pub fn ntt_forward(&mut self, ctx: &CkksContext) {
        assert_eq!(self.domain, Domain::Coeff, "already in NTT domain");
        for (l, limb) in self.limbs.iter_mut().enumerate() {
            ctx.ntt_q(l).forward(limb);
        }
        self.domain = Domain::Ntt;
    }

    /// In-place inverse NTT on every limb.
    ///
    /// # Panics
    ///
    /// Panics if already in coefficient domain.
    pub fn ntt_inverse(&mut self, ctx: &CkksContext) {
        assert_eq!(self.domain, Domain::Ntt, "already in coefficient domain");
        for (l, limb) in self.limbs.iter_mut().enumerate() {
            ctx.ntt_q(l).inverse(limb);
        }
        self.domain = Domain::Coeff;
    }

    /// Forward NTT of a whole block of same-level polynomials at once.
    ///
    /// For each limb index `l` the `B` rows (one per polynomial, all modulo
    /// `q_l`) go through the context plan's batched path — single wide
    /// GEMMs per four-step stage under the GEMM formulations (§IV-B/D).
    /// Output is bit-identical to calling [`RnsPoly::ntt_forward`] on each
    /// polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the polynomials disagree on level, or any is already in
    /// NTT domain.
    pub fn ntt_forward_batch(ctx: &CkksContext, polys: &mut [&mut RnsPoly]) {
        let Some(first) = polys.first() else { return };
        let level = first.level();
        for p in polys.iter() {
            assert_eq!(p.level(), level, "level mismatch in batch");
            assert_eq!(p.domain, Domain::Coeff, "already in NTT domain");
        }
        for l in 0..=level {
            let mut rows: Vec<&mut [u64]> = polys
                .iter_mut()
                .map(|p| p.limbs[l].as_mut_slice())
                .collect();
            ctx.ntt_q(l).forward_batch(&mut rows);
        }
        for p in polys.iter_mut() {
            p.domain = Domain::Ntt;
        }
    }

    /// Inverse NTT of a whole block of same-level polynomials at once
    /// (batched counterpart of [`RnsPoly::ntt_inverse`]).
    ///
    /// # Panics
    ///
    /// Panics if the polynomials disagree on level, or any is already in
    /// coefficient domain.
    pub fn ntt_inverse_batch(ctx: &CkksContext, polys: &mut [&mut RnsPoly]) {
        let Some(first) = polys.first() else { return };
        let level = first.level();
        for p in polys.iter() {
            assert_eq!(p.level(), level, "level mismatch in batch");
            assert_eq!(p.domain, Domain::Ntt, "already in coefficient domain");
        }
        for l in 0..=level {
            let mut rows: Vec<&mut [u64]> = polys
                .iter_mut()
                .map(|p| p.limbs[l].as_mut_slice())
                .collect();
            ctx.ntt_q(l).inverse_batch(&mut rows);
        }
        for p in polys.iter_mut() {
            p.domain = Domain::Coeff;
        }
    }

    /// Element-wise addition (Ele-Add kernel).
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn add_assign(&mut self, ctx: &CkksContext, rhs: &RnsPoly) {
        self.zip_assign(ctx, rhs, |m, a, b| m.add(a, b));
    }

    /// Element-wise subtraction (Ele-Sub kernel).
    ///
    /// # Panics
    ///
    /// Panics on level or domain mismatch.
    pub fn sub_assign(&mut self, ctx: &CkksContext, rhs: &RnsPoly) {
        self.zip_assign(ctx, rhs, |m, a, b| m.sub(a, b));
    }

    /// Element-wise (Hadamard) multiplication (Hada-Mult kernel). Both
    /// operands must be in NTT domain.
    ///
    /// # Panics
    ///
    /// Panics on level mismatch or if either operand is in coefficient
    /// domain.
    pub fn hada_assign(&mut self, ctx: &CkksContext, rhs: &RnsPoly) {
        assert_eq!(self.domain, Domain::Ntt, "Hadamard needs NTT domain");
        assert_eq!(rhs.domain, Domain::Ntt, "Hadamard needs NTT domain");
        self.zip_assign(ctx, rhs, |m, a, b| m.mul(a, b));
    }

    /// Negates every residue.
    pub fn neg_assign(&mut self, ctx: &CkksContext) {
        for (l, limb) in self.limbs.iter_mut().enumerate() {
            let m = ctx.q_mod(l);
            for x in limb.iter_mut() {
                *x = m.neg(*x);
            }
        }
    }

    /// Multiplies every residue of limb `l` by a per-limb scalar.
    pub fn scale_limbs(&mut self, ctx: &CkksContext, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.limbs.len());
        for (l, limb) in self.limbs.iter_mut().enumerate() {
            let m = ctx.q_mod(l);
            let s = scalars[l];
            for x in limb.iter_mut() {
                *x = m.mul(*x, s);
            }
        }
    }

    /// Applies the Galois automorphism in NTT domain (ForbeniusMap kernel:
    /// a pure slot permutation).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is in coefficient domain.
    #[must_use]
    pub fn automorphism_ntt(&self, tables: &GaloisTables) -> RnsPoly {
        assert_eq!(self.domain, Domain::Ntt, "NTT-domain automorphism");
        let limbs = self
            .limbs
            .iter()
            .map(|limb| tables.ntt_perm.iter().map(|&p| limb[p as usize]).collect())
            .collect();
        RnsPoly {
            limbs,
            domain: Domain::Ntt,
            n: self.n,
        }
    }

    /// Applies the Galois automorphism in coefficient domain
    /// (`a'(X) = a(X^g)` with negacyclic sign wrapping).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is in NTT domain.
    #[must_use]
    pub fn automorphism_coeff(&self, ctx: &CkksContext, tables: &GaloisTables) -> RnsPoly {
        assert_eq!(self.domain, Domain::Coeff, "coeff-domain automorphism");
        let limbs = self
            .limbs
            .iter()
            .enumerate()
            .map(|(l, limb)| {
                let m = ctx.q_mod(l);
                tables
                    .coeff_map
                    .iter()
                    .map(|&(src, negate)| {
                        let v = limb[src as usize];
                        if negate {
                            m.neg(v)
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        RnsPoly {
            limbs,
            domain: Domain::Coeff,
            n: self.n,
        }
    }

    fn zip_assign(
        &mut self,
        ctx: &CkksContext,
        rhs: &RnsPoly,
        f: impl Fn(&tensorfhe_math::Modulus, u64, u64) -> u64,
    ) {
        assert_eq!(self.level(), rhs.level(), "level mismatch");
        assert_eq!(self.domain, rhs.domain, "domain mismatch");
        for (l, (a, b)) in self.limbs.iter_mut().zip(&rhs.limbs).enumerate() {
            let m = ctx.q_mod(l);
            for (x, &y) in a.iter_mut().zip(b) {
                *x = f(m, *x, y);
            }
        }
    }
}

/// An encoded message: a polynomial plus its scale.
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded polynomial (normally in NTT domain).
    pub poly: RnsPoly,
    /// Scale Δ the values were multiplied by.
    pub scale: f64,
}

/// A CKKS ciphertext `(c0, c1)` with `c0 + c1·s ≈ m`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// Constant component.
    pub c0: RnsPoly,
    /// `s`-linear component.
    pub c1: RnsPoly,
    /// Current scale.
    pub scale: f64,
}

impl Ciphertext {
    /// Current level.
    #[must_use]
    pub fn level(&self) -> usize {
        self.c0.level()
    }

    /// Degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.c0.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx() -> CkksContext {
        CkksContext::new(&CkksParams::toy()).expect("valid")
    }

    fn random_poly(ctx: &CkksContext, rng: &mut StdRng, level: usize) -> RnsPoly {
        let n = ctx.params().n();
        let limbs = (0..=level)
            .map(|l| {
                let q = ctx.q_primes()[l];
                (0..n).map(|_| rng.gen_range(0..q)).collect()
            })
            .collect();
        RnsPoly::from_limbs(limbs, Domain::Coeff)
    }

    #[test]
    fn ntt_roundtrip_all_limbs() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_poly(&c, &mut rng, 3);
        let mut q = p.clone();
        q.ntt_forward(&c);
        assert_eq!(q.domain(), Domain::Ntt);
        q.ntt_inverse(&c);
        assert_eq!(q, p);
    }

    #[test]
    fn add_sub_inverse() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_poly(&c, &mut rng, 2);
        let b = random_poly(&c, &mut rng, 2);
        let mut s = a.clone();
        s.add_assign(&c, &b);
        s.sub_assign(&c, &b);
        assert_eq!(s, a);
    }

    #[test]
    fn hadamard_is_pointwise_product() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = random_poly(&c, &mut rng, 1);
        let mut b = random_poly(&c, &mut rng, 1);
        a.ntt_forward(&c);
        b.ntt_forward(&c);
        let mut h = a.clone();
        h.hada_assign(&c, &b);
        for l in 0..=1 {
            let m = c.q_mod(l);
            for i in 0..c.params().n() {
                assert_eq!(h.limb(l)[i], m.mul(a.limb(l)[i], b.limb(l)[i]));
            }
        }
    }

    #[test]
    fn automorphism_ntt_matches_coeff_domain() {
        // σ_g in coefficient domain followed by NTT must equal NTT followed
        // by the slot permutation π — the identity the ForbeniusMap kernel
        // relies on.
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let p = random_poly(&c, &mut rng, 2);
        for r in [1i64, 2, 3, -1] {
            let g = c.galois_element(r);
            let tables = c.galois_tables(g);

            let mut via_coeff = p.automorphism_coeff(&c, &tables);
            via_coeff.ntt_forward(&c);

            let mut ntt_first = p.clone();
            ntt_first.ntt_forward(&c);
            let via_perm = ntt_first.automorphism_ntt(&tables);

            assert_eq!(via_coeff, via_perm, "automorphism mismatch for r={r}");
        }
    }

    #[test]
    fn conjugation_automorphism_consistent() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_poly(&c, &mut rng, 1);
        let tables = c.galois_tables(c.conjugation_element());
        let mut via_coeff = p.automorphism_coeff(&c, &tables);
        via_coeff.ntt_forward(&c);
        let mut ntt_first = p.clone();
        ntt_first.ntt_forward(&c);
        let via_perm = ntt_first.automorphism_ntt(&tables);
        assert_eq!(via_coeff, via_perm);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_poly(&c, &mut rng, 2);
        let mut na = a.clone();
        na.neg_assign(&c);
        na.add_assign(&c, &a);
        let zero = RnsPoly::zero(&c, 2, Domain::Coeff);
        assert_eq!(na, zero);
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn level_mismatch_panics() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = random_poly(&c, &mut rng, 2);
        let b = random_poly(&c, &mut rng, 1);
        a.add_assign(&c, &b);
    }
}
