//! CKKS parameter sets, including the paper's Table V presets.

use crate::error::CkksError;

/// A CKKS parameter set.
///
/// The notation follows Table I of the paper: degree `N`, maximum level `L`
/// (so `L+1` ciphertext primes `q_0..q_L`), `K` special primes `p_0..p_{K-1}`
/// and decomposition number `dnum` (the hybrid key-switching digit count).
///
/// # Examples
///
/// ```
/// use tensorfhe_ckks::params::CkksParams;
/// let p = CkksParams::table_v_default();
/// assert_eq!(p.n(), 1 << 16);
/// assert_eq!(p.max_level(), 44);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    n: usize,
    max_level: usize,
    special_primes: usize,
    dnum: usize,
    prime_bits: u32,
    scale_bits: u32,
    /// Default batch size (the paper's operation-level batching width).
    batch_size: usize,
    name: String,
}

impl CkksParams {
    /// Builds a custom parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParams`] if `n` is not a power of two
    /// ≥ 16, `dnum` does not divide `L+1`, the prime size is outside
    /// `[20, 31]` bits (the GEMM/tensor-core paths need 32-bit residues), or
    /// the scale exceeds the prime size headroom.
    // Eight arguments mirror Table V's eight columns one-to-one; a config
    // struct would just rename them.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        n: usize,
        max_level: usize,
        special_primes: usize,
        dnum: usize,
        prime_bits: u32,
        scale_bits: u32,
        batch_size: usize,
    ) -> Result<Self, CkksError> {
        if !n.is_power_of_two() || n < 16 {
            return Err(CkksError::InvalidParams(format!(
                "degree {n} must be a power of two >= 16"
            )));
        }
        if !(max_level + 1).is_multiple_of(dnum) {
            return Err(CkksError::InvalidParams(format!(
                "dnum {dnum} must divide L+1 = {}",
                max_level + 1
            )));
        }
        if !(20..=31).contains(&prime_bits) {
            return Err(CkksError::InvalidParams(format!(
                "prime size {prime_bits} outside [20, 31] bits"
            )));
        }
        if scale_bits + 2 > prime_bits && scale_bits != prime_bits {
            return Err(CkksError::InvalidParams(format!(
                "scale 2^{scale_bits} too close to prime size 2^{prime_bits}"
            )));
        }
        if special_primes == 0 {
            return Err(CkksError::InvalidParams(
                "need at least one special prime".to_string(),
            ));
        }
        let alpha = (max_level + 1) / dnum;
        if special_primes < alpha {
            return Err(CkksError::InvalidParams(format!(
                "hybrid key switching needs K ≥ α: K = {special_primes} < α = {alpha}                  (P must dominate every digit modulus Q_j)"
            )));
        }
        Ok(Self {
            n,
            max_level,
            special_primes,
            dnum,
            prime_bits,
            scale_bits,
            batch_size,
            name: name.into(),
        })
    }

    /// Table V `Default`: N = 2^16, L = 44, K = 1, batch 128.
    ///
    /// The paper's logPQ = 1306 over 45 moduli implies ~29-bit primes;
    /// K = 1 together with hybrid key switching implies `dnum = L+1 = 45`
    /// (α = 1).
    #[must_use]
    pub fn table_v_default() -> Self {
        Self::new("Default", 1 << 16, 44, 1, 45, 29, 29, 128).expect("preset is valid")
    }

    /// Table V `ResNet-20`: N = 2^16, L = 29, batch 64.
    ///
    /// Table V lists K = 1, which under hybrid key switching forces
    /// `dnum = L+1` — inconsistent with the paper's own workload runtimes
    /// (its Table VII bootstrap uses dnum = 5). Workload presets therefore
    /// use a moderate decomposition (α = 3, K = 3); see the preset docs in
    /// this module for the reasoning.
    #[must_use]
    pub fn table_v_resnet20() -> Self {
        Self::new("ResNet-20", 1 << 16, 29, 3, 10, 28, 28, 64).expect("preset is valid")
    }

    /// Table V `Logistic Regression`: N = 2^16, L = 38, K = 1, batch 64.
    #[must_use]
    pub fn table_v_lr() -> Self {
        Self::new("Logistic Regression", 1 << 16, 38, 3, 13, 28, 28, 64).expect("preset is valid")
    }

    /// Table V `LSTM`: N = 2^15, L = 25, K = 1, batch 32.
    #[must_use]
    pub fn table_v_lstm() -> Self {
        Self::new("LSTM", 1 << 15, 25, 2, 13, 28, 28, 32).expect("preset is valid")
    }

    /// Table V `Packed Bootstrapping`: N = 2^16, L = 57, K = 1, batch 32.
    #[must_use]
    pub fn table_v_packed_boot() -> Self {
        Self::new("Packed Bootstrapping", 1 << 16, 57, 2, 29, 28, 28, 32).expect("preset is valid")
    }

    /// Table VII bootstrap configuration: N = 2^16, L = 34, dnum = 5.
    #[must_use]
    pub fn table_vii_bootstrap() -> Self {
        Self::new("Bootstrap(T7)", 1 << 16, 34, 7, 5, 28, 28, 128).expect("preset is valid")
    }

    /// HEAX comparison Set A (Table VIII): N = 2^12, logPQ = 108, K = 2.
    #[must_use]
    pub fn heax_set_a() -> Self {
        // 108 bits over 4 moduli (2 ciphertext + 2 special) ≈ 27-28-bit primes.
        Self::new("HEAX-A", 1 << 12, 1, 2, 2, 28, 26, 128).expect("preset is valid")
    }

    /// HEAX comparison Set B (Table VIII): N = 2^13, logPQ = 217, K = 4.
    #[must_use]
    pub fn heax_set_b() -> Self {
        Self::new("HEAX-B", 1 << 13, 3, 4, 4, 28, 26, 128).expect("preset is valid")
    }

    /// HEAX comparison Set C (Table VIII): N = 2^14, logPQ = 437, K = 8.
    #[must_use]
    pub fn heax_set_c() -> Self {
        Self::new("HEAX-C", 1 << 14, 7, 8, 8, 28, 26, 128).expect("preset is valid")
    }

    /// A tiny parameter set for fast tests and doc examples: N = 2^5, L = 3.
    #[must_use]
    pub fn toy() -> Self {
        Self::new("toy", 1 << 5, 3, 2, 2, 28, 26, 4).expect("preset is valid")
    }

    /// A small-but-realistic test set: N = 2^10, L = 7, dnum = 4.
    #[must_use]
    pub fn test_small() -> Self {
        Self::new("test-small", 1 << 10, 7, 2, 4, 28, 26, 8).expect("preset is valid")
    }

    /// Polynomial degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Slot count `N/2`.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// Maximum multiplicative level `L`.
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Number of special primes `K`.
    #[must_use]
    pub fn special_primes(&self) -> usize {
        self.special_primes
    }

    /// Hybrid key-switching digit count `dnum`.
    #[must_use]
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Digit width α = (L+1)/dnum.
    #[must_use]
    pub fn alpha(&self) -> usize {
        (self.max_level + 1) / self.dnum
    }

    /// Size of ciphertext primes in bits.
    #[must_use]
    pub fn prime_bits(&self) -> u32 {
        self.prime_bits
    }

    /// The encoding scale Δ.
    #[must_use]
    pub fn scale(&self) -> f64 {
        (2.0f64).powi(self.scale_bits as i32)
    }

    /// The encoding scale exponent (`Δ = 2^scale_bits`).
    #[must_use]
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    /// Default operation-level batch size.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Preset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Approximate `log2(PQ)` as the paper's Table V reports it.
    ///
    /// Matching the table numerically (840 = 28·30 for ResNet-20,
    /// 728 = 28·26 for LSTM, 1624 = 28·58 for packed bootstrapping) shows
    /// the paper counts `L+1` moduli, so we do the same.
    #[must_use]
    pub fn log_pq(&self) -> u32 {
        self.prime_bits * (self.max_level as u32 + 1)
    }

    /// Bytes of one ciphertext at the top level on the device
    /// (2 polynomials × (L+1) limbs × N × 4 bytes, the paper's 32-bit limbs).
    #[must_use]
    pub fn ciphertext_bytes(&self) -> u64 {
        2 * (self.max_level as u64 + 1) * self.n as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_presets_match_paper() {
        let d = CkksParams::table_v_default();
        assert_eq!(
            (d.n(), d.max_level(), d.special_primes(), d.batch_size()),
            (1 << 16, 44, 1, 128)
        );
        // logPQ ≈ 1306 in the paper; 29 × 45 = 1305.
        assert!((d.log_pq() as i64 - 1306).abs() < 10);

        let r = CkksParams::table_v_resnet20();
        assert_eq!((r.n(), r.max_level(), r.batch_size()), (1 << 16, 29, 64));
        // logPQ ≈ 840; 28 × 30 = 840.
        assert_eq!(r.log_pq(), 840);

        let l = CkksParams::table_v_lstm();
        assert_eq!((l.n(), l.max_level(), l.batch_size()), (1 << 15, 25, 32));
        assert_eq!(l.log_pq(), 728);

        let b = CkksParams::table_v_packed_boot();
        assert_eq!((b.n(), b.max_level(), b.batch_size()), (1 << 16, 57, 32));
        assert_eq!(b.log_pq(), 1624);
    }

    #[test]
    fn alpha_divides() {
        let p = CkksParams::table_vii_bootstrap();
        assert_eq!(p.dnum(), 5);
        assert_eq!(p.alpha(), 7);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(
            CkksParams::new("x", 100, 3, 1, 2, 28, 26, 1).is_err(),
            "non-power-of-two N"
        );
        assert!(
            CkksParams::new("x", 64, 4, 1, 3, 28, 26, 1).is_err(),
            "dnum ∤ L+1"
        );
        assert!(
            CkksParams::new("x", 64, 3, 1, 2, 40, 26, 1).is_err(),
            "prime too large"
        );
        assert!(
            CkksParams::new("x", 64, 3, 0, 2, 28, 26, 1).is_err(),
            "no special primes"
        );
        assert!(
            CkksParams::new("x", 64, 8, 2, 3, 28, 26, 1).is_err(),
            "K = 2 < α = 3 must be rejected"
        );
    }

    #[test]
    fn ciphertext_footprint() {
        let p = CkksParams::table_v_default();
        // 2 × 45 × 65536 × 4 B = 22.5 MiB.
        assert_eq!(p.ciphertext_bytes(), 2 * 45 * 65536 * 4);
    }

    #[test]
    fn scale_is_power_of_two() {
        let p = CkksParams::toy();
        assert_eq!(p.scale(), (1u64 << 26) as f64);
    }
}
