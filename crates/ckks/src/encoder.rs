//! Canonical-embedding encoder (Eq. 5 of the paper).
//!
//! CKKS packs `N/2` complex numbers into one polynomial by evaluating at the
//! primitive `2N`-th roots `ζ^{5^j}`: decoding slot `j` is
//! `z_j = m(ζ^{5^j}) / Δ`, and encoding is the conjugate-symmetric inverse
//! `c_k = round(Δ · (2/N) · Re Σ_j z_j ζ^{-5^j k})`.
//!
//! Twiddles are table lookups into a length-`2N` unit-circle table with
//! incremental index stepping, so encode/decode are `O(N · slots)` exact-ish
//! float pipelines with no trig in the inner loop. (The GPU-side cost of
//! encoding is not part of the paper's measurements — encoding happens on
//! the client — so algorithmic elegance matters less than correctness
//! here.)

use crate::error::CkksError;
use tensorfhe_math::Complex64;

/// Encoder/decoder for one ring degree.
#[derive(Debug)]
pub struct Encoder {
    n: usize,
    /// `cis[i] = e^{iπ·i/N}` for `i < 2N`.
    cis: Vec<Complex64>,
    /// `5^j mod 2N` for `j < N/2`.
    rot_pows: Vec<usize>,
}

impl Encoder {
    /// Builds the tables for degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 4.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 4, "invalid degree");
        let two_n = 2 * n;
        let cis = (0..two_n)
            .map(|i| Complex64::cis(std::f64::consts::PI * i as f64 / n as f64))
            .collect();
        let mut rot_pows = Vec::with_capacity(n / 2);
        let mut p = 1usize;
        for _ in 0..n / 2 {
            rot_pows.push(p);
            p = p * 5 % two_n;
        }
        Self { n, cis, rot_pows }
    }

    /// Number of usable slots (`N/2`).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// Encodes up to `N/2` complex values into integer coefficients at scale
    /// `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::TooManySlots`] if too many values are supplied.
    pub fn encode(&self, values: &[Complex64], scale: f64) -> Result<Vec<i128>, CkksError> {
        let slots = self.slots();
        if values.len() > slots {
            return Err(CkksError::TooManySlots {
                given: values.len(),
                slots,
            });
        }
        let two_n = 2 * self.n;
        let norm = scale * 2.0 / self.n as f64;
        let mut acc = vec![Complex64::zero(); self.n];
        for (j, &z) in values.iter().enumerate() {
            if z == Complex64::zero() {
                continue;
            }
            let step = self.rot_pows[j];
            // idx(k) = (-5^j · k) mod 2N, stepped incrementally.
            let mut idx = 0usize;
            for a in acc.iter_mut() {
                *a += z * self.cis[idx];
                idx = (idx + two_n - step) % two_n;
            }
        }
        Ok(acc
            .into_iter()
            .map(|a| (a.re * norm).round() as i128)
            .collect())
    }

    /// Decodes real-valued coefficients (already divided by the scale) into
    /// the slot values.
    #[must_use]
    pub fn decode(&self, coeffs: &[f64]) -> Vec<Complex64> {
        assert_eq!(coeffs.len(), self.n, "need N coefficients");
        let two_n = 2 * self.n;
        let mut out = Vec::with_capacity(self.slots());
        for j in 0..self.slots() {
            let step = self.rot_pows[j];
            let mut idx = 0usize;
            let mut z = Complex64::zero();
            for &c in coeffs {
                z += self.cis[idx].scale(c);
                idx = (idx + step) % two_n;
            }
            out.push(z);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize, values: &[Complex64], scale: f64, tol: f64) {
        let e = Encoder::new(n);
        let coeffs = e.encode(values, scale).expect("fits");
        let floats: Vec<f64> = coeffs.iter().map(|&c| c as f64 / scale).collect();
        let back = e.decode(&floats);
        for (i, v) in values.iter().enumerate() {
            assert!((*v - back[i]).norm() < tol, "slot {i}: {v} vs {}", back[i]);
        }
        // Unfilled slots decode to ~0.
        for (i, b) in back.iter().enumerate().skip(values.len()) {
            assert!(b.norm() < tol, "empty slot {i} = {b}");
        }
    }

    #[test]
    fn roundtrip_simple_reals() {
        let vals: Vec<Complex64> = [1.0, -2.5, 3.25, 0.125]
            .iter()
            .map(|&r| Complex64::new(r, 0.0))
            .collect();
        roundtrip(32, &vals, (1u64 << 30) as f64, 1e-6);
    }

    #[test]
    fn roundtrip_complex_full_packing() {
        let n = 256;
        let vals: Vec<Complex64> = (0..n / 2)
            .map(|i| Complex64::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect();
        roundtrip(n, &vals, (1u64 << 30) as f64, 1e-5);
    }

    #[test]
    fn encoding_is_additive() {
        let e = Encoder::new(64);
        let scale = (1u64 << 26) as f64;
        let a = vec![Complex64::new(1.25, -0.5); 8];
        let b = vec![Complex64::new(-0.75, 2.0); 8];
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ca = e.encode(&a, scale).expect("fits");
        let cb = e.encode(&b, scale).expect("fits");
        let cs = e.encode(&sum, scale).expect("fits");
        for i in 0..64 {
            // Rounding makes this ±1 ULP exact.
            assert!((ca[i] + cb[i] - cs[i]).abs() <= 2, "coeff {i}");
        }
    }

    #[test]
    fn too_many_values_rejected() {
        let e = Encoder::new(16);
        let vals = vec![Complex64::one(); 9];
        assert!(e.encode(&vals, 1024.0).is_err());
    }

    #[test]
    fn constant_encodes_to_constant_coefficient() {
        // Encoding the same real c in every slot gives m(X) ≈ Δ·c (constant
        // polynomial), because Σ_j ζ^{-5^j k} vanishes for k ≠ 0.
        let e = Encoder::new(32);
        let scale = (1u64 << 24) as f64;
        let vals = vec![Complex64::new(0.5, 0.0); 16];
        let coeffs = e.encode(&vals, scale).expect("fits");
        assert!((coeffs[0] as f64 - 0.5 * scale).abs() < 2.0);
        for (k, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() <= 1, "coeff {k} should be ~0, got {c}");
        }
    }
}
