//! Key material: secret, public, relinearisation and rotation keys.

use crate::context::CkksContext;
use crate::encrypt::{noise_ext, noise_poly, signed_ext, ternary_poly, uniform_ext, uniform_poly};
use crate::error::CkksError;
use crate::keyswitch::{ExtPoly, KsDigit, KsKey};
use crate::poly::{Ciphertext, Domain, Plaintext, RnsPoly};
use rand::Rng;
use std::collections::HashMap;
use tensorfhe_math::sampling;

/// The ternary secret key (kept as raw signed coefficients; residue forms
/// are derived on demand).
#[derive(Debug, Clone)]
pub struct SecretKey {
    coeffs: Vec<i64>,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> Self {
        Self {
            coeffs: sampling::sample_ternary(rng, ctx.params().n()),
        }
    }

    /// Samples a sparse ternary secret with Hamming weight `h` —
    /// bootstrapping needs the bounded `‖s‖₁` so the ModRaise overflow
    /// polynomial `I(X)` stays within the sine approximation range.
    pub fn generate_sparse<R: Rng + ?Sized>(ctx: &CkksContext, h: usize, rng: &mut R) -> Self {
        Self {
            coeffs: sampling::sample_sparse_ternary(rng, ctx.params().n(), h),
        }
    }

    /// The signed coefficients (test/diagnostic access).
    #[must_use]
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }
}

/// The RLWE public key `(pk0, pk1) = (-a·s + e, a)` at the top level.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pk0: RnsPoly,
    pk1: RnsPoly,
}

/// All key material needed by the evaluator, bound to a context.
#[derive(Debug)]
pub struct KeyChain<'a> {
    ctx: &'a CkksContext,
    sk: SecretKey,
    pk: PublicKey,
    /// Secret in NTT domain over the `q` basis (decryption).
    s_ntt: RnsPoly,
    /// Secret over the full extended basis (key generation).
    s_ext: ExtPoly,
    /// Relinearisation key (encrypts `s²`).
    relin: KsKey,
    /// Rotation/conjugation keys by Galois element.
    // lint: ordered-ok (keyed contains_key/insert/get only; never iterated)
    rot: HashMap<u64, KsKey>,
}

impl<'a> KeyChain<'a> {
    /// Generates secret, public and relinearisation keys.
    pub fn generate<R: Rng + ?Sized>(ctx: &'a CkksContext, rng: &mut R) -> Self {
        let sk = SecretKey::generate(ctx, rng);
        Self::from_secret(ctx, sk, rng)
    }

    /// Generates keys with a sparse ternary secret of Hamming weight `h`
    /// (bootstrapping configurations).
    pub fn generate_sparse<R: Rng + ?Sized>(ctx: &'a CkksContext, h: usize, rng: &mut R) -> Self {
        let sk = SecretKey::generate_sparse(ctx, h, rng);
        Self::from_secret(ctx, sk, rng)
    }

    /// Derives the full key chain from an existing secret.
    pub fn from_secret<R: Rng + ?Sized>(ctx: &'a CkksContext, sk: SecretKey, rng: &mut R) -> Self {
        let max_level = ctx.params().max_level();

        let mut s_ntt = RnsPoly::from_signed(ctx, sk.coeffs(), max_level);
        s_ntt.ntt_forward(ctx);
        let s_ext = signed_ext(ctx, sk.coeffs());

        // pk = (-a·s + e, a)
        let a = uniform_poly(ctx, rng, max_level);
        let e = noise_poly(ctx, rng, max_level);
        let mut pk0 = a.clone();
        pk0.hada_assign(ctx, &s_ntt);
        pk0.neg_assign(ctx);
        pk0.add_assign(ctx, &e);
        let pk = PublicKey { pk0, pk1: a };

        // Relinearisation key: encrypts s² (computed limb-wise in NTT form).
        let mut s2_ext = s_ext.clone();
        hada_ext(ctx, &mut s2_ext, &s_ext);
        let relin = generate_ks_key(ctx, rng, &s_ext, &s2_ext);

        Self {
            ctx,
            sk,
            pk,
            s_ntt,
            s_ext,
            relin,
            rot: HashMap::new(),
        }
    }

    /// The context these keys belong to.
    #[must_use]
    pub fn context(&self) -> &'a CkksContext {
        self.ctx
    }

    /// The relinearisation key.
    #[must_use]
    pub fn relin_key(&self) -> &KsKey {
        &self.relin
    }

    /// Generates rotation keys for the given slot steps.
    pub fn gen_rotation_keys<R: Rng + ?Sized>(&mut self, steps: &[i64], rng: &mut R) {
        for &r in steps {
            let g = self.ctx.galois_element(r);
            if self.rot.contains_key(&g) {
                continue;
            }
            let key = self.make_galois_key(g, rng);
            self.rot.insert(g, key);
        }
    }

    /// Generates the conjugation key (Galois element `2N-1`).
    pub fn gen_conjugation_key<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let g = self.ctx.conjugation_element();
        if !self.rot.contains_key(&g) {
            let key = self.make_galois_key(g, rng);
            self.rot.insert(g, key);
        }
    }

    /// Looks up the switching key for a Galois element.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingRotationKey`] if the key was never
    /// generated.
    pub fn galois_key(&self, g: u64) -> Result<&KsKey, CkksError> {
        self.rot
            .get(&g)
            .ok_or(CkksError::MissingRotationKey(g as i64))
    }

    fn make_galois_key<R: Rng + ?Sized>(&self, g: u64, rng: &mut R) -> KsKey {
        // Target key: σ_g(s) over the extended basis.
        let tables = self.ctx.galois_tables(g);
        let n = self.ctx.params().n();
        let two_n = 2 * n as u64;
        let mut rotated = vec![0i64; n];
        for (k, &c) in self.sk.coeffs().iter().enumerate() {
            let idx = (k as u128 * g as u128 % two_n as u128) as u64;
            if idx < n as u64 {
                rotated[idx as usize] += c;
            } else {
                rotated[(idx - n as u64) as usize] -= c;
            }
        }
        let _ = tables; // permutation identity validated in poly tests
        let target = signed_ext(self.ctx, &rotated);
        generate_ks_key(self.ctx, rng, &self.s_ext, &target)
    }

    /// Encrypts a plaintext under the public key.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let level = pt.poly.level();
        let ctx = self.ctx;
        let v = ternary_poly(ctx, rng, level);
        let e0 = noise_poly(ctx, rng, level);
        let e1 = noise_poly(ctx, rng, level);

        let mut pk0 = self.pk.pk0.clone();
        pk0.truncate_level(level);
        let mut pk1 = self.pk.pk1.clone();
        pk1.truncate_level(level);

        let mut c0 = pk0;
        c0.hada_assign(ctx, &v);
        c0.add_assign(ctx, &e0);
        c0.add_assign(ctx, &pt.poly);

        let mut c1 = pk1;
        c1.hada_assign(ctx, &v);
        c1.add_assign(ctx, &e1);

        Ciphertext {
            c0,
            c1,
            scale: pt.scale,
        }
    }

    /// Decrypts a ciphertext: `m = c0 + c1·s`.
    #[must_use]
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let level = ct.level();
        let mut s = self.s_ntt.clone();
        s.truncate_level(level);
        let mut m = ct.c1.clone();
        m.hada_assign(self.ctx, &s);
        m.add_assign(self.ctx, &ct.c0);
        Plaintext {
            poly: m,
            scale: ct.scale,
        }
    }

    /// Test/diagnostic access to the secret key.
    #[must_use]
    pub fn secret_key(&self) -> &SecretKey {
        &self.sk
    }
}

/// Generates a key-switching key from canonical secret `s` to target `s'`.
///
/// Digit `j`'s pair is `(b_j, a_j)` with
/// `b_j = -a_j·s + e_j + W_j·s'` where the RNS residues of
/// `W_j = P·Q̂_j·[Q̂_j^{-1}]_{Q_j}` are `P mod q_i` inside digit `j` and `0`
/// elsewhere (including all special primes).
pub fn generate_ks_key<R: Rng + ?Sized>(
    ctx: &CkksContext,
    rng: &mut R,
    s_ext: &ExtPoly,
    target_ext: &ExtPoly,
) -> KsKey {
    let dnum = ctx.params().dnum();
    let alpha = ctx.params().alpha();
    let mut digits = Vec::with_capacity(dnum);
    for j in 0..dnum {
        let a = uniform_ext(ctx, rng);
        let e = noise_ext(ctx, rng);
        // b = -a ⊙ s + e
        let mut b = a.clone();
        hada_ext(ctx, &mut b, s_ext);
        neg_ext(ctx, &mut b);
        add_ext(ctx, &mut b, &e);
        // + (P mod q_i) · s' on the digit's own limbs.
        for i in j * alpha..(j + 1) * alpha {
            let m = ctx.q_mod(i);
            let mut p_mod = 1u64;
            for &pk in ctx.p_primes() {
                p_mod = m.mul(p_mod, m.reduce(pk));
            }
            let s_limb = &target_ext.q_limbs[i];
            for (dst, &sv) in b.q_limbs[i].iter_mut().zip(s_limb) {
                *dst = m.add(*dst, m.mul(p_mod, sv));
            }
        }
        digits.push(KsDigit { b, a });
    }
    KsKey { digits }
}

fn hada_ext(ctx: &CkksContext, lhs: &mut ExtPoly, rhs: &ExtPoly) {
    assert_eq!(lhs.domain, Domain::Ntt);
    assert_eq!(rhs.domain, Domain::Ntt);
    for (i, limb) in lhs.q_limbs.iter_mut().enumerate() {
        let m = ctx.q_mod(i);
        for (x, &y) in limb.iter_mut().zip(&rhs.q_limbs[i]) {
            *x = m.mul(*x, y);
        }
    }
    for (k, limb) in lhs.p_limbs.iter_mut().enumerate() {
        let m = ctx.p_mod(k);
        for (x, &y) in limb.iter_mut().zip(&rhs.p_limbs[k]) {
            *x = m.mul(*x, y);
        }
    }
}

fn add_ext(ctx: &CkksContext, lhs: &mut ExtPoly, rhs: &ExtPoly) {
    for (i, limb) in lhs.q_limbs.iter_mut().enumerate() {
        let m = ctx.q_mod(i);
        for (x, &y) in limb.iter_mut().zip(&rhs.q_limbs[i]) {
            *x = m.add(*x, y);
        }
    }
    for (k, limb) in lhs.p_limbs.iter_mut().enumerate() {
        let m = ctx.p_mod(k);
        for (x, &y) in limb.iter_mut().zip(&rhs.p_limbs[k]) {
            *x = m.add(*x, y);
        }
    }
}

fn neg_ext(ctx: &CkksContext, p: &mut ExtPoly) {
    for (i, limb) in p.q_limbs.iter_mut().enumerate() {
        let m = ctx.q_mod(i);
        for x in limb.iter_mut() {
            *x = m.neg(*x);
        }
    }
    for (k, limb) in p.p_limbs.iter_mut().enumerate() {
        let m = ctx.p_mod(k);
        for x in limb.iter_mut() {
            *x = m.neg(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensorfhe_math::Complex64;

    fn setup() -> (CkksContext, StdRng) {
        (
            CkksContext::new(&CkksParams::toy()).expect("valid"),
            StdRng::seed_from_u64(42),
        )
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let vals = vec![
            Complex64::new(1.25, -0.5),
            Complex64::new(-3.5, 2.0),
            Complex64::new(0.0, 1.0),
        ];
        let pt = ctx.encode(&vals, ctx.params().scale()).expect("fits");
        let ct = keys.encrypt(&pt, &mut rng);
        let dec = ctx.decode(&keys.decrypt(&ct)).expect("decode");
        for (a, b) in vals.iter().zip(&dec) {
            assert!((*a - *b).norm() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn ciphertext_is_not_plaintext() {
        // c0 alone must NOT decode to the message (sanity that encryption
        // actually randomises).
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let vals = vec![Complex64::new(1.0, 0.0)];
        let pt = ctx.encode(&vals, ctx.params().scale()).expect("fits");
        let ct = keys.encrypt(&pt, &mut rng);
        let fake = Plaintext {
            poly: ct.c0.clone(),
            scale: ct.scale,
        };
        let dec = ctx.decode(&fake).expect("decode");
        assert!(
            (dec[0] - vals[0]).norm() > 0.1,
            "c0 alone should not reveal the message"
        );
    }

    #[test]
    fn decryption_requires_right_key() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let other = KeyChain::generate(&ctx, &mut rng);
        let vals = vec![Complex64::new(2.0, 0.0)];
        let pt = ctx.encode(&vals, ctx.params().scale()).expect("fits");
        let ct = keys.encrypt(&pt, &mut rng);
        let wrong = ctx.decode(&other.decrypt(&ct)).expect("decode");
        assert!((wrong[0] - vals[0]).norm() > 0.1);
    }

    #[test]
    fn rotation_keys_registered_by_element() {
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        assert!(keys.galois_key(ctx.galois_element(1)).is_err());
        keys.gen_rotation_keys(&[1, 2], &mut rng);
        assert!(keys.galois_key(ctx.galois_element(1)).is_ok());
        assert!(keys.galois_key(ctx.galois_element(2)).is_ok());
        keys.gen_conjugation_key(&mut rng);
        assert!(keys.galois_key(ctx.conjugation_element()).is_ok());
    }

    #[test]
    fn encryption_noise_is_bounded() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let slots = ctx.params().slots();
        let vals = vec![Complex64::new(0.5, 0.5); slots];
        let pt = ctx.encode(&vals, ctx.params().scale()).expect("fits");
        let ct = keys.encrypt(&pt, &mut rng);
        let dec = ctx.decode(&keys.decrypt(&ct)).expect("decode");
        let max_err = vals
            .iter()
            .zip(&dec)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-3, "fresh encryption error {max_err} too large");
    }
}
