//! Error type for the CKKS crate.

use std::error::Error;
use std::fmt;

/// Errors produced by CKKS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkksError {
    /// Parameter validation failed.
    InvalidParams(String),
    /// Too many values for the available slot count.
    TooManySlots {
        /// Values supplied.
        given: usize,
        /// Slots available (`N/2`).
        slots: usize,
    },
    /// An operation needed more multiplicative depth than remains.
    LevelExhausted,
    /// Operand levels or scales are incompatible.
    Mismatch(String),
    /// A rotation key for the requested step is missing.
    MissingRotationKey(i64),
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkksError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            CkksError::TooManySlots { given, slots } => {
                write!(f, "cannot encode {given} values into {slots} slots")
            }
            CkksError::LevelExhausted => write!(f, "multiplicative level exhausted"),
            CkksError::Mismatch(msg) => write!(f, "operand mismatch: {msg}"),
            CkksError::MissingRotationKey(r) => {
                write!(f, "no rotation key generated for step {r}")
            }
        }
    }
}

impl Error for CkksError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_lowercase_and_informative() {
        let e = CkksError::TooManySlots {
            given: 10,
            slots: 4,
        };
        assert_eq!(e.to_string(), "cannot encode 10 values into 4 slots");
        assert!(CkksError::LevelExhausted.to_string().contains("level"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CkksError>();
    }
}
