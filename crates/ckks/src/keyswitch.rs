//! Hybrid (generalized) key switching — Algorithm 1 of the paper.
//!
//! `KeySwitch([d], evk)` re-encrypts a polynomial `d` (decryptable with some
//! key `s'`) under the canonical secret `s`:
//!
//! 1. **Dcomp** — split the `l+1` active limbs into `⌈(l+1)/α⌉` digits of α
//!    limbs (Han–Ki generalized decomposition; `dnum = (L+1)/α`).
//! 2. **ModUp** — extend each digit from its α primes to the full basis
//!    `{q_0..q_l} ∪ {p_0..p_{K-1}}` with the fast basis conversion (`Conv`
//!    kernel), INTT/NTT sandwiched around it.
//! 3. **Inner product** — accumulate `Σ_j ModUp(d_j) ⊙ evk_j` (Hada-Mult and
//!    Ele-Add kernels) over the extended basis.
//! 4. **ModDown** — divide by `P`: convert the special-prime part back,
//!    subtract, and multiply by `P^{-1} mod q_i`.
//!
//! The evaluation key for digit `j` encrypts `P·Q̂_j·[Q̂_j^{-1}]_{Q_j}·s'`,
//! whose RNS residues are simply `P mod q_i` inside digit `j` and `0`
//! elsewhere — no big-integer arithmetic is ever needed.

use crate::context::CkksContext;
use crate::poly::{Domain, RnsPoly};
use crate::trace::{KernelEvent, Tracing};
use tensorfhe_math::scratch;
use tensorfhe_ntt::{NttBatchOps, NttOps};

/// A polynomial over the extended basis `{q_0..q_l} ∪ {p_0..p_{K-1}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtPoly {
    /// Residue limbs modulo the ciphertext primes.
    pub q_limbs: Vec<Vec<u64>>,
    /// Residue limbs modulo the special primes.
    pub p_limbs: Vec<Vec<u64>>,
    /// Representation domain (shared by every limb).
    pub domain: Domain,
}

impl ExtPoly {
    /// The all-zero extended polynomial for level `l`.
    #[must_use]
    pub fn zero(ctx: &CkksContext, level: usize, domain: Domain) -> Self {
        let n = ctx.params().n();
        Self {
            q_limbs: vec![vec![0; n]; level + 1],
            p_limbs: vec![vec![0; n]; ctx.params().special_primes()],
            domain,
        }
    }

    /// Level of the `q` part.
    #[must_use]
    pub fn level(&self) -> usize {
        self.q_limbs.len() - 1
    }

    /// Total limb count (`q` + `p`).
    #[must_use]
    pub fn total_limbs(&self) -> usize {
        self.q_limbs.len() + self.p_limbs.len()
    }

    /// In-place forward NTT on every limb.
    pub fn ntt_forward(&mut self, ctx: &CkksContext) {
        assert_eq!(self.domain, Domain::Coeff);
        for (i, limb) in self.q_limbs.iter_mut().enumerate() {
            ctx.ntt_q(i).forward(limb);
        }
        for (k, limb) in self.p_limbs.iter_mut().enumerate() {
            ctx.ntt_p(k).forward(limb);
        }
        self.domain = Domain::Ntt;
    }

    /// In-place inverse NTT on every limb.
    pub fn ntt_inverse(&mut self, ctx: &CkksContext) {
        assert_eq!(self.domain, Domain::Ntt);
        for (i, limb) in self.q_limbs.iter_mut().enumerate() {
            ctx.ntt_q(i).inverse(limb);
        }
        for (k, limb) in self.p_limbs.iter_mut().enumerate() {
            ctx.ntt_p(k).inverse(limb);
        }
        self.domain = Domain::Coeff;
    }

    /// Forward NTT of a block of extended polynomials sharing one basis
    /// layout, batched per modulus (`B` = block size rows per wide GEMM).
    ///
    /// This is the key-switch hot loop of §IV-D: all `dnum` ModUp digits
    /// share the extended basis, so their transforms pack into one wide
    /// GEMM per prime instead of `dnum` narrow ones.
    ///
    /// # Panics
    ///
    /// Panics if the polynomials disagree on basis shape or any is already
    /// in NTT domain.
    pub fn ntt_forward_batch(ctx: &CkksContext, exts: &mut [ExtPoly]) {
        let Some(first) = exts.first() else { return };
        let (nq, np) = (first.q_limbs.len(), first.p_limbs.len());
        for e in exts.iter() {
            assert_eq!(e.q_limbs.len(), nq, "basis mismatch in batch");
            assert_eq!(e.p_limbs.len(), np, "basis mismatch in batch");
            assert_eq!(e.domain, Domain::Coeff);
        }
        for i in 0..nq {
            let mut rows: Vec<&mut [u64]> = exts
                .iter_mut()
                .map(|e| e.q_limbs[i].as_mut_slice())
                .collect();
            ctx.ntt_q(i).forward_batch(&mut rows);
        }
        for k in 0..np {
            let mut rows: Vec<&mut [u64]> = exts
                .iter_mut()
                .map(|e| e.p_limbs[k].as_mut_slice())
                .collect();
            ctx.ntt_p(k).forward_batch(&mut rows);
        }
        for e in exts.iter_mut() {
            e.domain = Domain::Ntt;
        }
    }

    /// Inverse NTT of a block of extended polynomials, batched per modulus
    /// (counterpart of [`ExtPoly::ntt_forward_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if the polynomials disagree on basis shape or any is already
    /// in coefficient domain.
    pub fn ntt_inverse_batch(ctx: &CkksContext, exts: &mut [ExtPoly]) {
        let Some(first) = exts.first() else { return };
        let (nq, np) = (first.q_limbs.len(), first.p_limbs.len());
        for e in exts.iter() {
            assert_eq!(e.q_limbs.len(), nq, "basis mismatch in batch");
            assert_eq!(e.p_limbs.len(), np, "basis mismatch in batch");
            assert_eq!(e.domain, Domain::Ntt);
        }
        for i in 0..nq {
            let mut rows: Vec<&mut [u64]> = exts
                .iter_mut()
                .map(|e| e.q_limbs[i].as_mut_slice())
                .collect();
            ctx.ntt_q(i).inverse_batch(&mut rows);
        }
        for k in 0..np {
            let mut rows: Vec<&mut [u64]> = exts
                .iter_mut()
                .map(|e| e.p_limbs[k].as_mut_slice())
                .collect();
            ctx.ntt_p(k).inverse_batch(&mut rows);
        }
        for e in exts.iter_mut() {
            e.domain = Domain::Coeff;
        }
    }

    /// `self += ext ⊙ key`, limb-wise over the shared basis prefix.
    ///
    /// `key` spans the full basis (`L+1` q-limbs); `self`/`ext` span only the
    /// active `l+1` limbs, so the key is indexed by absolute prime index.
    pub fn mul_acc(&mut self, ctx: &CkksContext, ext: &ExtPoly, key: &ExtPoly) {
        assert_eq!(self.domain, Domain::Ntt);
        assert_eq!(ext.domain, Domain::Ntt);
        assert_eq!(key.domain, Domain::Ntt);
        for (i, (acc, x)) in self.q_limbs.iter_mut().zip(&ext.q_limbs).enumerate() {
            let m = ctx.q_mod(i);
            let k_limb = &key.q_limbs[i];
            for ((a, &xv), &kv) in acc.iter_mut().zip(x).zip(k_limb) {
                *a = m.add(*a, m.mul(xv, kv));
            }
        }
        for (k, (acc, x)) in self.p_limbs.iter_mut().zip(&ext.p_limbs).enumerate() {
            let m = ctx.p_mod(k);
            let k_limb = &key.p_limbs[k];
            for ((a, &xv), &kv) in acc.iter_mut().zip(x).zip(k_limb) {
                *a = m.add(*a, m.mul(xv, kv));
            }
        }
    }
}

/// Most extended polynomials a single [`key_switch_batch`] call keeps
/// resident in its ModUp block; wider rotation batches are chunked. At the
/// paper's largest parameters one extended polynomial is ≈25 MB of limbs,
/// so this bounds the block near ~400 MB — a few× one key switch's own
/// transient, far below an unchunked √D-rotation batch.
pub const MAX_MODUP_BLOCK: usize = 16;

/// Inputs per [`key_switch_batch`] chunk at `level`: as many as keep the
/// ModUp block within [`MAX_MODUP_BLOCK`] extended polynomials. Callers
/// that stage per-input operands around the switch (e.g. batched
/// rotations) chunk at the same width so their own transients obey the
/// same residency bound.
pub(crate) fn batch_chunk_inputs(ctx: &CkksContext, level: usize) -> usize {
    let digits = (level + 1).div_ceil(ctx.params().alpha());
    (MAX_MODUP_BLOCK / digits).max(1)
}

/// One digit of a key-switching key: an RLWE pair over the extended basis.
#[derive(Debug, Clone)]
pub struct KsDigit {
    /// `b_j = -a_j·s + e_j + W_j·s'` (NTT domain, full basis).
    pub b: ExtPoly,
    /// Uniform `a_j` (NTT domain, full basis).
    pub a: ExtPoly,
}

/// A key-switching key: one RLWE pair per decomposition digit.
#[derive(Debug, Clone)]
pub struct KsKey {
    /// Digits in order `j = 0..dnum`.
    pub digits: Vec<KsDigit>,
}

/// `Dcomp` + `ModUp`: extends digit `j` of `d` (coefficient domain, level
/// `l`) to the full basis. Returns the extended polynomial in coefficient
/// domain.
#[must_use]
pub fn mod_up(
    ctx: &CkksContext,
    tracing: &mut Tracing<'_>,
    d_coeff: &RnsPoly,
    digit: usize,
) -> ExtPoly {
    assert_eq!(d_coeff.domain(), Domain::Coeff);
    let l = d_coeff.level();
    let n = d_coeff.n();
    let table = ctx.modup_table(digit, l);
    let (s0, s1) = (table.src_start, table.src_end);
    let k = ctx.params().special_primes();

    let mut ext = ExtPoly::zero(ctx, l, Domain::Coeff);
    // Own limbs are copied verbatim (the conversion is exact there).
    for i in s0..s1 {
        ext.q_limbs[i].copy_from_slice(d_coeff.limb(i));
    }
    // Complement limbs via the GEMM-lowered fast basis conversion: the
    // digit's limb-major block converts as one `(L_dst × α) × (α × N)`
    // matrix product (batched y-stage + wide GEMM) instead of walking the
    // N coefficients one at a time.
    let src_rows: Vec<&[u64]> = (s0..s1).map(|i| d_coeff.limb(i)).collect();
    {
        let (q_limbs, p_limbs) = (&mut ext.q_limbs, &mut ext.p_limbs);
        let mut out_rows: Vec<&mut [u64]> = q_limbs
            .iter_mut()
            .enumerate()
            .filter(|&(i, _)| i < s0 || i >= s1)
            .map(|(_, limb)| limb.as_mut_slice())
            .chain(p_limbs.iter_mut().map(Vec::as_mut_slice))
            .collect();
        table.conv.convert_block_into(&src_rows, &mut out_rows);
    }
    tracing.emit(KernelEvent::Conv {
        n,
        l_src: s1 - s0,
        l_dst: (l + 1 - (s1 - s0)) + k,
    });
    ext
}

/// `ModDown`: divides an extended accumulator by `P`, returning a normal
/// RNS polynomial at the same level (NTT domain).
#[must_use]
pub fn mod_down(ctx: &CkksContext, tracing: &mut Tracing<'_>, acc: &ExtPoly) -> RnsPoly {
    mod_down_batch(ctx, tracing, &[acc])
        .pop()
        .expect("one input")
}

/// Batched `ModDown` of several same-level accumulators: the INTT and NTT
/// sandwiches run through the batched per-modulus path (`B` = block size),
/// and the basis conversion of all `B` special-prime parts runs as one
/// `((l+1) × K) × (K × B·N)` wide GEMM; only the scaled subtractions
/// remain per accumulator.
///
/// Emits the same kernel events as calling [`mod_down`] per accumulator —
/// batching changes the arithmetic packing, not the costed schedule —
/// grouped by stage instead of by accumulator.
#[must_use]
pub fn mod_down_batch(
    ctx: &CkksContext,
    tracing: &mut Tracing<'_>,
    accs: &[&ExtPoly],
) -> Vec<RnsPoly> {
    if accs.is_empty() {
        return Vec::new();
    }
    let l = accs[0].level();
    let n = ctx.params().n();
    let k = ctx.params().special_primes();
    let table = ctx.moddown_table(l);

    let mut work: Vec<ExtPoly> = accs.iter().map(|a| (*a).clone()).collect();
    ExtPoly::ntt_inverse_batch(ctx, &mut work);
    for acc in &work {
        tracing.emit(KernelEvent::Ntt {
            n,
            limbs: acc.total_limbs(),
            inverse: true,
        });
    }

    // Convert the special-prime parts of ALL accumulators in one shot:
    // each special limb's rows concatenate into a `(K × B·N)` block, so the
    // whole batch is a single `((l+1) × K) × (K × B·N)` wide GEMM — the
    // `B` dimension of the paper's operation-level batching applied to the
    // Conv kernel.
    for acc in &work {
        assert_eq!(acc.level(), l, "level mismatch in ModDown batch");
    }
    // Stage the concatenated special-prime block and the conversion output
    // in pooled scratch: repeated drains reuse the same two wide buffers
    // instead of reallocating `K + (l+1)` rows per batch.
    let width = work.len() * n;
    let mut src_cat = scratch::take_u64(k * width);
    for (kk, row) in src_cat.chunks_mut(width).enumerate() {
        for (b, acc) in work.iter().enumerate() {
            row[b * n..(b + 1) * n].copy_from_slice(&acc.p_limbs[kk]);
        }
    }
    let l_dst = table.conv.l_dst();
    let mut conv_flat = scratch::take_u64(l_dst * width);
    {
        let src_rows: Vec<&[u64]> = src_cat.chunks(width).collect();
        let mut out_rows: Vec<&mut [u64]> = conv_flat.chunks_mut(width).collect();
        table.conv.convert_block_into(&src_rows, &mut out_rows);
    }
    let conv_wide: Vec<&[u64]> = conv_flat.chunks(width).collect();

    let mut outs: Vec<RnsPoly> = Vec::with_capacity(work.len());
    for (b, acc) in work.iter().enumerate() {
        tracing.emit(KernelEvent::Conv {
            n,
            l_src: k,
            l_dst: l + 1,
        });

        // out_i = (acc_i - conv_i) · P^{-1} mod q_i
        let mut out_limbs = Vec::with_capacity(l + 1);
        for (i, conv_row) in conv_wide.iter().enumerate().take(l + 1) {
            let m = ctx.q_mod(i);
            let p_inv = table.p_inv_mod_q[i];
            let limb = acc.q_limbs[i]
                .iter()
                .zip(&conv_row[b * n..(b + 1) * n])
                .map(|(&a, &t)| m.mul(m.sub(a, t), p_inv))
                .collect();
            out_limbs.push(limb);
        }
        tracing.emit(KernelEvent::EleSub { n, limbs: l + 1 });
        outs.push(RnsPoly::from_limbs(out_limbs, Domain::Coeff));
    }
    drop(conv_wide);
    scratch::give_u64(conv_flat);
    scratch::give_u64(src_cat);

    {
        let mut views: Vec<&mut RnsPoly> = outs.iter_mut().collect();
        RnsPoly::ntt_forward_batch(ctx, &mut views);
    }
    for _ in &outs {
        tracing.emit(KernelEvent::Ntt {
            n,
            limbs: l + 1,
            inverse: false,
        });
    }
    outs
}

/// Full key switch (Algorithm 1): `d` must be in NTT domain.
///
/// Returns `(c0', c1')` such that `c0' + c1'·s ≈ d·s'` where `s'` is the key
/// the `ksk` was generated for.
#[must_use]
pub fn key_switch(
    ctx: &CkksContext,
    tracing: &mut Tracing<'_>,
    d: &RnsPoly,
    ksk: &KsKey,
) -> (RnsPoly, RnsPoly) {
    key_switch_batch(ctx, tracing, &[d], &[ksk])
        .pop()
        .expect("one input")
}

/// Batched key switch of several same-level polynomials, each under its own
/// key (the streaming-bootstrap hot path: a BSGS stage key-switches ≈√D
/// rotations of one ciphertext at once).
///
/// The arithmetic packs across inputs — one [`RnsPoly::ntt_inverse_batch`]
/// for every input, one [`ExtPoly::ntt_forward_batch`] over the whole
/// `inputs × dnum` ModUp digit block, and one [`mod_down_batch`] over all
/// `2·inputs` accumulators — so each per-modulus transform is a single wide
/// GEMM under the GEMM formulations. The emitted kernel events are exactly
/// those of calling [`key_switch`] once per input, in the same order:
/// batching changes the arithmetic packing, not the costed schedule.
///
/// Peak host memory is bounded: batches whose ModUp block would exceed
/// [`MAX_MODUP_BLOCK`] extended polynomials are processed in fixed-size
/// input chunks (results and events are identical — batched transforms are
/// bit-exact at any width — only the GEMM row count per call changes).
///
/// # Panics
///
/// Panics if `ds` and `ksks` disagree in length, any input is not in NTT
/// domain, levels differ across inputs, or a key has too few digits.
#[must_use]
pub fn key_switch_batch(
    ctx: &CkksContext,
    tracing: &mut Tracing<'_>,
    ds: &[&RnsPoly],
    ksks: &[&KsKey],
) -> Vec<(RnsPoly, RnsPoly)> {
    assert_eq!(ds.len(), ksks.len(), "one key per input");
    let Some(first) = ds.first() else {
        return Vec::new();
    };
    let l = first.level();
    let alpha = ctx.params().alpha();
    let digits = (l + 1).div_ceil(alpha);
    // Validate the WHOLE batch before the residency-chunk recursion: the
    // documented contract violations must fire even when each individual
    // chunk would happen to be internally consistent.
    for d in ds {
        assert_eq!(
            d.domain(),
            Domain::Ntt,
            "key switch input must be in NTT domain"
        );
        assert_eq!(d.level(), l, "level mismatch in key-switch batch");
    }
    for ksk in ksks {
        assert!(digits <= ksk.digits.len(), "key has too few digits");
    }

    // Residency cap: a BSGS stage can hand over ≈√D rotations, and each
    // input materializes `digits` extended polynomials plus two
    // accumulators. Chunking keeps the transient block O(chunk × digits)
    // — still far wider than any single key switch — instead of letting a
    // paper-scale rotation batch hold gigabytes of limbs at once.
    let chunk_inputs = batch_chunk_inputs(ctx, l);
    if ds.len() > chunk_inputs {
        let mut out = Vec::with_capacity(ds.len());
        for (dc, kc) in ds.chunks(chunk_inputs).zip(ksks.chunks(chunk_inputs)) {
            out.extend(key_switch_batch(ctx, tracing, dc, kc));
        }
        return out;
    }

    // Arithmetic runs silently in batched blocks; the sequential event
    // stream is emitted once per input at the end.
    let mut silent = Tracing::new(None);

    // INTT every input in one batched block.
    let mut d_coeffs: Vec<RnsPoly> = ds.iter().map(|d| (*d).clone()).collect();
    {
        let mut views: Vec<&mut RnsPoly> = d_coeffs.iter_mut().collect();
        RnsPoly::ntt_inverse_batch(ctx, &mut views);
    }

    // ModUp every digit of every input, then NTT the whole block at once:
    // all digits of all inputs share the extended basis, so each prime's
    // transform is one wide `inputs·dnum`-row GEMM under the GEMM
    // formulations (the §IV-D key-switch hot loop, widened across the
    // rotation batch).
    let mut exts: Vec<ExtPoly> = Vec::with_capacity(ds.len() * digits);
    for d_coeff in &d_coeffs {
        for j in 0..digits {
            exts.push(mod_up(ctx, &mut silent, d_coeff, j));
        }
    }
    ExtPoly::ntt_forward_batch(ctx, &mut exts);

    // Per-input inner products against that input's key digits.
    let mut accs: Vec<ExtPoly> = Vec::with_capacity(2 * ds.len());
    for (r, ksk) in ksks.iter().enumerate() {
        let mut acc0 = ExtPoly::zero(ctx, l, Domain::Ntt);
        let mut acc1 = ExtPoly::zero(ctx, l, Domain::Ntt);
        for (j, ext) in exts[r * digits..(r + 1) * digits].iter().enumerate() {
            // Keys store the full basis; slice q-limbs to the active level.
            let key = &ksk.digits[j];
            let b = slice_key(ctx, &key.b, l);
            let a = slice_key(ctx, &key.a, l);
            acc0.mul_acc(ctx, ext, &b);
            acc1.mul_acc(ctx, ext, &a);
        }
        accs.push(acc0);
        accs.push(acc1);
    }

    // All accumulators ModDown together (B = 2·inputs rows per modulus).
    let acc_refs: Vec<&ExtPoly> = accs.iter().collect();
    let mut outs = mod_down_batch(ctx, &mut silent, &acc_refs);

    // The costed schedule is unchanged: one sequential event group per
    // input, exactly as [`key_switch`] emits.
    for _ in ds {
        emit_key_switch_events(ctx, tracing, l);
    }

    outs.reverse();
    let mut pairs = Vec::with_capacity(ds.len());
    while let (Some(c0), Some(c1)) = (outs.pop(), outs.pop()) {
        pairs.push((c0, c1));
    }
    pairs
}

/// Emits the kernel-event stream of one [`key_switch`] call at `level` —
/// shared by the single and batched entry points (and the batched rotation
/// path in `eval`) so batched arithmetic leaves the costed schedule
/// bit-identical to sequential execution.
pub(crate) fn emit_key_switch_events(ctx: &CkksContext, tracing: &mut Tracing<'_>, level: usize) {
    let n = ctx.params().n();
    let k = ctx.params().special_primes();
    let alpha = ctx.params().alpha();
    let limbs = level + 1;
    let digits = limbs.div_ceil(alpha);
    let ext_limbs = limbs + k;
    tracing.emit(KernelEvent::Ntt {
        n,
        limbs,
        inverse: true,
    });
    for j in 0..digits {
        let src = alpha.min(limbs - j * alpha);
        tracing.emit(KernelEvent::Conv {
            n,
            l_src: src,
            l_dst: limbs - src + k,
        });
    }
    for _ in 0..digits {
        tracing.emit(KernelEvent::Ntt {
            n,
            limbs: ext_limbs,
            inverse: false,
        });
        tracing.emit(KernelEvent::HadaMult {
            n,
            limbs: 2 * ext_limbs,
        });
        tracing.emit(KernelEvent::EleAdd {
            n,
            limbs: 2 * ext_limbs,
        });
    }
    for _ in 0..2 {
        tracing.emit(KernelEvent::Ntt {
            n,
            limbs: ext_limbs,
            inverse: true,
        });
    }
    for _ in 0..2 {
        tracing.emit(KernelEvent::Conv {
            n,
            l_src: k,
            l_dst: limbs,
        });
        tracing.emit(KernelEvent::EleSub { n, limbs });
    }
    for _ in 0..2 {
        tracing.emit(KernelEvent::Ntt {
            n,
            limbs,
            inverse: false,
        });
    }
}

/// Borrows the active-level prefix of a full-basis key polynomial.
fn slice_key(_ctx: &CkksContext, key: &ExtPoly, level: usize) -> ExtPoly {
    ExtPoly {
        q_limbs: key.q_limbs[..=level].to_vec(),
        p_limbs: key.p_limbs.clone(),
        domain: key.domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use tensorfhe_math::crt::RnsBasis;

    fn ctx() -> CkksContext {
        CkksContext::new(&CkksParams::toy()).expect("valid")
    }

    #[test]
    fn mod_up_preserves_value_mod_sources() {
        let c = ctx();
        let n = c.params().n();
        // Encode the constant value 42 across all limbs at level 3.
        let coeffs = vec![42i128; n];
        let d = RnsPoly::from_i128_coeffs(&c, &coeffs, 3);
        let mut tr = Tracing::new(None);
        let ext = mod_up(&c, &mut tr, &d, 0);
        // Digit 0 covers limbs 0..2 (α = 2). Own limbs are exact.
        for i in 0..2 {
            assert_eq!(ext.q_limbs[i], d.limb(i));
        }
        // Other limbs equal 42 + e·Q_0 mod q_i for small e ≥ 0.
        let q0q1 = RnsBasis::new(&c.q_primes()[..2])
            .product()
            .to_i128()
            .expect("fits");
        for i in 2..=3 {
            let m = c.q_mod(i);
            let got = ext.q_limbs[i][0] as i128;
            let ok = (0..=2i128).any(|e| (42 + e * q0q1).rem_euclid(m.value() as i128) == got);
            assert!(ok, "limb {i} residue {got} not within overshoot range");
        }
    }

    #[test]
    fn mod_down_divides_by_p() {
        // Build ext = P · v exactly (small v), then ModDown must return v.
        let c = ctx();
        let n = c.params().n();
        let level = 2;
        let p_product: i128 = c.p_primes().iter().map(|&p| p as i128).product();
        let v = 7i128;
        let scaled = vec![v * p_product; n];

        let mut ext = ExtPoly::zero(&c, level, Domain::Coeff);
        for i in 0..=level {
            let m = c.q_mod(i);
            for (dst, &s) in ext.q_limbs[i].iter_mut().zip(&scaled) {
                *dst = m.from_i128(s);
            }
        }
        for k in 0..c.params().special_primes() {
            let m = c.p_mod(k);
            for (dst, &s) in ext.p_limbs[k].iter_mut().zip(&scaled) {
                *dst = m.from_i128(s);
            }
        }
        ext.ntt_forward(&c);

        let mut tr = Tracing::new(None);
        let mut out = mod_down(&c, &mut tr, &ext);
        out.ntt_inverse(&c);
        for i in 0..=level {
            let m = c.q_mod(i);
            assert!(out.limb(i).iter().all(|&x| x == m.from_i128(v)));
        }
    }

    #[test]
    fn emitted_stream_matches_real_arithmetic_emission() {
        // `key_switch_batch` runs the arithmetic silently and emits events
        // through `emit_key_switch_events`; this test ties that synthetic
        // stream to the REAL emission of the arithmetic helpers (the
        // pre-batch `key_switch` inline sequence: INTT marker, `mod_up`'s
        // Conv per digit, per-digit NTT/HadaMult/EleAdd markers,
        // `mod_down_batch`'s pair events) so a future kernel-shape change
        // in `mod_up`/`mod_down_batch` cannot silently desynchronize the
        // costed schedule from the executed kernels.
        use crate::trace::RecordingTracer;
        let c = ctx();
        let n = c.params().n();
        let alpha = c.params().alpha();
        // Level 2 exercises a partial last digit (α = 2, 3 limbs).
        for level in [2usize, 3] {
            let digits = (level + 1).div_ceil(alpha);
            let d = RnsPoly::from_i128_coeffs(&c, &vec![1i128; n], level);
            let mut real = RecordingTracer::new();
            {
                let mut tr = Tracing::new(Some(&mut real));
                tr.emit(KernelEvent::Ntt {
                    n,
                    limbs: level + 1,
                    inverse: true,
                });
                let exts: Vec<ExtPoly> = (0..digits).map(|j| mod_up(&c, &mut tr, &d, j)).collect();
                for ext in &exts {
                    tr.emit(KernelEvent::Ntt {
                        n,
                        limbs: ext.total_limbs(),
                        inverse: false,
                    });
                    tr.emit(KernelEvent::HadaMult {
                        n,
                        limbs: 2 * ext.total_limbs(),
                    });
                    tr.emit(KernelEvent::EleAdd {
                        n,
                        limbs: 2 * ext.total_limbs(),
                    });
                }
                let acc0 = ExtPoly::zero(&c, level, Domain::Ntt);
                let acc1 = ExtPoly::zero(&c, level, Domain::Ntt);
                let _ = mod_down_batch(&c, &mut tr, &[&acc0, &acc1]);
            }
            let mut synth = RecordingTracer::new();
            {
                let mut tr = Tracing::new(Some(&mut synth));
                emit_key_switch_events(&c, &mut tr, level);
            }
            assert_eq!(
                synth.events, real.events,
                "synthetic key-switch stream diverged from the arithmetic \
                 helpers' real emission at level {level}"
            );
        }
    }

    #[test]
    fn ext_poly_ntt_roundtrip() {
        let c = ctx();
        let mut e = ExtPoly::zero(&c, 2, Domain::Coeff);
        e.q_limbs[0][3] = 17;
        e.p_limbs[0][5] = 23;
        let orig = e.clone();
        e.ntt_forward(&c);
        assert_ne!(e, orig);
        e.ntt_inverse(&c);
        assert_eq!(e, orig);
    }
}
