//! The CKKS context: primes, NTT tables, conversion caches, Galois maps.
//!
//! Everything here is a pure function of the parameter set and is computed
//! lazily — benches that only need kernel schedules (TimingOnly mode) never
//! pay for `N = 2^16` twiddle tables they don't touch.

use crate::encoder::Encoder;
use crate::error::CkksError;
use crate::params::CkksParams;
use crate::poly::Plaintext;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tensorfhe_math::crt::RnsBasis;
use tensorfhe_math::prime::{generate_ntt_primes, generate_ntt_primes_excluding};
use tensorfhe_math::{Complex64, Modulus};
use tensorfhe_ntt::{BasisConvGemm, BatchedGemmNtt, NttAlgorithm, PlanCache};

/// Pre-computed tables for one Galois element `g` (rotation/conjugation).
#[derive(Debug, Clone)]
pub struct GaloisTables {
    /// The Galois element (odd, `< 2N`).
    pub g: u64,
    /// NTT-domain slot permutation: `out[t] = in[perm[t]]` — the paper's
    /// `π_r(x) = ([5^r(2x+1)]_{2N} - 1)/2` (ForbeniusMap kernel).
    pub ntt_perm: Vec<u32>,
    /// Coefficient-domain gather: `out[t] = ±in[src]`; entry is
    /// `(src, negate)`.
    pub coeff_map: Vec<(u32, bool)>,
}

/// Basis-extension tables for one key-switching digit at one level.
#[derive(Debug)]
pub struct ModUpTable {
    /// First source limb index (inclusive).
    pub src_start: usize,
    /// One past the last source limb index.
    pub src_end: usize,
    /// GEMM-lowered conversion from the digit's primes to the complement
    /// basis (`q`s outside the digit followed by all `p`s), shared through
    /// the process-wide [`PlanCache`] — digits at different levels with the
    /// same `(src, dst)` prime lists share one conversion matrix.
    pub conv: Arc<BasisConvGemm>,
}

/// Tables for `ModDown` at one level: conversion from the special basis `P`
/// to `q_0..q_l` plus `P^{-1} mod q_i`.
#[derive(Debug)]
pub struct ModDownTable {
    /// GEMM-lowered conversion from `{p_k}` to `{q_0..q_l}` (shared through
    /// the process-wide [`PlanCache`]).
    pub conv: Arc<BasisConvGemm>,
    /// `P^{-1} mod q_i` for `i ≤ l`.
    pub p_inv_mod_q: Vec<u64>,
}

/// The shared, immutable CKKS context.
///
/// Create once per parameter set; cheap to share by reference. Interior
/// caches are lazily filled, deterministic, and thread-safe (`Mutex` /
/// `OnceLock` / `Arc`), so a context is `Send + Sync` and can back
/// parallel per-device executor workers without cloning its tables.
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParams,
    algorithm: NttAlgorithm,
    q_primes: Vec<u64>,
    p_primes: Vec<u64>,
    q_mods: Vec<Modulus>,
    p_mods: Vec<Modulus>,
    ntt_q: Vec<OnceLock<Arc<BatchedGemmNtt>>>,
    ntt_p: Vec<OnceLock<Arc<BatchedGemmNtt>>>,
    encoder: OnceLock<Encoder>,
    rns_per_level: Vec<OnceLock<RnsBasis>>,
    modup: Mutex<HashMap<(usize, usize), Arc<ModUpTable>>>, // lint: ordered-ok (keyed get/insert only)
    moddown: Mutex<HashMap<usize, Arc<ModDownTable>>>, // lint: ordered-ok (keyed get/insert only)
    galois: Mutex<HashMap<u64, Arc<GaloisTables>>>,    // lint: ordered-ok (keyed get/insert only)
    /// `rescale_inv[l][j] = q_l^{-1} mod q_j` for `j < l`.
    rescale_inv: Vec<Vec<u64>>,
}

impl CkksContext {
    /// Builds the context for a parameter set with the butterfly NTT
    /// formulation (the TensorFHE-NT baseline).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParams`] if not enough NTT-friendly primes
    /// of the requested size exist for the degree.
    pub fn new(params: &CkksParams) -> Result<Self, CkksError> {
        Self::with_algorithm(params, NttAlgorithm::Butterfly)
    }

    /// Builds the context with an explicit NTT formulation (Table IV).
    ///
    /// Every formulation computes the *same* transform bit-exactly; the
    /// choice selects the execution shape (butterfly stages vs batched wide
    /// GEMMs). Tables come from the process-wide [`PlanCache`], so contexts
    /// sharing `(N, q, algorithm)` keys share twiddle plans.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParams`] if not enough NTT-friendly primes
    /// of the requested size exist for the degree.
    pub fn with_algorithm(params: &CkksParams, algorithm: NttAlgorithm) -> Result<Self, CkksError> {
        let n = params.n() as u64;
        let l1 = params.max_level() + 1;
        let k = params.special_primes();
        // Deterministic prime chain: q's scan down from 2^bits, p's continue
        // past them (disjoint by construction).
        let q_primes = std::panic::catch_unwind(|| generate_ntt_primes(l1, params.prime_bits(), n))
            .map_err(|_| {
                CkksError::InvalidParams(format!(
                    "not enough {}-bit NTT primes for N={}",
                    params.prime_bits(),
                    params.n()
                ))
            })?;
        let p_primes = std::panic::catch_unwind(|| {
            generate_ntt_primes_excluding(k, params.prime_bits(), n, &q_primes)
        })
        .map_err(|_| {
            CkksError::InvalidParams("not enough special primes for the parameter set".into())
        })?;

        let q_mods: Vec<Modulus> = q_primes.iter().map(|&q| Modulus::new(q)).collect();
        let p_mods: Vec<Modulus> = p_primes.iter().map(|&p| Modulus::new(p)).collect();

        let mut rescale_inv = Vec::with_capacity(l1);
        for (l, &ql) in q_primes.iter().enumerate().take(l1) {
            let row = q_mods[..l].iter().map(|mj| mj.inv(mj.reduce(ql))).collect();
            rescale_inv.push(row);
        }

        Ok(Self {
            params: params.clone(),
            algorithm,
            ntt_q: (0..l1).map(|_| OnceLock::new()).collect(),
            ntt_p: (0..k).map(|_| OnceLock::new()).collect(),
            encoder: OnceLock::new(),
            rns_per_level: (0..l1).map(|_| OnceLock::new()).collect(),
            modup: Mutex::new(HashMap::new()),
            moddown: Mutex::new(HashMap::new()),
            galois: Mutex::new(HashMap::new()),
            q_primes,
            p_primes,
            q_mods,
            p_mods,
            rescale_inv,
        })
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Ciphertext primes `q_0..q_L`.
    #[must_use]
    pub fn q_primes(&self) -> &[u64] {
        &self.q_primes
    }

    /// Special primes `p_0..p_{K-1}`.
    #[must_use]
    pub fn p_primes(&self) -> &[u64] {
        &self.p_primes
    }

    /// Modulus handle for ciphertext prime `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > L`.
    #[must_use]
    pub fn q_mod(&self, i: usize) -> &Modulus {
        &self.q_mods[i]
    }

    /// Modulus handle for special prime `k`.
    #[must_use]
    pub fn p_mod(&self, k: usize) -> &Modulus {
        &self.p_mods[k]
    }

    /// The NTT formulation this context executes with.
    #[must_use]
    pub fn ntt_algorithm(&self) -> NttAlgorithm {
        self.algorithm
    }

    /// NTT plan for ciphertext prime `i` (fetched from the process-wide
    /// [`PlanCache`] on first use).
    #[must_use]
    pub fn ntt_q(&self, i: usize) -> &BatchedGemmNtt {
        self.ntt_q[i].get_or_init(|| {
            PlanCache::global().get(self.params.n(), self.q_primes[i], self.algorithm)
        })
    }

    /// NTT plan for special prime `k` (fetched from the process-wide
    /// [`PlanCache`] on first use).
    #[must_use]
    pub fn ntt_p(&self, k: usize) -> &BatchedGemmNtt {
        self.ntt_p[k].get_or_init(|| {
            PlanCache::global().get(self.params.n(), self.p_primes[k], self.algorithm)
        })
    }

    /// `q_l^{-1} mod q_j` (rescale constant).
    #[must_use]
    pub fn rescale_inv(&self, l: usize, j: usize) -> u64 {
        self.rescale_inv[l][j]
    }

    /// The RNS basis `{q_0..q_l}` for a level (built on first use).
    #[must_use]
    pub fn rns_basis(&self, level: usize) -> &RnsBasis {
        self.rns_per_level[level].get_or_init(|| RnsBasis::new(&self.q_primes[..=level]))
    }

    /// ModUp tables for key-switch digit `j` at ciphertext level `level`.
    ///
    /// The digit covers source limbs `[jα, min((j+1)α, level+1))`; the
    /// conversion targets the complement `q`s and all special primes.
    ///
    /// # Panics
    ///
    /// Panics if the digit is empty at this level.
    #[must_use]
    pub fn modup_table(&self, digit: usize, level: usize) -> Arc<ModUpTable> {
        if let Some(t) = self.modup.lock().expect("modup cache").get(&(digit, level)) {
            return Arc::clone(t);
        }
        let alpha = self.params.alpha();
        let src_start = digit * alpha;
        let src_end = ((digit + 1) * alpha).min(level + 1);
        assert!(src_start < src_end, "digit {digit} empty at level {level}");
        let mut dst: Vec<u64> = Vec::new();
        for (i, &q) in self.q_primes[..=level].iter().enumerate() {
            if i < src_start || i >= src_end {
                dst.push(q);
            }
        }
        dst.extend_from_slice(&self.p_primes);
        let table = Arc::new(ModUpTable {
            src_start,
            src_end,
            conv: PlanCache::global().get_bconv(&self.q_primes[src_start..src_end], &dst),
        });
        self.modup
            .lock()
            .expect("modup cache")
            .insert((digit, level), Arc::clone(&table));
        table
    }

    /// ModDown tables at `level` (built on first use).
    #[must_use]
    pub fn moddown_table(&self, level: usize) -> Arc<ModDownTable> {
        if let Some(t) = self.moddown.lock().expect("moddown cache").get(&level) {
            return Arc::clone(t);
        }
        let conv = PlanCache::global().get_bconv(&self.p_primes, &self.q_primes[..=level]);
        let p_inv_mod_q = self.q_mods[..=level]
            .iter()
            .map(|m| {
                let mut p = 1u64;
                for &pk in &self.p_primes {
                    p = m.mul(p, m.reduce(pk));
                }
                m.inv(p)
            })
            .collect();
        let table = Arc::new(ModDownTable { conv, p_inv_mod_q });
        self.moddown
            .lock()
            .expect("moddown cache")
            .insert(level, Arc::clone(&table));
        table
    }

    /// The Galois element for a rotation by `r` slots: `5^r mod 2N`
    /// (negative `r` rotates the other way).
    #[must_use]
    pub fn galois_element(&self, r: i64) -> u64 {
        let two_n = 2 * self.params.n() as u64;
        let half = self.params.n() as i64 / 2;
        let r = r.rem_euclid(half) as u64;
        let m = Modulus::new(two_n);
        m.pow(5, r)
    }

    /// The Galois element of complex conjugation: `2N - 1`.
    #[must_use]
    pub fn conjugation_element(&self) -> u64 {
        2 * self.params.n() as u64 - 1
    }

    /// Galois tables for element `g` (built on first use).
    ///
    /// # Panics
    ///
    /// Panics if `g` is even or out of range.
    #[must_use]
    pub fn galois_tables(&self, g: u64) -> Arc<GaloisTables> {
        if let Some(t) = self.galois.lock().expect("galois cache").get(&g) {
            return Arc::clone(t);
        }
        let n = self.params.n() as u64;
        let two_n = 2 * n;
        assert!(
            g % 2 == 1 && g < two_n,
            "galois element must be odd and < 2N"
        );

        // NTT-domain permutation: out[t] = in[π(t)], π(t) = (g(2t+1) mod 2N - 1)/2.
        let mut ntt_perm = Vec::with_capacity(n as usize);
        for t in 0..n {
            let x = (g as u128 * (2 * t + 1) as u128 % two_n as u128) as u64;
            ntt_perm.push(((x - 1) / 2) as u32);
        }

        // Coefficient-domain gather with sign: source k maps to k·g mod 2N.
        let mut coeff_map = vec![(0u32, false); n as usize];
        for k in 0..n {
            let idx = (k as u128 * g as u128 % two_n as u128) as u64;
            if idx < n {
                coeff_map[idx as usize] = (k as u32, false);
            } else {
                coeff_map[(idx - n) as usize] = (k as u32, true);
            }
        }

        let t = Arc::new(GaloisTables {
            g,
            ntt_perm,
            coeff_map,
        });
        self.galois
            .lock()
            .expect("galois cache")
            .insert(g, Arc::clone(&t));
        t
    }

    fn encoder(&self) -> &Encoder {
        self.encoder.get_or_init(|| Encoder::new(self.params.n()))
    }

    /// Encodes complex values into a plaintext at the top level.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::TooManySlots`] if more than `N/2` values are
    /// given.
    pub fn encode(&self, values: &[Complex64], scale: f64) -> Result<Plaintext, CkksError> {
        self.encode_at(values, scale, self.params.max_level())
    }

    /// Encodes at a specific level (used after rescaling).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::TooManySlots`] if more than `N/2` values are
    /// given.
    pub fn encode_at(
        &self,
        values: &[Complex64],
        scale: f64,
        level: usize,
    ) -> Result<Plaintext, CkksError> {
        let coeffs = self.encoder().encode(values, scale)?;
        let mut poly = crate::poly::RnsPoly::from_i128_coeffs(self, &coeffs, level);
        poly.ntt_forward(self);
        Ok(Plaintext { poly, scale })
    }

    /// Decodes a plaintext back to complex values.
    ///
    /// # Errors
    ///
    /// Currently infallible for well-formed plaintexts, but kept fallible for
    /// future strict-mode checks.
    pub fn decode(&self, pt: &Plaintext) -> Result<Vec<Complex64>, CkksError> {
        let mut poly = pt.poly.clone();
        if poly.domain() == crate::poly::Domain::Ntt {
            poly.ntt_inverse(self);
        }
        let level = poly.level();
        let basis = self.rns_basis(level);
        let n = self.params.n();
        let mut coeffs = Vec::with_capacity(n);
        let mut residues = vec![0u64; level + 1];
        for i in 0..n {
            for (l, r) in residues.iter_mut().enumerate() {
                *r = poly.limb(l)[i];
            }
            coeffs.push(basis.compose_centered(&residues) as f64 / pt.scale);
        }
        Ok(self.encoder().decode(&coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CkksContext {
        CkksContext::new(&CkksParams::test_small()).expect("params valid")
    }

    #[test]
    fn primes_are_distinct_and_ntt_friendly() {
        let c = ctx();
        let two_n = 2 * c.params().n() as u64;
        let mut all: Vec<u64> = c.q_primes().to_vec();
        all.extend_from_slice(c.p_primes());
        for &q in &all {
            assert_eq!(q % two_n, 1);
        }
        let unique: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn galois_element_structure() {
        let c = ctx();
        assert_eq!(c.galois_element(0), 1);
        assert_eq!(c.galois_element(1), 5);
        assert_eq!(c.galois_element(2), 25);
        // Rotation by slots/2 wraps to identity.
        let half = c.params().slots() as i64;
        assert_eq!(c.galois_element(half), 1);
        assert!(c.conjugation_element() % 2 == 1);
    }

    #[test]
    fn ntt_perm_is_permutation() {
        let c = ctx();
        let t = c.galois_tables(c.galois_element(3));
        let mut seen = vec![false; c.params().n()];
        for &p in &t.ntt_perm {
            assert!(!seen[p as usize], "duplicate target {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn galois_tables_cached() {
        let c = ctx();
        let a = c.galois_tables(5);
        let b = c.galois_tables(5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn modup_table_shapes() {
        let c = ctx();
        // test_small: L=7, dnum=4 → α=2. Digit 1 at level 7 covers limbs 2..4.
        let t = c.modup_table(1, 7);
        assert_eq!((t.src_start, t.src_end), (2, 4));
        // Complement = 6 q-limbs + 2 p-limbs.
        assert_eq!(t.conv.dst_moduli().len(), 6 + 2);
    }

    #[test]
    fn moddown_p_inverse_correct() {
        let c = ctx();
        let t = c.moddown_table(3);
        for (i, &inv) in t.p_inv_mod_q.iter().enumerate() {
            let m = c.q_mod(i);
            let mut p = 1u64;
            for &pk in c.p_primes() {
                p = m.mul(p, m.reduce(pk));
            }
            assert_eq!(m.mul(p, inv), 1);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = ctx();
        let vals: Vec<Complex64> = (0..c.params().slots())
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let pt = c.encode(&vals, c.params().scale()).expect("fits");
        let back = c.decode(&pt).expect("decode");
        for (a, b) in vals.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-4, "slot error too large: {a} vs {b}");
        }
    }

    #[test]
    fn context_is_send_and_sync() {
        // The executor seam shares one context across per-device worker
        // threads; a reintroduced `Rc`/`RefCell` must fail to compile here.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CkksContext>();
        assert_send_sync::<ModUpTable>();
        assert_send_sync::<ModDownTable>();
        assert_send_sync::<GaloisTables>();
    }

    #[test]
    fn encode_rejects_overflow() {
        let c = ctx();
        let too_many = vec![Complex64::one(); c.params().slots() + 1];
        assert!(matches!(
            c.encode(&too_many, c.params().scale()),
            Err(CkksError::TooManySlots { .. })
        ));
    }
}
