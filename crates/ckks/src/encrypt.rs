//! RLWE sampling primitives shared by key generation and encryption.

use crate::context::CkksContext;
use crate::keyswitch::ExtPoly;
use crate::poly::{Domain, RnsPoly};
use rand::Rng;
use tensorfhe_math::sampling;

/// Samples a uniformly random polynomial over `{q_0..q_level}` directly in
/// NTT domain (the NTT of a uniform polynomial is uniform).
pub fn uniform_poly<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R, level: usize) -> RnsPoly {
    let n = ctx.params().n();
    let limbs = (0..=level)
        .map(|l| sampling::sample_uniform(rng, n, ctx.q_primes()[l]))
        .collect();
    RnsPoly::from_limbs(limbs, Domain::Ntt)
}

/// Samples a centered Gaussian error polynomial (σ = 3.2) and returns it in
/// NTT domain at the given level.
pub fn noise_poly<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R, level: usize) -> RnsPoly {
    let n = ctx.params().n();
    let e = sampling::sample_gaussian(rng, n, sampling::DEFAULT_SIGMA);
    let mut p = RnsPoly::from_signed(ctx, &e, level);
    p.ntt_forward(ctx);
    p
}

/// Samples a ternary polynomial (the encryption randomness `v`) in NTT
/// domain.
pub fn ternary_poly<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R, level: usize) -> RnsPoly {
    let n = ctx.params().n();
    let v = sampling::sample_ternary(rng, n);
    let mut p = RnsPoly::from_signed(ctx, &v, level);
    p.ntt_forward(ctx);
    p
}

/// Uniform extended polynomial over the full basis `Q × P` (NTT domain).
pub fn uniform_ext<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> ExtPoly {
    let n = ctx.params().n();
    let q_limbs = ctx
        .q_primes()
        .iter()
        .map(|&q| sampling::sample_uniform(rng, n, q))
        .collect();
    let p_limbs = ctx
        .p_primes()
        .iter()
        .map(|&p| sampling::sample_uniform(rng, n, p))
        .collect();
    ExtPoly {
        q_limbs,
        p_limbs,
        domain: Domain::Ntt,
    }
}

/// Gaussian noise over the full extended basis (NTT domain).
pub fn noise_ext<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> ExtPoly {
    let n = ctx.params().n();
    let e = sampling::sample_gaussian(rng, n, sampling::DEFAULT_SIGMA);
    signed_ext(ctx, &e)
}

/// Embeds small signed coefficients over the full extended basis (NTT
/// domain).
#[must_use]
pub fn signed_ext(ctx: &CkksContext, values: &[i64]) -> ExtPoly {
    let q_limbs = ctx
        .q_primes()
        .iter()
        .map(|&q| {
            let m = tensorfhe_math::Modulus::new(q);
            values.iter().map(|&v| m.from_i64(v)).collect()
        })
        .collect();
    let p_limbs = ctx
        .p_primes()
        .iter()
        .map(|&p| {
            let m = tensorfhe_math::Modulus::new(p);
            values.iter().map(|&v| m.from_i64(v)).collect()
        })
        .collect();
    let mut e = ExtPoly {
        q_limbs,
        p_limbs,
        domain: Domain::Coeff,
    };
    e.ntt_forward(ctx);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(&CkksParams::toy()).expect("valid")
    }

    #[test]
    fn uniform_in_range() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let p = uniform_poly(&c, &mut rng, 3);
        for l in 0..=3 {
            let q = c.q_primes()[l];
            assert!(p.limb(l).iter().all(|&x| x < q));
        }
    }

    #[test]
    fn noise_is_small_in_coeff_domain() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = noise_poly(&c, &mut rng, 2);
        p.ntt_inverse(&c);
        let m = c.q_mod(0);
        for &x in p.limb(0) {
            let centered = m.to_centered(x).unsigned_abs();
            assert!(centered < 40, "noise coefficient too large: {centered}");
        }
    }

    #[test]
    fn signed_ext_consistent_across_bases() {
        let c = ctx();
        let n = c.params().n();
        let vals: Vec<i64> = (0..n as i64).map(|i| (i % 3) - 1).collect();
        let mut e = signed_ext(&c, &vals);
        e.ntt_inverse(&c);
        for (i, &v) in vals.iter().enumerate() {
            let m0 = c.q_mod(0);
            assert_eq!(e.q_limbs[0][i], m0.from_i64(v));
            let mp = c.p_mod(0);
            assert_eq!(e.p_limbs[0][i], mp.from_i64(v));
        }
    }
}
