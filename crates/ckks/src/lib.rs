//! Full-RNS CKKS with hybrid (generalized) key switching.
//!
//! This crate is the FHE substrate of the TensorFHE reproduction: a complete,
//! self-contained implementation of the CKKS approximate-arithmetic scheme
//! (Cheon–Kim–Kim–Song 2017) in its full-RNS form (Cheon–Han–Kim–Kim–Song
//! 2018) with the generalized key-switching of Han–Ki 2020 — the exact
//! algorithm stack §II-B/§IV-A of the paper builds on.
//!
//! Structure:
//!
//! * [`params`] / [`context`] — parameter sets (including the Table V
//!   presets) and the pre-computed context (moduli chains, NTT tables,
//!   basis-conversion caches, Galois permutations).
//! * [`poly`] — RNS polynomials with explicit coefficient/NTT domains.
//! * [`encoder`] — canonical-embedding encoding of complex vectors.
//! * [`keys`] / [`encrypt`] — key generation (secret, public, relinearisation
//!   and rotation keys in the hybrid gadget) and RLWE encryption.
//! * [`keyswitch`] — `Dcomp` → `ModUp` → inner product → `ModDown`
//!   (Algorithm 1 of the paper).
//! * [`eval`] — the five CKKS operations of Table II (`HADD`, `HMULT`,
//!   `CMULT`, `HROTATE`, `RESCALE`) plus conjugation, built from the seven
//!   reusable kernels; every kernel invocation is reported to an optional
//!   [`trace::KernelTracer`] so the GPU engine can cost it.
//!
//! # Examples
//!
//! ```
//! use tensorfhe_ckks::params::CkksParams;
//! use tensorfhe_ckks::context::CkksContext;
//! use tensorfhe_ckks::keys::KeyChain;
//! use tensorfhe_ckks::eval::Evaluator;
//! use tensorfhe_math::Complex64;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let params = CkksParams::toy();
//! let ctx = CkksContext::new(&params)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let keys = KeyChain::generate(&ctx, &mut rng);
//! let mut eval = Evaluator::new(&ctx);
//!
//! let v = vec![Complex64::new(1.5, 0.0), Complex64::new(-2.0, 0.25)];
//! let pt = ctx.encode(&v, ctx.params().scale())?;
//! let ct = keys.encrypt(&pt, &mut rng);
//! let prod = eval.hmult(&ct, &ct, &keys)?;
//! let dec = ctx.decode(&keys.decrypt(&prod))?;
//! assert!((dec[0].re - 2.25).abs() < 0.05);
//! # Ok::<(), tensorfhe_ckks::CkksError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod encoder;
pub mod encrypt;
pub mod error;
pub mod eval;
pub mod keys;
pub mod keyswitch;
pub mod params;
pub mod poly;
pub mod trace;

pub use context::CkksContext;
pub use error::CkksError;
pub use eval::Evaluator;
pub use keys::KeyChain;
pub use params::CkksParams;
pub use poly::{Ciphertext, Domain, Plaintext, RnsPoly};
pub use trace::{KernelEvent, KernelTracer};
