//! The CKKS evaluator: the five operations of Table II plus helpers.
//!
//! Every operation is decomposed into the seven reusable kernels exactly as
//! Algorithms 2–6 prescribe, and every kernel invocation is reported to the
//! attached [`KernelTracer`] — this is the "hierarchical reconstruction"
//! layer the TensorFHE engine builds its GPU schedules from.

use crate::context::CkksContext;
use crate::error::CkksError;
use crate::keys::KeyChain;
use crate::keyswitch::key_switch;
use crate::poly::{Ciphertext, Domain, Plaintext, RnsPoly};
use crate::trace::{KernelEvent, KernelTracer, Tracing};

/// Relative scale mismatch tolerated by additive operations.
const SCALE_TOLERANCE: f64 = 1e-9;

/// Stateful evaluator bound to a context, optionally tracing kernels.
pub struct Evaluator<'a> {
    ctx: &'a CkksContext,
    tracer: Option<Box<dyn KernelTracer + 'a>>,
}

impl std::fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("params", &self.ctx.params().name())
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator without tracing.
    #[must_use]
    pub fn new(ctx: &'a CkksContext) -> Self {
        Self { ctx, tracer: None }
    }

    /// Creates an evaluator that reports kernels to `tracer`.
    #[must_use]
    pub fn with_tracer(ctx: &'a CkksContext, tracer: Box<dyn KernelTracer + 'a>) -> Self {
        Self {
            ctx,
            tracer: Some(tracer),
        }
    }

    /// Replaces the tracer, returning the previous one.
    pub fn set_tracer(
        &mut self,
        tracer: Option<Box<dyn KernelTracer + 'a>>,
    ) -> Option<Box<dyn KernelTracer + 'a>> {
        std::mem::replace(&mut self.tracer, tracer)
    }

    /// The bound context.
    #[must_use]
    pub fn context(&self) -> &'a CkksContext {
        self.ctx
    }

    fn begin(&mut self, op: &str) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.op_begin(op);
        }
    }

    fn end(&mut self, op: &str) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.op_end(op);
        }
    }

    fn emit(&mut self, e: KernelEvent) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.kernel(e);
        }
    }

    fn check_binary(&self, a: &Ciphertext, b: &Ciphertext) -> Result<(), CkksError> {
        if a.level() != b.level() {
            return Err(CkksError::Mismatch(format!(
                "levels differ: {} vs {}",
                a.level(),
                b.level()
            )));
        }
        let rel = (a.scale - b.scale).abs() / a.scale.max(b.scale);
        if rel > SCALE_TOLERANCE {
            return Err(CkksError::Mismatch(format!(
                "scales differ: {} vs {}",
                a.scale, b.scale
            )));
        }
        Ok(())
    }

    /// `HADD`: element-wise ciphertext addition (Algorithm 5).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level or scale mismatch.
    pub fn hadd(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_binary(a, b)?;
        self.begin("HADD");
        let n = a.n();
        let limbs = a.level() + 1;
        let mut c0 = a.c0.clone();
        c0.add_assign(self.ctx, &b.c0);
        let mut c1 = a.c1.clone();
        c1.add_assign(self.ctx, &b.c1);
        self.emit(KernelEvent::EleAdd {
            n,
            limbs: 2 * limbs,
        });
        self.end("HADD");
        Ok(Ciphertext {
            c0,
            c1,
            scale: a.scale,
        })
    }

    /// `HADD` tolerating small scale drift between operands.
    ///
    /// Rescaling by different primes leaves sibling branches with scales a
    /// few parts in 10³ apart (primes track Δ only approximately). This
    /// variant rebinds the result to the larger scale when the relative
    /// drift is below `max_drift`, absorbing the drift into the message —
    /// the standard treatment in approximate-arithmetic pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level mismatch or drift beyond
    /// `max_drift`.
    pub fn hadd_lenient(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        max_drift: f64,
    ) -> Result<Ciphertext, CkksError> {
        let (a, b) = self.rebind_scales(a, b, max_drift)?;
        self.hadd(&a, &b)
    }

    /// `HSUB` tolerating small scale drift (see [`Evaluator::hadd_lenient`]).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level mismatch or excessive drift.
    pub fn hsub_lenient(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        max_drift: f64,
    ) -> Result<Ciphertext, CkksError> {
        let (a, b) = self.rebind_scales(a, b, max_drift)?;
        self.hsub(&a, &b)
    }

    fn rebind_scales(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        max_drift: f64,
    ) -> Result<(Ciphertext, Ciphertext), CkksError> {
        let rel = (a.scale - b.scale).abs() / a.scale.max(b.scale);
        if rel > max_drift {
            return Err(CkksError::Mismatch(format!(
                "scale drift {rel} exceeds tolerance {max_drift}"
            )));
        }
        let target = a.scale.max(b.scale);
        let mut a = a.clone();
        let mut b = b.clone();
        a.scale = target;
        b.scale = target;
        Ok((a, b))
    }

    /// Ciphertext subtraction (an Ele-Sub composition of HADD).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level or scale mismatch.
    pub fn hsub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_binary(a, b)?;
        self.begin("HADD");
        let n = a.n();
        let limbs = a.level() + 1;
        let mut c0 = a.c0.clone();
        c0.sub_assign(self.ctx, &b.c0);
        let mut c1 = a.c1.clone();
        c1.sub_assign(self.ctx, &b.c1);
        self.emit(KernelEvent::EleSub {
            n,
            limbs: 2 * limbs,
        });
        self.end("HADD");
        Ok(Ciphertext {
            c0,
            c1,
            scale: a.scale,
        })
    }

    /// `HMULT`: ciphertext multiplication with relinearisation
    /// (Algorithm 2). The output scale is the product of the input scales;
    /// call [`Evaluator::rescale`] afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level mismatch.
    pub fn hmult(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeyChain<'_>,
    ) -> Result<Ciphertext, CkksError> {
        if a.level() != b.level() {
            return Err(CkksError::Mismatch(format!(
                "levels differ: {} vs {}",
                a.level(),
                b.level()
            )));
        }
        self.begin("HMULT");
        let ctx = self.ctx;
        let n = a.n();
        let limbs = a.level() + 1;

        // d0 = a0·b0, d2 = a1·b1, d1 = a0·b1 + a1·b0.
        let mut d0 = a.c0.clone();
        d0.hada_assign(ctx, &b.c0);
        let mut d2 = a.c1.clone();
        d2.hada_assign(ctx, &b.c1);
        let mut d1 = a.c0.clone();
        d1.hada_assign(ctx, &b.c1);
        let mut t = a.c1.clone();
        t.hada_assign(ctx, &b.c0);
        d1.add_assign(ctx, &t);
        self.emit(KernelEvent::HadaMult {
            n,
            limbs: 4 * limbs,
        });
        self.emit(KernelEvent::EleAdd { n, limbs });

        // KeySwitch(d2) folds the s² component back onto (1, s).
        let (ks0, ks1) = {
            let mut tracing = Tracing::new(self.tracer.as_deref_mut().map(|t| t as _));
            key_switch(ctx, &mut tracing, &d2, keys.relin_key())
        };
        d0.add_assign(ctx, &ks0);
        d1.add_assign(ctx, &ks1);
        self.emit(KernelEvent::EleAdd {
            n,
            limbs: 2 * limbs,
        });

        self.end("HMULT");
        Ok(Ciphertext {
            c0: d0,
            c1: d1,
            scale: a.scale * b.scale,
        })
    }

    /// Squares a ciphertext (same kernel schedule as HMULT).
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::hmult`] errors.
    pub fn square(&mut self, a: &Ciphertext, keys: &KeyChain<'_>) -> Result<Ciphertext, CkksError> {
        self.hmult(a, &a.clone(), keys)
    }

    /// `CMULT`: ciphertext × plaintext (Algorithm 3). Output scale is the
    /// product of scales.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level mismatch.
    pub fn cmult(&mut self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        if ct.level() != pt.poly.level() {
            return Err(CkksError::Mismatch(format!(
                "ciphertext level {} vs plaintext level {}",
                ct.level(),
                pt.poly.level()
            )));
        }
        self.begin("CMULT");
        let n = ct.n();
        let limbs = ct.level() + 1;
        let mut c0 = ct.c0.clone();
        c0.hada_assign(self.ctx, &pt.poly);
        let mut c1 = ct.c1.clone();
        c1.hada_assign(self.ctx, &pt.poly);
        self.emit(KernelEvent::HadaMult {
            n,
            limbs: 2 * limbs,
        });
        self.end("CMULT");
        Ok(Ciphertext {
            c0,
            c1,
            scale: ct.scale * pt.scale,
        })
    }

    /// Adds a plaintext to a ciphertext (scales must match).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] on level or scale mismatch.
    pub fn add_plain(&mut self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        if ct.level() != pt.poly.level() {
            return Err(CkksError::Mismatch("plaintext level".into()));
        }
        let rel = (ct.scale - pt.scale).abs() / ct.scale.max(pt.scale);
        if rel > SCALE_TOLERANCE {
            return Err(CkksError::Mismatch(format!(
                "plaintext scale {} vs ciphertext scale {}",
                pt.scale, ct.scale
            )));
        }
        self.begin("HADD");
        let n = ct.n();
        let limbs = ct.level() + 1;
        let mut c0 = ct.c0.clone();
        c0.add_assign(self.ctx, &pt.poly);
        self.emit(KernelEvent::EleAdd { n, limbs });
        self.end("HADD");
        Ok(Ciphertext {
            c0,
            c1: ct.c1.clone(),
            scale: ct.scale,
        })
    }

    /// Multiplies by a real constant, raising the scale by Δ (one level of
    /// budget when rescaled).
    pub fn mul_const(&mut self, ct: &Ciphertext, value: f64) -> Ciphertext {
        self.begin("CMULT");
        let ctx = self.ctx;
        let n = ct.n();
        let limbs = ct.level() + 1;
        let delta = ctx.params().scale();
        let v = (value * delta).round() as i64;
        let scalars: Vec<u64> = (0..limbs).map(|l| ctx.q_mod(l).from_i64(v)).collect();
        let mut c0 = ct.c0.clone();
        c0.scale_limbs(ctx, &scalars);
        let mut c1 = ct.c1.clone();
        c1.scale_limbs(ctx, &scalars);
        self.emit(KernelEvent::HadaMult {
            n,
            limbs: 2 * limbs,
        });
        self.end("CMULT");
        Ciphertext {
            c0,
            c1,
            scale: ct.scale * delta,
        }
    }

    /// Adds a real constant to every slot (no scale change).
    pub fn add_const(&mut self, ct: &Ciphertext, value: f64) -> Ciphertext {
        self.begin("HADD");
        let ctx = self.ctx;
        let n = ct.n();
        let limbs = ct.level() + 1;
        let v = (value * ct.scale).round() as i64;
        // A constant polynomial is constant in NTT domain too.
        let mut c0 = ct.c0.clone();
        for l in 0..limbs {
            let m = ctx.q_mod(l);
            let r = m.from_i64(v);
            for x in c0.limb_mut(l) {
                *x = m.add(*x, r);
            }
        }
        self.emit(KernelEvent::EleAdd { n, limbs });
        self.end("HADD");
        Ciphertext {
            c0,
            c1: ct.c1.clone(),
            scale: ct.scale,
        }
    }

    /// Negates a ciphertext.
    pub fn negate(&mut self, ct: &Ciphertext) -> Ciphertext {
        self.begin("HADD");
        let mut c0 = ct.c0.clone();
        c0.neg_assign(self.ctx);
        let mut c1 = ct.c1.clone();
        c1.neg_assign(self.ctx);
        self.emit(KernelEvent::EleSub {
            n: ct.n(),
            limbs: 2 * (ct.level() + 1),
        });
        self.end("HADD");
        Ciphertext {
            c0,
            c1,
            scale: ct.scale,
        }
    }

    /// `RESCALE` (Algorithm 6): divides by the top prime `q_l`, dropping one
    /// level and dividing the scale by `q_l`.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::LevelExhausted`] at level 0.
    pub fn rescale(&mut self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        let l = ct.level();
        if l == 0 {
            return Err(CkksError::LevelExhausted);
        }
        self.begin("RESCALE");
        let ctx = self.ctx;
        let n = ct.n();
        let q_l = ctx.q_primes()[l];
        let (c0, c1) = self.rescale_pair(&ct.c0, &ct.c1);
        self.emit(KernelEvent::Ntt {
            n,
            limbs: 2,
            inverse: true,
        });
        self.emit(KernelEvent::Ntt {
            n,
            limbs: 2 * l,
            inverse: false,
        });
        self.emit(KernelEvent::EleSub { n, limbs: 2 * l });
        self.end("RESCALE");
        Ok(Ciphertext {
            c0,
            c1,
            scale: ct.scale / q_l as f64,
        })
    }

    /// Rescales both ciphertext components together so each modulus's NTT
    /// sandwich runs as one two-row batched transform (`c0` and `c1` share
    /// every `q_j`) — the batched execution layer applied to the RESCALE
    /// hot loop.
    fn rescale_pair(&self, p0: &RnsPoly, p1: &RnsPoly) -> (RnsPoly, RnsPoly) {
        use tensorfhe_ntt::NttBatchOps;
        let ctx = self.ctx;
        let l = p0.level();
        let m_l = *ctx.q_mod(l);
        let half = m_l.value() / 2;
        let polys = [p0, p1];

        // INTT the two top limbs in one batched call.
        let mut tops: Vec<Vec<u64>> = polys.iter().map(|p| p.limb(l).to_vec()).collect();
        {
            let mut rows: Vec<&mut [u64]> = tops.iter_mut().map(Vec::as_mut_slice).collect();
            ctx.ntt_q(l).inverse_batch(&mut rows);
        }

        // Centered representatives of [c]_{q_l}.
        let centered: Vec<Vec<i64>> = tops
            .iter()
            .map(|top| {
                top.iter()
                    .map(|&x| {
                        if x > half {
                            x as i64 - m_l.value() as i64
                        } else {
                            x as i64
                        }
                    })
                    .collect()
            })
            .collect();

        let mut limbs0 = Vec::with_capacity(l);
        let mut limbs1 = Vec::with_capacity(l);
        for j in 0..l {
            let m_j = ctx.q_mod(j);
            let inv = ctx.rescale_inv(l, j);
            // NTT([c_l] mod q_j) for both components, then (c_j − t)·q_l^{-1}.
            let mut ts: Vec<Vec<u64>> = centered
                .iter()
                .map(|c| c.iter().map(|&v| m_j.from_i64(v)).collect())
                .collect();
            {
                let mut rows: Vec<&mut [u64]> = ts.iter_mut().map(Vec::as_mut_slice).collect();
                ctx.ntt_q(j).forward_batch(&mut rows);
            }
            for (poly, t, limbs) in [(p0, &ts[0], &mut limbs0), (p1, &ts[1], &mut limbs1)] {
                let limb: Vec<u64> = poly
                    .limb(j)
                    .iter()
                    .zip(t)
                    .map(|(&c, &tv)| m_j.mul(m_j.sub(c, tv), inv))
                    .collect();
                limbs.push(limb);
            }
        }
        (
            RnsPoly::from_limbs(limbs0, Domain::Ntt),
            RnsPoly::from_limbs(limbs1, Domain::Ntt),
        )
    }

    /// Drops limbs without rescaling (level alignment; exact in RNS).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::Mismatch`] if the target level is higher than
    /// the current one.
    pub fn mod_switch_to(
        &mut self,
        ct: &Ciphertext,
        level: usize,
    ) -> Result<Ciphertext, CkksError> {
        if level > ct.level() {
            return Err(CkksError::Mismatch(format!(
                "cannot raise level {} to {}",
                ct.level(),
                level
            )));
        }
        let mut c0 = ct.c0.clone();
        c0.truncate_level(level);
        let mut c1 = ct.c1.clone();
        c1.truncate_level(level);
        Ok(Ciphertext {
            c0,
            c1,
            scale: ct.scale,
        })
    }

    /// `HROTATE` (Algorithm 4): rotates slots by `r` via the Galois
    /// automorphism `X → X^{5^r}` plus a key switch.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingRotationKey`] if no key was generated for
    /// this step.
    pub fn hrotate(
        &mut self,
        ct: &Ciphertext,
        r: i64,
        keys: &KeyChain<'_>,
    ) -> Result<Ciphertext, CkksError> {
        let g = self.ctx.galois_element(r);
        if g == 1 {
            return Ok(ct.clone());
        }
        self.begin("HROTATE");
        let out = self.apply_galois(ct, g, keys);
        self.end("HROTATE");
        out
    }

    /// Batched `HROTATE`: rotates one ciphertext by several steps at once.
    ///
    /// The rotations' key switches pack into wide batched NTT blocks
    /// ([`crate::keyswitch::key_switch_batch`]): one batched INTT across
    /// every rotation, one `steps × dnum`-row ModUp NTT block, and a single
    /// ModDown over all `2·steps` accumulators. This is the
    /// streaming-bootstrap path — a BSGS stage's ≈√D baby rotations of the
    /// same ciphertext flow through `RnsPoly::ntt_forward_batch` blocks
    /// instead of transforming one polynomial at a time.
    ///
    /// Results and emitted kernel events are identical to calling
    /// [`Evaluator::hrotate`] once per step, in order (steps with `g = 1`
    /// return clones and emit nothing, exactly like the single-step path).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingRotationKey`] if any step has no
    /// generated key; no work is done in that case.
    pub fn hrotate_many(
        &mut self,
        ct: &Ciphertext,
        steps: &[i64],
        keys: &KeyChain<'_>,
    ) -> Result<Vec<Ciphertext>, CkksError> {
        let pairs: Vec<(&Ciphertext, i64)> = steps.iter().map(|&r| (ct, r)).collect();
        self.hrotate_pairs(&pairs, keys)
    }

    /// Batched `HROTATE` over *distinct* ciphertexts: rotates each
    /// `(ciphertext, step)` pair, all pairs through one batched key switch.
    ///
    /// This is the giant-step counterpart of [`Evaluator::hrotate_many`]
    /// (which rotates one ciphertext by several steps): a BSGS stage's
    /// ≈√D *giant* rotations apply to distinct accumulators — each giant
    /// group's inner sum — yet all share the same level, so their key
    /// switches pack into the same wide batched NTT blocks
    /// ([`crate::keyswitch::key_switch_batch`]): one batched INTT across
    /// every accumulator, one `pairs × dnum`-row ModUp NTT block, and a
    /// single ModDown over all `2·pairs` accumulators. `hrotate_many` is
    /// the special case where every pair names the same ciphertext.
    ///
    /// Results and emitted kernel events are identical to calling
    /// [`Evaluator::hrotate`] once per pair, in order (pairs with `g = 1`
    /// return clones and emit nothing, exactly like the single-step
    /// path). Live rotations are processed in bounded chunks under the
    /// key switch's own residency cap; chunking never changes results or
    /// events.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingRotationKey`] if any step has no
    /// generated key, or [`CkksError::Mismatch`] if the ciphertexts do
    /// not share one level; no work is done in either case.
    pub fn hrotate_pairs(
        &mut self,
        pairs: &[(&Ciphertext, i64)],
        keys: &KeyChain<'_>,
    ) -> Result<Vec<Ciphertext>, CkksError> {
        let ctx = self.ctx;
        let Some(&(first, _)) = pairs.first() else {
            return Ok(Vec::new());
        };
        let n = first.n();
        let level = first.level();
        let limbs = level + 1;
        if pairs.iter().any(|(ct, _)| ct.level() != level) {
            return Err(CkksError::Mismatch(
                "hrotate_pairs ciphertexts must share one level (the batched \
                 key switch packs same-level ModUp blocks)"
                    .into(),
            ));
        }

        // Resolve every step up front so a missing key aborts cleanly.
        let mut elements = Vec::with_capacity(pairs.len());
        for &(_, r) in pairs {
            let g = ctx.galois_element(r);
            if g == 1 {
                elements.push(None);
            } else {
                keys.galois_key(g)?;
                elements.push(Some(g));
            }
        }

        // Process live rotations in bounded chunks so the staged operands
        // (rotated components, switched pairs) obey the same residency cap
        // as the key switch's own ModUp block — a paper-scale BSGS stage
        // must not hold ≈√D rotations' polynomials at once. Chunking never
        // changes results or events: batched transforms are bit-exact at
        // any width and emission stays strictly per rotation, in order.
        let chunk = crate::keyswitch::batch_chunk_inputs(ctx, level);
        let mut out = Vec::with_capacity(pairs.len());
        let mut i = 0usize;
        while i < elements.len() {
            // Gather the next segment: up to `chunk` live rotations, with
            // any interleaved no-op (g = 1) pairs carried along so they
            // never fragment the key-switch batch.
            let seg_start = i;
            let mut live: Vec<(usize, u64)> = Vec::with_capacity(chunk);
            while i < elements.len() && live.len() < chunk {
                if let Some(g) = elements[i] {
                    live.push((i, g));
                }
                i += 1;
            }
            // Trailing no-ops after the chunk's last live rotation belong
            // to the next segment (they cost nothing either way).
            if live.is_empty() {
                out.extend((seg_start..i).map(|j| pairs[j].0.clone()));
                continue;
            }

            // Frobenius permutations of both components, per rotation —
            // each applied to its *own* ciphertext.
            let mut c0_rots = Vec::with_capacity(live.len());
            let mut c1_rots = Vec::with_capacity(live.len());
            for &(j, g) in &live {
                let tables = ctx.galois_tables(g);
                c0_rots.push(pairs[j].0.c0.automorphism_ntt(&tables));
                c1_rots.push(pairs[j].0.c1.automorphism_ntt(&tables));
            }

            // One batched key switch across the chunk (silent; the
            // sequential event stream is emitted per rotation below).
            let ds: Vec<&RnsPoly> = c1_rots.iter().collect();
            let ksks: Vec<&crate::keyswitch::KsKey> = live
                .iter()
                .map(|&(_, g)| keys.galois_key(g).expect("checked above"))
                .collect();
            let switched = {
                let mut silent = Tracing::new(None);
                crate::keyswitch::key_switch_batch(ctx, &mut silent, &ds, &ksks)
            };

            // Assemble outputs in segment order — no-op pairs clone, live
            // pairs consume the next switched pair — emitting each live
            // rotation's events exactly as a sequential
            // [`Evaluator::hrotate`] loop would.
            let mut rotated = c0_rots.into_iter().zip(switched);
            for j in seg_start..i {
                let ct = pairs[j].0;
                if elements[j].is_none() {
                    out.push(ct.clone());
                    continue;
                }
                let (c0_rot, (k0, k1)) = rotated.next().expect("one switch per live rotation");
                self.begin("HROTATE");
                self.emit(KernelEvent::FrobeniusMap {
                    n,
                    limbs: 2 * limbs,
                });
                {
                    let mut tracing = Tracing::new(self.tracer.as_deref_mut().map(|t| t as _));
                    crate::keyswitch::emit_key_switch_events(ctx, &mut tracing, level);
                }
                let mut c0 = c0_rot;
                c0.add_assign(ctx, &k0);
                self.emit(KernelEvent::EleAdd { n, limbs });
                self.end("HROTATE");
                out.push(Ciphertext {
                    c0,
                    c1: k1,
                    scale: ct.scale,
                });
            }
        }
        Ok(out)
    }

    /// Complex conjugation of every slot (HCONJ in the bootstrap pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::MissingRotationKey`] if the conjugation key was
    /// not generated.
    pub fn conjugate(
        &mut self,
        ct: &Ciphertext,
        keys: &KeyChain<'_>,
    ) -> Result<Ciphertext, CkksError> {
        self.begin("HROTATE");
        let g = self.ctx.conjugation_element();
        let out = self.apply_galois(ct, g, keys);
        self.end("HROTATE");
        out
    }

    fn apply_galois(
        &mut self,
        ct: &Ciphertext,
        g: u64,
        keys: &KeyChain<'_>,
    ) -> Result<Ciphertext, CkksError> {
        let ctx = self.ctx;
        let ksk = keys.galois_key(g)?;
        let n = ct.n();
        let limbs = ct.level() + 1;
        let tables = ctx.galois_tables(g);

        // ForbeniusMap kernel: slot permutation of both components.
        let c0_rot = ct.c0.automorphism_ntt(&tables);
        let c1_rot = ct.c1.automorphism_ntt(&tables);
        if g == ctx.conjugation_element() {
            self.emit(KernelEvent::Conjugate {
                n,
                limbs: 2 * limbs,
            });
        } else {
            self.emit(KernelEvent::FrobeniusMap {
                n,
                limbs: 2 * limbs,
            });
        }

        // Switch σ(c1) from σ(s) back to s.
        let (k0, k1) = {
            let mut tracing = Tracing::new(self.tracer.as_deref_mut().map(|t| t as _));
            key_switch(ctx, &mut tracing, &c1_rot, ksk)
        };
        let mut c0 = c0_rot;
        c0.add_assign(ctx, &k0);
        self.emit(KernelEvent::EleAdd { n, limbs });

        Ok(Ciphertext {
            c0,
            c1: k1,
            scale: ct.scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use crate::trace::RecordingTracer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensorfhe_math::Complex64;

    fn setup() -> (CkksContext, StdRng) {
        (
            CkksContext::new(&CkksParams::toy()).expect("valid"),
            StdRng::seed_from_u64(99),
        )
    }

    fn encode_encrypt(
        ctx: &CkksContext,
        keys: &KeyChain<'_>,
        rng: &mut StdRng,
        vals: &[Complex64],
    ) -> Ciphertext {
        let pt = ctx.encode(vals, ctx.params().scale()).expect("fits");
        keys.encrypt(&pt, rng)
    }

    fn decode(ctx: &CkksContext, keys: &KeyChain<'_>, ct: &Ciphertext) -> Vec<Complex64> {
        ctx.decode(&keys.decrypt(ct)).expect("decode")
    }

    #[test]
    fn hadd_adds_slots() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let a = [Complex64::new(1.5, 0.25), Complex64::new(-2.0, 1.0)];
        let b = [Complex64::new(0.5, -0.25), Complex64::new(3.0, 0.5)];
        let ca = encode_encrypt(&ctx, &keys, &mut rng, &a);
        let cb = encode_encrypt(&ctx, &keys, &mut rng, &b);
        let sum = eval.hadd(&ca, &cb).expect("hadd");
        let dec = decode(&ctx, &keys, &sum);
        for i in 0..2 {
            assert!((dec[i] - (a[i] + b[i])).norm() < 1e-3);
        }
    }

    #[test]
    fn hmult_multiplies_slots() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let a = [Complex64::new(1.5, 0.0), Complex64::new(-2.0, 0.5)];
        let b = [Complex64::new(2.0, 0.0), Complex64::new(1.0, -1.0)];
        let ca = encode_encrypt(&ctx, &keys, &mut rng, &a);
        let cb = encode_encrypt(&ctx, &keys, &mut rng, &b);
        let prod = eval.hmult(&ca, &cb, &keys).expect("hmult");
        let dec = decode(&ctx, &keys, &prod);
        for i in 0..2 {
            assert!(
                (dec[i] - a[i] * b[i]).norm() < 1e-2,
                "slot {i}: {} vs {}",
                dec[i],
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn rescale_preserves_value_and_drops_level() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let a = [Complex64::new(1.25, -0.5)];
        let b = [Complex64::new(-0.75, 0.25)];
        let ca = encode_encrypt(&ctx, &keys, &mut rng, &a);
        let cb = encode_encrypt(&ctx, &keys, &mut rng, &b);
        let prod = eval.hmult(&ca, &cb, &keys).expect("hmult");
        let level_before = prod.level();
        let rs = eval.rescale(&prod).expect("rescale");
        assert_eq!(rs.level(), level_before - 1);
        let dec = decode(&ctx, &keys, &rs);
        assert!(
            (dec[0] - a[0] * b[0]).norm() < 1e-2,
            "{} vs {}",
            dec[0],
            a[0] * b[0]
        );
    }

    #[test]
    fn cmult_multiplies_by_plaintext() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let a = [Complex64::new(0.5, 0.5), Complex64::new(2.0, -1.0)];
        let w = [Complex64::new(3.0, 0.0), Complex64::new(0.5, 0.5)];
        let ca = encode_encrypt(&ctx, &keys, &mut rng, &a);
        let pw = ctx.encode(&w, ctx.params().scale()).expect("fits");
        let prod = eval.cmult(&ca, &pw).expect("cmult");
        let dec = decode(&ctx, &keys, &prod);
        for i in 0..2 {
            assert!((dec[i] - a[i] * w[i]).norm() < 1e-2);
        }
    }

    #[test]
    fn hrotate_shifts_slots() {
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[1, 3], &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let slots = ctx.params().slots();
        let vals: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new(i as f64 * 0.25, 0.0))
            .collect();
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &vals);
        for r in [1i64, 3] {
            let rot = eval.hrotate(&ct, r, &keys).expect("rotate");
            let dec = decode(&ctx, &keys, &rot);
            for i in 0..slots {
                let want = vals[(i + r as usize) % slots];
                assert!(
                    (dec[i] - want).norm() < 1e-2,
                    "r={r} slot {i}: {} vs {want}",
                    dec[i]
                );
            }
        }
    }

    #[test]
    fn hrotate_many_matches_sequential_rotations() {
        // The streaming-bootstrap path: batched rotations must be
        // bit-identical to one-at-a-time rotations AND emit the exact same
        // kernel-event stream (the schedule mirror depends on it).
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[1, 2, 3], &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new((i as f64 * 0.21).sin(), (i as f64 * 0.13).cos()))
            .collect();
        let pt = ctx.encode(&vals, ctx.params().scale()).expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);
        let steps = [1i64, 3, 0, 2]; // includes a g = 1 no-op step

        let mut seq_rec = RecordingTracer::new();
        let sequential: Vec<Ciphertext> = {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut seq_rec));
            steps
                .iter()
                .map(|&r| eval.hrotate(&ct, r, &keys).expect("rotate"))
                .collect()
        };
        let mut batch_rec = RecordingTracer::new();
        let batched = {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut batch_rec));
            eval.hrotate_many(&ct, &steps, &keys).expect("batch rotate")
        };

        assert_eq!(batched.len(), sequential.len());
        for (r, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(b.c0, s.c0, "c0 diverged at step index {r}");
            assert_eq!(b.c1, s.c1, "c1 diverged at step index {r}");
            assert!((b.scale - s.scale).abs() < 1e-12);
        }
        assert_eq!(batch_rec.events, seq_rec.events, "kernel streams differ");
        assert_eq!(batch_rec.ops, seq_rec.ops, "operation markers differ");
    }

    #[test]
    fn hrotate_many_chunks_across_the_residency_cap() {
        // More live rotations than one key_switch_batch chunk admits
        // (toy params: 2 digits → 8 inputs per chunk): results must still
        // be bit-identical to sequential rotation, across the chunk seam.
        let (ctx, mut rng) = setup();
        let steps: Vec<i64> = (1..=10).collect();
        assert!(
            steps.len() > crate::keyswitch::batch_chunk_inputs(&ctx, ctx.params().max_level()),
            "test must cross a chunk boundary"
        );
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&steps, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new((i as f64 * 0.41).cos(), (i as f64 * 0.09).sin()))
            .collect();
        let pt = ctx.encode(&vals, ctx.params().scale()).expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);

        let mut eval = Evaluator::new(&ctx);
        let batched = eval.hrotate_many(&ct, &steps, &keys).expect("batch rotate");
        for (&r, b) in steps.iter().zip(&batched) {
            let s = eval.hrotate(&ct, r, &keys).expect("rotate");
            assert_eq!(b.c0, s.c0, "c0 diverged at step {r}");
            assert_eq!(b.c1, s.c1, "c1 diverged at step {r}");
        }
    }

    #[test]
    fn hrotate_pairs_matches_sequential_rotations() {
        // The giant-step path: distinct accumulators, each rotated by its
        // own step through one batched key switch, must be bit-identical
        // to one-at-a-time rotations AND emit the exact same kernel-event
        // stream (the schedule mirror depends on it).
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[1, 2, 4], &mut rng);
        let slots = ctx.params().slots();
        let cts: Vec<Ciphertext> = (0..4)
            .map(|k| {
                let vals: Vec<Complex64> = (0..slots)
                    .map(|i| {
                        Complex64::new(
                            ((i + k) as f64 * 0.17).sin(),
                            ((i * (k + 1)) as f64 * 0.11).cos(),
                        )
                    })
                    .collect();
                let pt = ctx.encode(&vals, ctx.params().scale()).expect("encode");
                keys.encrypt(&pt, &mut rng)
            })
            .collect();
        let steps = [1i64, 4, 0, 2]; // includes a g = 1 no-op pair

        let mut seq_rec = RecordingTracer::new();
        let sequential: Vec<Ciphertext> = {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut seq_rec));
            cts.iter()
                .zip(&steps)
                .map(|(ct, &r)| eval.hrotate(ct, r, &keys).expect("rotate"))
                .collect()
        };
        let mut batch_rec = RecordingTracer::new();
        let batched = {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut batch_rec));
            let pairs: Vec<(&Ciphertext, i64)> =
                cts.iter().zip(&steps).map(|(ct, &r)| (ct, r)).collect();
            eval.hrotate_pairs(&pairs, &keys).expect("batch rotate")
        };

        assert_eq!(batched.len(), sequential.len());
        for (r, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(b.c0, s.c0, "c0 diverged at pair index {r}");
            assert_eq!(b.c1, s.c1, "c1 diverged at pair index {r}");
            assert!((b.scale - s.scale).abs() < 1e-12);
        }
        assert_eq!(batch_rec.events, seq_rec.events, "kernel streams differ");
        assert_eq!(batch_rec.ops, seq_rec.ops, "operation markers differ");
    }

    #[test]
    fn hrotate_pairs_chunks_across_the_residency_cap() {
        // More live pairs than one key_switch_batch chunk admits: results
        // must still be bit-identical to sequential rotation, across the
        // chunk seam, with every pair rotating its own ciphertext.
        let (ctx, mut rng) = setup();
        let steps: Vec<i64> = (1..=10).collect();
        assert!(
            steps.len() > crate::keyswitch::batch_chunk_inputs(&ctx, ctx.params().max_level()),
            "test must cross a chunk boundary"
        );
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&steps, &mut rng);
        let slots = ctx.params().slots();
        let cts: Vec<Ciphertext> = (0..steps.len())
            .map(|k| {
                let vals: Vec<Complex64> = (0..slots)
                    .map(|i| Complex64::new(((i * k + 3) as f64 * 0.07).cos(), 0.0))
                    .collect();
                let pt = ctx.encode(&vals, ctx.params().scale()).expect("encode");
                keys.encrypt(&pt, &mut rng)
            })
            .collect();

        let mut eval = Evaluator::new(&ctx);
        let pairs: Vec<(&Ciphertext, i64)> =
            cts.iter().zip(&steps).map(|(ct, &r)| (ct, r)).collect();
        let batched = eval.hrotate_pairs(&pairs, &keys).expect("batch rotate");
        for ((ct, &r), b) in cts.iter().zip(&steps).zip(&batched) {
            let s = eval.hrotate(ct, r, &keys).expect("rotate");
            assert_eq!(b.c0, s.c0, "c0 diverged at step {r}");
            assert_eq!(b.c1, s.c1, "c1 diverged at step {r}");
        }
    }

    #[test]
    fn hrotate_pairs_rejects_mixed_levels_and_missing_keys() {
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[1], &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &[Complex64::one()]);
        let dropped = eval
            .mod_switch_to(&ct, ct.level() - 1)
            .expect("drop a level");
        assert!(matches!(
            eval.hrotate_pairs(&[(&ct, 1), (&dropped, 1)], &keys),
            Err(CkksError::Mismatch(_))
        ));
        assert!(matches!(
            eval.hrotate_pairs(&[(&ct, 1), (&ct, 2)], &keys),
            Err(CkksError::MissingRotationKey(_))
        ));
        assert!(eval.hrotate_pairs(&[], &keys).expect("empty").is_empty());
    }

    #[test]
    fn hrotate_many_missing_key_aborts_cleanly() {
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[1], &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &[Complex64::one()]);
        assert!(matches!(
            eval.hrotate_many(&ct, &[1, 2], &keys),
            Err(CkksError::MissingRotationKey(_))
        ));
    }

    #[test]
    fn conjugate_conjugates() {
        let (ctx, mut rng) = setup();
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_conjugation_key(&mut rng);
        let mut eval = Evaluator::new(&ctx);
        let vals = [Complex64::new(1.0, 2.0), Complex64::new(-0.5, -0.75)];
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &vals);
        let conj = eval.conjugate(&ct, &keys).expect("conj");
        let dec = decode(&ctx, &keys, &conj);
        for i in 0..2 {
            assert!((dec[i] - vals[i].conj()).norm() < 1e-2);
        }
    }

    #[test]
    fn mul_const_and_add_const() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let vals = [Complex64::new(0.5, -1.0)];
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &vals);
        let scaled = eval.mul_const(&ct, 2.5);
        let shifted = eval.add_const(&scaled, 1.0);
        let dec = decode(&ctx, &keys, &shifted);
        let want = vals[0].scale(2.5) + Complex64::new(1.0, 0.0);
        assert!((dec[0] - want).norm() < 1e-2, "{} vs {want}", dec[0]);
    }

    #[test]
    fn missing_rotation_key_is_reported() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &[Complex64::one()]);
        assert!(matches!(
            eval.hrotate(&ct, 1, &keys),
            Err(CkksError::MissingRotationKey(_))
        ));
    }

    #[test]
    fn level_mismatch_rejected() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let a = encode_encrypt(&ctx, &keys, &mut rng, &[Complex64::one()]);
        let b = eval.mod_switch_to(&a, 1).expect("switch");
        assert!(eval.hadd(&a, &b).is_err());
    }

    #[test]
    fn hmult_emits_expected_kernel_schedule() {
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::with_tracer(&ctx, Box::new(RecordingTracer::new()));
        let a = encode_encrypt(&ctx, &keys, &mut rng, &[Complex64::one()]);
        let _ = eval.hmult(&a, &a, &keys).expect("hmult");
        let tracer = eval.set_tracer(None).expect("tracer present");
        // Downcast by re-boxing through Any is overkill here: we recorded
        // into a RecordingTracer, so recover it via raw pointer semantics is
        // not possible — instead re-run with a local recorder.
        drop(tracer);
        let mut rec = RecordingTracer::new();
        {
            let mut eval2 = Evaluator::with_tracer(&ctx, Box::new(&mut rec));
            let _ = eval2.hmult(&a, &a, &keys).expect("hmult");
        }
        // Table II: HMULT = NTT + Hada-Mult + Conv + Ele-Add.
        assert!(rec.count("Hada-Mult") >= 1);
        assert!(rec.count("Conv") >= 1, "keyswitch must emit Conv kernels");
        assert!(rec.count("NTT") >= 1 && rec.count("INTT") >= 1);
        assert!(rec.count("Ele-Add") >= 2);
        // Operation markers bracket the work.
        assert_eq!(rec.ops.first().map(|o| o.0.as_str()), Some("HMULT"));
    }

    #[test]
    fn deep_circuit_mult_chain() {
        // (((x²)·x)·x) with rescales: exercises three levels.
        let (ctx, mut rng) = setup();
        let keys = KeyChain::generate(&ctx, &mut rng);
        let mut eval = Evaluator::new(&ctx);
        let x = Complex64::new(0.9, 0.1);
        let ct = encode_encrypt(&ctx, &keys, &mut rng, &[x]);
        let mut acc = eval.square(&ct, &keys).expect("sq");
        acc = eval.rescale(&acc).expect("rs");
        let mut expected = x * x;
        for _ in 0..2 {
            let aligned = eval.mod_switch_to(&ct, acc.level()).expect("align");
            acc = eval.hmult(&acc, &aligned, &keys).expect("mult");
            acc = eval.rescale(&acc).expect("rs");
            expected *= x;
        }
        let dec = decode(&ctx, &keys, &acc);
        assert!(
            (dec[0] - expected).norm() < 0.05,
            "deep circuit drifted: {} vs {expected}",
            dec[0]
        );
    }
}
