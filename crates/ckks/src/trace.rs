//! Kernel tracing: how the FHE layer reports work to the GPU cost model.
//!
//! The paper's hierarchical reconstruction (Table II) decomposes every CKKS
//! operation into seven reusable kernels. The evaluator emits one
//! [`KernelEvent`] per kernel invocation; `tensorfhe-core` implements
//! [`KernelTracer`] by translating events into simulated GPU launches. The
//! CPU math is oblivious to tracing — events are pure metadata.

/// One kernel invocation, in the paper's kernel taxonomy (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEvent {
    /// Forward or inverse NTT over `limbs` residue polynomials of degree `n`.
    Ntt {
        /// Polynomial degree.
        n: usize,
        /// Number of residue polynomials transformed.
        limbs: usize,
        /// `true` for INTT.
        inverse: bool,
    },
    /// Hadamard multiplication over `limbs` residue polynomials.
    HadaMult {
        /// Polynomial degree.
        n: usize,
        /// Limb count.
        limbs: usize,
    },
    /// Element-wise addition.
    EleAdd {
        /// Polynomial degree.
        n: usize,
        /// Limb count.
        limbs: usize,
    },
    /// Element-wise subtraction.
    EleSub {
        /// Polynomial degree.
        n: usize,
        /// Limb count.
        limbs: usize,
    },
    /// ForbeniusMap: the NTT-domain slot permutation of a Galois
    /// automorphism.
    FrobeniusMap {
        /// Polynomial degree.
        n: usize,
        /// Limb count.
        limbs: usize,
    },
    /// Conjugation (the Galois element `2N-1`).
    Conjugate {
        /// Polynomial degree.
        n: usize,
        /// Limb count.
        limbs: usize,
    },
    /// Fast basis conversion of `n` coefficients from `l_src` to `l_dst`
    /// limbs.
    Conv {
        /// Polynomial degree.
        n: usize,
        /// Source-basis size.
        l_src: usize,
        /// Destination-basis size.
        l_dst: usize,
    },
}

impl KernelEvent {
    /// The paper's kernel name for this event.
    #[must_use]
    pub fn kernel_name(&self) -> &'static str {
        match self {
            KernelEvent::Ntt { inverse: false, .. } => "NTT",
            KernelEvent::Ntt { inverse: true, .. } => "INTT",
            KernelEvent::HadaMult { .. } => "Hada-Mult",
            KernelEvent::EleAdd { .. } => "Ele-Add",
            KernelEvent::EleSub { .. } => "Ele-Sub",
            KernelEvent::FrobeniusMap { .. } => "ForbeniusMap",
            KernelEvent::Conjugate { .. } => "Conjugate",
            KernelEvent::Conv { .. } => "Conv",
        }
    }
}

/// Observer of kernel-level activity.
///
/// Implementations must be cheap: the evaluator calls [`KernelTracer::kernel`]
/// on every kernel of every operation.
pub trait KernelTracer {
    /// Called once per kernel invocation.
    fn kernel(&mut self, event: KernelEvent);

    /// Called when a CKKS operation begins (`"HMULT"`, `"RESCALE"`, …).
    fn op_begin(&mut self, _name: &str) {}

    /// Called when the operation completes.
    fn op_end(&mut self, _name: &str) {}
}

impl<T: KernelTracer + ?Sized> KernelTracer for &mut T {
    fn kernel(&mut self, event: KernelEvent) {
        (**self).kernel(event);
    }

    fn op_begin(&mut self, name: &str) {
        (**self).op_begin(name);
    }

    fn op_end(&mut self, name: &str) {
        (**self).op_end(name);
    }
}

/// A tracer that records every event — useful in tests and simple audits.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    /// All events, in order.
    pub events: Vec<KernelEvent>,
    /// Operation markers interleaved as (name, begin?).
    pub ops: Vec<(String, bool)>,
}

impl RecordingTracer {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events whose kernel name matches.
    #[must_use]
    pub fn count(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kernel_name() == name)
            .count()
    }
}

impl KernelTracer for RecordingTracer {
    fn kernel(&mut self, event: KernelEvent) {
        self.events.push(event);
    }

    fn op_begin(&mut self, name: &str) {
        self.ops.push((name.to_string(), true));
    }

    fn op_end(&mut self, name: &str) {
        self.ops.push((name.to_string(), false));
    }
}

/// Helper holding an optional tracer borrow; used by the key-switching
/// entry points so external engines can pass their tracer through.
#[derive(Default)]
pub struct Tracing<'t> {
    tracer: Option<&'t mut dyn KernelTracer>,
}

impl<'t> Tracing<'t> {
    /// Wraps an optional tracer borrow.
    #[must_use]
    pub fn new(tracer: Option<&'t mut dyn KernelTracer>) -> Self {
        Self { tracer }
    }

    /// Emits an event if a tracer is attached.
    pub fn emit(&mut self, event: KernelEvent) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.kernel(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_match_paper() {
        assert_eq!(
            KernelEvent::Ntt {
                n: 8,
                limbs: 1,
                inverse: false
            }
            .kernel_name(),
            "NTT"
        );
        assert_eq!(
            KernelEvent::FrobeniusMap { n: 8, limbs: 1 }.kernel_name(),
            "ForbeniusMap"
        );
        assert_eq!(
            KernelEvent::Conv {
                n: 8,
                l_src: 2,
                l_dst: 3
            }
            .kernel_name(),
            "Conv"
        );
    }

    #[test]
    fn recorder_counts() {
        let mut r = RecordingTracer::new();
        r.kernel(KernelEvent::EleAdd { n: 8, limbs: 2 });
        r.kernel(KernelEvent::EleAdd { n: 8, limbs: 2 });
        r.kernel(KernelEvent::HadaMult { n: 8, limbs: 2 });
        assert_eq!(r.count("Ele-Add"), 2);
        assert_eq!(r.count("Hada-Mult"), 1);
        assert_eq!(r.count("NTT"), 0);
    }
}
