//! Functional encrypted LSTM cell (the NLP workload's building block).
//!
//! One recurrent step with encrypted input `x` and state `(h, c)`,
//! plaintext weight matrices applied as BSGS linear transforms, and
//! degree-3 polynomial activations — the composition the LSTM schedule
//! charges per timestep (4 gate transforms + activations + gating).

use tensorfhe_boot::linear::LinearTransform;
use tensorfhe_ckks::{Ciphertext, CkksError, Evaluator, KeyChain};
use tensorfhe_math::Complex64;

/// Degree-3 sigmoid approximation on `[-1, 1]`.
pub const SIG3: [f64; 4] = [0.5, 0.25, 0.0, -1.0 / 48.0];
/// Degree-3 tanh approximation on `[-1, 1]`.
pub const TANH3: [f64; 4] = [0.0, 1.0, 0.0, -1.0 / 3.0];

/// Plaintext weights of one LSTM cell over `dim`-sized vectors.
#[derive(Debug, Clone)]
pub struct LstmWeights {
    /// Input transforms for the four gates (i, f, o, g).
    pub w: [Vec<Vec<f64>>; 4],
    /// Recurrent transforms for the four gates.
    pub u: [Vec<Vec<f64>>; 4],
}

impl LstmWeights {
    /// Random small weights keeping pre-activations within `[-1, 1]`.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R, dim: usize) -> Self {
        let mut mat = || -> Vec<Vec<f64>> {
            (0..dim)
                .map(|_| {
                    (0..dim)
                        .map(|_| rng.gen_range(-0.5..0.5) / dim as f64)
                        .collect()
                })
                .collect()
        };
        Self {
            w: [mat(), mat(), mat(), mat()],
            u: [mat(), mat(), mat(), mat()],
        }
    }
}

fn to_transform(m: &[Vec<f64>], slots: usize) -> LinearTransform {
    // Embed the dim×dim matrix into the full slot space (block-diagonal with
    // identity padding is unnecessary — unused slots stay zero).
    let dim = m.len();
    let mut full = vec![vec![Complex64::zero(); slots]; slots];
    for r in 0..dim {
        for c in 0..dim {
            full[r][c] = Complex64::new(m[r][c], 0.0);
        }
    }
    LinearTransform::from_matrix(&full)
}

/// Evaluates a degree-3 polynomial on a ciphertext (2 levels).
fn poly3(
    eval: &mut Evaluator<'_>,
    keys: &KeyChain<'_>,
    ct: &Ciphertext,
    coeffs: &[f64; 4],
) -> Result<Ciphertext, CkksError> {
    // c0 + c1·x + c3·x³ (c2 = 0 for odd activations).
    let x2 = eval.square(ct, keys)?;
    let x2 = eval.rescale(&x2)?;
    let x_al = eval.mod_switch_to(ct, x2.level())?;
    let x3 = eval.hmult(&x2, &x_al, keys)?;
    let x3 = eval.rescale(&x3)?;

    let t1 = eval.mul_const(ct, coeffs[1]);
    let t1 = eval.rescale(&t1)?;
    let t3 = eval.mul_const(&x3, coeffs[3]);
    let t3 = eval.rescale(&t3)?;
    let t1 = eval.mod_switch_to(&t1, t3.level())?;
    // Sibling branches rescale by different primes; the lenient add absorbs
    // the sub-percent scale drift.
    let sum = eval.hadd_lenient(&t1, &t3, 1e-2)?;
    Ok(eval.add_const(&sum, coeffs[0]))
}

/// Output of one encrypted LSTM step.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden state.
    pub h: Ciphertext,
    /// Cell state.
    pub c: Ciphertext,
}

/// One encrypted LSTM step: returns the new `(h, c)`.
///
/// # Errors
///
/// Propagates key/level errors; the caller must have generated the rotation
/// keys of every gate transform (see [`LinearTransform::required_rotations`]).
pub fn lstm_step(
    eval: &mut Evaluator<'_>,
    keys: &KeyChain<'_>,
    weights: &LstmWeights,
    x: &Ciphertext,
    state: &LstmState,
) -> Result<LstmState, CkksError> {
    let slots = eval.context().params().slots();
    let mut gates = Vec::with_capacity(4);
    for g in 0..4 {
        let wt = to_transform(&weights.w[g], slots);
        let ut = to_transform(&weights.u[g], slots);
        let wx = wt.apply(eval, keys, x)?;
        let h_al = eval.mod_switch_to(&state.h, state.h.level().min(x.level()))?;
        let uh = ut.apply(eval, keys, &h_al)?;
        let uh = eval.mod_switch_to(&uh, wx.level().min(uh.level()))?;
        let wx = eval.mod_switch_to(&wx, uh.level())?;
        gates.push(eval.hadd_lenient(&wx, &uh, 1e-2)?);
    }
    let i = poly3(eval, keys, &gates[0], &SIG3)?;
    let f = poly3(eval, keys, &gates[1], &SIG3)?;
    let o = poly3(eval, keys, &gates[2], &SIG3)?;
    let g = poly3(eval, keys, &gates[3], &TANH3)?;

    // c' = f ⊙ c + i ⊙ g
    let c_al = eval.mod_switch_to(&state.c, f.level())?;
    let fc = eval.hmult(&f, &c_al, keys)?;
    let fc = eval.rescale(&fc)?;
    let ig = eval.hmult(&i, &g, keys)?;
    let ig = eval.rescale(&ig)?;
    let fc = eval.mod_switch_to(&fc, ig.level())?;
    let c_new = eval.hadd_lenient(&fc, &ig, 1e-2)?;

    // h' = o ⊙ tanh(c')
    let tc = poly3(eval, keys, &c_new, &TANH3)?;
    let o_al = eval.mod_switch_to(&o, tc.level())?;
    let h_new = eval.hmult(&o_al, &tc, keys)?;
    let h_new = eval.rescale(&h_new)?;

    Ok(LstmState { h: h_new, c: c_new })
}

/// Plaintext reference with identical polynomials.
#[must_use]
pub fn lstm_step_clear(
    weights: &LstmWeights,
    x: &[f64],
    h: &[f64],
    c: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let dim = x.len();
    let matvec = |m: &Vec<Vec<f64>>, v: &[f64]| -> Vec<f64> {
        (0..dim)
            .map(|r| (0..dim).map(|cc| m[r][cc] * v[cc]).sum())
            .collect()
    };
    let p3 = |v: f64, k: &[f64; 4]| k[0] + k[1] * v + k[3] * v * v * v;
    let gate = |g: usize, act: &[f64; 4]| -> Vec<f64> {
        let wx = matvec(&weights.w[g], x);
        let uh = matvec(&weights.u[g], h);
        (0..dim).map(|t| p3(wx[t] + uh[t], act)).collect()
    };
    let i = gate(0, &SIG3);
    let f = gate(1, &SIG3);
    let o = gate(2, &SIG3);
    let g = gate(3, &TANH3);
    let c_new: Vec<f64> = (0..dim).map(|t| f[t] * c[t] + i[t] * g[t]).collect();
    let h_new: Vec<f64> = (0..dim).map(|t| o[t] * p3(c_new[t], &TANH3)).collect();
    (h_new, c_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_ckks::{CkksContext, CkksParams};

    #[test]
    fn encrypted_step_matches_clear() {
        let params = CkksParams::new("lstm-test", 1 << 6, 17, 3, 6, 29, 29, 1).expect("valid");
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(17);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        let slots = params.slots();
        let dim = 8;

        let weights = LstmWeights::random(&mut rng, dim);
        // Generate keys for every transform involved.
        let mut steps = std::collections::BTreeSet::new();
        for g in 0..4 {
            steps.extend(to_transform(&weights.w[g], slots).required_rotations());
            steps.extend(to_transform(&weights.u[g], slots).required_rotations());
        }
        let steps: Vec<i64> = steps.into_iter().collect();
        keys.gen_rotation_keys(&steps, &mut rng);

        let pad = |v: &[f64]| -> Vec<Complex64> {
            let mut z: Vec<Complex64> = v.iter().map(|&x| Complex64::new(x, 0.0)).collect();
            z.resize(slots, Complex64::zero());
            z
        };
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let h: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let c: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.3..0.3)).collect();

        let enc = |v: &[f64], rng: &mut StdRng| {
            keys.encrypt(&ctx.encode(&pad(v), params.scale()).expect("enc"), rng)
        };
        let x_ct = enc(&x, &mut rng);
        let state = LstmState {
            h: enc(&h, &mut rng),
            c: enc(&c, &mut rng),
        };

        let mut eval = Evaluator::new(&ctx);
        let out = lstm_step(&mut eval, &keys, &weights, &x_ct, &state).expect("step");
        let (h_want, c_want) = lstm_step_clear(&weights, &x, &h, &c);

        let h_dec = ctx.decode(&keys.decrypt(&out.h)).expect("dec");
        let c_dec = ctx.decode(&keys.decrypt(&out.c)).expect("dec");
        for t in 0..dim {
            assert!(
                (h_dec[t].re - h_want[t]).abs() < 2e-2,
                "h[{t}]: {} vs {}",
                h_dec[t].re,
                h_want[t]
            );
            assert!(
                (c_dec[t].re - c_want[t]).abs() < 2e-2,
                "c[{t}]: {} vs {}",
                c_dec[t].re,
                c_want[t]
            );
        }
    }

    #[test]
    fn clear_reference_gates_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = LstmWeights::random(&mut rng, 8);
        let v: Vec<f64> = (0..8).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let (h, c) = lstm_step_clear(&w, &v, &v, &v);
        assert!(h.iter().all(|x| x.abs() < 1.5));
        assert!(c.iter().all(|x| x.abs() < 1.5));
    }
}
