//! Functional encrypted logistic-regression training (HELR, Han et al.).
//!
//! A reduced-parameter but *real* version of the Table X workload: features
//! are packed one ciphertext per feature column (samples in slots), the
//! weights are encrypted, and each iteration computes the gradient of the
//! logistic loss with the HELR degree-3 sigmoid approximation
//! `σ(t) ≈ 0.5 + 0.15012·t − 0.001593·t³`, summed over samples with a
//! rotate-and-add tree.
//!
//! The plaintext reference applies the *same* polynomial, so the test
//! tolerance measures homomorphic fidelity, not approximation error.

use rand::Rng;
use tensorfhe_ckks::{Ciphertext, CkksContext, CkksError, Evaluator, KeyChain};
use tensorfhe_math::Complex64;

/// HELR's degree-3 sigmoid coefficients.
pub const SIGMOID3: [f64; 3] = [0.5, 0.15012, -0.001593];

/// Synthetic binary-classification data: `x ∈ R^f`, labels `y ∈ {−1, +1}`
/// from a random linear separator plus noise.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature columns, each of length `samples`.
    pub features: Vec<Vec<f64>>,
    /// Labels in `{−1.0, +1.0}`.
    pub labels: Vec<f64>,
}

impl Dataset {
    /// Generates a linearly-separable-ish dataset.
    pub fn synthetic<R: Rng + ?Sized>(rng: &mut R, samples: usize, features: usize) -> Self {
        let true_w: Vec<f64> = (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut cols = vec![vec![0.0; samples]; features];
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let mut dot = 0.0;
            for (j, col) in cols.iter_mut().enumerate() {
                let x = rng.gen_range(-0.5..0.5);
                col[i] = x;
                dot += x * true_w[j];
            }
            labels.push(if dot + rng.gen_range(-0.05..0.05) >= 0.0 {
                1.0
            } else {
                -1.0
            });
        }
        Self {
            features: cols,
            labels,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Rotation steps the trainer needs (powers of two up to the slot count).
#[must_use]
pub fn required_rotations(slots: usize) -> Vec<i64> {
    (0..)
        .map(|k| 1i64 << k)
        .take_while(|&s| (s as usize) < slots)
        .collect()
}

/// Rotate-and-add tree: after this every slot holds the sum of all slots.
fn broadcast_sum(
    eval: &mut Evaluator<'_>,
    keys: &KeyChain<'_>,
    ct: &Ciphertext,
    slots: usize,
) -> Result<Ciphertext, CkksError> {
    let mut acc = ct.clone();
    let mut step = 1usize;
    while step < slots {
        let rot = eval.hrotate(&acc, step as i64, keys)?;
        acc = eval.hadd(&acc, &rot)?;
        step <<= 1;
    }
    Ok(acc)
}

/// One encrypted gradient-descent step; returns the updated weights.
///
/// `xs[j]` encrypts feature column `j` (fresh, full level), `ys` the labels,
/// `ws[j]` the current weight broadcast. All weights must share a level.
///
/// # Errors
///
/// Propagates evaluator errors (missing keys, level exhaustion).
// The signature mirrors Algorithm 1's inputs one-to-one (evaluator, keys,
// features, labels, weights, rate, sample count); bundling them into a
// struct would just move the argument list one level down.
#[allow(clippy::too_many_arguments)]
pub fn train_step(
    eval: &mut Evaluator<'_>,
    keys: &KeyChain<'_>,
    xs: &[Ciphertext],
    ys: &Ciphertext,
    ws: &[Ciphertext],
    learning_rate: f64,
    samples: usize,
    slots: usize,
) -> Result<Vec<Ciphertext>, CkksError> {
    let f = xs.len();
    // z = Σ_j x_j ⊙ w_j
    let mut z: Option<Ciphertext> = None;
    for j in 0..f {
        let xj = eval.mod_switch_to(&xs[j], ws[j].level())?;
        let term = eval.hmult(&xj, &ws[j], keys)?;
        z = Some(match z {
            None => term,
            Some(acc) => eval.hadd(&acc, &term)?,
        });
    }
    let z = eval.rescale(&z.expect("at least one feature"))?;

    // m = y ⊙ z  (margin), then g = σ'(−m)-driven scalar per HELR:
    // gradient factor σ(-m) ≈ 0.5 − c1·m − c3·m³ applied per sample.
    let y_here = eval.mod_switch_to(ys, z.level())?;
    let m = eval.hmult(&z, &y_here, keys)?;
    let m = eval.rescale(&m)?;

    // p = 0.5 − c1·m − c3·m³
    let m2 = eval.square(&m, keys)?;
    let m2 = eval.rescale(&m2)?;
    let m_for_cube = eval.mod_switch_to(&m, m2.level())?;
    let m3 = eval.hmult(&m2, &m_for_cube, keys)?;
    let m3 = eval.rescale(&m3)?;

    let t1 = eval.mul_const(&m, -SIGMOID3[1]);
    let t1 = eval.rescale(&t1)?;
    let t3 = eval.mul_const(&m3, -SIGMOID3[2]);
    let t3 = eval.rescale(&t3)?;
    let t1 = eval.mod_switch_to(&t1, t3.level())?;
    let p = eval.hadd_lenient(&t1, &t3, 1e-2)?;
    let p = eval.add_const(&p, 0.5);

    // Per-sample gradient direction g = p ⊙ y.
    let y_for_g = eval.mod_switch_to(ys, p.level())?;
    let g = eval.hmult(&p, &y_for_g, keys)?;
    let g = eval.rescale(&g)?;

    // grad_j = Σ_i g_i x_ij  (broadcast to every slot), update weights.
    let mut out = Vec::with_capacity(f);
    for j in 0..f {
        let xj = eval.mod_switch_to(&xs[j], g.level())?;
        let gx = eval.hmult(&g, &xj, keys)?;
        let gx = eval.rescale(&gx)?;
        let sum = broadcast_sum(eval, keys, &gx, slots)?;
        let delta = eval.mul_const(&sum, learning_rate / samples as f64);
        let delta = eval.rescale(&delta)?;
        let wj = eval.mod_switch_to(&ws[j], delta.level())?;
        let updated = eval.hadd_lenient(&wj, &delta, 1e-2)?;
        out.push(updated);
    }
    Ok(out)
}

/// Plaintext reference of the same step (same polynomial, same packing).
#[must_use]
pub fn train_step_clear(data: &Dataset, ws: &[f64], learning_rate: f64) -> Vec<f64> {
    let s = data.len();
    let f = ws.len();
    let mut grad = vec![0.0f64; f];
    for i in 0..s {
        let z: f64 = (0..f).map(|j| data.features[j][i] * ws[j]).sum();
        let m = z * data.labels[i];
        let p = 0.5 - SIGMOID3[1] * m - SIGMOID3[2] * m * m * m;
        let g = p * data.labels[i];
        for (j, gj) in grad.iter_mut().enumerate() {
            *gj += g * data.features[j][i];
        }
    }
    (0..f)
        .map(|j| ws[j] + learning_rate / s as f64 * grad[j])
        .collect()
}

/// Encrypts the dataset and weights, used by tests and the example.
///
/// # Errors
///
/// Fails if the dataset exceeds the slot capacity.
// The (features, labels, weights) ciphertext triple is the natural return
// shape here; a named struct for one call site would not pay its way.
#[allow(clippy::type_complexity)]
pub fn encrypt_problem<R: Rng + ?Sized>(
    ctx: &CkksContext,
    keys: &KeyChain<'_>,
    data: &Dataset,
    w0: &[f64],
    rng: &mut R,
) -> Result<(Vec<Ciphertext>, Ciphertext, Vec<Ciphertext>), CkksError> {
    let scale = ctx.params().scale();
    let enc_vec = |v: &[f64], rng: &mut R| -> Result<Ciphertext, CkksError> {
        let z: Vec<Complex64> = v.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        Ok(keys.encrypt(&ctx.encode(&z, scale)?, rng))
    };
    let mut xs = Vec::new();
    for col in &data.features {
        xs.push(enc_vec(col, rng)?);
    }
    let ys = enc_vec(&data.labels, rng)?;
    let slots = ctx.params().slots();
    let mut ws = Vec::new();
    for &w in w0 {
        ws.push(enc_vec(&vec![w; slots], rng)?);
    }
    Ok((xs, ys, ws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensorfhe_ckks::CkksParams;

    #[test]
    fn encrypted_step_matches_clear_reference() {
        let params = CkksParams::new("helr-test", 1 << 7, 14, 3, 5, 29, 29, 1).expect("valid");
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(42);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&required_rotations(params.slots()), &mut rng);

        let slots = params.slots();
        let data = Dataset::synthetic(&mut rng, slots, 3);
        let w0 = vec![0.05, -0.02, 0.01];
        let (xs, ys, ws) = encrypt_problem(&ctx, &keys, &data, &w0, &mut rng).expect("enc");

        let mut eval = Evaluator::new(&ctx);
        let lr = 1.0;
        let new_ws = train_step(&mut eval, &keys, &xs, &ys, &ws, lr, slots, slots).expect("step");
        let want = train_step_clear(&data, &w0, lr);

        for (j, w_ct) in new_ws.iter().enumerate() {
            let dec = ctx.decode(&keys.decrypt(w_ct)).expect("decode");
            // Every slot holds the broadcast updated weight.
            assert!(
                (dec[0].re - want[j]).abs() < 5e-3,
                "weight {j}: {} vs {}",
                dec[0].re,
                want[j]
            );
            assert!(
                (dec[slots / 2].re - dec[0].re).abs() < 5e-3,
                "broadcast failed"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        // Two encrypted steps must move the weights the way the clear
        // trajectory does, reducing the (polynomial) logistic loss.
        let mut rng = StdRng::seed_from_u64(7);
        let data = Dataset::synthetic(&mut rng, 64, 3);
        let mut w = vec![0.0; 3];
        let loss = |w: &[f64]| -> f64 {
            (0..data.len())
                .map(|i| {
                    let z: f64 = (0..3).map(|j| data.features[j][i] * w[j]).sum();
                    (-(z * data.labels[i])).exp().ln_1p()
                })
                .sum::<f64>()
                / data.len() as f64
        };
        let l0 = loss(&w);
        for _ in 0..5 {
            w = train_step_clear(&data, &w, 2.0);
        }
        assert!(loss(&w) < l0, "loss should decrease: {l0} → {}", loss(&w));
    }

    #[test]
    fn rotations_cover_slot_count() {
        assert_eq!(required_rotations(8), vec![1, 2, 4]);
        assert_eq!(required_rotations(64).len(), 6);
    }
}
