//! Operation-schedule builders for the four evaluation workloads (§V).

use crate::spec::{Step, WorkloadSpec};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::FheOp;

/// Sine parameters used inside workload bootstraps (Taylor degree 7 per
/// §IV-A, six double angles).
const BOOT: FheOp = FheOp::Bootstrap {
    taylor_degree: 7,
    double_angles: 6,
};
/// Levels a bootstrap consumes (2 transforms + sine depth 15).
const BOOT_DEPTH: usize = 17;

/// Tracks the level budget of a straight-line program, inserting bootstrap
/// steps whenever the budget runs out.
struct LevelBudget {
    level: usize,
    top: usize,
    steps: Vec<Step>,
    bootstraps: usize,
}

impl LevelBudget {
    fn new(params: &CkksParams) -> Self {
        let top = params.max_level();
        assert!(top > BOOT_DEPTH, "parameters too shallow to bootstrap");
        Self {
            level: top,
            top,
            steps: Vec::new(),
            bootstraps: 0,
        }
    }

    /// Emits `count` repetitions of `op` at the current level.
    fn push(&mut self, op: FheOp, count: usize) {
        if count > 0 {
            self.steps.push(Step {
                op,
                level: self.level,
                count,
            });
        }
    }

    /// Consumes `depth` levels (emitting the rescales), bootstrapping first
    /// if the budget is insufficient.
    fn spend(&mut self, depth: usize) {
        if self.level < depth + 1 {
            self.bootstrap();
        }
        for _ in 0..depth {
            self.steps.push(Step {
                op: FheOp::Rescale,
                level: self.level,
                count: 1,
            });
            self.level -= 1;
        }
    }

    fn bootstrap(&mut self) {
        self.steps.push(Step {
            op: BOOT,
            level: self.top,
            count: 1,
        });
        self.level = self.top - BOOT_DEPTH;
        self.bootstraps += 1;
    }
}

/// HELR logistic regression (Han et al. 2019): 14 training iterations on
/// 16384 samples, 128 samples batch-encoded per polynomial (Table V).
///
/// Per iteration: the gradient needs one ciphertext product `z = X·w`
/// (HMULT + a rotate-accumulate tree over the 256-feature dimension), a
/// degree-3 sigmoid approximation (2 HMULT + 2 CMULT), and the weight
/// update (CMULT + rotations for the transposed accumulation + HADD).
/// Three bootstraps arise naturally from the level budget — matching the
/// paper's "three bootstrapping operations are required".
#[must_use]
pub fn logistic_regression() -> WorkloadSpec {
    let params = CkksParams::table_v_lr();
    let mut b = LevelBudget::new(&params);
    let feature_log = 8; // 256-padded feature dimension → 8 rotate-adds.
    for _ in 0..14 {
        // z = X·w inner product (margin m = y·z consumes another level).
        b.push(FheOp::HMult, 2);
        b.push(FheOp::HRotate, feature_log);
        b.push(FheOp::HAdd, feature_log);
        b.spend(2);
        // Degree-3 sigmoid: σ(m) ≈ a0 + a1 m + a3 m³ (square, cube, scale).
        b.push(FheOp::HMult, 2);
        b.push(FheOp::CMult, 2);
        b.push(FheOp::HAdd, 2);
        b.spend(3);
        // Gradient aggregation over the sample dimension + learning-rate
        // scaled weight update.
        b.push(FheOp::HMult, 1);
        b.push(FheOp::HRotate, feature_log);
        b.push(FheOp::HAdd, feature_log);
        b.push(FheOp::CMult, 1);
        b.push(FheOp::HAdd, 1);
        b.spend(1);
    }
    assert_eq!(
        b.bootstraps, 3,
        "HELR schedule should need exactly 3 bootstraps"
    );
    WorkloadSpec {
        name: "Logistic Regression".into(),
        params,
        steps: b.steps,
        batch: 64,
        iterations: 14,
    }
}

/// ResNet-20 inference (Lee et al. 2022) on 64 packed CIFAR images.
///
/// Channel-multiplexed packing: each 3×3 convolution is 9 kernel-position
/// rotations + 9 CMULTs + adds, plus `log2(C_in)` rotate-adds for the
/// channel reduction; the activation is the paper-cited polynomial ReLU
/// (a composition evaluated with 4 HMULT + 4 CMULT); one bootstrap per
/// activation keeps the budget alive (the Lee et al. structure).
#[must_use]
pub fn resnet20() -> WorkloadSpec {
    let params = CkksParams::table_v_resnet20();
    let mut b = LevelBudget::new(&params);
    // (layers, C_in) per stage of ResNet-20: conv1 + 3 stages × 6 convs.
    let stages: [(usize, usize); 4] = [(1, 3), (6, 16), (6, 32), (6, 64)];
    for (layers, c_in) in stages {
        for _ in 0..layers {
            let ch_log = (c_in as f64).log2().ceil() as usize;
            // 3×3 convolution.
            b.push(FheOp::HRotate, 9);
            b.push(FheOp::CMult, 9);
            b.push(FheOp::HAdd, 8);
            b.push(FheOp::HRotate, ch_log);
            b.push(FheOp::HAdd, ch_log);
            b.spend(1);
            // Polynomial ReLU (composite minimax approximation).
            b.push(FheOp::HMult, 4);
            b.push(FheOp::CMult, 4);
            b.push(FheOp::HAdd, 4);
            b.spend(4);
            // One bootstrap per activation layer.
            b.bootstrap();
        }
    }
    // Average pool + fully connected head.
    b.push(FheOp::HRotate, 6);
    b.push(FheOp::HAdd, 6);
    b.push(FheOp::CMult, 10);
    b.push(FheOp::HAdd, 10);
    b.spend(1);
    WorkloadSpec {
        name: "ResNet-20".into(),
        params,
        steps: b.steps,
        batch: 64,
        iterations: 64, // 64 images per batch.
    }
}

/// LSTM NLP model (Podschwadt–Takabi 2020): 128 cells, embedding dimension
/// 128, 32 sentences packed (Table V).
///
/// Per timestep: four gate transforms (each a 128×128 matrix–vector BSGS:
/// ≈ 2√128 rotations + diagonal CMULTs folded into one dense transform
/// here approximated by 23 rotations + 1 wide CMULT), sigmoid/tanh
/// polynomials (2 HMULT each for the degree-3 approximations), and the
/// element-wise state updates.
#[must_use]
pub fn lstm() -> WorkloadSpec {
    let params = CkksParams::table_v_lstm();
    let mut b = LevelBudget::new(&params);
    let timesteps = 128;
    let bsgs_rot = 23; // ⌈√128⌉ babies + giants.
    for _ in 0..timesteps {
        for _gate in 0..4 {
            b.push(FheOp::HRotate, bsgs_rot);
            b.push(FheOp::CMult, 1);
            b.push(FheOp::HAdd, bsgs_rot);
            b.spend(1);
        }
        // Activations: σ ×3, tanh ×2 (degree-3 each).
        b.push(FheOp::HMult, 10);
        b.push(FheOp::CMult, 5);
        b.push(FheOp::HAdd, 5);
        b.spend(2);
        // c = f⊙c + i⊙g ; h = o⊙tanh(c).
        b.push(FheOp::HMult, 3);
        b.push(FheOp::HAdd, 1);
        b.spend(1);
    }
    WorkloadSpec {
        name: "LSTM".into(),
        params,
        steps: b.steps,
        batch: 32,
        iterations: timesteps,
    }
}

/// Packed bootstrapping (§V): 32 ciphertexts at N = 2^16 restored to L = 57
/// in parallel — the CraterLake comparison workload.
#[must_use]
pub fn packed_bootstrapping() -> WorkloadSpec {
    let params = CkksParams::table_v_packed_boot();
    WorkloadSpec {
        name: "Packed Bootstrapping".into(),
        params: params.clone(),
        steps: vec![Step {
            op: BOOT,
            level: params.max_level(),
            count: 1,
        }],
        batch: 32,
        iterations: 32,
    }
}

/// All four workloads in Table X order.
#[must_use]
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        resnet20(),
        logistic_regression(),
        lstm(),
        packed_bootstrapping(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_has_three_bootstraps() {
        let lr = logistic_regression();
        assert_eq!(lr.count_of("BOOTSTRAP"), 3);
        assert_eq!(lr.iterations, 14);
        assert!(lr.count_of("HMULT") >= 14 * 3);
    }

    #[test]
    fn resnet_is_rotation_heavy() {
        let r = resnet20();
        // 19 conv layers × (9 + channel) rotations plus the head.
        assert!(r.count_of("HROTATE") > 150, "got {}", r.count_of("HROTATE"));
        assert_eq!(r.count_of("BOOTSTRAP"), 19, "one bootstrap per activation");
    }

    #[test]
    fn lstm_step_structure() {
        let l = lstm();
        // 4 gates × 23 rotations × 128 timesteps.
        assert!(l.count_of("HROTATE") >= 4 * 23 * 128);
        assert!(
            l.count_of("BOOTSTRAP") > 0,
            "deep recurrence must bootstrap"
        );
    }

    #[test]
    fn packed_boot_is_single_batched_op() {
        let p = packed_bootstrapping();
        assert_eq!(p.op_count(), 1);
        assert_eq!(p.batch, 32);
    }

    #[test]
    fn levels_never_underflow() {
        for spec in all() {
            for s in &spec.steps {
                assert!(s.level <= spec.params.max_level(), "{}", spec.name);
            }
        }
    }
}
