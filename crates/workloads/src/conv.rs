//! Functional encrypted convolution (the ResNet-20 building block).
//!
//! Packed convolution over slots: a kernel of width `k` becomes `k`
//! rotations + plaintext multiplications + additions — exactly the
//! rotate/CMULT/HADD pattern the ResNet-20 schedule charges per layer.

use tensorfhe_ckks::{Ciphertext, CkksError, Evaluator, KeyChain};
use tensorfhe_math::Complex64;

/// Rotation steps needed for a width-`k` kernel (centered taps).
#[must_use]
pub fn required_rotations(k: usize, slots: usize) -> Vec<i64> {
    let half = (k / 2) as i64;
    let slots = slots as i64;
    (-half..=half)
        .filter(|&d| d != 0)
        .map(|d| d.rem_euclid(slots / 2 * 2)) // normalised positive step
        .map(|d| if d == 0 { 0 } else { d })
        .filter(|&d| d != 0)
        .collect()
}

/// Encrypted 1-D convolution with centered plaintext taps.
///
/// `out[i] = Σ_d taps[d+half] · in[(i+d) mod slots]` — cyclic boundary, which
/// is what slot rotation gives (real CNNs mask the wraparound with a
/// plaintext zero mask, an extra CMULT the schedule also charges).
///
/// # Errors
///
/// Propagates rotation-key and level errors.
pub fn conv1d(
    eval: &mut Evaluator<'_>,
    keys: &KeyChain<'_>,
    ct: &Ciphertext,
    taps: &[f64],
) -> Result<Ciphertext, CkksError> {
    assert!(taps.len() % 2 == 1, "kernel width must be odd");
    let ctx = eval.context();
    let slots = ctx.params().slots();
    let half = (taps.len() / 2) as i64;
    let scale = ctx.params().scale();

    let mut acc: Option<Ciphertext> = None;
    for (t, &w) in taps.iter().enumerate() {
        let d = t as i64 - half;
        let rotated = if d == 0 {
            ct.clone()
        } else {
            let step = d.rem_euclid(slots as i64 / 2 * 2);
            eval.hrotate(ct, step, keys)?
        };
        let tap_pt = ctx.encode_at(&vec![Complex64::new(w, 0.0); slots], scale, rotated.level())?;
        let term = eval.cmult(&rotated, &tap_pt)?;
        acc = Some(match acc {
            None => term,
            Some(a) => eval.hadd(&a, &term)?,
        });
    }
    eval.rescale(&acc.expect("non-empty kernel"))
}

/// Plaintext reference with the same cyclic semantics.
#[must_use]
pub fn conv1d_clear(input: &[f64], taps: &[f64]) -> Vec<f64> {
    let n = input.len();
    let half = (taps.len() / 2) as i64;
    (0..n)
        .map(|i| {
            taps.iter()
                .enumerate()
                .map(|(t, &w)| {
                    let d = t as i64 - half;
                    let idx = (i as i64 + d).rem_euclid(n as i64) as usize;
                    w * input[idx]
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_ckks::{CkksContext, CkksParams};

    #[test]
    fn encrypted_conv_matches_clear() {
        let params = CkksParams::new("conv-test", 1 << 7, 8, 2, 9, 29, 29, 1).expect("valid");
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(9);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        let slots = params.slots();
        keys.gen_rotation_keys(&[1, slots as i64 - 1], &mut rng);

        let input: Vec<f64> = (0..slots).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let taps = [0.25, 0.5, -0.125];
        let z: Vec<Complex64> = input.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        let ct = keys.encrypt(&ctx.encode(&z, params.scale()).expect("enc"), &mut rng);

        let mut eval = Evaluator::new(&ctx);
        let out = conv1d(&mut eval, &keys, &ct, &taps).expect("conv");
        let dec = ctx.decode(&keys.decrypt(&out)).expect("dec");
        let want = conv1d_clear(&input, &taps);
        for i in 0..slots {
            assert!(
                (dec[i].re - want[i]).abs() < 1e-2,
                "slot {i}: {} vs {}",
                dec[i].re,
                want[i]
            );
        }
    }

    #[test]
    fn clear_reference_identity_kernel() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(conv1d_clear(&x, &[0.0, 1.0, 0.0]), x);
    }

    #[test]
    fn clear_reference_shift_kernel() {
        // Tap at d=+1 picks the next (cyclically) element.
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(conv1d_clear(&x, &[0.0, 0.0, 1.0]), vec![2.0, 3.0, 4.0, 1.0]);
    }
}
