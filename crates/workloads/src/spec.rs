//! Workload specifications and the service-backed runner.
//!
//! Workloads are executed through the request-stream service: every step
//! becomes an [`FheRequest`] (`step.count × spec.batch` operation
//! instances), the service coalesces them into `spec.batch`-wide device
//! batches, and the report aggregates the per-request attributions. This
//! preserves the seed runner's exact totals — each step still costs
//! `count ×` the cost of one `spec.batch`-wide dispatch — while exercising
//! the same code path a serving deployment uses.

use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe, TensorFheBuilder};
use tensorfhe_core::engine::Variant;
use tensorfhe_core::error::CoreResult;
use tensorfhe_core::service::FheRequest;
use tensorfhe_gpu::Profiler;

/// One batched operation step of a workload.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// The operation.
    pub op: FheOp,
    /// Ciphertext level at which it runs.
    pub level: usize,
    /// How many times it repeats at this point of the program.
    pub count: usize,
}

/// A full workload: parameters plus operation sequence.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Workload name as the paper prints it.
    pub name: String,
    /// Table V parameter preset.
    pub params: CkksParams,
    /// Operation sequence.
    pub steps: Vec<Step>,
    /// Batch width (Table V's batch column).
    pub batch: usize,
    /// Logical iterations (images / training steps / timesteps) represented,
    /// used for per-iteration energy (Table XI).
    pub iterations: usize,
}

impl WorkloadSpec {
    /// Total operation invocations.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.steps.iter().map(|s| s.count).sum()
    }

    /// Count of one specific operation name.
    #[must_use]
    pub fn count_of(&self, name: &str) -> usize {
        self.steps
            .iter()
            .filter(|s| s.op.name() == name)
            .map(|s| s.count)
            .sum()
    }
}

/// Result of running a workload through the engine.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: String,
    /// Total device time in seconds.
    pub time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Energy per logical iteration (Table XI's J/iteration).
    pub energy_per_iter_j: f64,
    /// Device time grouped by operation (Fig. 13).
    pub per_op_us: Vec<(String, f64)>,
    /// Device time grouped by kernel (Fig. 12).
    pub per_kernel_us: Vec<(String, f64)>,
    /// Time-weighted occupancy.
    pub occupancy: f64,
}

/// Executes a workload schedule in TimingOnly mode on a simulated A100
/// running the given NTT variant.
///
/// Thin wrapper over [`run_workload_on`] for the common bench-harness
/// configuration.
#[must_use]
pub fn run_workload(spec: &WorkloadSpec, variant: Variant) -> WorkloadReport {
    run_workload_on(spec, TensorFhe::builder(&spec.params).variant(variant))
        .expect("default workload service configuration is valid")
}

/// Executes a workload schedule through the request-stream service built
/// from `builder` (the builder's parameter set is overridden by the
/// spec's).
///
/// Every step is submitted as one request of `count × spec.batch`
/// operation instances; the service coalesces them into `spec.batch`-wide
/// batches and caches the cost of repeated `(op, level, width)` shapes, so
/// paper-scale workloads (tens of thousands of operations) stay tractable
/// while totals remain exact.
///
/// # Errors
///
/// Returns [`tensorfhe_core::error::CoreError`] if the builder
/// configuration is invalid or a step's level exceeds the parameter set's
/// modulus chain.
pub fn run_workload_on(
    spec: &WorkloadSpec,
    builder: TensorFheBuilder,
) -> CoreResult<WorkloadReport> {
    let mut svc = builder
        .params(&spec.params)
        .batch_cap(spec.batch.max(1))
        .service()?;
    for step in &spec.steps {
        svc.submit(FheRequest::new(
            step.op,
            step.level,
            step.count * spec.batch.max(1),
            spec.name.clone(),
        ))?;
    }
    let reports = svc.drain();

    let mut by_op: std::collections::BTreeMap<String, f64> = Default::default();
    let mut by_kernel: std::collections::BTreeMap<String, f64> = Default::default();
    let mut occ_weighted = 0.0f64;
    for r in &reports {
        *by_op.entry(r.report.op.name().to_string()).or_insert(0.0) += r.report.time_us;
        occ_weighted += r.report.occupancy * r.report.time_us;
        for (k, t) in &r.report.by_kernel {
            *by_kernel.entry(normalise_kernel(k)).or_insert(0.0) += t;
        }
    }
    let stats = svc.stats();
    let time_us = stats.busy_us;

    let mut per_op_us: Vec<_> = by_op.into_iter().collect();
    per_op_us.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut per_kernel_us: Vec<_> = by_kernel.into_iter().collect();
    per_kernel_us.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    Ok(WorkloadReport {
        name: spec.name.clone(),
        time_s: time_us * 1e-6,
        energy_j: stats.energy_j,
        energy_per_iter_j: stats.energy_j / spec.iterations.max(1) as f64,
        per_op_us,
        per_kernel_us,
        occupancy: if time_us > 0.0 {
            occ_weighted / time_us
        } else {
            0.0
        },
    })
}

/// Collapses per-stream plane-GEMM names into the parent kernel.
fn normalise_kernel(name: &str) -> String {
    let base = name.split("-plane").next().unwrap_or(name);
    base.to_string()
}

/// Allows callers to inspect the raw profiler if they run manually.
#[must_use]
pub fn profiler_of(api: &TensorFhe) -> Profiler {
    api.engine().profiler()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_aggregates_counts() {
        let params = CkksParams::test_small();
        let spec = WorkloadSpec {
            name: "mini".into(),
            params: params.clone(),
            steps: vec![
                Step {
                    op: FheOp::HMult,
                    level: 7,
                    count: 3,
                },
                Step {
                    op: FheOp::HAdd,
                    level: 7,
                    count: 5,
                },
            ],
            batch: 4,
            iterations: 2,
        };
        let r = run_workload(&spec, Variant::TensorCore);
        assert!(r.time_s > 0.0);
        assert_eq!(r.per_op_us.len(), 2);
        let hmult = r
            .per_op_us
            .iter()
            .find(|(k, _)| k == "HMULT")
            .expect("hmult");
        let hadd = r.per_op_us.iter().find(|(k, _)| k == "HADD").expect("hadd");
        assert!(hmult.1 > hadd.1, "3 HMULTs outweigh 5 HADDs");
        assert!((r.energy_per_iter_j - r.energy_j / 2.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_names_are_normalised() {
        assert_eq!(normalise_kernel("ntt-plane13"), "ntt");
        assert_eq!(normalise_kernel("hada-mult"), "hada-mult");
    }
}
