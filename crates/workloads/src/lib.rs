//! The paper's evaluation workloads (§V): ResNet-20, HELR logistic
//! regression, LSTM and packed bootstrapping.
//!
//! Each workload exists in two forms:
//!
//! * a **schedule** ([`WorkloadSpec`]) — the sequence of batched CKKS
//!   operations the workload executes at its Table V parameters, runnable
//!   through the TensorFHE engine in TimingOnly mode to regenerate
//!   Tables X/XI and Figs. 12/13;
//! * a **functional kernel** ([`helr`], [`conv`], [`lstm_cell`]) — a real
//!   encrypted computation at reduced parameters, validated against its
//!   plaintext reference, proving the op sequences do what the schedule
//!   claims.
//!
//! Operation counts are derived from the cited implementations
//! (Lee et al. for ResNet-20, Han et al. HELR, Podschwadt–Takabi LSTM);
//! where the papers leave counts unspecified we derive them from the
//! architecture and document the derivation next to the builder.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conv;
pub mod helr;
pub mod lstm_cell;
pub mod schedules;
pub mod spec;

pub use spec::{run_workload, Step, WorkloadReport, WorkloadSpec};
