//! Homomorphic sine evaluation (the paper's "Sine Evaluation" stage).
//!
//! After ModRaise + CoeffToSlot, each slot holds `v = c/Δ + P·I` with
//! `P = q_0/Δ` and integer `I`. The modular reduction `v mod P` is
//! approximated by `(P/2π)·sin(2πv/P)`:
//!
//! 1. fold: `θ = 2πv/(P·2^r)` (one constant multiplication),
//! 2. `u = exp(iθ)` via a degree-`d` Taylor polynomial in the *real*
//!    ciphertext `θ` with complex coefficients `i^k/k!` (Horner),
//! 3. `r` double-angle squarings: `u ← u²` gives `exp(2πiv/P)`,
//! 4. `sin = (u - ū)/2i`, extracted with one conjugation (HCONJ in Fig. 6)
//!    and a final complex constant multiplication that also applies the
//!    `P/2π` rescaling.
//!
//! Total depth: `2 + d_levels + r` where `d_levels = d - 1` Horner
//! multiplications.

use tensorfhe_ckks::{Ciphertext, CkksError, Evaluator, KeyChain, Plaintext};
use tensorfhe_math::Complex64;

/// Configuration of the sine approximation.
#[derive(Debug, Clone, Copy)]
pub struct SineConfig {
    /// Taylor degree `d` for `exp(iθ)` (7 is the paper's choice of a
    /// Taylor polynomial approximation).
    pub taylor_degree: usize,
    /// Number of double-angle squarings `r`.
    pub double_angles: usize,
}

impl Default for SineConfig {
    fn default() -> Self {
        Self {
            taylor_degree: 7,
            double_angles: 6,
        }
    }
}

impl SineConfig {
    /// Multiplicative depth consumed by [`eval_sine`].
    #[must_use]
    pub fn depth(&self) -> usize {
        // fold + (d-1 Horner hmults + 1 initial cmult) + r squarings + final.
        1 + self.taylor_degree + self.double_angles + 1
    }
}

/// Encodes a constant complex vector at the ciphertext's level and scale.
fn const_plain(
    eval: &Evaluator<'_>,
    z: Complex64,
    level: usize,
    scale: f64,
) -> Result<Plaintext, CkksError> {
    let ctx = eval.context();
    let slots = ctx.params().slots();
    ctx.encode_at(&vec![z; slots], scale, level)
}

/// Adds a complex constant to every slot (no level cost).
fn add_const_z(
    eval: &mut Evaluator<'_>,
    ct: &Ciphertext,
    z: Complex64,
) -> Result<Ciphertext, CkksError> {
    let pt = const_plain(eval, z, ct.level(), ct.scale)?;
    eval.add_plain(ct, &pt)
}

/// Multiplies every slot by a complex constant (one level after rescale).
fn mul_const_z(
    eval: &mut Evaluator<'_>,
    ct: &Ciphertext,
    z: Complex64,
) -> Result<Ciphertext, CkksError> {
    let scale = eval.context().params().scale();
    let pt = const_plain(eval, z, ct.level(), scale)?;
    let out = eval.cmult(ct, &pt)?;
    eval.rescale(&out)
}

/// Evaluates `(period/2π)·sin(2π·v/period)` on the slot values of `ct`.
///
/// The conjugation key must have been generated.
///
/// # Errors
///
/// Propagates level-exhaustion and missing-key errors.
pub fn eval_sine(
    eval: &mut Evaluator<'_>,
    keys: &KeyChain<'_>,
    ct: &Ciphertext,
    period: f64,
    cfg: &SineConfig,
) -> Result<Ciphertext, CkksError> {
    let d = cfg.taylor_degree;
    let r = cfg.double_angles;
    assert!(d >= 2, "Taylor degree must be at least 2");

    // θ = v · 2π/(period·2^r)
    let fold = 2.0 * std::f64::consts::PI / (period * (1u64 << r) as f64);
    let theta = eval.mul_const(ct, fold);
    let theta = eval.rescale(&theta)?;

    // Taylor coefficients a_k = i^k / k!.
    let mut coeffs = Vec::with_capacity(d + 1);
    let mut fact = 1.0f64;
    for k in 0..=d {
        if k > 0 {
            fact *= k as f64;
        }
        let ik = match k % 4 {
            0 => Complex64::new(1.0, 0.0),
            1 => Complex64::new(0.0, 1.0),
            2 => Complex64::new(-1.0, 0.0),
            _ => Complex64::new(0.0, -1.0),
        };
        coeffs.push(ik.scale(1.0 / fact));
    }

    // Horner: acc = a_d; acc = acc·θ + a_{k}.
    let mut acc = mul_const_z(eval, &theta, coeffs[d])?;
    acc = add_const_z(eval, &acc, coeffs[d - 1])?;
    for k in (0..d - 1).rev() {
        let theta_here = eval.mod_switch_to(&theta, acc.level())?;
        acc = eval.hmult(&acc, &theta_here, keys)?;
        acc = eval.rescale(&acc)?;
        acc = add_const_z(eval, &acc, coeffs[k])?;
    }

    // Double-angle ladder: u ← u².
    for _ in 0..r {
        acc = eval.square(&acc, keys)?;
        acc = eval.rescale(&acc)?;
    }

    // sin = (u - ū)/(2i), fused with the final (period/2π) scaling.
    let conj = eval.conjugate(&acc, keys)?;
    let diff = eval.hsub(&acc, &conj)?;
    let z = Complex64::new(0.0, -0.5).scale(period / (2.0 * std::f64::consts::PI));
    mul_const_z(eval, &diff, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensorfhe_ckks::{CkksContext, CkksParams};

    #[test]
    fn depth_accounting() {
        let cfg = SineConfig {
            taylor_degree: 7,
            double_angles: 6,
        };
        assert_eq!(cfg.depth(), 15);
    }

    #[test]
    fn sine_removes_integer_periods() {
        // Slots hold v = x + P·I; the sine kernel must return ≈ x.
        let params =
            CkksParams::new("sine-test", 1 << 7, 17, 3, 6, 29, 29, 1).expect("params valid");
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(77);
        let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);
        keys.gen_conjugation_key(&mut rng);
        let mut eval = Evaluator::new(&ctx);

        let period = 16.0f64;
        let slots = ctx.params().slots();
        let xs: Vec<f64> = (0..slots)
            .map(|i| 0.3 * ((i as f64) * 0.17).sin())
            .collect();
        let is: Vec<f64> = (0..slots).map(|i| ((i % 7) as f64) - 3.0).collect();
        let vals: Vec<Complex64> = xs
            .iter()
            .zip(&is)
            .map(|(&x, &i)| Complex64::new(x + period * i, 0.0))
            .collect();

        let pt = ctx.encode(&vals, params.scale()).expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);
        let cfg = SineConfig {
            taylor_degree: 7,
            double_angles: 5,
        };
        let out = eval_sine(&mut eval, &keys, &ct, period, &cfg).expect("sine");
        let dec = ctx.decode(&keys.decrypt(&out)).expect("decode");

        for (t, &x) in xs.iter().enumerate() {
            // sin(2πx/P)·P/2π ≈ x for |x| ≪ P (here x ≤ 0.3, P = 16:
            // linearisation error ≈ x³·(2π/P)²/6 ≲ 7e-4).
            let err = (dec[t].re - x).abs();
            assert!(
                err < 5e-3,
                "slot {t}: got {}, want {x} (err {err})",
                dec[t].re
            );
            assert!(dec[t].im.abs() < 5e-3, "imaginary residue {}", dec[t].im);
        }
    }
}
