//! The bootstrap orchestrator (Fig. 6).

use crate::dft::{dft_transform_cached, DftMatrix, Half};
use crate::linear::LinearTransform;
use crate::modraise::mod_raise;
use crate::sine::{eval_sine, SineConfig};
use std::sync::Arc;
use tensorfhe_ckks::{Ciphertext, CkksContext, CkksError, Evaluator, KeyChain};

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct BootConfig {
    /// Sine approximation parameters.
    pub sine: SineConfig,
}

impl BootConfig {
    /// Multiplicative depth the bootstrap consumes (CoeffToSlot + sine +
    /// SlotToCoeff).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.sine.depth() + 1
    }
}

/// Pre-computed bootstrapping transforms for one context.
///
/// # Examples
///
/// See `tests/bootstrap.rs` for the full end-to-end flow (key generation,
/// level exhaustion, refresh, decryption).
#[derive(Debug)]
pub struct Bootstrapper<'a> {
    ctx: &'a CkksContext,
    cfg: BootConfig,
    c2s_adj_low: Arc<LinearTransform>,
    c2s_tra_low: Arc<LinearTransform>,
    c2s_adj_high: Arc<LinearTransform>,
    c2s_tra_high: Arc<LinearTransform>,
    s2c_low: Arc<LinearTransform>,
    s2c_high: Arc<LinearTransform>,
}

impl<'a> Bootstrapper<'a> {
    /// Builds the DFT transforms for the context (CoeffToSlot and
    /// SlotToCoeff halves). Transforms depend only on `N` and come from the
    /// process-wide DFT cache, so bootstrappers share them across contexts
    /// — the same plan-sharing semantics as the NTT layer's `PlanCache`.
    #[must_use]
    pub fn new(ctx: &'a CkksContext, cfg: BootConfig) -> Self {
        let n = ctx.params().n();
        Self {
            ctx,
            cfg,
            c2s_adj_low: dft_transform_cached(n, DftMatrix::DecodeAdjoint(Half::Low)),
            c2s_tra_low: dft_transform_cached(n, DftMatrix::DecodeTranspose(Half::Low)),
            c2s_adj_high: dft_transform_cached(n, DftMatrix::DecodeAdjoint(Half::High)),
            c2s_tra_high: dft_transform_cached(n, DftMatrix::DecodeTranspose(Half::High)),
            s2c_low: dft_transform_cached(n, DftMatrix::Encode(Half::Low)),
            s2c_high: dft_transform_cached(n, DftMatrix::Encode(Half::High)),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BootConfig {
        &self.cfg
    }

    /// All rotation steps the bootstrap needs keys for (the conjugation key
    /// is needed additionally).
    #[must_use]
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut steps = std::collections::BTreeSet::new();
        for lt in [
            &self.c2s_adj_low,
            &self.c2s_tra_low,
            &self.c2s_adj_high,
            &self.c2s_tra_high,
            &self.s2c_low,
            &self.s2c_high,
        ] {
            steps.extend(lt.required_rotations());
        }
        steps.into_iter().collect()
    }

    /// Refreshes an exhausted ciphertext: input at any level (its modulus is
    /// dropped to `q_0` first), output at `L − depth` with the same slot
    /// values.
    ///
    /// # Errors
    ///
    /// Propagates missing-rotation-key and level errors; fails with
    /// [`CkksError::LevelExhausted`] if the parameter set is too shallow for
    /// the configured sine depth.
    pub fn bootstrap(
        &self,
        eval: &mut Evaluator<'_>,
        keys: &KeyChain<'_>,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, CkksError> {
        let ctx = self.ctx;
        if ctx.params().max_level() < self.cfg.depth() {
            return Err(CkksError::LevelExhausted);
        }

        // ModRaise: drop to q0, lift to the full chain (adds q0·I).
        let ct0 = eval.mod_switch_to(ct, 0)?;
        let raised = mod_raise(ctx, &ct0);

        // CoeffToSlot: y_low/y_high = (1/N)(E_h† w + E_hᵀ w̄).
        let wc = eval.conjugate(&raised, keys)?;
        let a = self.c2s_adj_low.apply(eval, keys, &raised)?;
        let b = self.c2s_tra_low.apply(eval, keys, &wc)?;
        let ct_low = eval.hadd(&a, &b)?;
        let a = self.c2s_adj_high.apply(eval, keys, &raised)?;
        let b = self.c2s_tra_high.apply(eval, keys, &wc)?;
        let ct_high = eval.hadd(&a, &b)?;

        // SineEval removes the q0·I perturbation from each coefficient.
        // In slot-value terms the period is q0/Δ.
        let period = ctx.q_primes()[0] as f64 / ct.scale;
        let s_low = eval_sine(eval, keys, &ct_low, period, &self.cfg.sine)?;
        let s_high = eval_sine(eval, keys, &ct_high, period, &self.cfg.sine)?;

        // SlotToCoeff recombination: slots = E_left·y_low + E_right·y_high.
        let lo = self.s2c_low.apply(eval, keys, &s_low)?;
        let hi = self.s2c_high.apply(eval, keys, &s_high)?;
        eval.hadd(&lo, &hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_sine_plus_two() {
        let cfg = BootConfig::default();
        assert_eq!(cfg.depth(), cfg.sine.depth() + 2);
    }
}
