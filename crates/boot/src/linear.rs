//! Homomorphic linear transforms with baby-step/giant-step rotations.
//!
//! A plaintext matrix `M` acts on the slot vector as
//! `Mv = Σ_d diag_d(M) ⊙ rot(v, d)` where `diag_d(M)[t] = M[t][(t+d) mod n]`.
//! BSGS splits `d = i·n1 + j` so only `≈ 2√D` rotations are needed instead
//! of `D` — this is the structure the paper's Fig. 6 labels "BSGS", composed
//! of `HROTATE`, `CMULT` and `HADD` operations.
//!
//! Both rotation families stream through batched key switches: the baby
//! steps rotate *one* ciphertext by every `j` at once
//! (`Evaluator::hrotate_many`), and the giant steps rotate every group's
//! *distinct* accumulator by its own `i·n1` in one batch
//! (`Evaluator::hrotate_pairs`), so each per-modulus NTT of either stage is
//! a single wide GEMM block. Results and emitted kernel events are
//! identical to rotating one at a time.

use std::collections::BTreeMap;
use tensorfhe_ckks::{Ciphertext, CkksError, Evaluator, KeyChain};
use tensorfhe_math::Complex64;

/// A slot-space linear transform in diagonal representation.
#[derive(Debug, Clone)]
pub struct LinearTransform {
    slots: usize,
    /// Non-zero generalized diagonals, keyed by offset.
    diags: BTreeMap<usize, Vec<Complex64>>,
}

impl LinearTransform {
    /// Builds the transform from a dense `slots × slots` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square over `slots`.
    #[must_use]
    pub fn from_matrix(matrix: &[Vec<Complex64>]) -> Self {
        let slots = matrix.len();
        assert!(
            matrix.iter().all(|r| r.len() == slots),
            "matrix must be square"
        );
        let mut diags = BTreeMap::new();
        for d in 0..slots {
            let diag: Vec<Complex64> = (0..slots).map(|t| matrix[t][(t + d) % slots]).collect();
            if diag.iter().any(|z| z.norm() > 1e-12) {
                diags.insert(d, diag);
            }
        }
        Self { slots, diags }
    }

    /// Builds directly from diagonals.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal has the wrong length.
    #[must_use]
    pub fn from_diagonals(slots: usize, diags: BTreeMap<usize, Vec<Complex64>>) -> Self {
        assert!(diags.values().all(|d| d.len() == slots), "diagonal length");
        Self { slots, diags }
    }

    /// Slot dimension.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of non-zero diagonals.
    #[must_use]
    pub fn diagonal_count(&self) -> usize {
        self.diags.len()
    }

    /// The baby-step width `n1 = ⌈√D⌉` used by [`LinearTransform::apply`].
    #[must_use]
    pub fn baby_width(&self) -> usize {
        ((self.diags.len().max(1)) as f64).sqrt().ceil() as usize
    }

    /// Rotation steps the evaluator will need (generate keys for these).
    #[must_use]
    pub fn required_rotations(&self) -> Vec<i64> {
        let n1 = self.baby_width();
        let mut steps = std::collections::BTreeSet::new();
        for &d in self.diags.keys() {
            let j = d % n1;
            let i = d - j;
            if j != 0 {
                steps.insert(j as i64);
            }
            if i != 0 {
                steps.insert(i as i64);
            }
        }
        steps.into_iter().collect()
    }

    /// Applies the transform homomorphically. Consumes one level (the
    /// output is rescaled once).
    ///
    /// # Errors
    ///
    /// Propagates rotation-key and level errors from the evaluator.
    pub fn apply(
        &self,
        eval: &mut Evaluator<'_>,
        keys: &KeyChain<'_>,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, CkksError> {
        let ctx = eval.context();
        assert_eq!(
            self.slots,
            ctx.params().slots(),
            "transform dimension must match slot count"
        );
        let n1 = self.baby_width();
        let level = ct.level();
        let scale = ctx.params().scale();

        // Group diagonals by giant step i (multiples of n1).
        let mut by_giant: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &d in self.diags.keys() {
            by_giant.entry(d - d % n1).or_default().push(d);
        }

        // Baby rotations, computed once and reused by every giant step.
        // All ≈√D rotations of the same ciphertext run as ONE batched key
        // switch (`Evaluator::hrotate_many`): the C2S/S2C streaming path,
        // where every per-modulus NTT is a wide `steps × dnum`-row block
        // instead of one polynomial at a time. Events and results are
        // identical to rotating one step at a time.
        let baby_steps: Vec<i64> = (1..n1)
            .filter(|&j| self.diags.keys().any(|&d| d % n1 == j))
            .map(|j| j as i64)
            .collect();
        let mut rotated: BTreeMap<usize, Ciphertext> = BTreeMap::new();
        rotated.insert(0, ct.clone());
        for (&j, rot) in baby_steps
            .iter()
            .zip(eval.hrotate_many(ct, &baby_steps, keys)?)
        {
            rotated.insert(j as usize, rot);
        }

        // Inner (baby) accumulation per giant group: CMULTs against the
        // pre-rotated diagonals and HADDs, exactly as before — but every
        // group's accumulator is finished *before* any giant rotation, so
        // the giant steps can batch.
        let mut inners: Vec<(usize, Ciphertext)> = Vec::with_capacity(by_giant.len());
        for (&giant, ds) in &by_giant {
            let mut inner: Option<Ciphertext> = None;
            for &d in ds {
                let j = d % n1;
                // Giant-step correction: pre-rotate the diagonal by -giant.
                let diag = &self.diags[&d];
                let shifted: Vec<Complex64> = (0..self.slots)
                    .map(|t| diag[(t + self.slots - giant % self.slots) % self.slots])
                    .collect();
                let pt = ctx.encode_at(&shifted, scale, level)?;
                let term = eval.cmult(&rotated[&j], &pt)?;
                inner = Some(match inner {
                    None => term,
                    Some(acc) => eval.hadd(&acc, &term)?,
                });
            }
            inners.push((giant, inner.expect("giant group non-empty")));
        }

        // Giant rotations: distinct accumulators, each by its own step,
        // all through ONE batched key switch (`Evaluator::hrotate_pairs`)
        // — the multi-ciphertext counterpart of the baby-step batching
        // above. Events and results are identical to rotating one
        // accumulator at a time, in giant order.
        let rotated_giants = {
            let pairs: Vec<(&Ciphertext, i64)> = inners
                .iter()
                .filter(|&&(giant, _)| giant != 0)
                .map(|(giant, inner)| (inner, *giant as i64))
                .collect();
            eval.hrotate_pairs(&pairs, keys)?
        };

        // Fold the contributions in giant order, giant 0 passing through
        // unrotated — the same HADD association as the serial loop.
        let mut acc: Option<Ciphertext> = None;
        let mut rotations = rotated_giants.into_iter();
        for (giant, inner) in inners {
            let contribution = if giant == 0 {
                inner
            } else {
                rotations.next().expect("one rotation per non-zero giant")
            };
            acc = Some(match acc {
                None => contribution,
                Some(a) => eval.hadd(&a, &contribution)?,
            });
        }

        let out = acc.ok_or_else(|| CkksError::Mismatch("empty transform".into()))?;
        eval.rescale(&out)
    }

    /// Reference (plaintext) application for validation.
    #[must_use]
    pub fn apply_clear(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.slots);
        let mut out = vec![Complex64::zero(); self.slots];
        for (&d, diag) in &self.diags {
            for t in 0..self.slots {
                out[t] += diag[t] * v[(t + d) % self.slots];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensorfhe_ckks::{CkksContext, CkksParams};

    fn random_matrix(rng: &mut StdRng, n: usize) -> Vec<Vec<Complex64>> {
        (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| Complex64::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn diagonal_extraction_matches_dense_product() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 8;
        let m = random_matrix(&mut rng, n);
        let lt = LinearTransform::from_matrix(&m);
        let v: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64 * 0.3 - 1.0, 0.5 - i as f64 * 0.1))
            .collect();
        let got = lt.apply_clear(&v);
        for t in 0..n {
            let mut want = Complex64::zero();
            for u in 0..n {
                want += m[t][u] * v[u];
            }
            assert!((got[t] - want).norm() < 1e-9, "row {t}");
        }
    }

    #[test]
    fn required_rotations_cover_bsgs() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 16;
        let lt = LinearTransform::from_matrix(&random_matrix(&mut rng, n));
        let n1 = lt.baby_width();
        for r in lt.required_rotations() {
            let r = r as usize;
            assert!(
                r < n1 || r.is_multiple_of(n1),
                "rotation {r} is neither baby nor giant"
            );
        }
    }

    /// Reference `apply`: the same phase order (inner sums, then giant
    /// rotations, then folds) with every rotation issued one at a time
    /// through `Evaluator::hrotate`. The public `apply` routes babies
    /// through `hrotate_many` and giants through `hrotate_pairs`; both
    /// promise results *and* kernel streams identical to this loop.
    fn apply_sequential(
        lt: &LinearTransform,
        eval: &mut Evaluator<'_>,
        keys: &KeyChain<'_>,
        ct: &Ciphertext,
    ) -> Ciphertext {
        let ctx = eval.context();
        let n1 = lt.baby_width();
        let level = ct.level();
        let scale = ctx.params().scale();
        let mut by_giant: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &d in lt.diags.keys() {
            by_giant.entry(d - d % n1).or_default().push(d);
        }
        let mut rotated: BTreeMap<usize, Ciphertext> = BTreeMap::new();
        rotated.insert(0, ct.clone());
        for j in (1..n1).filter(|&j| lt.diags.keys().any(|&d| d % n1 == j)) {
            let rot = eval.hrotate(ct, j as i64, keys).expect("baby rotate");
            rotated.insert(j, rot);
        }
        let mut inners: Vec<(usize, Ciphertext)> = Vec::new();
        for (&giant, ds) in &by_giant {
            let mut inner: Option<Ciphertext> = None;
            for &d in ds {
                let j = d % n1;
                let diag = &lt.diags[&d];
                let shifted: Vec<Complex64> = (0..lt.slots)
                    .map(|t| diag[(t + lt.slots - giant % lt.slots) % lt.slots])
                    .collect();
                let pt = ctx.encode_at(&shifted, scale, level).expect("encode");
                let term = eval.cmult(&rotated[&j], &pt).expect("cmult");
                inner = Some(match inner {
                    None => term,
                    Some(acc) => eval.hadd(&acc, &term).expect("hadd"),
                });
            }
            inners.push((giant, inner.expect("giant group non-empty")));
        }
        let rotated_giants: Vec<Ciphertext> = inners
            .iter()
            .filter(|&&(giant, _)| giant != 0)
            .map(|(giant, inner)| eval.hrotate(inner, *giant as i64, keys).expect("giant"))
            .collect();
        let mut acc: Option<Ciphertext> = None;
        let mut rotations = rotated_giants.into_iter();
        for (giant, inner) in inners {
            let contribution = if giant == 0 {
                inner
            } else {
                rotations.next().expect("one per giant")
            };
            acc = Some(match acc {
                None => contribution,
                Some(a) => eval.hadd(&a, &contribution).expect("hadd"),
            });
        }
        eval.rescale(&acc.expect("non-empty")).expect("rescale")
    }

    #[test]
    fn batched_giant_steps_match_sequential_rotations() {
        // The giant-step batching promise: `apply` (babies through
        // `hrotate_many`, giants through `hrotate_pairs`, one batched key
        // switch each) is bit-identical to one-rotation-at-a-time
        // execution AND emits the exact same kernel-event stream.
        use tensorfhe_ckks::trace::RecordingTracer;

        let params = CkksParams::test_small();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(11);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        let slots = params.slots();

        // Several giant groups with ragged baby membership: diagonals
        // spread across giants 0, n1 and 2·n1 with gaps.
        let mut diags = BTreeMap::new();
        for d in [0usize, 1, 3, 6, 7, 13] {
            let diag: Vec<Complex64> = (0..slots)
                .map(|t| Complex64::new(((t * d + 1) as f64 * 0.02).sin() * 0.3, 0.0))
                .collect();
            diags.insert(d, diag);
        }
        let lt = LinearTransform::from_diagonals(slots, diags);
        assert!(
            lt.required_rotations().len() >= 4,
            "test needs several baby AND giant rotations"
        );
        keys.gen_rotation_keys(&lt.required_rotations(), &mut rng);

        let v: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new((i as f64 * 0.09).cos() * 0.4, (i as f64 * 0.05).sin() * 0.2))
            .collect();
        let pt = ctx.encode(&v, params.scale()).expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);

        let mut batch_rec = RecordingTracer::new();
        let batched = {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut batch_rec));
            lt.apply(&mut eval, &keys, &ct).expect("apply")
        };
        let mut seq_rec = RecordingTracer::new();
        let sequential = {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut seq_rec));
            apply_sequential(&lt, &mut eval, &keys, &ct)
        };

        assert_eq!(batched.c0, sequential.c0, "c0 diverged");
        assert_eq!(batched.c1, sequential.c1, "c1 diverged");
        assert!((batched.scale - sequential.scale).abs() < 1e-12);
        assert_eq!(batch_rec.events, seq_rec.events, "kernel streams differ");
        assert_eq!(batch_rec.ops, seq_rec.ops, "operation markers differ");
    }

    #[test]
    fn homomorphic_apply_matches_clear() {
        let params = CkksParams::test_small();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(7);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        let slots = params.slots();

        // Sparse matrix with a handful of diagonals keeps this test quick.
        let mut diags = BTreeMap::new();
        for d in [0usize, 1, 5, 17] {
            let diag: Vec<Complex64> = (0..slots)
                .map(|t| Complex64::new(((t + d) as f64 * 0.01).sin() * 0.3, 0.0))
                .collect();
            diags.insert(d, diag);
        }
        let lt = LinearTransform::from_diagonals(slots, diags);
        keys.gen_rotation_keys(&lt.required_rotations(), &mut rng);

        let v: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new((i as f64 * 0.05).cos() * 0.4, 0.0))
            .collect();
        let pt = ctx.encode(&v, params.scale()).expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);

        let mut eval = Evaluator::new(&ctx);
        let out = lt.apply(&mut eval, &keys, &ct).expect("apply");
        let dec = ctx.decode(&keys.decrypt(&out)).expect("decode");
        let want = lt.apply_clear(&v);
        for t in 0..slots {
            assert!(
                (dec[t] - want[t]).norm() < 5e-2,
                "slot {t}: {} vs {}",
                dec[t],
                want[t]
            );
        }
    }
}
