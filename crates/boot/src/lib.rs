//! Slim bootstrapping for full-RNS CKKS (Fig. 6 of the paper).
//!
//! Bootstrapping refreshes an exhausted ciphertext's level budget. The
//! pipeline, matching the paper's stage inventory:
//!
//! 1. **SlotToCoeff** — a homomorphic linear transform (BSGS over
//!    `CMULT`/`HROTATE`/`HADD`) packing slot values into polynomial
//!    coefficients.
//! 2. **ModRaise** — re-interpret the level-0 ciphertext modulo the full
//!    chain `Q_L`, which adds an unknown multiple `q_0·I(X)` to the
//!    message.
//! 3. **CoeffToSlot** — the inverse transforms, exposing every coefficient
//!    in a slot (two ciphertexts for full packing, via conjugation).
//! 4. **SineEval** — homomorphic evaluation of `(q_0/2π)·sin(2πx/q_0)`
//!    through a Taylor expansion of `exp(iθ)` plus repeated squaring
//!    (the double-angle ladder), removing the `q_0·I` term.
//! 5. A final SlotToCoeff pair recombines the cleaned halves into the
//!    refreshed slot ciphertext.
//!
//! The module decomposition follows the paper's Fig. 6 boxes: [`linear`]
//! (BSGS `HMULT`/`CMULT`/`HROTATE` compositions), [`dft`] (the homomorphic
//! (i)DFT matrices), [`sine`] (Taylor approximation), [`modraise`], and
//! [`Bootstrapper`] gluing them together.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dft;
pub mod linear;
pub mod modraise;
pub mod sine;

mod bootstrap;

pub use bootstrap::{BootConfig, Bootstrapper};
