//! ModRaise: re-interpreting a level-0 ciphertext modulo the full chain.
//!
//! A ciphertext at level 0 satisfies `c0 + c1·s ≡ m (mod q_0)`. Lifting the
//! centered residues into every prime of the chain gives a level-`L`
//! ciphertext satisfying `c0 + c1·s = m + q_0·I(X)` over `Q_L`, where the
//! overflow polynomial `I(X)` has small coefficients (`‖I‖∞ ≲ ‖s‖₁/2 + 1`,
//! which is why bootstrapping uses sparse secrets). The sine evaluation
//! removes the `q_0·I` term afterwards.

use tensorfhe_ckks::{Ciphertext, CkksContext, Domain, RnsPoly};

/// Raises a level-0 ciphertext to the top of the modulus chain.
///
/// # Panics
///
/// Panics if the ciphertext is not at level 0 or not in NTT domain.
#[must_use]
pub fn mod_raise(ctx: &CkksContext, ct: &Ciphertext) -> Ciphertext {
    assert_eq!(ct.level(), 0, "ModRaise input must be at level 0");
    Ciphertext {
        c0: raise_poly(ctx, &ct.c0),
        c1: raise_poly(ctx, &ct.c1),
        scale: ct.scale,
    }
}

fn raise_poly(ctx: &CkksContext, poly: &RnsPoly) -> RnsPoly {
    assert_eq!(poly.domain(), Domain::Ntt, "expected NTT-domain input");
    let mut p = poly.clone();
    p.ntt_inverse(ctx);
    let m0 = ctx.q_mod(0);
    let half = m0.value() / 2;
    let centered: Vec<i64> = p
        .limb(0)
        .iter()
        .map(|&x| {
            if x > half {
                x as i64 - m0.value() as i64
            } else {
                x as i64
            }
        })
        .collect();
    let mut raised = RnsPoly::from_signed(ctx, &centered, ctx.params().max_level());
    raised.ntt_forward(ctx);
    raised
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensorfhe_ckks::{CkksParams, Evaluator, KeyChain};
    use tensorfhe_math::Complex64;

    #[test]
    fn raised_ciphertext_decrypts_to_message_plus_q0_multiple() {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(31);
        // Sparse secret keeps I(X) small enough to observe the structure.
        let keys = KeyChain::generate_sparse(&ctx, 4, &mut rng);
        let mut eval = Evaluator::new(&ctx);

        let vals = vec![Complex64::new(0.25, 0.0), Complex64::new(-0.125, 0.0)];
        let pt = ctx.encode(&vals, params.scale()).expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);
        let ct0 = eval.mod_switch_to(&ct, 0).expect("drop");
        let raised = mod_raise(&ctx, &ct0);

        assert_eq!(raised.level(), params.max_level());
        assert_eq!(raised.scale, ct.scale);

        // Decrypting the raised ciphertext and reducing each coefficient
        // modulo q0 (centered) must recover the original message poly.
        let dec_raised = keys.decrypt(&raised);
        let dec_orig = keys.decrypt(&ct0);
        let mut p_raised = dec_raised.poly.clone();
        p_raised.ntt_inverse(&ctx);
        let mut p_orig = dec_orig.poly.clone();
        p_orig.ntt_inverse(&ctx);
        let q0 = ctx.q_mod(0);
        for i in 0..ctx.params().n() {
            // Compare mod q0: limb 0 of the raised decryption vs original.
            assert_eq!(
                p_raised.limb(0)[i],
                p_orig.limb(0)[i],
                "coefficient {i} differs mod q0"
            );
            let _ = q0;
        }
    }

    #[test]
    #[should_panic(expected = "level 0")]
    fn rejects_non_level_zero() {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(32);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pt = ctx
            .encode(&[Complex64::one()], params.scale())
            .expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);
        let _ = mod_raise(&ctx, &ct);
    }
}
