//! The homomorphic (i)DFT matrices behind SlotToCoeff / CoeffToSlot.
//!
//! Let `E` be the `N/2 × N` decoding matrix `E[j][k] = ζ^{5^j·k}`
//! (`ζ = e^{iπ/N}`), split by columns into `E = [E_left | E_right]`. Using
//! the orthogonality of the full odd character group
//! (`[E; Ē]† [E; Ē] = N·I`), for a *real* coefficient vector
//! `y = (y_low, y_high)`:
//!
//! ```text
//! slots      w = E_left·y_low + E_right·y_high
//! y_low  = (1/N)·(E_left† w  + E_leftᵀ w̄)
//! y_high = (1/N)·(E_right† w + E_rightᵀ w̄)
//! ```
//!
//! so **CoeffToSlot** is four dense transforms plus one conjugation, and
//! **SlotToCoeff** is the pair `E_left`, `E_right`. These are exactly the
//! DFT matrices the paper's Fig. 6 BSGS boxes evaluate.

use crate::linear::LinearTransform;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tensorfhe_math::Complex64;

/// Which half (columns) of the decoding matrix to materialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Half {
    /// Columns `0..N/2` (low coefficients).
    Low,
    /// Columns `N/2..N` (high coefficients).
    High,
}

/// Which variant of the matrix a transform needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DftMatrix {
    /// `E_half` — SlotToCoeff direction.
    Encode(Half),
    /// `(1/N)·E_half†` — CoeffToSlot, applied to the ciphertext itself.
    DecodeAdjoint(Half),
    /// `(1/N)·E_halfᵀ` — CoeffToSlot, applied to the conjugated ciphertext.
    DecodeTranspose(Half),
}

/// Materialises the requested matrix as a dense linear transform over
/// `slots = N/2`.
#[must_use]
pub fn dft_transform(n: usize, which: DftMatrix) -> LinearTransform {
    let slots = n / 2;
    let mut matrix = vec![vec![Complex64::zero(); slots]; slots];
    let two_n = 2 * n;
    // rot_pows[j] = 5^j mod 2N.
    let mut rot = 1usize;
    let mut rot_pows = Vec::with_capacity(slots);
    for _ in 0..slots {
        rot_pows.push(rot);
        rot = rot * 5 % two_n;
    }
    let cis: Vec<Complex64> = (0..two_n)
        .map(|i| Complex64::cis(std::f64::consts::PI * i as f64 / n as f64))
        .collect();
    let e = |j: usize, k: usize| cis[rot_pows[j] * k % two_n];

    let offset = |half: Half| match half {
        Half::Low => 0usize,
        Half::High => slots,
    };
    let inv_n = 1.0 / n as f64;
    for (r, row) in matrix.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = match which {
                // E_half[r][c] = ζ^{5^r (c + offset)}
                DftMatrix::Encode(h) => e(r, c + offset(h)),
                // (1/N)·E_half†[r][c] = (1/N)·conj(E[c][r + offset])
                DftMatrix::DecodeAdjoint(h) => e(c, r + offset(h)).conj().scale(inv_n),
                // (1/N)·E_halfᵀ[r][c] = (1/N)·E[c][r + offset]
                DftMatrix::DecodeTranspose(h) => e(c, r + offset(h)).scale(inv_n),
            };
        }
    }
    LinearTransform::from_matrix(&matrix)
}

/// [`dft_transform`] through a process-wide cache keyed on `(n, which)` —
/// the bootstrap counterpart of the NTT layer's plan cache. The six dense
/// DFT matrices of a [`crate::bootstrap::Bootstrapper`] depend only on `N`,
/// so every bootstrapper (and every context) at the same degree shares one
/// materialisation.
#[must_use]
pub fn dft_transform_cached(n: usize, which: DftMatrix) -> Arc<LinearTransform> {
    // lint: ordered-ok (keyed get/entry only; never iterated)
    type DftCache = Mutex<HashMap<(usize, DftMatrix), Arc<LinearTransform>>>;
    static CACHE: OnceLock<DftCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(lt) = cache.lock().expect("dft cache poisoned").get(&(n, which)) {
        return Arc::clone(lt);
    }
    // Built outside the lock (dense N/2 × N/2 complex matrix); a racing
    // builder defers to whichever insert lands first.
    let built = Arc::new(dft_transform(n, which));
    let mut map = cache.lock().expect("dft cache poisoned");
    Arc::clone(map.entry((n, which)).or_insert(built))
}

/// Clear-domain check helper: slots of the polynomial with real coefficient
/// vector `y` (length `N`).
#[must_use]
pub fn slots_of_coeffs(n: usize, y: &[f64]) -> Vec<Complex64> {
    assert_eq!(y.len(), n);
    let slots = n / 2;
    let two_n = 2 * n;
    let mut rot = 1usize;
    let mut out = Vec::with_capacity(slots);
    for _ in 0..slots {
        let mut z = Complex64::zero();
        let mut idx = 0usize;
        for &c in y {
            z += Complex64::cis(std::f64::consts::PI * idx as f64 / n as f64).scale(c);
            idx = (idx + rot) % two_n;
        }
        out.push(z);
        rot = rot * 5 % two_n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The whole point: E_left† / E_leftᵀ recover y_low from (w, w̄), and the
    /// encode halves map back. Verified in the clear.
    #[test]
    fn coeff_to_slot_matrices_invert_encode() {
        let n = 32;
        let slots = n / 2;
        let mut rng = StdRng::seed_from_u64(11);
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let w = slots_of_coeffs(n, &y);
        let wc: Vec<Complex64> = w.iter().map(|z| z.conj()).collect();

        for (half, expect) in [(Half::Low, &y[..slots]), (Half::High, &y[slots..])] {
            let adj = dft_transform(n, DftMatrix::DecodeAdjoint(half));
            let tra = dft_transform(n, DftMatrix::DecodeTranspose(half));
            let got: Vec<Complex64> = adj
                .apply_clear(&w)
                .iter()
                .zip(tra.apply_clear(&wc))
                .map(|(a, b)| *a + b)
                .collect();
            for t in 0..slots {
                assert!(
                    (got[t].re - expect[t]).abs() < 1e-9,
                    "{half:?} slot {t}: {} vs {}",
                    got[t].re,
                    expect[t]
                );
                assert!(got[t].im.abs() < 1e-9, "imag residue {}", got[t].im);
            }
        }
    }

    #[test]
    fn encode_halves_reassemble_slots() {
        let n = 32;
        let slots = n / 2;
        let mut rng = StdRng::seed_from_u64(12);
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w = slots_of_coeffs(n, &y);

        let y_low: Vec<Complex64> = y[..slots].iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let y_high: Vec<Complex64> = y[slots..].iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let el = dft_transform(n, DftMatrix::Encode(Half::Low));
        let er = dft_transform(n, DftMatrix::Encode(Half::High));
        let got: Vec<Complex64> = el
            .apply_clear(&y_low)
            .iter()
            .zip(er.apply_clear(&y_high))
            .map(|(a, b)| *a + b)
            .collect();
        for t in 0..slots {
            assert!((got[t] - w[t]).norm() < 1e-9, "slot {t}");
        }
    }

    #[test]
    fn dft_matrices_are_dense() {
        let lt = dft_transform(16, DftMatrix::Encode(Half::Low));
        assert_eq!(lt.diagonal_count(), 8);
    }

    #[test]
    fn cached_transforms_are_shared_per_key() {
        let a = dft_transform_cached(16, DftMatrix::Encode(Half::Low));
        let b = dft_transform_cached(16, DftMatrix::Encode(Half::Low));
        assert!(Arc::ptr_eq(&a, &b), "same (n, which) must share one matrix");
        let c = dft_transform_cached(16, DftMatrix::Encode(Half::High));
        assert!(!Arc::ptr_eq(&a, &c), "different half, different matrix");
        // The cached instance is the uncached builder's output.
        assert_eq!(a.diagonal_count(), 8);
    }
}
