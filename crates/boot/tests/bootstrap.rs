//! End-to-end bootstrap: exhaust a ciphertext, refresh it, keep computing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_boot::sine::SineConfig;
use tensorfhe_boot::{BootConfig, Bootstrapper};
use tensorfhe_ckks::{CkksContext, CkksParams, Evaluator, KeyChain};
use tensorfhe_math::Complex64;

/// Bootstrap-capable test parameters: N = 2^8, L = 19 (depth 17 pipeline),
/// 29-bit primes with Δ = 2^29 so rescaling preserves the scale.
fn boot_params() -> CkksParams {
    CkksParams::new("boot-test", 1 << 8, 19, 4, 5, 29, 29, 1).expect("valid params")
}

fn boot_config() -> BootConfig {
    BootConfig {
        sine: SineConfig {
            taylor_degree: 7,
            double_angles: 6,
        },
    }
}

#[test]
fn bootstrap_refreshes_exhausted_ciphertext() {
    let params = boot_params();
    let ctx = CkksContext::new(&params).expect("ctx");
    let mut rng = StdRng::seed_from_u64(2024);
    // Sparse secret bounds the ModRaise overflow I(X).
    let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);

    let cfg = boot_config();
    let boot = Bootstrapper::new(&ctx, cfg);
    keys.gen_rotation_keys(&boot.required_rotations(), &mut rng);
    keys.gen_conjugation_key(&mut rng);

    let slots = params.slots();
    // Moderate magnitudes keep every polynomial coefficient well inside the
    // sine approximation's linear region.
    let vals: Vec<Complex64> = (0..slots)
        .map(|i| Complex64::new(0.3 * ((i as f64) * 0.37).sin(), 0.0))
        .collect();
    let pt = ctx.encode(&vals, params.scale()).expect("encode");
    let ct = keys.encrypt(&pt, &mut rng);

    let mut eval = Evaluator::new(&ctx);
    // Exhaust the level budget entirely.
    let exhausted = eval.mod_switch_to(&ct, 0).expect("drop to level 0");
    assert_eq!(exhausted.level(), 0);

    let refreshed = boot
        .bootstrap(&mut eval, &keys, &exhausted)
        .expect("bootstrap");
    assert!(
        refreshed.level() >= 1,
        "bootstrap must restore usable levels, got {}",
        refreshed.level()
    );
    assert_eq!(refreshed.level(), params.max_level() - cfg.depth());

    let dec = ctx.decode(&keys.decrypt(&refreshed)).expect("decode");
    let max_err = vals
        .iter()
        .zip(&dec)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0f64, f64::max);
    assert!(
        max_err < 0.02,
        "bootstrap error {max_err} too large (first slots: {:?} vs {:?})",
        &dec[..4],
        &vals[..4]
    );
}

#[test]
fn bootstrap_output_supports_multiplication() {
    let params = boot_params();
    let ctx = CkksContext::new(&params).expect("ctx");
    let mut rng = StdRng::seed_from_u64(4048);
    let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);

    let boot = Bootstrapper::new(&ctx, boot_config());
    keys.gen_rotation_keys(&boot.required_rotations(), &mut rng);
    keys.gen_conjugation_key(&mut rng);

    let slots = params.slots();
    let vals: Vec<Complex64> = (0..slots)
        .map(|i| Complex64::new(0.25 * ((i as f64) * 0.11).cos(), 0.0))
        .collect();
    let pt = ctx.encode(&vals, params.scale()).expect("encode");
    let ct = keys.encrypt(&pt, &mut rng);

    let mut eval = Evaluator::new(&ctx);
    let exhausted = eval.mod_switch_to(&ct, 0).expect("drop");
    let refreshed = boot.bootstrap(&mut eval, &keys, &exhausted).expect("boot");

    // The refreshed ciphertext must support real homomorphic work.
    let squared = eval.square(&refreshed, &keys).expect("square");
    let squared = eval.rescale(&squared).expect("rescale");
    let dec = ctx.decode(&keys.decrypt(&squared)).expect("decode");
    let max_err = vals
        .iter()
        .zip(&dec)
        .map(|(a, b)| (*a * *a - *b).norm())
        .fold(0.0f64, f64::max);
    assert!(max_err < 0.03, "post-bootstrap square error {max_err}");
}

#[test]
fn bootstrap_rejects_too_shallow_parameters() {
    let params = CkksParams::new("shallow", 1 << 8, 7, 2, 4, 29, 29, 1).expect("valid");
    let ctx = CkksContext::new(&params).expect("ctx");
    let mut rng = StdRng::seed_from_u64(1);
    let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);
    let boot = Bootstrapper::new(&ctx, boot_config());
    keys.gen_rotation_keys(&boot.required_rotations(), &mut rng);
    keys.gen_conjugation_key(&mut rng);

    let vals = vec![Complex64::new(0.1, 0.0)];
    let pt = ctx.encode(&vals, params.scale()).expect("encode");
    let ct = keys.encrypt(&pt, &mut rng);
    let mut eval = Evaluator::new(&ctx);
    assert!(boot.bootstrap(&mut eval, &keys, &ct).is_err());
}

#[test]
fn kernel_trace_contains_fig6_inventory() {
    // The bootstrap schedule must exercise the Fig. 6 kernel inventory:
    // NTT, Hada-Mult, Conv (key switching), ForbeniusMap (BSGS rotations),
    // Conjugate (HCONJ) and element-wise ops.
    use tensorfhe_ckks::trace::RecordingTracer;

    let params = boot_params();
    let ctx = CkksContext::new(&params).expect("ctx");
    let mut rng = StdRng::seed_from_u64(555);
    let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);
    let boot = Bootstrapper::new(&ctx, boot_config());
    keys.gen_rotation_keys(&boot.required_rotations(), &mut rng);
    keys.gen_conjugation_key(&mut rng);

    let vals = vec![Complex64::new(0.2, 0.0); params.slots()];
    let pt = ctx.encode(&vals, params.scale()).expect("encode");
    let ct = keys.encrypt(&pt, &mut rng);

    let mut rec = RecordingTracer::new();
    {
        let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut rec));
        let ct0 = eval.mod_switch_to(&ct, 0).expect("drop");
        let _ = boot.bootstrap(&mut eval, &keys, &ct0).expect("boot");
    }
    for kernel in [
        "NTT",
        "INTT",
        "Hada-Mult",
        "Ele-Add",
        "Conv",
        "ForbeniusMap",
        "Conjugate",
    ] {
        assert!(
            rec.count(kernel) > 0,
            "bootstrap never used kernel {kernel}"
        );
    }
    // NTT should dominate the schedule in *work* terms (§VI-B2): weight each
    // event by limbs × N log N for transforms vs limbs × N for element-wise.
    use tensorfhe_ckks::KernelEvent;
    let mut ntt_work = 0u64;
    let mut ew_work = 0u64;
    for e in &rec.events {
        match *e {
            KernelEvent::Ntt { n, limbs, .. } => {
                ntt_work += (limbs * n) as u64 * n.trailing_zeros() as u64;
            }
            KernelEvent::EleAdd { n, limbs }
            | KernelEvent::EleSub { n, limbs }
            | KernelEvent::HadaMult { n, limbs } => ew_work += (limbs * n) as u64,
            _ => {}
        }
    }
    // At N = 2^8 the log-N factor is small; at paper scale (N = 2^16) the
    // ratio grows to the >90% of Fig. 11.
    assert!(
        ntt_work > ew_work,
        "NTT work ({ntt_work}) should dominate element-wise work ({ew_work})"
    );
}

#[test]
fn random_payload_survives_bootstrap() {
    let params = boot_params();
    let ctx = CkksContext::new(&params).expect("ctx");
    let mut rng = StdRng::seed_from_u64(31337);
    let mut keys = KeyChain::generate_sparse(&ctx, 8, &mut rng);
    let boot = Bootstrapper::new(&ctx, boot_config());
    keys.gen_rotation_keys(&boot.required_rotations(), &mut rng);
    keys.gen_conjugation_key(&mut rng);

    let slots = params.slots();
    let vals: Vec<Complex64> = (0..slots)
        .map(|_| Complex64::new(rng.gen_range(-0.25..0.25), 0.0))
        .collect();
    let pt = ctx.encode(&vals, params.scale()).expect("encode");
    let ct = keys.encrypt(&pt, &mut rng);

    let mut eval = Evaluator::new(&ctx);
    let ct0 = eval.mod_switch_to(&ct, 0).expect("drop");
    let refreshed = boot.bootstrap(&mut eval, &keys, &ct0).expect("boot");
    let dec = ctx.decode(&keys.decrypt(&refreshed)).expect("decode");

    let mean_err = vals
        .iter()
        .zip(&dec)
        .map(|(a, b)| (*a - *b).norm())
        .sum::<f64>()
        / slots as f64;
    assert!(mean_err < 0.01, "mean bootstrap error {mean_err}");
}
