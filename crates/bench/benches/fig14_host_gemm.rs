//! Figure 14 (host GEMM) — the cache-blocked Montgomery fast kernels vs
//! the Barrett scalar reference, behind the executor seam.
//!
//! Drives the [`HostParallelExecutor`] directly with a repeated `HMult`
//! batch stream at the paper-scale HEAX set-A preset (`N = 2^12`), with
//! the real-row cap raised so the batched-NTT and basis-conversion GEMMs
//! dominate wall-clock, and compares:
//!
//! * **host-scalar, 1 worker** — the Barrett schoolbook baseline, and
//! * **host-parallel, all workers** — register-tiled lazy-reduction
//!   Montgomery kernels sharded across the device worker threads.
//!
//! Three properties are pinned:
//!
//! * **Bit-identity of the real arithmetic** — the two flavours' real-work
//!   checksums must match exactly (the Montgomery kernels are bit-identical
//!   to Barrett; the cross-backend suite proves it per kernel, this bench
//!   re-proves it end-to-end at paper scale).
//! * **Bit-identity of the reports** — a service drain on either host
//!   backend must reproduce the simulated backend's reports bit-for-bit.
//! * **Speedup** — fast × parallel must beat the scalar baseline by ≥ 2×
//!   on a multi-core runner (skipped on single-core CI boxes, where only
//!   the kernel-level win is available; the measured ratio is emitted
//!   either way).
//!
//! # Wall-clock trajectory and the variance guard
//!
//! Host wall-clock points are noisy, so each flavour is timed as a
//! **median of N trials** (N = 5 full, 3 smoke) with a relative-spread
//! guard: `(max − min) / median` must stay ≤ [`MAX_SPREAD`] for the run
//! to count as quiet. Raw medians (`host_scalar_ms`, `host_fast_ms`,
//! `host_speedup`, `host_fast_ntt_rows_per_s`) are always emitted for the
//! trajectory but never pinned. The *ratio* `host_fast_vs_scalar` is
//! emitted **only** when both flavours pass the variance guard on a
//! multi-core host — that is the one host wall-clock key pinned in
//! `BENCH_baseline.json`, and `check_regression` gates it under the
//! looser `host_` tolerance class (missing = skipped, so quiet-guard
//! trips and single-core boxes never fail the gate).

use std::sync::Arc;
use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::schedule::hmult_schedule;
use tensorfhe_core::service::FheRequest;
use tensorfhe_core::{
    EngineConfig, ExecBackend, ExecBatch, Executor, HostParallelExecutor, HostWorkStats, Variant,
};

const DEVICES: usize = 2;

/// Maximum relative spread `(max − min) / median` across timing trials for
/// a run to count as quiet enough to gate on.
const MAX_SPREAD: f64 = 0.3;

/// Drives `iters` paper-scale HMult batches through a host executor and
/// returns (wall ms, real-work counters).
fn run(
    params: &CkksParams,
    backend: ExecBackend,
    workers: usize,
    rows_cap: usize,
    iters: usize,
) -> (f64, HostWorkStats) {
    let cfg = EngineConfig::a100(Variant::TensorCore);
    let mut ex = HostParallelExecutor::with_rows_cap(cfg, DEVICES, workers, backend, rows_cap);
    let events: Arc<[KernelEvent]> = hmult_schedule(params, params.max_level()).into();
    let t0 = Instant::now();
    for _ in 0..iters {
        let h = ex.submit(ExecBatch {
            tag: "HMULT".into(),
            events: Arc::clone(&events),
            width: DEVICES,
        });
        let _ = ex.join(h);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (ms, ex.host_work().expect("host backend"))
}

/// Repeats a timed run `trials` times; returns the median wall-clock, the
/// relative spread `(max − min) / median`, and the (trial-invariant)
/// real-work counters.
fn median_run(
    trials: usize,
    params: &CkksParams,
    backend: ExecBackend,
    workers: usize,
    rows_cap: usize,
    iters: usize,
) -> (f64, f64, HostWorkStats) {
    let mut samples = Vec::with_capacity(trials);
    let mut work = None;
    for _ in 0..trials {
        let (ms, w) = run(params, backend, workers, rows_cap, iters);
        if let Some(prev) = work {
            assert_eq!(
                prev, w,
                "real-work counters must be identical across timing trials"
            );
        }
        work = Some(w);
        samples.push(ms);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let spread = (samples[samples.len() - 1] - samples[0]) / median;
    (median, spread, work.expect("at least one trial"))
}

/// Service-level drain: reports on a host backend must be bit-identical
/// to the simulated backend.
fn drain_bits(params: &CkksParams, backend: ExecBackend) -> Vec<u64> {
    let mut svc = TensorFhe::builder(params)
        .devices(DEVICES)
        .backend(backend)
        .rows_cap(8)
        .service()
        .expect("valid service");
    for i in 0..4 {
        svc.submit(FheRequest::new(
            FheOp::HMult,
            params.max_level(),
            2,
            format!("c{i}"),
        ))
        .expect("valid request");
    }
    let mut bits = Vec::new();
    for r in svc.drain() {
        bits.push(r.id.raw());
        bits.push(r.report.time_us.to_bits());
        bits.push(r.report.energy_j.to_bits());
        bits.push(r.report.ops_per_second.to_bits());
        bits.push(r.report.launches as u64);
    }
    let s = svc.stats();
    bits.push(s.busy_us.to_bits());
    bits.push(s.ops_per_second.to_bits());
    bits
}

fn main() {
    let params = CkksParams::heax_set_a();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let (rows_cap, iters, trials) = if report::smoke() {
        (16, 2, 3)
    } else {
        (64, 4, 5)
    };

    // End-to-end report bit-identity across the backend seam.
    let want = drain_bits(&params, ExecBackend::Sim);
    for backend in [ExecBackend::HostParallel, ExecBackend::HostScalar] {
        assert_eq!(
            drain_bits(&params, backend),
            want,
            "{backend:?} drain must be bit-identical to the simulated backend"
        );
    }

    let (scalar_ms, scalar_spread, scalar_work) =
        median_run(trials, &params, ExecBackend::HostScalar, 1, rows_cap, iters);
    let (fast_ms, fast_spread, fast_work) = median_run(
        trials,
        &params,
        ExecBackend::HostParallel,
        DEVICES,
        rows_cap,
        iters,
    );
    assert_eq!(
        fast_work, scalar_work,
        "fast and scalar kernels must execute identical work with \
         bit-identical residues"
    );
    let speedup = scalar_ms / fast_ms;
    let quiet = scalar_spread <= MAX_SPREAD && fast_spread <= MAX_SPREAD;
    let ntt_rows_per_s = |work: HostWorkStats, ms: f64| work.ntt_rows as f64 / (ms * 1e-3);

    // The acceptance claim needs real parallel hardware; single-core CI
    // boxes still exercise everything above and emit the measured ratio.
    if cores >= 2 {
        assert!(
            speedup >= 2.0,
            "fast Montgomery kernels across {DEVICES} workers must be ≥2× the \
             scalar single-worker baseline on a {cores}-core host, got {speedup:.2}×"
        );
    }

    print_table(
        &format!(
            "Figure 14 (host GEMM) — Montgomery fast kernels vs Barrett scalar \
             (HEAX set A, N=2^12, {DEVICES} devices, rows cap {rows_cap}, \
             median of {trials}, {cores}-core host)"
        ),
        &[
            "flavour",
            "workers",
            "ms (median)",
            "spread",
            "NTT rows/s",
            "checksum",
        ],
        &[
            vec![
                "scalar".into(),
                "1".into(),
                format!("{scalar_ms:.1}"),
                format!("{:.0}%", scalar_spread * 100.0),
                format!("{:.0}", ntt_rows_per_s(scalar_work, scalar_ms)),
                format!("{:#018x}", scalar_work.checksum),
            ],
            vec![
                "fast".into(),
                format!("{DEVICES}"),
                format!("{fast_ms:.1}"),
                format!("{:.0}%", fast_spread * 100.0),
                format!("{:.0}", ntt_rows_per_s(fast_work, fast_ms)),
                format!("{:#018x}", fast_work.checksum),
            ],
            vec![
                "speedup".into(),
                "".into(),
                format!("{speedup:.2}×"),
                if quiet {
                    "quiet".into()
                } else {
                    "noisy".into()
                },
                "".into(),
                "".into(),
            ],
        ],
    );

    // Host wall-clock trajectory points — medians, emitted every run.
    report::emit(
        "fig14_host_gemm",
        &[
            ("host_scalar_ms", scalar_ms),
            ("host_fast_ms", fast_ms),
            ("host_speedup", speedup),
            (
                "host_fast_ntt_rows_per_s",
                ntt_rows_per_s(fast_work, fast_ms),
            ),
        ],
    );

    // The pinned ratio: only a quiet multi-core run may stand behind the
    // baseline key; everyone else skips (missing host keys are non-fatal
    // in `check_regression`).
    if quiet && cores >= 2 {
        report::emit("fig14_host_gemm", &[("host_fast_vs_scalar", speedup)]);
    } else {
        println!(
            "[fig14_host_gemm] host_fast_vs_scalar not emitted \
             (quiet={quiet}, cores={cores}): variance guard requires \
             spread ≤ {MAX_SPREAD} on ≥2 cores"
        );
    }
}
