//! Table VIII: NTT / INTT / HMULT throughput against HEAX's parameter sets
//! (A: N=2^12, B: N=2^13, C: N=2^14).

use tensorfhe_bench::baselines::TABLE8;
use tensorfhe_bench::{cost_op, fmt, print_table};
use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::engine::{Engine, EngineConfig, Variant};

/// Single-limb transform throughput (transforms/second) at a parameter set.
fn ntt_throughput(params: &CkksParams, inverse: bool) -> f64 {
    let mut engine = Engine::new(EngineConfig::a100(Variant::TensorCore));
    let batch = 128usize;
    let limbs = params.max_level() + 1 + params.special_primes();
    let ev = [KernelEvent::Ntt {
        n: params.n(),
        limbs,
        inverse,
    }];
    let stats = engine.run_schedule("NTT", &ev, batch);
    (limbs * batch) as f64 / (stats.time_us * 1e-6)
}

fn hmult_throughput(params: &CkksParams) -> f64 {
    let mut api = TensorFhe::builder(params)
        .build()
        .expect("single-device build");
    let r = cost_op(&mut api, FheOp::HMult, params.max_level(), 128);
    r.ops_per_second
}

fn main() {
    let sets = [
        CkksParams::heax_set_a(),
        CkksParams::heax_set_b(),
        CkksParams::heax_set_c(),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (system, metric, vals) in TABLE8 {
        rows.push(vec![
            format!("paper: {system}"),
            metric.to_string(),
            fmt(vals[0]),
            fmt(vals[1]),
            fmt(vals[2]),
        ]);
    }
    for (metric, f) in [
        ("NTT/s", ntt_throughput as fn(&CkksParams, bool) -> f64),
        ("INTT/s", ntt_throughput),
    ] {
        let inv = metric == "INTT/s";
        rows.push(vec![
            "ours: TensorFHE".to_string(),
            metric.to_string(),
            fmt(f(&sets[0], inv)),
            fmt(f(&sets[1], inv)),
            fmt(f(&sets[2], inv)),
        ]);
    }
    rows.push(vec![
        "ours: TensorFHE".to_string(),
        "HMULT/s".to_string(),
        fmt(hmult_throughput(&sets[0])),
        fmt(hmult_throughput(&sets[1])),
        fmt(hmult_throughput(&sets[2])),
    ]);
    print_table(
        "Table VIII — throughput vs HEAX (Set A: N=2^12, B: 2^13, C: 2^14)",
        &["system", "metric", "Set A", "Set B", "Set C"],
        &rows,
    );
    println!(
        "\npaper shape: ~4.9× HEAX on (i)NTT average; HMULT ahead on Set C, \
         ~10% behind on Set A (small workloads favour HEAX's low latency)."
    );
}
