//! Figure 13 (scoreboard) — out-of-order admission vs the in-order window
//! on an adversarial head-blocked stream.
//!
//! The stream is `max_level` dependent client pairs: an HMult followed by
//! a Rescale on the same `(client, level)` key, each level its own client.
//! The serial planning walk head-blocks on every Rescale while its
//! client's HMult is in flight, so an in-order window runs the heavy
//! HMults one at a time with three of the four devices idle. The
//! out-of-order scoreboard freezes past each blocked link and admits
//! later clients' independent HMults, keeping the cluster busy.
//!
//! Two properties are pinned:
//!
//! * **Determinism** — the OOO drain must be bit-identical to the
//!   in-order drain in every report and every shared stat: reordering
//!   moves the schedule, never the accounting (joins settle through the
//!   reorder buffer in serial plan order).
//! * **Overlap ratio** — in-order elapsed / OOO elapsed at depth 4 must
//!   be ≥ 1.5× (`BENCH_baseline.json` pins the measured value;
//!   `check_regression` gates it).

use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::sched::{AdmissionMode, SchedPolicy};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, ServiceStats};

/// Dependent `HMult → Rescale` pairs, one client per level. Distinct
/// levels keep every pair its own width-1 coalescing group — a wider
/// stream would coalesce same-`(op, level)` requests into batches wide
/// enough to occupy the whole cluster, erasing the idle capacity the
/// scoreboard exists to reclaim.
fn submit_stream(svc: &mut FheService) {
    let max_level = svc.params().max_level();
    for k in 1..=max_level {
        let client = format!("c{k}");
        svc.submit(FheRequest::new(FheOp::HMult, k, 1, client.clone()))
            .expect("valid");
        svc.submit(FheRequest::new(FheOp::Rescale, k, 1, client))
            .expect("valid");
    }
}

fn drain(admission: AdmissionMode, depth: usize) -> (Vec<RequestReport>, ServiceStats, f64) {
    let params = CkksParams::heax_set_c();
    let mut svc = TensorFhe::builder(&params)
        .devices(4)
        .sched(
            SchedPolicy::new()
                .pipeline_depth(depth)
                .admission(admission),
        )
        .service()
        .expect("valid service");
    assert_eq!(
        svc.admission(),
        admission,
        "service must run the configured mode"
    );
    submit_stream(&mut svc);
    let t0 = Instant::now();
    let reports = svc.drain();
    let host_ms = t0.elapsed().as_secs_f64() * 1e3;
    (reports, svc.stats(), host_ms)
}

fn main() {
    // The adversarial stream has one shape (coalescing caps its width —
    // see `submit_stream`); full mode widens the depth sweep instead.
    let depths: &[usize] = if report::smoke() {
        &[1, 2, 4]
    } else {
        &[1, 2, 3, 4, 6, 8]
    };

    let mut rows = Vec::new();
    let mut ratio_depth4 = 0.0f64;
    for &depth in depths {
        let (want, si, _) = drain(AdmissionMode::InOrder, depth);
        let (got, so, host_ms) = drain(AdmissionMode::OutOfOrder, depth);

        // The determinism pin: reordering admission must not change a
        // single result bit at any depth.
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.id, b.id, "completion order diverged at depth {depth}");
            assert_eq!(
                a.report.time_us.to_bits(),
                b.report.time_us.to_bits(),
                "OOO drain must be bit-identical to in-order at depth {depth}"
            );
            assert_eq!(a.queue_us.to_bits(), b.queue_us.to_bits());
            assert_eq!(a.report.launches, b.report.launches);
        }
        assert_eq!(si.busy_us.to_bits(), so.busy_us.to_bits());
        assert_eq!(si.ops_per_second.to_bits(), so.ops_per_second.to_bits());
        assert_eq!(si.reorder_distance, 0, "in-order never reorders");
        assert_eq!(si.head_blocked_us, 0.0, "in-order plans admit instantly");

        let ratio = si.elapsed_us / so.elapsed_us;
        if depth == 4 {
            ratio_depth4 = ratio;
            assert!(
                so.reorder_distance > 0,
                "the depth-4 scoreboard must admit past the blocked links"
            );
            assert!(
                so.head_blocked_us > 0.0,
                "the blocked links must accrue pending time"
            );
        }
        if depth == 1 {
            assert_eq!(
                si.elapsed_us.to_bits(),
                so.elapsed_us.to_bits(),
                "a depth-1 scoreboard degenerates to the in-order schedule"
            );
        }
        rows.push(vec![
            format!("{depth}"),
            format!("{:.0}", si.elapsed_us),
            format!("{:.0}", so.elapsed_us),
            format!("{ratio:.2}×"),
            format!("{}", so.reorder_distance),
            format!("{:.0}", so.head_blocked_us),
            format!("{host_ms:.1}"),
        ]);
    }

    let device = TensorFhe::builder(&CkksParams::heax_set_c())
        .service()
        .expect("valid service")
        .device_name()
        .to_string();
    print_table(
        &format!(
            "Figure 13 (scoreboard) — out-of-order admission vs window depth \
             (head-blocked HMult→Rescale pairs, 4 simulated {device} devices)"
        ),
        &[
            "depth",
            "in-order elapsed µs",
            "ooo elapsed µs",
            "overlap ratio",
            "reorder dist",
            "head-blocked µs",
            "host drain ms",
        ],
        &rows,
    );

    // The acceptance property: at depth 4 the scoreboard serves the
    // adversarial stream in ≤ 1/1.5 the in-order makespan.
    assert!(
        ratio_depth4 >= 1.5,
        "depth-4 scoreboard must overlap ≥1.5× over in-order: got {ratio_depth4:.2}×"
    );

    println!(
        "\ndepth 4: {ratio_depth4:.2}× in-order/OOO makespan ratio; \
         every drain bit-identical to in-order"
    );

    report::emit(
        "fig13_ooo_window",
        &[("ooo_overlap_ratio_depth4", ratio_depth4)],
    );
}
