//! Table IX: GPGPU occupancy of the batched TensorFHE operations.

use tensorfhe_bench::baselines::TABLE9;
use tensorfhe_bench::{cost_op, print_table};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};

fn main() {
    let params = CkksParams::table_v_default();
    let mut api = TensorFhe::builder(&params)
        .build()
        .expect("single-device build");
    let level = params.max_level();
    let ops = [
        FheOp::HMult,
        FheOp::HRotate,
        FheOp::Rescale,
        FheOp::HAdd,
        FheOp::CMult,
    ];

    let mut rows = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let r = cost_op(&mut api, *op, level, 128);
        let unbatched = {
            let mut solo = TensorFhe::builder(&params)
                .build()
                .expect("single-device build");
            cost_op(&mut solo, *op, level, 1).occupancy
        };
        rows.push(vec![
            op.name().to_string(),
            format!("{:.1}%", TABLE9[i].1 * 100.0),
            format!("{:.1}%", r.occupancy * 100.0),
            format!("{:.1}%", unbatched * 100.0),
        ]);
    }
    print_table(
        "Table IX — GPGPU occupancy with operation-level batching (batch 128)",
        &["op", "paper", "ours (batch 128)", "ours (batch 1)"],
        &rows,
    );
    println!("\npaper shape: ≈ 90% batched vs < 15% unbatched (§III-B).");
}
