//! Figure 5: impact of the launched thread count (8K/16K/32K) on GPU
//! occupancy and execution time for unbatched CKKS operations
//! (TensorFHE-NT configuration).

use tensorfhe_bench::print_table;
use tensorfhe_gpu::{DeviceConfig, DeviceSim, KernelClass, KernelDesc};

/// The dominant kernel of each CKKS operation at Default parameters with no
/// batching (B = 1, limbs = 45).
fn dominant_kernel(op: &str) -> KernelDesc {
    let n = 1usize << 16;
    let limbs = 45usize;
    match op {
        "HMULT" | "HROTATE" => KernelDesc::new(KernelClass::ButterflyNtt { n, batch: limbs }, op),
        "RESCALE" => KernelDesc::new(KernelClass::ButterflyNtt { n, batch: 2 }, op),
        "HADD" => KernelDesc::new(
            KernelClass::Elementwise {
                elems: (n * limbs * 2) as u64,
                ops_per_elem: 1,
                bytes_per_elem: 12,
            },
            op,
        ),
        "CMULT" => KernelDesc::new(
            KernelClass::Elementwise {
                elems: (n * limbs * 2) as u64,
                ops_per_elem: 2,
                bytes_per_elem: 12,
            },
            op,
        ),
        other => panic!("unknown op {other}"),
    }
}

fn main() {
    let mut sim = DeviceSim::new(DeviceConfig::a100());
    let ops = ["HMULT", "HROTATE", "RESCALE", "HADD", "CMULT"];
    let threads = [8192u64, 16384, 32768];

    let mut rows = Vec::new();
    for op in ops {
        let base = dominant_kernel(op);
        // Normalise execution time to the 8K-thread configuration.
        let (t8, _, _) = sim.peek_cost(&base.clone().with_threads(threads[0]));
        let mut row = vec![op.to_string()];
        for &t in &threads {
            let (time, _, occ) = sim.peek_cost(&base.clone().with_threads(t));
            row.push(format!("{:.1}% / {:.2}x", occ * 100.0, time / t8));
        }
        rows.push(row);
    }
    print_table(
        "Figure 5 — occupancy / normalised time vs total threads (no batching)",
        &["op", "8K threads", "16K threads", "32K threads"],
        &rows,
    );
    println!(
        "\npaper shape: occupancy < 15% everywhere; best time at 16K; 32K regresses \
         (more, smaller memory accesses)."
    );
}
