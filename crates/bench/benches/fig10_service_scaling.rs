//! Figure 10 (service scaling) — ops/s vs worker count on the simulated
//! cluster.
//!
//! The request service drains one fixed multi-tenant stream against 1, 2
//! and 4 per-device workers (`TensorFheBuilder::workers`, one simulated
//! A100 per worker). Two numbers fall out:
//!
//! * **Simulated ops/s** — deterministic cluster scaling *through the
//!   executor path*: more devices coalesce wider batches and shard them.
//!   By the seam's own contract the worker-thread count cannot move this
//!   number (that is what the bit-identity check below enforces), so the
//!   pinned ratio guards the sharded dispatch end to end, not host
//!   threading. Pinned in `BENCH_baseline.json`, gated by
//!   `check_regression`.
//! * **Host drain wall-clock** — the actual threading win of the
//!   `ThreadedPool` executor (workers simulate device shards in parallel).
//!   Machine-dependent, printed for the trajectory but never gated.
//!
//! The threading feature itself is held to two assertions: each service
//! must really be running the worker count it was configured for, and the
//! threaded drain of a varied (cache-defeating) stream must be
//! bit-identical to the serial drain of the same cluster.

use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, ServiceStats};

/// The fixed multi-tenant stream: three tenants mixing NTT-heavy and
/// element-wise traffic at two levels.
fn submit_stream(svc: &mut FheService, ops_per_client: usize) {
    let level = svc.params().max_level();
    for client in ["alice", "bob", "carol"] {
        svc.submit(FheRequest::new(FheOp::HMult, level, ops_per_client, client))
            .expect("valid");
        svc.submit(FheRequest::new(
            FheOp::HRotate,
            level,
            ops_per_client / 2,
            client,
        ))
        .expect("valid");
        svc.submit(FheRequest::new(
            FheOp::Rescale,
            level - 1,
            ops_per_client / 4,
            client,
        ))
        .expect("valid");
    }
}

fn drain(workers: usize, ops_per_client: usize) -> (Vec<RequestReport>, ServiceStats, f64) {
    let params = CkksParams::heax_set_c();
    let mut svc = TensorFhe::builder(&params)
        .devices(workers)
        .workers(workers)
        .service()
        .expect("valid service");
    assert_eq!(
        svc.workers(),
        workers,
        "service must run the configured worker count (no silent serial fallback)"
    );
    submit_stream(&mut svc, ops_per_client);
    let t0 = Instant::now();
    let reports = svc.drain();
    let host_ms = t0.elapsed().as_secs_f64() * 1e3;
    (reports, svc.stats(), host_ms)
}

fn main() {
    let ops_per_client = if report::smoke() { 512 } else { 2048 };

    let mut rows = Vec::new();
    let mut ops_per_s = Vec::new();
    let mut base = 0.0f64;
    for workers in [1usize, 2, 4] {
        let (reports, stats, host_ms) = drain(workers, ops_per_client);
        assert_eq!(reports.len(), 9, "three tenants × three requests");
        let util_min = stats
            .device_utilization
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let util_max = stats
            .device_utilization
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        if workers == 1 {
            base = stats.ops_per_second;
        }
        rows.push(vec![
            format!("{workers}"),
            format!("{}", stats.batch_cap),
            format!("{:.0}", stats.ops_per_second),
            format!("{:.2}×", stats.ops_per_second / base),
            format!("{:.2}", stats.batch_fill),
            format!("{util_min:.2}–{util_max:.2}"),
            format!("{host_ms:.1}"),
        ]);
        ops_per_s.push(stats.ops_per_second);
    }

    let device = TensorFhe::builder(&CkksParams::heax_set_c())
        .service()
        .expect("valid service")
        .device_name()
        .to_string();
    print_table(
        &format!("Figure 10 (service) — ops/s vs per-device workers (HEAX-C, simulated {device} cluster)"),
        &[
            "workers",
            "batch cap",
            "sim ops/s",
            "speedup",
            "batch fill",
            "utilization",
            "host drain ms",
        ],
        &rows,
    );

    let speedup_2 = ops_per_s[1] / ops_per_s[0];
    let speedup_4 = ops_per_s[2] / ops_per_s[0];

    // Bit-identity on a *varied* stream — every (op, level, count) combo
    // distinct, so the dispatch cache cannot collapse the work and every
    // batch genuinely simulates on the devices. The paired timing is the
    // honest host-side threading win: same cluster, same batches, only the
    // executor differs.
    let run_varied = |workers: usize| {
        let params = CkksParams::heax_set_c();
        let mut svc = TensorFhe::builder(&params)
            .devices(4)
            .workers(workers)
            .service()
            .expect("valid");
        let cap = svc.batch_cap();
        for level in 1..=params.max_level() {
            for (i, op) in [FheOp::HMult, FheOp::HRotate, FheOp::Rescale]
                .into_iter()
                .enumerate()
            {
                // Ragged counts: each spills into a distinct-width tail.
                svc.submit(FheRequest::new(op, level, cap + 11 * level + i, "t"))
                    .expect("valid");
            }
        }
        let t0 = Instant::now();
        let reports = svc.drain();
        (reports, t0.elapsed().as_secs_f64() * 1e3)
    };
    let (serial, serial_host_ms) = run_varied(1);
    let (threaded, threaded_host_ms) = run_varied(4);
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(a.id, b.id, "completion order diverged");
        assert_eq!(
            a.report.time_us.to_bits(),
            b.report.time_us.to_bits(),
            "threaded drain must be bit-identical to serial"
        );
        assert_eq!(a.report.launches, b.report.launches);
    }

    // The acceptance property: 4 per-device workers serve the stream at
    // ≥1.8× the single-device throughput (sub-linear only through the
    // per-shard launch overhead; paper-scale batches approach linear).
    assert!(
        speedup_4 >= 1.8,
        "4-worker service must scale ≥1.8×: got {speedup_4:.2}× ({ops_per_s:?})"
    );
    assert!(
        speedup_2 > 1.0,
        "2-worker service must beat serial: got {speedup_2:.2}×"
    );

    println!(
        "\n4 workers: {speedup_4:.2}× simulated ops/s over 1 worker \
         (2 workers: {speedup_2:.2}×); threaded drain bit-identical to serial"
    );
    println!(
        "host wall-clock, same 4-device cluster: serial {serial_host_ms:.1} ms vs \
         threaded {threaded_host_ms:.1} ms ({:.2}× — machine-dependent, not gated)",
        serial_host_ms / threaded_host_ms.max(1e-9)
    );

    report::emit(
        "fig10_service_scaling",
        &[
            ("speedup_2workers", speedup_2),
            ("speedup_4workers", speedup_4),
        ],
    );
}
