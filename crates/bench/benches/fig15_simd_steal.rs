//! Figure 15 (SIMD + stealing) — the two host-execution wins this repo
//! layers on top of the Montgomery fast kernels, each measured at its own
//! seam:
//!
//! 1. **SIMD register tile vs scalar register tile** — single-threaded
//!    [`gemm_rm_with`] at the HEAX set-A four-step shapes (`N = 2^12` →
//!    64×64 split, so the batched-NTT GEMMs are `m×64 × 64×64`). Both
//!    tiles do exactly the same `m·k·n` Montgomery MACs and must produce
//!    bit-identical outputs; only the wall-clock may differ. The 4-lane
//!    limb-split tile must win by ≥ 1.5× — this is a single-core,
//!    fixed-work micro-ratio, so it is asserted everywhere and pinned in
//!    `BENCH_baseline.json` as `host_simd_tile_speedup` whenever the
//!    variance guard holds.
//! 2. **Work-stealing efficiency** — a width-1 paper-scale `HMult` stream
//!    lands every row-chunk on device 0's queue; a second worker thread
//!    owns no device work and can only make progress by stealing. The
//!    bench asserts the stealing actually happens (`steals > 0`), that
//!    work is conserved (`planned_rows == executed_rows` at every worker
//!    count), and on a multi-core quiet run emits the 1→2 worker
//!    `host_steal_speedup` wall-clock point for the trajectory.
//!
//! Wall-clock numbers use the same median-of-N + relative-spread guard as
//! `fig14_host_gemm`; host keys are gated under `check_regression`'s
//! looser `host_` tolerance class, where a missing key (noisy or
//! single-core run) skips rather than fails.

use std::sync::Arc;
use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_core::exec::StealStats;
use tensorfhe_core::schedule::hmult_schedule;
use tensorfhe_core::{
    EngineConfig, ExecBackend, ExecBatch, Executor, HostParallelExecutor, Variant,
};
use tensorfhe_math::gemm_fast::{gemm_rm_with, MontOperand};
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_math::simd::{scalar_tile, simd4, MicroKernel};

/// Maximum relative spread `(max − min) / median` for a quiet run.
const MAX_SPREAD: f64 = 0.3;

/// Deterministic operand fill (splitmix64), reduced mod `q`.
fn fill(seed: u64, len: usize, q: u64) -> Vec<u64> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % q
        })
        .collect()
}

/// Medians `trials` samples of `f`; returns (median, relative spread).
fn median_of(trials: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..trials).map(|_| f()).collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let spread = (samples[samples.len() - 1] - samples[0]) / median;
    (median, spread)
}

/// Times `reps` whole-GEMM calls through one register tile; returns ms.
fn time_tile(
    a: &[u64],
    m: usize,
    b: &MontOperand,
    kernel: &'static dyn MicroKernel,
    out: &mut [u64],
    reps: usize,
) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        gemm_rm_with(a, m, b, kernel, out);
    }
    t0.elapsed().as_secs_f64() * 1e3
}

/// Part 1: single-thread SIMD-vs-scalar register-tile ratio at the HEAX
/// set-A four-step shapes. Returns the speedup and whether the run was
/// quiet enough to pin.
fn simd_tile_ratio(trials: usize, reps: usize) -> (f64, bool) {
    // N = 2^12 four-step split: 64-point column NTTs over 64 rows, GEMM'd
    // as m×64 × 64×64 with m covering a full batch of rows.
    let (m, k, n) = (256usize, 64usize, 64usize);
    let q = generate_ntt_primes(1, 30, 1 << 12)[0];
    let a = fill(0x5EED_0001, m * k, q);
    let b_data = fill(0x5EED_0002, k * n, q);
    let b = MontOperand::new(q, &b_data, k, n);

    let mut out_scalar = vec![0u64; m * n];
    let mut out_simd = vec![0u64; m * n];
    // Same shapes through both tiles ⇒ identical m·k·n MAC counts by
    // construction; bit-identity of the outputs is asserted below.
    let (scalar_ms, scalar_spread) = median_of(trials, || {
        time_tile(&a, m, &b, scalar_tile(), &mut out_scalar, reps)
    });
    let (simd_ms, simd_spread) = median_of(trials, || {
        time_tile(&a, m, &b, simd4(), &mut out_simd, reps)
    });
    assert_eq!(
        out_scalar, out_simd,
        "SIMD and scalar register tiles must produce bit-identical residues"
    );

    let speedup = scalar_ms / simd_ms;
    let quiet = scalar_spread <= MAX_SPREAD && simd_spread <= MAX_SPREAD;
    let macs = (m * k * n * reps) as f64;
    print_table(
        &format!(
            "Figure 15a — register-tile kernels at HEAX set-A shapes \
             ({m}×{k} × {k}×{n}, q={q}, {reps} reps, median of {trials})"
        ),
        &["tile", "lanes", "ms (median)", "spread", "Mmac/s"],
        &[
            vec![
                scalar_tile().label().into(),
                format!("{}", scalar_tile().lanes()),
                format!("{scalar_ms:.2}"),
                format!("{:.0}%", scalar_spread * 100.0),
                format!("{:.0}", macs / (scalar_ms * 1e-3) / 1e6),
            ],
            vec![
                simd4().label().into(),
                format!("{}", simd4().lanes()),
                format!("{simd_ms:.2}"),
                format!("{:.0}%", simd_spread * 100.0),
                format!("{:.0}", macs / (simd_ms * 1e-3) / 1e6),
            ],
            vec![
                "speedup".into(),
                "".into(),
                format!("{speedup:.2}×"),
                if quiet {
                    "quiet".into()
                } else {
                    "noisy".into()
                },
                "".into(),
            ],
        ],
    );
    assert!(
        speedup >= 1.5,
        "the 4-lane limb-split tile must be ≥1.5× the scalar register tile \
         at HEAX set-A shapes (single core, equal work), got {speedup:.2}×"
    );
    (speedup, quiet)
}

/// Drives a width-1 `HMult` stream (all real rows land on device 0) and
/// returns (wall ms, steal counters).
fn run_stream(params: &CkksParams, workers: usize, iters: usize) -> (f64, StealStats) {
    let cfg = EngineConfig::a100(Variant::TensorCore);
    // 2 devices so a surplus worker exists even at `workers = 2`; width 1
    // keeps every chunk on device 0's queue.
    let mut ex = HostParallelExecutor::with_rows_cap(cfg, 2, workers, ExecBackend::HostParallel, 8);
    let events: Arc<[KernelEvent]> = hmult_schedule(params, params.max_level()).into();
    let t0 = Instant::now();
    for _ in 0..iters {
        let h = ex.submit(ExecBatch {
            tag: "HMULT".into(),
            events: Arc::clone(&events),
            width: 1,
        });
        let _ = ex.join(h);
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (ms, ex.steals())
}

/// Part 2: steal-efficiency point. Returns `Some(speedup)` on a quiet
/// multi-core run.
fn steal_point(trials: usize, iters: usize, cores: usize) -> Option<f64> {
    let params = CkksParams::heax_set_a();
    let mut stats1 = None;
    let mut stats2 = None;
    let (ms1, spread1) = median_of(trials, || {
        let (ms, s) = run_stream(&params, 1, iters);
        stats1 = Some(s);
        ms
    });
    let (ms2, spread2) = median_of(trials, || {
        let (ms, s) = run_stream(&params, 2, iters);
        stats2 = Some(s);
        ms
    });
    let (s1, s2) = (stats1.expect("ran"), stats2.expect("ran"));
    for (workers, s) in [(1u64, s1), (2, s2)] {
        assert_eq!(
            s.planned_rows, s.executed_rows,
            "work must be conserved at {workers} worker(s): planned {} vs executed {}",
            s.planned_rows, s.executed_rows
        );
        assert!(s.planned_rows > 0, "the stream must plan real rows");
    }
    assert_eq!(s1.steals, 0, "a single worker has nobody to steal from");
    assert!(
        s2.steals > 0,
        "the surplus worker owns no device queue; it can only have \
         executed rows by stealing"
    );

    let speedup = ms1 / ms2;
    let quiet = spread1 <= MAX_SPREAD && spread2 <= MAX_SPREAD;
    print_table(
        &format!(
            "Figure 15b — work-stealing a width-1 HMult stream \
             (HEAX set A, device 0 owns all rows, median of {trials}, \
             {cores}-core host)"
        ),
        &[
            "workers",
            "ms (median)",
            "spread",
            "steals",
            "stolen rows",
            "rows",
        ],
        &[
            vec![
                "1".into(),
                format!("{ms1:.1}"),
                format!("{:.0}%", spread1 * 100.0),
                format!("{}", s1.steals),
                format!("{}", s1.stolen_rows),
                format!("{}", s1.executed_rows),
            ],
            vec![
                "2".into(),
                format!("{ms2:.1}"),
                format!("{:.0}%", spread2 * 100.0),
                format!("{}", s2.steals),
                format!("{}", s2.stolen_rows),
                format!("{}", s2.executed_rows),
            ],
            vec![
                "speedup".into(),
                format!("{speedup:.2}×"),
                if quiet {
                    "quiet".into()
                } else {
                    "noisy".into()
                },
                "".into(),
                "".into(),
                "".into(),
            ],
        ],
    );
    (quiet && cores >= 2).then_some(speedup)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let (trials, reps, iters) = if report::smoke() {
        (3, 8, 1)
    } else {
        (5, 32, 2)
    };

    let (tile_speedup, tile_quiet) = simd_tile_ratio(trials, reps);
    if tile_quiet {
        report::emit(
            "fig15_simd_steal",
            &[("host_simd_tile_speedup", tile_speedup)],
        );
    } else {
        println!(
            "[fig15_simd_steal] host_simd_tile_speedup not emitted: \
             spread exceeded {MAX_SPREAD}"
        );
    }

    match steal_point(trials, iters, cores) {
        Some(steal_speedup) => {
            report::emit("fig15_simd_steal", &[("host_steal_speedup", steal_speedup)]);
        }
        None => println!(
            "[fig15_simd_steal] host_steal_speedup not emitted \
             (needs a quiet run on ≥2 cores, have {cores})"
        ),
    }
}
