//! Figure 11 (pipeline) — overlap throughput vs in-flight window depth on
//! the simulated cluster.
//!
//! A mixed-(op, level) multi-client stream — many mutually *incompatible*
//! coalescing groups of one or two operations each, every group its own
//! client — drains against window depths 1, 2 and 4
//! (`TensorFheBuilder::pipeline_depth`) on a fixed 4-device cluster. Two
//! kinds of numbers fall out:
//!
//! * **Simulated pipelined ops/s** — deterministic overlap-clock
//!   throughput (`ServiceStats::pipelined_ops_per_second`): narrow
//!   independent batches that serialize onto one mostly-idle cluster at
//!   depth 1 run concurrently on the idle devices once the scheduler may
//!   keep several in flight. The depth-4 / depth-1 ratio is pinned in
//!   `BENCH_baseline.json` and gated by `check_regression`.
//! * **Request accounting** — by the scheduler's own contract the depth
//!   cannot move reports or the busy-time stats (that is what the
//!   bit-identity check below enforces), so queue latency and `ops/s`
//!   stay the serial reference numbers at every depth.
//!
//! The pipelining feature itself is held to three assertions: each service
//! must really run the configured depth, the depth-4 drain of the stream
//! must be bit-identical to the depth-1 drain, and the window must
//! actually fill (`inflight_hwm == 4`).

use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::service::{FheRequest, FheService, RequestReport, ServiceStats};

const OPS: [FheOp; 6] = [
    FheOp::HMult,
    FheOp::HRotate,
    FheOp::Rescale,
    FheOp::HAdd,
    FheOp::CMult,
    FheOp::Conjugate,
];

/// The fixed stream: every `(op, level)` pair is its own coalescing group
/// of one or two instances from its own client, so the serial path runs
/// narrow batches one at a time while devices idle — exactly the queue
/// shape the in-flight window exists for (GME-style multi-queue dispatch).
fn submit_stream(svc: &mut FheService, levels: usize) {
    let max_level = svc.params().max_level();
    let levels = levels.min(max_level);
    let mut client = 0usize;
    for level in (1..=max_level).rev().take(levels) {
        for (i, op) in OPS.into_iter().enumerate() {
            let count = 1 + (i + level) % 2; // widths 1 and 2, mixed
            svc.submit(FheRequest::new(op, level, count, format!("c{client}")))
                .expect("valid");
            client += 1;
        }
    }
}

fn drain(depth: usize, levels: usize) -> (Vec<RequestReport>, ServiceStats, f64) {
    let params = CkksParams::heax_set_c();
    let mut svc = TensorFhe::builder(&params)
        .devices(4)
        .pipeline_depth(depth)
        .service()
        .expect("valid service");
    assert_eq!(
        svc.pipeline_depth(),
        depth,
        "service must run the configured window depth (no silent depth-1 fallback)"
    );
    submit_stream(&mut svc, levels);
    let t0 = Instant::now();
    let reports = svc.drain();
    let host_ms = t0.elapsed().as_secs_f64() * 1e3;
    (reports, svc.stats(), host_ms)
}

fn main() {
    let levels = if report::smoke() { 8 } else { 16 };

    let mut rows = Vec::new();
    let mut pipelined = Vec::new();
    let mut base = 0.0f64;
    let mut all_reports = Vec::new();
    for depth in [1usize, 2, 4] {
        let (reports, stats, host_ms) = drain(depth, levels);
        if depth == 1 {
            base = stats.pipelined_ops_per_second;
            assert_eq!(
                stats.elapsed_us.to_bits(),
                stats.busy_us.to_bits(),
                "depth 1 must collapse to the serial clock"
            );
        }
        rows.push(vec![
            format!("{depth}"),
            format!("{}", stats.inflight_hwm),
            format!("{:.0}", stats.busy_us),
            format!("{:.0}", stats.elapsed_us),
            format!("{:.2}", stats.overlap_fraction),
            format!("{:.0}", stats.pipelined_ops_per_second),
            format!("{:.2}×", stats.pipelined_ops_per_second / base),
            format!("{host_ms:.1}"),
        ]);
        pipelined.push(stats.pipelined_ops_per_second);
        all_reports.push((depth, reports, stats));
    }

    let device = TensorFhe::builder(&CkksParams::heax_set_c())
        .service()
        .expect("valid service")
        .device_name()
        .to_string();
    print_table(
        &format!(
            "Figure 11 (pipeline) — overlap vs window depth \
             (mixed-(op, level) stream, 4 simulated {device} devices)"
        ),
        &[
            "depth",
            "in-flight hwm",
            "busy µs",
            "elapsed µs",
            "overlap",
            "sim ops/s (elapsed)",
            "speedup",
            "host drain ms",
        ],
        &rows,
    );

    // Bit-identity: the depth-4 drain must charge every request exactly
    // what the depth-1 drain did — pipelining moves the schedule, not the
    // accounting.
    let (_, d1_reports, d1_stats) = &all_reports[0];
    let (_, d4_reports, d4_stats) = &all_reports[2];
    assert_eq!(d1_reports.len(), d4_reports.len());
    for (a, b) in d1_reports.iter().zip(d4_reports) {
        assert_eq!(a.id, b.id, "completion order diverged");
        assert_eq!(
            a.report.time_us.to_bits(),
            b.report.time_us.to_bits(),
            "pipelined drain must be bit-identical to depth 1"
        );
        assert_eq!(a.queue_us.to_bits(), b.queue_us.to_bits());
        assert_eq!(a.report.launches, b.report.launches);
    }
    assert_eq!(d1_stats.busy_us.to_bits(), d4_stats.busy_us.to_bits());
    assert_eq!(
        d1_stats.ops_per_second.to_bits(),
        d4_stats.ops_per_second.to_bits()
    );
    assert_eq!(d4_stats.inflight_hwm, 4, "depth-4 window never filled");

    let speedup_2 = pipelined[1] / pipelined[0];
    let speedup_4 = pipelined[2] / pipelined[0];

    // The acceptance property: a depth-4 window serves the mixed stream at
    // ≥1.8× the depth-1 overlap-clock throughput (sub-4× only through
    // width-2 groups occupying two device queues each).
    assert!(
        speedup_4 >= 1.8,
        "depth-4 window must overlap ≥1.8×: got {speedup_4:.2}× ({pipelined:?})"
    );
    assert!(
        speedup_2 > 1.0,
        "depth-2 window must beat serial: got {speedup_2:.2}×"
    );

    println!(
        "\ndepth 4: {speedup_4:.2}× simulated overlap-clock ops/s over depth 1 \
         (depth 2: {speedup_2:.2}×); depth-4 drain bit-identical to depth 1"
    );

    report::emit(
        "fig11_pipeline",
        &[
            ("pipeline_speedup_depth2", speedup_2),
            ("pipeline_speedup_depth4", speedup_4),
        ],
    );
}
