//! Figure 12 (multi-tenant serving) — key-affinity coalescing vs blind
//! coalescing under contended key-cache residency.
//!
//! TensorFHE's serving numbers assume the switch/rotation key set of the
//! active tenant is resident in device memory; a multi-tenant server
//! cannot hold every tenant's keys at once, so batch composition decides
//! how often the PCIe key upload lands on the critical path. This bench
//! drives the same interleaved multi-session stream through the service
//! twice — once with the default session-affine coalescer (batches prefer
//! one session's ops, so one key set per batch) and once coalescing
//! blindly in queue order (batches mix every active session's key set) —
//! and measures the residency and makespan gap:
//!
//! * **`affinity_speedup`** — blind makespan / affinity makespan at the
//!   canonical point (4 tenants, cache holding 2 key sets). Deterministic
//!   (simulated clock, fixed stream), pinned in `BENCH_baseline.json`
//!   and gated by `check_regression`.
//! * **`affinity_hit_rate`** — the affinity coalescer's key-cache hit
//!   rate at the warm point (4 tenants, cache holding all 4 key sets),
//!   also pinned. (At the contended point both policies cycle-thrash the
//!   LRU to a 0 hit rate — the makespan ratio is the signal there.)
//!
//! The sweep prints tenants × cache-capacity rows for the trajectory:
//! affinity keeps its hit rate as tenancy outgrows the cache, blind
//! coalescing degrades toward a thrash on every batch.

use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::service::FheRequest;
use tensorfhe_core::{CoalescePolicy, SessionConfig};

struct Run {
    elapsed_us: f64,
    hit_rate: f64,
    misses: u64,
    upload_us: f64,
    fairness: f64,
    ops: usize,
}

/// One tenant's switch/rotation key-set footprint in bytes, as the
/// session tier derives it from the parameter set.
fn key_set_bytes(params: &CkksParams) -> u64 {
    let mut svc = TensorFhe::builder(params).service().expect("valid");
    let id = svc
        .register_session(SessionConfig::new("probe"))
        .expect("valid");
    svc.session(id).expect("registered").key_bytes()
}

/// Drain `rounds` interleaved quarter-cap HMult requests per tenant with
/// a cache holding `cache_sets` key sets, under the given coalescer.
fn run(
    params: &CkksParams,
    policy: CoalescePolicy,
    tenants: usize,
    cache_sets: u64,
    rounds: usize,
) -> Run {
    let set_bytes = key_set_bytes(params);
    let cache_mb = ((cache_sets * set_bytes) >> 20).max(1);
    let mut svc = TensorFhe::builder(params)
        .workers(1)
        .pipeline_depth(1)
        .key_cache_mb(cache_mb)
        .coalesce_policy(policy)
        .service()
        .expect("valid");
    let level = svc.params().max_level();
    let cap = svc.batch_cap();
    let quarter = (cap / 4).max(1);
    let sids: Vec<_> = (0..tenants)
        .map(|i| {
            svc.register_session(SessionConfig::new(format!("tenant-{i}")))
                .expect("valid")
        })
        .collect();
    // Strict interleave: queue order alternates tenants, so a coalescer
    // that walks the queue blindly packs every tenant's key set into
    // every batch.
    for _ in 0..rounds {
        for &sid in &sids {
            svc.submit(FheRequest::in_session(FheOp::HMult, level, quarter, sid))
                .expect("valid");
        }
    }
    svc.drain();
    let s = svc.stats();
    Run {
        elapsed_us: s.elapsed_us,
        hit_rate: s.key_cache_hit_rate,
        misses: s.key_cache_misses,
        upload_us: s.key_upload_us,
        fairness: s.fairness_index,
        ops: s.ops_completed,
    }
}

fn main() {
    let params = CkksParams::heax_set_c();
    let rounds = if report::smoke() { 8 } else { 24 };
    let set_mb = key_set_bytes(&params) as f64 / (1u64 << 20) as f64;

    let mut rows = Vec::new();
    for tenants in [2usize, 4, 8] {
        for cache_sets in [1u64, 2, 4] {
            let aff = run(
                &params,
                CoalescePolicy::KeyAffinity,
                tenants,
                cache_sets,
                rounds,
            );
            let blind = run(&params, CoalescePolicy::Blind, tenants, cache_sets, rounds);
            assert_eq!(
                aff.ops, blind.ops,
                "both coalescers must serve the identical stream"
            );
            assert!(
                (aff.fairness - 1.0).abs() < 1e-9,
                "equal tenants fully drained must be perfectly fair, got {}",
                aff.fairness
            );
            rows.push(vec![
                format!("{tenants}"),
                format!("{cache_sets}"),
                format!("{:.2}", aff.hit_rate),
                format!("{:.2}", blind.hit_rate),
                format!("{}", aff.misses),
                format!("{}", blind.misses),
                format!("{:.1}", aff.upload_us / 1e3),
                format!("{:.1}", blind.upload_us / 1e3),
                format!("{:.3}×", blind.elapsed_us / aff.elapsed_us),
            ]);
            // Once the cache is under-provisioned for the tenancy, the
            // affinity walk must never thrash worse than the blind walk.
            if (cache_sets as usize) < tenants {
                assert!(
                    aff.misses <= blind.misses,
                    "affinity coalescing thrashed more than blind at \
                     {tenants} tenants / {cache_sets}-set cache: {} vs {}",
                    aff.misses,
                    blind.misses
                );
            }
        }
    }

    print_table(
        &format!(
            "Figure 12 (multi-tenant) — key-affine vs blind coalescing \
             (HEAX-C, {set_mb:.0} MiB key set per tenant, {rounds} rounds)"
        ),
        &[
            "tenants",
            "cache (sets)",
            "hit aff",
            "hit blind",
            "miss aff",
            "miss blind",
            "upload aff ms",
            "upload blind ms",
            "speedup",
        ],
        &rows,
    );

    // The pinned point: 4 tenants contending for a 2-set cache, at a
    // fixed round count so smoke and full runs emit the same number.
    let aff = run(&params, CoalescePolicy::KeyAffinity, 4, 2, 8);
    let blind = run(&params, CoalescePolicy::Blind, 4, 2, 8);
    let speedup = blind.elapsed_us / aff.elapsed_us;
    assert!(
        aff.misses < blind.misses,
        "session-affine batches must miss less than blind batches: {} vs {}",
        aff.misses,
        blind.misses
    );
    assert!(
        speedup > 1.0,
        "key-affine coalescing must beat blind coalescing on makespan, \
         got {speedup:.3}× (affinity {:.0} µs vs blind {:.0} µs)",
        aff.elapsed_us,
        blind.elapsed_us
    );

    // The warm point: the cache holds every tenant, so after the cold
    // uploads the affinity walk must run entirely resident.
    let warm = run(&params, CoalescePolicy::KeyAffinity, 4, 4, 8);
    assert!(
        warm.hit_rate >= 0.5,
        "a cache holding every tenant must serve warm batches from \
         residency, got hit rate {:.2}",
        warm.hit_rate
    );

    println!(
        "\n4 tenants, 2-set cache: affinity {speedup:.3}× faster than blind \
         (upload {:.1} ms vs {:.1} ms); warm hit rate {:.2}",
        aff.upload_us / 1e3,
        blind.upload_us / 1e3,
        warm.hit_rate
    );

    report::emit(
        "fig12_multitenant",
        &[
            ("affinity_speedup", speedup),
            ("affinity_hit_rate", warm.hit_rate),
        ],
    );
}
