//! Figure 4: GPGPU pipeline-stall breakdown of butterfly-based algorithms
//! (NTT vs FFT vs DWT) on the simulated GTX 1080 Ti, with the paper's block
//! sizes (128 / 192 / 256).

use tensorfhe_bench::baselines::{FIG4_NTT_RAW_STALL, FIG4_NTT_TOTAL_STALL};
use tensorfhe_bench::{fmt, print_table};
use tensorfhe_gpu::{DeviceConfig, DeviceSim, KernelClass, KernelDesc, StallKind};

fn main() {
    let mut sim = DeviceSim::new(DeviceConfig::gtx1080ti());
    let kernels = [
        (
            "NTT",
            KernelDesc::new(
                KernelClass::ButterflyNtt {
                    n: 1 << 14,
                    batch: 4,
                },
                "ntt",
            )
            .with_block_size(128),
        ),
        (
            "FFT",
            KernelDesc::new(
                KernelClass::FftButterfly {
                    n: 1 << 14,
                    batch: 4,
                },
                "fft",
            )
            .with_block_size(192),
        ),
        (
            "DWT",
            KernelDesc::new(
                KernelClass::DwtLifting {
                    n: 1 << 14,
                    batch: 4,
                },
                "dwt",
            )
            .with_block_size(256),
        ),
    ];
    let mut rows = Vec::new();
    for (name, desc) in &kernels {
        let b = sim.stall_profile(desc);
        let mut row = vec![
            (*name).to_string(),
            format!("{:.1}%", b.stall_fraction() * 100.0),
        ];
        for kind in StallKind::ALL {
            row.push(format!("{:.1}%", b.fraction(kind) * 100.0));
        }
        rows.push(row);
    }
    print_table(
        "Figure 4 — pipeline-stall breakdown (simulated GTX 1080 Ti)",
        &[
            "kernel", "total", "RAW", "LongLat", "L1I", "Control", "FUBusy", "Barrier",
        ],
        &rows,
    );
    println!(
        "\npaper targets for NTT: total = {}%, RAW = {}% (48.6% of stalls)",
        fmt(FIG4_NTT_TOTAL_STALL * 100.0),
        fmt(FIG4_NTT_RAW_STALL * 100.0)
    );
    let ntt = sim.stall_profile(&kernels[0].1);
    println!(
        "measured  for NTT: total = {:.1}%, RAW = {:.1}% ({:.1}% of stalls)",
        ntt.stall_fraction() * 100.0,
        ntt.fraction(StallKind::Raw) * 100.0,
        ntt.fraction(StallKind::Raw) / ntt.stall_fraction().max(1e-12) * 100.0
    );
}
