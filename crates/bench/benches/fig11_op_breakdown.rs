//! Figure 11: kernel-level execution-time breakdown of each CKKS operation.

use tensorfhe_bench::{cost_op, print_table};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};

fn main() {
    let params = CkksParams::table_v_default();
    let level = params.max_level();
    let ops = [
        FheOp::HMult,
        FheOp::HRotate,
        FheOp::Rescale,
        FheOp::HAdd,
        FheOp::CMult,
    ];

    let kernels = [
        "ntt/intt",
        "hada-mult",
        "ele-add",
        "ele-sub",
        "forbenius",
        "conjugate",
        "conv",
    ];
    let mut rows = Vec::new();
    for op in ops {
        let mut api = TensorFhe::builder(&params)
            .build()
            .expect("single-device build");
        let r = cost_op(&mut api, op, level, 128);
        let total: f64 = r.by_kernel.iter().map(|(_, t)| t).sum();
        let share = |pred: &dyn Fn(&str) -> bool| -> f64 {
            r.by_kernel
                .iter()
                .filter(|(k, _)| pred(k))
                .map(|(_, t)| t)
                .sum::<f64>()
                / total.max(1e-12)
        };
        let vals = [
            share(&|k: &str| k.starts_with("ntt") || k.starts_with("intt")),
            share(&|k: &str| k == "hada-mult"),
            share(&|k: &str| k == "ele-add"),
            share(&|k: &str| k == "ele-sub"),
            share(&|k: &str| k == "forbenius-map"),
            share(&|k: &str| k == "conjugate"),
            share(&|k: &str| k == "conv"),
        ];
        let mut row = vec![op.name().to_string()];
        row.extend(vals.iter().map(|v| format!("{:.1}%", v * 100.0)));
        rows.push(row);
    }
    let mut header = vec!["op"];
    header.extend(kernels);
    print_table(
        "Figure 11 — kernel-level breakdown per operation (Default, batch 128)",
        &header,
        &rows,
    );
    println!("\npaper shape: NTT ≈ 92.1% of HMULT and ≈ 95.4% of HROTATE.");
}
