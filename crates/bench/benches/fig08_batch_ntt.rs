//! Figure 8: per-limb butterfly NTT vs the batched GEMM formulations.
//!
//! A `B×L` block (batch × RNS limbs sharing a modulus) is either issued as
//! `B·L` independent butterfly kernels (the TensorFHE-NT baseline, one
//! dependent `log N`-stage pipeline each) or packed into single wide GEMMs
//! per four-step stage (TensorFHE-CO on the CUDA cores, full TensorFHE on
//! the tensor cores). Reported per transform on the simulated A100 — the
//! "wall-clock" of this reproduction — plus a host-side cross-check that
//! the batched arithmetic is bit-identical to the per-limb reference.

use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::KernelEvent;
use tensorfhe_core::engine::{Engine, EngineConfig, Variant};
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_ntt::{BatchedGemmNtt, NttAlgorithm, NttBatchOps, NttOps, NttTable};

const N: usize = 1 << 13;

/// Simulated device time (µs) per transform for a B·L block.
fn device_us_per_transform(variant: Variant, bl: usize) -> f64 {
    let mut engine = Engine::new(EngineConfig::a100(variant));
    let events: Vec<KernelEvent> = match variant {
        // Per-limb baseline: B·L independent butterfly kernels.
        Variant::Butterfly => (0..bl)
            .map(|_| KernelEvent::Ntt {
                n: N,
                limbs: 1,
                inverse: false,
            })
            .collect(),
        // Batched GEMM: the whole block rides one wide-GEMM pipeline.
        _ => vec![KernelEvent::Ntt {
            n: N,
            limbs: bl,
            inverse: false,
        }],
    };
    engine.run_schedule("NTT", &events, 1).time_us / bl as f64
}

fn main() {
    let q = generate_ntt_primes(1, 28, N as u64)[0];
    let butterfly = NttTable::new(N, q);
    let co_plan = BatchedGemmNtt::new(N, q, NttAlgorithm::FourStep);

    // Smoke mode (CI bench-smoke job): a sparse B·L subset with a cheaper
    // host cross-check — same acceptance asserts, fraction of the runtime.
    let sweep: &[usize] = if report::smoke() {
        &[1, 4, 16, 64, 256]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256]
    };
    let host_cap = if report::smoke() { 8 } else { 32 };

    let mut rows_out = Vec::new();
    let mut summary = Vec::new();
    for &bl in sweep {
        let nt = device_us_per_transform(Variant::Butterfly, bl);
        let co = device_us_per_transform(Variant::FourStep, bl);
        let tc = device_us_per_transform(Variant::TensorCore, bl);

        // Host cross-check at moderate widths: the batched block must be
        // bit-identical to per-limb butterflies (and we time both sides).
        let (host_note, host_check) = if bl <= host_cap {
            let block: Vec<Vec<u64>> = (0..bl)
                .map(|r| {
                    (0..N)
                        .map(|i| ((r * 31 + i * 7) as u64 * 2654435761) % q)
                        .collect()
                })
                .collect();
            let mut want = block.clone();
            let t0 = Instant::now();
            for row in &mut want {
                butterfly.forward(row);
            }
            let bf_host = t0.elapsed().as_secs_f64() * 1e6 / bl as f64;
            let mut got = block.clone();
            let t1 = Instant::now();
            {
                let mut views: Vec<&mut [u64]> = got.iter_mut().map(Vec::as_mut_slice).collect();
                co_plan.forward_batch(&mut views);
            }
            let co_host = t1.elapsed().as_secs_f64() * 1e6 / bl as f64;
            assert_eq!(
                want, got,
                "batched GEMM diverged from butterfly at B·L={bl}"
            );
            (format!("{bf_host:.0} / {co_host:.0}"), true)
        } else {
            ("—".to_string(), false)
        };
        let _ = host_check;

        rows_out.push(vec![
            format!("{bl}"),
            format!("{nt:.2}"),
            format!("{co:.2}"),
            format!("{tc:.2}"),
            format!("{:.2}×", nt / co),
            format!("{:.2}×", nt / tc),
            host_note,
        ]);
        summary.push((bl, nt, co, tc));
    }

    print_table(
        "Figure 8 — per-limb butterfly vs batched GEMM NTT (N = 2^13, device µs/transform)",
        &[
            "B·L",
            "NT (per-limb)",
            "CO (batched)",
            "TC (batched)",
            "CO speedup",
            "TC speedup",
            "host µs bf/co",
        ],
        &rows_out,
    );

    // The acceptance property: the batched GEMM NTT beats per-limb
    // butterflies once the block is wide enough to feed the device —
    // B·L ≥ 16 for the four-step GEMMs; the 16-plane tensor-core pipeline
    // amortizes later (B·L ≥ 64, the Fig. 15 deep-batch regime) but then
    // wins by an order of magnitude.
    for &(bl, nt, co, tc) in &summary {
        if bl >= 16 {
            assert!(
                co < nt,
                "batched GEMM must beat per-limb butterfly at B·L={bl}: NT {nt:.2} CO {co:.2}"
            );
        }
        if bl >= 64 {
            assert!(
                tc < nt,
                "tensor-core block must beat per-limb butterfly at B·L={bl}: NT {nt:.2} TC {tc:.2}"
            );
        }
    }
    let (_, nt, co, tc) = summary[summary.len() - 1];
    println!(
        "\nat B·L = 256: batched CO {:.1}× and TC {:.1}× over per-limb butterflies \
         (paper Fig. 8/15: GEMM NTT wins grow with batch until the device saturates)",
        nt / co,
        nt / tc
    );

    report::emit(
        "fig08_batch_ntt",
        &[
            ("co_speedup_at_256", nt / co),
            ("tc_speedup_at_256", nt / tc),
        ],
    );
}
