//! Figure 10: pipeline execution-time breakdown of the butterfly NTT vs the
//! TensorFHE-CO GEMM formulation — the RAW-stall removal argument.

use tensorfhe_bench::print_table;
use tensorfhe_gpu::{DeviceConfig, DeviceSim, KernelClass, KernelDesc, StallKind};

fn main() {
    let mut sim = DeviceSim::new(DeviceConfig::gtx1080ti());
    let butterfly = KernelDesc::new(
        KernelClass::ButterflyNtt {
            n: 1 << 14,
            batch: 4,
        },
        "ntt",
    )
    .with_block_size(128);
    // The four-step lowering of the same transform: (128×128)·(128×128).
    let gemm = KernelDesc::new(
        KernelClass::GemmCuda {
            m: 128,
            k: 128,
            cols: 128,
            batch: 4,
        },
        "tensorfhe-co",
    );

    let mut rows = Vec::new();
    for (name, desc) in [("NTT (butterfly)", &butterfly), ("TensorFHE-CO", &gemm)] {
        let b = sim.stall_profile(desc);
        let mut row = vec![
            name.to_string(),
            format!("{:.1}%", (1.0 - b.stall_fraction()) * 100.0),
        ];
        for kind in StallKind::ALL {
            row.push(format!("{:.1}%", b.fraction(kind) * 100.0));
        }
        rows.push(row);
    }
    print_table(
        "Figure 10 — butterfly vs GEMM NTT stall profile",
        &[
            "kernel", "compute", "RAW", "LongLat", "L1I", "Control", "FUBusy", "Barrier",
        ],
        &rows,
    );

    let bf = sim.stall_profile(&butterfly);
    let co = sim.stall_profile(&gemm);
    println!(
        "\nRAW-stall reduction: {:.1} percentage points (paper: 18.1)",
        (bf.fraction(StallKind::Raw) - co.fraction(StallKind::Raw)) * 100.0
    );
    println!(
        "total-stall reduction: {:.1} points; paper reports a 32.3% overall NTT speedup",
        (bf.stall_fraction() - co.stall_fraction()) * 100.0
    );
}
