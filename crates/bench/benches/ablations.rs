//! Ablations of the reproduction's load-bearing design choices:
//!
//! 1. **dnum** — the generalized key-switching decomposition number
//!    (§II-B): more digits means a smaller special basis but more ModUp
//!    conversions and inner-product work.
//! 2. **Data layout** — `(L,B,N)` vs `(B,L,N)` for batched kernels (Fig. 9).
//! 3. **Stream overlap** — the 16-stream plane-GEMM dispatch vs a single
//!    serialised stream (only visible below the saturation batch).

use tensorfhe_bench::{cost_op, fmt, print_table};
use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::engine::{Engine, EngineConfig, Layout, Variant};

fn dnum_ablation() {
    let mut rows = Vec::new();
    // L = 44 admits dnum ∈ divisors of 45; K must be ≥ α = 45/dnum.
    for (dnum, k) in [(45usize, 1usize), (15, 3), (9, 5), (5, 9), (3, 15)] {
        let params =
            CkksParams::new("dnum-ablate", 1 << 16, 44, k, dnum, 29, 29, 128).expect("valid");
        let mut api = TensorFhe::builder(&params)
            .build()
            .expect("single-device build");
        let r = cost_op(&mut api, FheOp::HMult, params.max_level(), 128);
        rows.push(vec![
            dnum.to_string(),
            k.to_string(),
            fmt(r.time_us / 1e3),
            r.launches.to_string(),
        ]);
    }
    print_table(
        "Ablation 1 — HMULT vs dnum (N=2^16, L=44, batch 128)",
        &["dnum", "K", "HMULT (ms)", "launches"],
        &rows,
    );
    println!("smaller dnum trades fewer digits against a larger special basis (K = α).");
}

fn layout_ablation() {
    let params = CkksParams::table_v_default();
    let ev = [KernelEvent::EleAdd {
        n: params.n(),
        limbs: params.max_level() + 1,
    }];
    let mut rows = Vec::new();
    for (name, layout) in [("(L,B,N)", Layout::Lbn), ("(B,L,N)", Layout::Bln)] {
        let mut e = Engine::new(EngineConfig::a100(Variant::TensorCore).with_layout(layout));
        let s = e.run_schedule("Ele-Add", &ev, 128);
        rows.push(vec![name.to_string(), fmt(s.time_us)]);
    }
    print_table(
        "Ablation 2 — batched Ele-Add vs data layout (Fig. 9)",
        &["layout", "time (µs)"],
        &rows,
    );
}

fn stream_ablation() {
    // Below the fused-dispatch threshold the 16 plane GEMMs rely on stream
    // overlap to hide launch latency; compare small-batch NTT events.
    let params = CkksParams::table_v_default();
    let ev = [KernelEvent::Ntt {
        n: params.n(),
        limbs: 1,
        inverse: false,
    }];
    let mut rows = Vec::new();
    for batch in [1usize, 4, 16] {
        let mut e = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let s = e.run_schedule("NTT", &ev, batch);
        rows.push(vec![
            batch.to_string(),
            fmt(s.time_us),
            fmt(s.time_us / batch as f64),
            s.launches.to_string(),
        ]);
    }
    print_table(
        "Ablation 3 — small-batch NTT with 16-stream plane GEMMs",
        &["batch", "time (µs)", "per-op (µs)", "launches"],
        &rows,
    );
}

fn main() {
    dnum_ablation();
    layout_ablation();
    stream_ablation();
}
