//! Figure 9 (this reproduction's extension): scalar vs GEMM-lowered fast
//! basis conversion.
//!
//! `ModUp`/`ModDown` convert every coefficient of a `B×N` block from one
//! RNS basis to another. The scalar formulation walks coefficients one at
//! a time (`BasisConvTable::convert_coeff`: a serial dot product per
//! output residue); the TensorFHE lowering packs the whole block into one
//! `(L_dst × L_src) × (L_src × B·N)` wide GEMM (`BasisConvGemm`) riding
//! the same execution layer as the batched NTT. Reported per converted
//! output residue on the simulated A100, plus host wall-clock for both
//! formulations with a bit-identity cross-check — mirroring how
//! `fig08_batch_ntt` pins the NTT win.
//!
//! Shapes follow the ResNet-20 key-switch digit (`α = 3` source limbs →
//! 30 target limbs at `N = 2^13` host / `N = 2^16` device).

use std::time::Instant;
use tensorfhe_bench::{print_table, report};
use tensorfhe_ckks::KernelEvent;
use tensorfhe_core::engine::{Engine, EngineConfig, Variant};
use tensorfhe_math::crt::BasisConvGemm;
use tensorfhe_math::prime::generate_ntt_primes;

const N_DEVICE: usize = 1 << 16;
const N_HOST: usize = 1 << 13;
const L_SRC: usize = 3;
const L_DST: usize = 30;

/// Simulated device time (ns) per converted output residue for a `B`-wide
/// Conv launch.
fn device_ns_per_residue(variant: Variant, batch: usize) -> f64 {
    let mut engine = Engine::new(EngineConfig::a100(variant));
    let ev = KernelEvent::Conv {
        n: N_DEVICE,
        l_src: L_SRC,
        l_dst: L_DST,
    };
    let stats = engine.run_schedule("CONV", std::slice::from_ref(&ev), batch);
    stats.time_us * 1e3 / (N_DEVICE * L_DST * batch) as f64
}

/// Host wall-clock (µs per polynomial) for both formulations on a `B`-wide
/// block, asserting the outputs are bit-identical.
fn host_us_per_poly(plan: &BasisConvGemm, src_primes: &[u64], b: usize) -> (f64, f64) {
    // Deterministic limb-major block: b polynomials × L_SRC limbs × N_HOST.
    let src_rows: Vec<Vec<u64>> = (0..L_SRC)
        .map(|i| {
            (0..b * N_HOST)
                .map(|c| {
                    ((c as u64 * 2_654_435_761).wrapping_add(i as u64 * 40_503)) % src_primes[i]
                })
                .collect()
        })
        .collect();
    let views: Vec<&[u64]> = src_rows.iter().map(Vec::as_slice).collect();

    // Each side runs three times with the minimum kept: host wall-clock is
    // informational (never CI-gated), but the crossover assert below must
    // not flake when a loaded machine steals a core mid-measurement.
    let repeat = |f: &dyn Fn() -> Vec<Vec<u64>>| {
        let mut best = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            out = f();
            best = best.min(t.elapsed().as_secs_f64() * 1e6 / b as f64);
        }
        (best, out)
    };

    // Scalar path: per-coefficient walk, exactly what ModUp used to do.
    let (scalar_us, scalar) = repeat(&|| {
        let mut scalar = vec![vec![0u64; b * N_HOST]; L_DST];
        let mut residues = vec![0u64; L_SRC];
        for c in 0..b * N_HOST {
            for (r, row) in residues.iter_mut().zip(&src_rows) {
                *r = row[c];
            }
            let out = plan.table().convert_coeff(&residues);
            for (j, &v) in out.iter().enumerate() {
                scalar[j][c] = v;
            }
        }
        scalar
    });

    // GEMM path: one wide matrix product for the whole block.
    let (gemm_us, gemm) = repeat(&|| plan.convert_block(&views));

    assert_eq!(
        scalar, gemm,
        "GEMM conversion diverged from scalar at B={b}"
    );
    (scalar_us, gemm_us)
}

fn main() {
    let primes = generate_ntt_primes(L_SRC + L_DST, 28, N_HOST as u64);
    let (src_primes, dst_primes) = primes.split_at(L_SRC);
    let plan = BasisConvGemm::new(src_primes, dst_primes);

    let batches: &[usize] = if report::smoke() {
        &[1, 4, 16, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let host_cap = if report::smoke() { 4 } else { 16 };

    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for &b in batches {
        let nt = device_ns_per_residue(Variant::Butterfly, b);
        let co = device_ns_per_residue(Variant::FourStep, b);
        let host_note = if b <= host_cap {
            let (scalar_us, gemm_us) = host_us_per_poly(&plan, src_primes, b);
            summary.push((b, nt, co, Some(scalar_us / gemm_us)));
            format!("{scalar_us:.0} / {gemm_us:.0}")
        } else {
            summary.push((b, nt, co, None));
            "—".to_string()
        };
        rows.push(vec![
            format!("{b}"),
            format!("{nt:.3}"),
            format!("{co:.3}"),
            format!("{:.2}×", nt / co),
            host_note,
        ]);
    }

    print_table(
        &format!(
            "Figure 9 — scalar vs GEMM basis conversion \
             (α = {L_SRC} → {L_DST} limbs, device N = 2^16 ns/residue, host N = 2^13)"
        ),
        &[
            "B",
            "scalar (device)",
            "GEMM (device)",
            "device speedup",
            "host µs scalar/GEMM",
        ],
        &rows,
    );

    // Acceptance: the GEMM formulation beats the scalar walk at paper-scale
    // B·L — on the simulated device at every batch width, and in host
    // wall-clock once the block is past the single-polynomial regime.
    for &(b, nt, co, host_ratio) in &summary {
        assert!(
            co < nt,
            "GEMM conv must beat the scalar walk on-device at B={b}: {co:.3} vs {nt:.3}"
        );
        // Host wall-clock asserts only outside smoke mode: CI runners are
        // shared and throttled, and the report-module policy is that host
        // numbers are never gated — the deterministic device assert above
        // is what CI enforces.
        if let Some(r) = host_ratio {
            if b >= 4 && !report::smoke() {
                assert!(
                    r > 1.0,
                    "GEMM conv must beat the scalar walk on host at B={b}: ratio {r:.2}"
                );
            }
        }
    }

    let deep = summary
        .iter()
        .rev()
        .find(|&&(b, ..)| b >= 64)
        .copied()
        .expect("sweep reaches B = 64");
    let (b_deep, nt_deep, co_deep, _) = deep;
    let host_paper = summary
        .iter()
        .filter_map(|&(b, .., r)| r.map(|r| (b, r)))
        .next_back()
        .expect("at least one host measurement");
    println!(
        "\nat B = {b_deep}: GEMM conv {:.2}× over the scalar walk on-device; \
         host ratio {:.2}× at B = {} (paper-scale B·L = B·L_dst = {})",
        nt_deep / co_deep,
        host_paper.1,
        host_paper.0,
        b_deep * L_DST,
    );

    report::emit(
        "fig09_basis_conv",
        &[
            ("gemm_conv_speedup_device_b64", nt_deep / co_deep),
            ("gemm_conv_speedup_device_b1", summary[0].1 / summary[0].2),
            // Host wall-clock: trajectory only, never gated (CI noise).
            ("host_ratio_unpinned", host_paper.1),
        ],
    );
}
