//! Table XI: energy efficiency — OPs/W per CKKS operation and J/iteration
//! per workload.

use tensorfhe_bench::baselines::{TABLE11_J_PER_ITER, TABLE11_OPS_PER_WATT};
use tensorfhe_bench::{cost_op, fmt, fmt_opt, print_table};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::engine::Variant;
use tensorfhe_workloads::schedules;
use tensorfhe_workloads::spec::run_workload;

fn main() {
    // Part 1: OPs per watt at Default parameters, batch 128.
    let params = CkksParams::table_v_default();
    let mut api = TensorFhe::builder(&params)
        .build()
        .expect("single-device build");
    let level = params.max_level();
    let ops = [
        FheOp::HMult,
        FheOp::HRotate,
        FheOp::Rescale,
        FheOp::HAdd,
        FheOp::CMult,
    ];
    let mut rows = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let r = cost_op(&mut api, *op, level, 128);
        rows.push(vec![
            op.name().to_string(),
            fmt(TABLE11_OPS_PER_WATT[i].1),
            fmt(r.ops_per_watt),
        ]);
    }
    print_table(
        "Table XI (a) — energy efficiency of CKKS operations (OPs/W)",
        &["op", "paper", "ours"],
        &rows,
    );

    // Part 2: J/iteration per workload.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (system, vals) in TABLE11_J_PER_ITER {
        let mut row = vec![format!("paper: {system}")];
        row.extend(vals.iter().map(|v| fmt_opt(*v)));
        rows.push(row);
    }
    let mut ours = vec!["ours: TensorFHE".to_string()];
    for spec in schedules::all() {
        let report = run_workload(&spec, Variant::TensorCore);
        ours.push(fmt(report.energy_per_iter_j));
    }
    rows.push(ours);
    print_table(
        "Table XI (b) — energy per workload iteration (J/iteration)",
        &["system", "ResNet-20", "LR", "LSTM", "PackedBoot"],
        &rows,
    );
    println!(
        "\npaper shape: the GPU is 1-2 orders of magnitude less energy-efficient \
         than the ASICs (264 W board power)."
    );
}
