//! Figure 14: impact of batch size (32 … 1024) on per-operation kernel
//! execution time, normalised to the default batch of 128.

use tensorfhe_bench::print_table;
use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_core::engine::{Engine, EngineConfig, Variant};

fn kernel_events(params: &CkksParams) -> Vec<(&'static str, Vec<KernelEvent>)> {
    let n = params.n();
    let limbs = params.max_level() + 1;
    let alpha = params.alpha();
    vec![
        ("Hada-Mult", vec![KernelEvent::HadaMult { n, limbs }]),
        (
            "NTT",
            vec![KernelEvent::Ntt {
                n,
                limbs,
                inverse: false,
            }],
        ),
        ("Ele-Add", vec![KernelEvent::EleAdd { n, limbs }]),
        (
            "Conv",
            vec![KernelEvent::Conv {
                n,
                l_src: alpha,
                l_dst: limbs,
            }],
        ),
        ("ForbeniusMap", vec![KernelEvent::FrobeniusMap { n, limbs }]),
        ("Conjugate", vec![KernelEvent::Conjugate { n, limbs }]),
    ]
}

fn main() {
    let params = CkksParams::table_v_default();
    let batches = [32usize, 64, 128, 256, 512, 1024];
    let mut rows = Vec::new();
    for (name, events) in kernel_events(&params) {
        let mut engine = Engine::new(EngineConfig::a100(Variant::TensorCore));
        // Per-operation time, normalised to BS = 128.
        let per_op: Vec<f64> = batches
            .iter()
            .map(|&b| engine.run_schedule(name, &events, b).time_us / b as f64)
            .collect();
        let base = per_op[2];
        let mut row = vec![name.to_string()];
        row.extend(per_op.iter().map(|t| format!("{:.2}", t / base)));
        rows.push(row);
    }
    let header = [
        "kernel", "BS=32", "BS=64", "BS=128", "BS=256", "BS=512", "BS=1024",
    ];
    print_table(
        "Figure 14 — normalised per-op kernel time vs batch size (1.0 = BS 128)",
        &header,
        &rows,
    );
    println!(
        "\npaper shape: throughput improves with batch size and saturates; \
         the default BS = 128 balances the kernels (VRAM bounds the maximum)."
    );
}
