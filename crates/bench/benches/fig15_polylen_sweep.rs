//! Figure 15: sensitivity of the kernels to the polynomial length
//! (N = 2048 … 65536), normalised to N = 65536.

use tensorfhe_bench::print_table;
use tensorfhe_ckks::KernelEvent;
use tensorfhe_core::engine::{Engine, EngineConfig, Variant};

type KernelCtor = Box<dyn Fn(usize) -> KernelEvent>;

fn main() {
    let ns = [2048usize, 4096, 8192, 16384, 32768, 65536];
    let limbs = 45usize;
    let alpha = 1usize;
    let kernels: Vec<(&str, KernelCtor)> = vec![
        (
            "Hada-Mult",
            Box::new(move |n| KernelEvent::HadaMult { n, limbs }),
        ),
        (
            "NTT",
            Box::new(move |n| KernelEvent::Ntt {
                n,
                limbs,
                inverse: false,
            }),
        ),
        (
            "Ele-Add",
            Box::new(move |n| KernelEvent::EleAdd { n, limbs }),
        ),
        (
            "Conv",
            Box::new(move |n| KernelEvent::Conv {
                n,
                l_src: alpha,
                l_dst: limbs,
            }),
        ),
        (
            "ForbeniusMap",
            Box::new(move |n| KernelEvent::FrobeniusMap { n, limbs }),
        ),
        (
            "Conjugate",
            Box::new(move |n| KernelEvent::Conjugate { n, limbs }),
        ),
    ];

    let mut rows = Vec::new();
    let mut ntt_speedup_2048 = 0.0;
    for (name, make) in &kernels {
        let mut engine = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let times: Vec<f64> = ns
            .iter()
            .map(|&n| engine.run_schedule(name, &[make(n)], 128).time_us)
            .collect();
        let base = *times.last().expect("non-empty");
        if *name == "NTT" {
            ntt_speedup_2048 = base / times[0];
        }
        let mut row = vec![(*name).to_string()];
        row.extend(times.iter().map(|t| format!("{:.3}", t / base)));
        rows.push(row);
    }
    let header = [
        "kernel", "N=2048", "N=4096", "N=8192", "N=16384", "N=32768", "N=65536",
    ];
    print_table(
        "Figure 15 — normalised kernel time vs polynomial length (1.0 = N 65536)",
        &header,
        &rows,
    );
    println!(
        "\nNTT speedup from N=65536 to N=2048: {ntt_speedup_2048:.1}x (paper: 20.6x; \
         the workload shrinks by 97%)."
    );
}
