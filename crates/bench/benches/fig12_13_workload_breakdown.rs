//! Figures 12 and 13: kernel-level and operation-level execution-time
//! breakdown of the four full workloads.

use tensorfhe_bench::print_table;
use tensorfhe_core::engine::Variant;
use tensorfhe_workloads::schedules;
use tensorfhe_workloads::spec::run_workload;

fn main() {
    let mut kernel_rows = Vec::new();
    let mut op_rows = Vec::new();
    for spec in schedules::all() {
        let report = run_workload(&spec, Variant::TensorCore);

        let ktotal: f64 = report.per_kernel_us.iter().map(|(_, t)| t).sum();
        let kshare = |name: &str| -> f64 {
            report
                .per_kernel_us
                .iter()
                .filter(|(k, _)| {
                    if name == "ntt" {
                        k.starts_with("ntt") || k.starts_with("intt")
                    } else {
                        k == name
                    }
                })
                .map(|(_, t)| t)
                .sum::<f64>()
                / ktotal.max(1e-12)
        };
        kernel_rows.push(vec![
            spec.name.clone(),
            format!("{:.1}%", kshare("ntt") * 100.0),
            format!("{:.1}%", kshare("hada-mult") * 100.0),
            format!("{:.1}%", (kshare("ele-add") + kshare("ele-sub")) * 100.0),
            format!(
                "{:.1}%",
                (kshare("forbenius-map") + kshare("conjugate")) * 100.0
            ),
            format!("{:.1}%", kshare("conv") * 100.0),
        ]);

        let ototal: f64 = report.per_op_us.iter().map(|(_, t)| t).sum();
        let oshare = |name: &str| -> f64 {
            report
                .per_op_us
                .iter()
                .filter(|(k, _)| k == name)
                .map(|(_, t)| t)
                .sum::<f64>()
                / ototal.max(1e-12)
        };
        op_rows.push(vec![
            spec.name.clone(),
            format!("{:.1}%", oshare("HMULT") * 100.0),
            format!("{:.1}%", oshare("HROTATE") * 100.0),
            format!("{:.1}%", oshare("RESCALE") * 100.0),
            format!("{:.1}%", oshare("HADD") * 100.0),
            format!("{:.1}%", oshare("CMULT") * 100.0),
            format!("{:.1}%", oshare("BOOTSTRAP") * 100.0),
        ]);
    }
    print_table(
        "Figure 12 — kernel-level breakdown per workload",
        &[
            "workload",
            "NTT",
            "Hada-Mult",
            "Ele-Add/Sub",
            "Frobenius/Conj",
            "Conv",
        ],
        &kernel_rows,
    );
    print_table(
        "Figure 13 — operation-level breakdown per workload",
        &[
            "workload",
            "HMULT",
            "HROTATE",
            "RESCALE",
            "HADD",
            "CMULT",
            "BOOTSTRAP",
        ],
        &op_rows,
    );
    println!("\npaper shape: NTT dominates everywhere (up to 92.8% in LR); HROTATE is the heaviest operation.");
}
