//! Table VI: operation delay (batch-of-128 execution, ms) at the Default
//! parameters, for TensorFHE-NT/-CO/full on A100 and full on V100, next to
//! the paper's baselines (CPU, PrivFT, 100x and its own measurements).

use tensorfhe_bench::baselines::{TABLE6, TABLE6_OPS};
use tensorfhe_bench::{cost_op, fmt, fmt_opt, print_table};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe, TensorFheBuilder};
use tensorfhe_core::engine::Variant;
use tensorfhe_gpu::DeviceConfig;

fn run_row(builder: TensorFheBuilder, params: &CkksParams) -> Vec<f64> {
    let mut api = builder.build().expect("single-device build");
    let level = params.max_level();
    [
        FheOp::HMult,
        FheOp::HRotate,
        FheOp::Rescale,
        FheOp::HAdd,
        FheOp::CMult,
    ]
    .iter()
    .map(|&op| cost_op(&mut api, op, level, 128).time_us / 1e3)
    .collect()
}

fn main() {
    let params = CkksParams::table_v_default();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (system, values) in TABLE6 {
        let mut row = vec![format!("paper: {system}")];
        row.extend(values.iter().map(|v| fmt_opt(*v)));
        rows.push(row);
    }
    let ours: Vec<(&str, TensorFheBuilder)> = vec![
        (
            "ours: TensorFHE-NT",
            TensorFhe::builder(&params).variant(Variant::Butterfly),
        ),
        (
            "ours: TensorFHE-CO",
            TensorFhe::builder(&params).variant(Variant::FourStep),
        ),
        (
            "ours: TensorFHE(V100)",
            TensorFhe::builder(&params).device(DeviceConfig::v100()),
        ),
        ("ours: TensorFHE(A100)", TensorFhe::builder(&params)),
    ];
    let mut measured_a100 = Vec::new();
    for (name, builder) in ours {
        let vals = run_row(builder, &params);
        if name.ends_with("(A100)") {
            measured_a100 = vals.clone();
        }
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|&v| fmt(v)));
        rows.push(row);
    }
    let mut header = vec!["system"];
    header.extend(TABLE6_OPS);
    print_table(
        "Table VI — operation delay (ms, batch 128, Default params)",
        &header,
        &rows,
    );

    // Headline ratios.
    let paper_100x = TABLE6[2].1[0].expect("present");
    let paper_tfhe = TABLE6[6].1[0].expect("present");
    println!(
        "\nHMULT speedup over 100x: paper {:.2}x, ours {:.2}x (vs quoted 100x)",
        paper_100x / paper_tfhe,
        paper_100x / measured_a100[0]
    );
}
