//! Table X: full-workload execution time vs CPU, the ASIC accelerators and
//! 100x.

use tensorfhe_bench::baselines::{TABLE10, TABLE10_WORKLOADS};
use tensorfhe_bench::{fmt, fmt_opt, print_table};
use tensorfhe_core::engine::Variant;
use tensorfhe_workloads::schedules;
use tensorfhe_workloads::spec::run_workload;

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (system, vals) in TABLE10 {
        let mut row = vec![format!("paper: {system}")];
        row.extend(vals.iter().map(|v| fmt_opt(*v)));
        rows.push(row);
    }

    let mut ours = vec!["ours: TensorFHE".to_string()];
    let mut lr_time = 0.0;
    for spec in schedules::all() {
        let report = run_workload(&spec, Variant::TensorCore);
        if spec.name == "Logistic Regression" {
            lr_time = report.time_s;
        }
        ours.push(fmt(report.time_s));
        eprintln!(
            "  {}: {:.1}s, occupancy {:.1}%, {} ops",
            spec.name,
            report.time_s,
            report.occupancy * 100.0,
            spec.op_count()
        );
    }
    rows.push(ours);

    let mut header = vec!["system"];
    header.extend(TABLE10_WORKLOADS);
    print_table(
        "Table X — workload execution time (seconds)",
        &header,
        &rows,
    );

    let f1_lr = TABLE10[1].1[1].expect("present");
    println!(
        "\nLR vs F1+: paper 2.9x faster, ours {:.2}x (vs quoted F1+ time)",
        f1_lr / lr_time.max(1e-9)
    );
    println!("paper shape: beats F1+ on LR; trails CraterLake/BTS/ARK by up to ~40x.");
}
