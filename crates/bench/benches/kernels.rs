//! Criterion microbenchmarks of the *functional* Rust kernels: the three
//! NTT formulations, modular primitives and basis conversion. These measure
//! real CPU wall time of this implementation (not the simulated GPU),
//! anchoring the repository's arithmetic performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorfhe_math::crt::{BasisConvTable, RnsBasis};
use tensorfhe_math::prime::generate_ntt_primes;
use tensorfhe_math::Modulus;
use tensorfhe_ntt::{FourStepNtt, NttOps, NttTable, TensorCoreNtt};

fn bench_ntt_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt-forward");
    for log_n in [10usize, 12] {
        let n = 1 << log_n;
        let q = generate_ntt_primes(1, 30, n as u64)[0];
        let bf = NttTable::new(n, q);
        let fs = FourStepNtt::with_root(n, q, bf.psi());
        let tc = TensorCoreNtt::with_root(n, q, bf.psi());
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();

        group.bench_with_input(BenchmarkId::new("butterfly", n), &n, |b, _| {
            b.iter(|| {
                let mut a = data.clone();
                bf.forward(&mut a);
                a
            });
        });
        group.bench_with_input(BenchmarkId::new("four-step", n), &n, |b, _| {
            b.iter(|| {
                let mut a = data.clone();
                fs.forward(&mut a);
                a
            });
        });
        group.bench_with_input(BenchmarkId::new("tensor-core", n), &n, |b, _| {
            b.iter(|| {
                let mut a = data.clone();
                tc.forward(&mut a);
                a
            });
        });
    }
    group.finish();
}

fn bench_modmul(c: &mut Criterion) {
    let q = generate_ntt_primes(1, 30, 1 << 10)[0];
    let m = Modulus::new(q);
    let mut rng = StdRng::seed_from_u64(2);
    let xs: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..q)).collect();
    c.bench_function("barrett-mulmod-4096", |b| {
        b.iter(|| {
            let mut acc = 1u64;
            for &x in &xs {
                acc = m.mul(acc, x);
            }
            acc
        });
    });
}

fn bench_basis_conversion(c: &mut Criterion) {
    let primes = generate_ntt_primes(8, 30, 1 << 10);
    let src = RnsBasis::new(&primes[..4]);
    let dst: Vec<Modulus> = primes[4..].iter().map(|&p| Modulus::new(p)).collect();
    let table = BasisConvTable::new(&src, &dst);
    let mut rng = StdRng::seed_from_u64(3);
    let coeffs: Vec<Vec<u64>> = (0..1024)
        .map(|_| (0..4).map(|i| rng.gen_range(0..primes[i])).collect())
        .collect();
    c.bench_function("basis-conv-1024x4to4", |b| {
        b.iter(|| {
            coeffs
                .iter()
                .map(|r| table.convert_coeff(r))
                .collect::<Vec<_>>()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ntt_variants, bench_modmul, bench_basis_conversion
}
criterion_main!(benches);
