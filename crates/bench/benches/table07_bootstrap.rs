//! Table VII: Bootstrap execution time (batch 128, N = 2^16, L = 34,
//! dnum = 5).

use tensorfhe_bench::baselines::TABLE7;
use tensorfhe_bench::{cost_op, fmt, print_table};
use tensorfhe_ckks::CkksParams;
use tensorfhe_core::api::{FheOp, TensorFhe};
use tensorfhe_core::engine::Variant;

fn main() {
    let params = CkksParams::table_vii_bootstrap();
    let op = FheOp::Bootstrap {
        taylor_degree: 7,
        double_angles: 6,
    };

    let mut rows: Vec<Vec<String>> = TABLE7
        .iter()
        .map(|(name, v)| vec![format!("paper: {name}"), fmt(*v)])
        .collect();

    for (name, variant) in [
        ("ours: TensorFHE-NT", Variant::Butterfly),
        ("ours: TensorFHE-CO", Variant::FourStep),
        ("ours: TensorFHE", Variant::TensorCore),
    ] {
        let mut api = TensorFhe::builder(&params)
            .variant(variant)
            .build()
            .expect("single-device build");
        let r = cost_op(&mut api, op, params.max_level(), 128);
        rows.push(vec![name.to_string(), fmt(r.time_us / 1e3)]);
        if variant == Variant::TensorCore {
            println!(
                "TensorFHE bootstrap: {} launches, occupancy {:.1}%",
                r.launches,
                r.occupancy * 100.0
            );
        }
    }
    print_table(
        "Table VII — Bootstrap time (ms, batch 128, N=2^16 L=34 dnum=5)",
        &["system", "time (ms)"],
        &rows,
    );
    println!("\npaper shape: TensorFHE ≈ 1.3× faster than 100x; NT/CO slower than 100x.");
}
