//! Perf-regression gate: compares a PR's bench-smoke snapshot against the
//! committed baseline.
//!
//! ```text
//! check_regression [<BENCH_baseline.json> <BENCH_pr.json>]
//! ```
//!
//! Pinned metrics fall into two tolerance classes, keyed by name:
//!
//! * **deterministic** — metric names *not* starting with `host_`. These
//!   are simulated-device ratios (batched-GEMM formulations over their
//!   scalar counterparts), identical on every machine: the current run
//!   must contain them, and their value must not fall more than 25 %
//!   below the baseline. A missing deterministic key is fatal — the bench
//!   stopped emitting it.
//! * **host wall-clock** — metric names starting with `host_` (the part
//!   after the `bench/` prefix). These are real-machine timings emitted
//!   only behind each bench's variance guard, so they gate at a looser
//!   40 % drop and a missing key is *skipped*, not failed: a noisy or
//!   single-core runner simply contributes no host point that run.
//!
//! Metrics present only in the current snapshot are reported but not
//! gated (that's how new benches enter the trajectory: land the metric
//! first, pin it into the baseline next PR).
//!
//! Besides the ratio gate, the binary rebuilds smoke-scale service
//! schedules in-process — a pipelined anonymous stream and a
//! multi-tenant session stream at both matrix corners, plus the
//! adversarial head-blocked stream under out-of-order admission — and
//! replays them through the `tensorfhe-analyze` schedule verifier. A structural
//! violation (overlapping device intervals, a misapplied key upload, an
//! unclosed ops ledger) fails the gate even when every pinned ratio
//! still holds.
//!
//! Exit status: 0 when every pinned metric holds, 1 on any regression or
//! missing deterministic metric, 2 on usage/IO errors.

use std::path::Path;
use std::process::ExitCode;
use tensorfhe_bench::{print_table, report};

/// Deterministic pinned ratios may drop at most this fraction below the
/// baseline.
const ALLOWED_DROP: f64 = 0.25;

/// Host wall-clock keys (`host_*` metrics) gate at this looser fraction —
/// they are guarded medians, but still real-machine timings.
const ALLOWED_DROP_HOST: f64 = 0.40;

/// Tolerance class of a pinned key: `host_*` metric names (the segment
/// after the `bench/` prefix) are machine-dependent wall-clock points.
fn is_host_key(key: &str) -> bool {
    key.rsplit('/')
        .next()
        .is_some_and(|m| m.starts_with("host_"))
}

/// Rebuilds the bench-smoke schedule shapes in-process and audits them
/// with the structural verifier. Returns the joined violation reports on
/// failure.
fn verify_smoke_schedules() -> Result<(), String> {
    use tensorfhe_ckks::CkksParams;
    use tensorfhe_core::api::{FheOp, TensorFhe};
    use tensorfhe_core::sched::{AdmissionMode, SchedPolicy};
    use tensorfhe_core::service::FheRequest;
    use tensorfhe_core::SessionConfig;

    let mut failures = Vec::new();
    for &(workers, depth) in &[(1usize, 1usize), (4, 4)] {
        let mut svc = TensorFhe::builder(&CkksParams::test_small())
            .workers(workers)
            .pipeline_depth(depth)
            .service()
            .map_err(|e| e.to_string())?;
        let level = svc.params().max_level();
        let cap = svc.batch_cap();
        // The fig11/fig12 smoke shapes: a deadline-bound tenant, a
        // weighted heavy hitter, and anonymous pipelined traffic.
        let rt = svc
            .register_session(SessionConfig::new("rt").deadline_us(20_000.0))
            .map_err(|e| e.to_string())?;
        let be = svc
            .register_session(SessionConfig::new("be").weight(2.0))
            .map_err(|e| e.to_string())?;
        for i in 0..12 {
            let req = match i % 3 {
                0 => FheRequest::in_session(FheOp::HMult, level, cap, rt),
                1 => FheRequest::in_session(FheOp::HRotate, level, cap / 2 + 1, be),
                _ => FheRequest::new(FheOp::HAdd, level, cap, "anon"),
            };
            svc.submit(req).map_err(|e| e.to_string())?;
        }
        // Shedding can leave later work runnable; drain to a fixpoint.
        while !svc.drain().is_empty() {}
        let report = tensorfhe_analyze::verify_service(&svc);
        if !report.is_clean() {
            failures.push(format!("workers={workers} depth={depth}:\n{report}"));
        }
    }
    // The fig13 smoke shape: the adversarial head-blocked stream under
    // out-of-order admission (non-deadline traffic — deadline sessions
    // force the in-order fallback), re-verified structurally so the
    // scoreboard's reorder invariants are audited by the gate, not just
    // by the bench's bit-identity asserts.
    for &(workers, depth) in &[(1usize, 4usize), (4, 4)] {
        let mut svc = TensorFhe::builder(&CkksParams::test_small())
            .sched(
                SchedPolicy::new()
                    .workers(workers)
                    .pipeline_depth(depth)
                    .admission(AdmissionMode::OutOfOrder),
            )
            .devices(4)
            .service()
            .map_err(|e| e.to_string())?;
        let max_level = svc.params().max_level();
        for k in 1..=max_level {
            svc.submit(FheRequest::new(FheOp::HMult, k, 1, format!("c{k}")))
                .map_err(|e| e.to_string())?;
            svc.submit(FheRequest::new(FheOp::Rescale, k, 1, format!("c{k}")))
                .map_err(|e| e.to_string())?;
        }
        while !svc.drain().is_empty() {}
        let stats = svc.stats();
        if stats.reorder_distance == 0 {
            failures.push(format!(
                "ooo workers={workers} depth={depth}: the adversarial stream \
                 must reorder (reorder_distance == 0)"
            ));
        }
        let report = tensorfhe_analyze::verify_service(&svc);
        if !report.is_clean() {
            failures.push(format!("ooo workers={workers} depth={depth}:\n{report}"));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [] => (
            "BENCH_baseline.json".to_string(),
            "BENCH_pr.json".to_string(),
        ),
        [b, c] => (b.clone(), c.clone()),
        _ => {
            eprintln!("usage: check_regression [<baseline.json> <current.json>]");
            return ExitCode::from(2);
        }
    };
    let baseline = match report::read_file(Path::new(&baseline_path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match report::read_file(Path::new(&current_path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read current snapshot {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut rows = Vec::new();
    let mut regressed: Vec<String> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for (key, &base) in &baseline {
        let host = is_host_key(key);
        let (class, drop) = if host {
            ("host", ALLOWED_DROP_HOST)
        } else {
            ("det", ALLOWED_DROP)
        };
        let floor = base * (1.0 - drop);
        match current.get(key) {
            Some(&now) => {
                let ok = now >= floor;
                if !ok {
                    regressed.push(key.clone());
                }
                rows.push(vec![
                    key.clone(),
                    class.to_string(),
                    format!("{base:.3}"),
                    format!("{now:.3}"),
                    format!("{floor:.3}"),
                    if ok { "ok" } else { "REGRESSED" }.to_string(),
                ]);
            }
            None => {
                // A host key only appears when the emitting run was quiet
                // and multi-core; its absence is expected on noisy or
                // single-core runners and must not fail the gate.
                if host {
                    skipped.push(key.clone());
                } else {
                    missing.push(key.clone());
                }
                rows.push(vec![
                    key.clone(),
                    class.to_string(),
                    format!("{base:.3}"),
                    "missing".to_string(),
                    format!("{floor:.3}"),
                    if host { "SKIPPED" } else { "MISSING" }.to_string(),
                ]);
            }
        }
    }
    for (key, &now) in &current {
        if !baseline.contains_key(key) {
            rows.push(vec![
                key.clone(),
                if is_host_key(key) { "host" } else { "det" }.to_string(),
                "—".to_string(),
                format!("{now:.3}"),
                "—".to_string(),
                "unpinned".to_string(),
            ]);
        }
    }
    let det_pct = ALLOWED_DROP * 100.0;
    let host_pct = ALLOWED_DROP_HOST * 100.0;
    print_table(
        &format!(
            "Perf gate — {current_path} vs {baseline_path} \
             (max drop: det {det_pct:.0}%, host {host_pct:.0}%)"
        ),
        &["metric", "class", "baseline", "current", "floor", "status"],
        &rows,
    );
    if !skipped.is_empty() {
        println!(
            "{} host wall-clock key(s) skipped (not emitted this run — \
             noisy or single-core):",
            skipped.len()
        );
        for key in &skipped {
            println!("  - {key}");
        }
    }

    // A pinned key that disappeared is its own failure class: the bench
    // stopped emitting it (renamed, skipped, or broken), which the drop
    // check alone can't see. Name every absent key so the fix is obvious.
    if !missing.is_empty() {
        eprintln!(
            "{} pinned deterministic key(s) missing from {current_path}:",
            missing.len()
        );
        for key in &missing {
            eprintln!("  - {key}");
        }
        eprintln!(
            "(every deterministic key in {baseline_path} must be emitted by the \
             bench-smoke run; rename the baseline key in the same PR that renames \
             the metric. host_* keys are exempt — they skip when the variance \
             guard trips.)"
        );
    }
    if !regressed.is_empty() {
        eprintln!("{} pinned metric(s) regressed:", regressed.len());
        for key in &regressed {
            eprintln!("  - {key}");
        }
    }
    let schedule_audit = verify_smoke_schedules();
    if let Err(violations) = &schedule_audit {
        eprintln!("schedule verifier found structural violations:\n{violations}");
    } else {
        println!("schedule verifier: smoke schedules clean at every matrix corner (incl. ooo)");
    }
    if !missing.is_empty() || !regressed.is_empty() || schedule_audit.is_err() {
        ExitCode::FAILURE
    } else {
        println!(
            "all pinned metrics within tolerance \
             (det {det_pct:.0}%, host {host_pct:.0}%)"
        );
        ExitCode::SUCCESS
    }
}
