//! Machine-readable bench output: the `BENCH_*.json` perf-trajectory
//! format.
//!
//! Every bench target prints human tables; in addition it can *emit* named
//! scalar metrics through [`emit`]. When the `TENSORFHE_BENCH_JSON`
//! environment variable names a file, metrics from successive bench runs
//! merge into that file as one flat JSON object
//! (`{"<bench>/<metric>": <number>, …}`). CI's `bench-smoke` job points it
//! at `BENCH_pr.json`, uploads the result as the PR's perf snapshot, and
//! the `check_regression` binary gates it against the committed
//! `BENCH_baseline.json`.
//!
//! Gated metrics are *simulated-device ratios* (batched-GEMM vs scalar
//! formulations), which are deterministic — host wall-clock numbers are
//! emitted for the trajectory but never gated, because CI machine noise
//! would make them flaky. The flip side of gating simulated ratios: a PR
//! that deliberately changes the *cost model* (kernel templates, traffic
//! charges in `tensorfhe-gpu`) shifts the pinned values without any real
//! regression, and must refresh `BENCH_baseline.json` in the same PR.
//!
//! The format is deliberately flat so the reader below stays a ~20-line
//! scanner instead of a JSON dependency the offline build can't fetch.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Whether the short-sample smoke mode is active
/// (`TENSORFHE_BENCH_SMOKE=1`): benches shrink sweeps to CI-friendly
/// subsets while keeping their acceptance asserts.
#[must_use]
pub fn smoke() -> bool {
    std::env::var_os("TENSORFHE_BENCH_SMOKE").is_some()
}

/// Merges `metrics` into the JSON file named by `TENSORFHE_BENCH_JSON`
/// under `<bench>/<metric>` keys. No-op when the variable is unset.
///
/// # Panics
///
/// Panics if the file exists but cannot be parsed or rewritten — a broken
/// perf snapshot must fail the bench run, not silently drop points.
pub fn emit(bench: &str, metrics: &[(&str, f64)]) {
    let Ok(path) = std::env::var("TENSORFHE_BENCH_JSON") else {
        return;
    };
    let path = Path::new(&path);
    let mut all = if path.exists() {
        read_file(path).expect("existing bench JSON must parse")
    } else {
        BTreeMap::new()
    };
    for (k, v) in metrics {
        all.insert(format!("{bench}/{k}"), *v);
    }
    write_file(path, &all).expect("bench JSON must be writable");
    println!(
        "[bench-json] {} metric(s) merged into {}",
        metrics.len(),
        path.display()
    );
}

/// Parses a flat `{"key": number, …}` object.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
pub fn parse(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "expected a {…} object".to_string())?;
    let mut map = BTreeMap::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("entry without ':' separator: {part:?}"))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {k:?}"))?;
        let value: f64 = v
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key:?}: {e}"))?;
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

/// Serialises a metric map as one-entry-per-line JSON.
#[must_use]
pub fn render(entries: &BTreeMap<String, f64>) -> String {
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}

/// Reads a metric file.
///
/// # Errors
///
/// Returns an IO error for unreadable files or `InvalidData` for
/// unparseable content.
pub fn read_file(path: &Path) -> io::Result<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path)?;
    parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Writes a metric file.
///
/// # Errors
///
/// Returns an IO error if the file cannot be written.
pub fn write_file(path: &Path, entries: &BTreeMap<String, f64>) -> io::Result<()> {
    std::fs::write(path, render(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("fig08_batch_ntt/co_speedup_at_256".to_string(), 4.875);
        m.insert("fig09_basis_conv/gemm_speedup_b64".to_string(), 2.25);
        let parsed = parse(&render(&m)).expect("roundtrip parses");
        assert_eq!(parsed, m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"k\" 1}").is_err());
        assert!(parse("{k: 1}").is_err());
        assert!(parse("{\"k\": one}").is_err());
    }

    #[test]
    fn parse_accepts_empty_object() {
        assert!(parse("{}").expect("empty object").is_empty());
        assert!(parse("{ }").expect("empty object").is_empty());
    }
}
