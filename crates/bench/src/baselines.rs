//! Literature baselines quoted from the paper's tables.
//!
//! The paper compares against numbers "directly collect\[ed\] from the
//! literature" for every non-TensorFHE system; this module transcribes
//! those tables so the harness can print paper-vs-measured side by side.

/// Table VI — operation delay in ms (batch-of-128 execution at the Default
/// parameters). Columns: HMULT, HROTATE, RESCALE, HADD, CMULT.
pub const TABLE6_OPS: [&str; 5] = ["HMULT", "HROTATE", "RESCALE", "HADD", "CMULT"];

/// Table VI rows: (system, values in ms; `None` = not reported).
pub const TABLE6: [(&str, [Option<f64>; 5]); 7] = [
    (
        "CPU",
        [
            Some(338_000.0),
            Some(330_000.0),
            Some(18_611.0),
            Some(3609.0),
            Some(3356.0),
        ],
    ),
    (
        "PrivFT (V100)",
        [Some(7153.0), None, Some(208.0), Some(24.0), Some(21.0)],
    ),
    (
        "100x (V100)",
        [
            Some(2227.0),
            Some(2154.0),
            Some(81.0),
            Some(26.0),
            Some(22.0),
        ],
    ),
    (
        "TensorFHE-NT",
        [Some(2124.0), Some(2111.0), Some(35.0), Some(6.0), Some(7.7)],
    ),
    (
        "TensorFHE-CO",
        [Some(1651.2), Some(1523.2), Some(9.2), Some(6.0), Some(7.7)],
    ),
    (
        "TensorFHE(V100)",
        [
            Some(1296.6),
            Some(1254.4),
            Some(15.4),
            Some(10.2),
            Some(11.5),
        ],
    ),
    (
        "TensorFHE(A100)",
        [Some(851.0), Some(852.0), Some(7.7), Some(6.0), Some(7.7)],
    ),
];

/// Table VII — Bootstrap execution time (ms, batch 128, N = 2^16, L = 34,
/// dnum = 5).
pub const TABLE7: [(&str, f64); 6] = [
    ("CPU", 10_168.0),
    ("GPGPU baseline", 54_904.0),
    ("100x", 42_016.0),
    ("TensorFHE-NT", 76_731.0),
    ("TensorFHE-CO", 70_762.0),
    ("TensorFHE", 32_058.0),
];

/// Table VIII — throughput (operations per second) for the HEAX parameter
/// sets A/B/C. Rows: (system, metric, [A, B, C]).
pub const TABLE8: [(&str, &str, [f64; 3]); 9] = [
    ("CPU", "NTT/s", [7222.0, 3437.0, 1631.0]),
    ("HEAX", "NTT/s", [195_313.0, 90_144.0, 41_853.0]),
    ("TensorFHE", "NTT/s", [910_134.0, 449_974.0, 209_337.0]),
    ("CPU", "INTT/s", [7568.0, 3539.0, 1659.0]),
    ("HEAX", "INTT/s", [195_313.0, 90_144.0, 41_853.0]),
    ("TensorFHE", "INTT/s", [913_267.0, 449_084.0, 209_178.0]),
    ("CPU", "HMULT/s", [420.0, 84.0, 15.0]),
    ("HEAX", "HMULT/s", [97_656.0, 22_536.0, 2616.0]),
    ("TensorFHE", "HMULT/s", [88_048.0, 27_564.0, 3825.0]),
];

/// Table IX — GPGPU occupancy of the TensorFHE operations (fractions).
pub const TABLE9: [(&str, f64); 5] = [
    ("HMULT", 0.903),
    ("HROTATE", 0.901),
    ("RESCALE", 0.889),
    ("HADD", 0.853),
    ("CMULT", 0.881),
];

/// Table X — full workload execution time in seconds.
/// Columns: ResNet-20, LR, LSTM, Packed Bootstrapping.
pub const TABLE10_WORKLOADS: [&str; 4] = ["ResNet-20", "LR", "LSTM", "PackedBoot"];

/// Table X rows (system, seconds; `None` = not reported).
pub const TABLE10: [(&str, [Option<f64>; 4]); 7] = [
    (
        "CPU",
        [Some(88_320.0), Some(22_784.0), Some(27_488.0), Some(550.4)],
    ),
    ("F1+", [Some(172.3), Some(40.9), Some(82.3), Some(1.8)]),
    ("CraterLake", [Some(15.9), Some(7.6), Some(4.4), Some(0.1)]),
    ("BTS", [Some(122.2), Some(1.8), None, None]),
    ("ARK", [Some(18.8), Some(0.49), None, None]),
    ("100x*", [Some(602.9), Some(49.6), None, Some(36.9)]),
    (
        "TensorFHE",
        [Some(316.1), Some(14.1), Some(123.1), Some(13.5)],
    ),
];

/// Table XI (top) — energy efficiency of CKKS operations, OPs per watt.
pub const TABLE11_OPS_PER_WATT: [(&str, f64); 5] = [
    ("HMULT", 0.57),
    ("HROTATE", 0.57),
    ("RESCALE", 66.67),
    ("HADD", 81.30),
    ("CMULT", 66.67),
];

/// Table XI (bottom) — energy per workload iteration (J/iteration).
pub const TABLE11_J_PER_ITER: [(&str, [Option<f64>; 4]); 3] = [
    ("ARK", [Some(32.5), Some(19.8), None, None]),
    (
        "CraterLake",
        [Some(79.7), Some(38.1), Some(44.2), Some(1.3)],
    ),
    (
        "TensorFHE",
        [Some(1320.0), Some(58.27), Some(1015.3), Some(111.3)],
    ),
];

/// Fig. 4 headline numbers: NTT total stall fraction and RAW fraction on
/// the simulated GTX 1080Ti.
pub const FIG4_NTT_TOTAL_STALL: f64 = 0.432;
/// Fig. 4 RAW stall fraction for NTT.
pub const FIG4_NTT_RAW_STALL: f64 = 0.209;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedups_recoverable_from_tables() {
        // 397× HMULT over CPU (abstract) = 338 s / 851 ms.
        let cpu = TABLE6[0].1[0].expect("present");
        let tfhe = TABLE6[6].1[0].expect("present");
        assert!((cpu / tfhe - 397.1).abs() < 1.0);
        // 2.61× over 100x.
        let x100 = TABLE6[2].1[0].expect("present");
        assert!((x100 / tfhe - 2.61).abs() < 0.05);
        // 2.9× over F1+ on LR (Table X).
        let f1 = TABLE10[1].1[1].expect("present");
        let t = TABLE10[6].1[1].expect("present");
        assert!((f1 / t - 2.9).abs() < 0.05);
    }

    #[test]
    fn raw_is_half_of_ntt_stalls() {
        // "RAW … 20.9%, which is 48.6% of its overall pipeline stalls".
        assert!((FIG4_NTT_RAW_STALL / FIG4_NTT_TOTAL_STALL - 0.486).abs() < 0.01);
    }
}
