//! Shared infrastructure for the table/figure benchmark harness.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the paper: it runs the reproduction (simulated A100/V100) and prints the
//! paper's reported numbers next to ours. Baseline rows (CPU, PrivFT, 100x,
//! HEAX, and the ASIC accelerators) are constants quoted from the paper —
//! exactly as the paper itself "directly collect\[s\] data from the
//! literature" for those systems.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod report;

use tensorfhe_core::api::{FheOp, OpReport, TensorFhe};

/// Costs one fixed-width schedule run at the engine level — the
/// bench-harness replacement for the retired `run_op` shim: build the
/// kernel workflow, run it at `batch`, report at the device's power draw.
pub fn cost_op(api: &mut TensorFhe, op: FheOp, level: usize, batch: usize) -> OpReport {
    let events = api.schedule_of(op, level);
    let stats = api.engine_mut().run_schedule(op.name(), &events, batch);
    let power = api.engine().config().device.power_watts;
    OpReport::from_stats(op, batch, power, stats)
}

/// Prints a fixed-width table: header row plus data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional paper value ("-" when the paper has no number).
#[must_use]
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), fmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.6), "1235");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.5), "1.500");
        assert_eq!(fmt_opt(None), "-");
    }
}
