//! Developer probe: per-kernel cost of one batched NTT event per variant.

use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_core::engine::{Engine, EngineConfig, Variant};

fn main() {
    let params = CkksParams::table_v_default();
    let ev = [KernelEvent::Ntt {
        n: params.n(),
        limbs: params.max_level() + 1,
        inverse: false,
    }];
    for v in [Variant::Butterfly, Variant::FourStep, Variant::TensorCore] {
        let mut e = Engine::new(EngineConfig::a100(v));
        let s = e.run_schedule("NTT", &ev, 16);
        println!(
            "{:14} total={:9.1}us launches={}",
            v.label(),
            s.time_us,
            s.launches
        );
        for (k, t) in &s.by_kernel {
            println!("    {k:14} {t:9.1}us");
        }
    }
}
