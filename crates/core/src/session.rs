//! The multi-tenant session tier: client sessions, key-cache residency,
//! and deficit-round-robin fairness.
//!
//! Production FHE serving is dominated by per-client *state*, not per-op
//! arithmetic: every client brings its own galois/relinearisation key set —
//! hundreds of megabytes at paper parameters — and a batch can only run on
//! a device where those keys are resident. This module models that tier:
//!
//! * **Sessions** ([`SessionConfig`] → [`ClientSession`]) — a registered
//!   client with a simulated key-set footprint derived from the parameter
//!   set (`dnum` digits × 2 polynomials × `L + 1 + K` limbs × `N` residues
//!   per switch key; one relinearisation key plus a galois key per
//!   rotation step).
//! * **Key-cache residency** ([`KeyCache`]) — a per-device LRU over key-set
//!   footprints with hit/miss/eviction accounting and an eviction-visible
//!   [`ResidencyEvent`] trace. A batch whose session keys are non-resident
//!   pays a deterministic PCIe upload
//!   ([`tensorfhe_gpu::kernel::KernelClass::KeyUpload`]) in the service's
//!   overlap clock.
//! * **Fair scheduling** (`DrrState`) — deficit round robin across
//!   sessions ahead of the coalescing walk, so one heavy client cannot
//!   starve the rest; weights scale each session's quantum. Sessions may
//!   also carry a deadline class ([`SessionConfig::deadline_us`]) the
//!   service schedules urgently (earliest slack first, partially-filled
//!   batches allowed) and accounts misses for. Under out-of-order
//!   admission ([`crate::sched::AdmissionMode::OutOfOrder`]) the DRR pick
//!   and charge run at plan-*freeze* time along the serial walk — the
//!   scoreboard reorders only which frozen plan reaches the devices
//!   first, never which bucket the walk serves next, so fairness shares
//!   are identical across admission modes. Deadline classes are the
//!   exception: their urgency clock reads settle time, so the service
//!   refuses to register one while out-of-order work is in flight and
//!   falls back to the in-order fill while any is registered.
//! * **Fairness metric** ([`jain_index`]) — Jain's index over per-session
//!   serviced ops, surfaced through `ServiceStats`.
//!
//! The tier is strictly additive: a service with no registered sessions
//! never touches any of this and keeps the anonymous FIFO pipeline
//! bit-identical to the pre-session behaviour.

use std::collections::VecDeque;
use std::sync::Arc;
use tensorfhe_ckks::CkksParams;
use tensorfhe_gpu::kernel::RESIDUE_BYTES;

/// Fraction of device VRAM budgeted for resident key sets when no explicit
/// capacity is configured. The batch policy budgets 85% of VRAM for
/// ciphertext working sets ([`crate::engine::auto_batch_for_vram`]); the
/// key cache takes the complementary slice.
pub const KEY_CACHE_VRAM_FRACTION: f64 = 0.15;

/// Residency-trace ring capacity (oldest events drop first).
const TRACE_CAP: usize = 4096;

/// Typed handle to a registered client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// The raw numeric id (registration order per service).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Configuration for one client session, consumed by
/// [`crate::service::FheService::register_session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub(crate) name: String,
    pub(crate) galois_steps: Option<usize>,
    pub(crate) weight: f64,
    pub(crate) deadline_us: Option<f64>,
    pub(crate) queue_cap: Option<usize>,
}

impl SessionConfig {
    /// Starts a session config with default footprint (parameter-derived
    /// galois step set), weight 1, best-effort deadline class and an
    /// unbounded per-session queue.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            galois_steps: None,
            weight: 1.0,
            deadline_us: None,
            queue_cap: None,
        }
    }

    /// Number of galois (rotation) keys the client registered. Defaults to
    /// [`default_galois_steps`] — the power-of-two ± step set.
    #[must_use]
    pub fn galois_steps(mut self, steps: usize) -> Self {
        self.galois_steps = Some(steps);
        self
    }

    /// Deficit-round-robin weight (service share relative to weight-1
    /// sessions). Must be positive and finite; validated at registration.
    #[must_use]
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Deadline class: every request should complete within this virtual
    /// budget of its submission. Requests whose budget nears are scheduled
    /// urgently (partially-filled batches allowed); requests whose budget
    /// expired before any instance ran are *shed*; completions past the
    /// budget count as deadline misses.
    #[must_use]
    pub fn deadline_us(mut self, budget_us: f64) -> Self {
        self.deadline_us = Some(budget_us);
        self
    }

    /// Bounds the session's queue to this many operation instances;
    /// submissions past the bound are rejected (admission control).
    #[must_use]
    pub fn queue_cap(mut self, ops: usize) -> Self {
        self.queue_cap = Some(ops);
        self
    }
}

/// A registered client session: the immutable descriptor plus its service
/// accounting (ops queued, ops served).
#[derive(Debug, Clone)]
pub struct ClientSession {
    pub(crate) id: SessionId,
    pub(crate) name: Arc<str>,
    pub(crate) key_bytes: u64,
    pub(crate) weight: f64,
    pub(crate) deadline_us: Option<f64>,
    pub(crate) queue_cap: Option<usize>,
    /// Operation instances currently queued (admission control bound).
    pub(crate) queued_ops: usize,
    /// Operation instances served to completion.
    pub(crate) served_ops: usize,
}

impl ClientSession {
    /// The session handle.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Client name (used as the report tag of the session's requests).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulated key-set footprint in bytes (galois + relinearisation).
    #[must_use]
    pub fn key_bytes(&self) -> u64 {
        self.key_bytes
    }

    /// Deficit-round-robin weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Deadline budget (µs, virtual), if the session runs in a deadline
    /// class.
    #[must_use]
    pub fn deadline_us(&self) -> Option<f64> {
        self.deadline_us
    }

    /// Per-session queue bound in operation instances, if any.
    #[must_use]
    pub fn queue_cap(&self) -> Option<usize> {
        self.queue_cap
    }

    /// Operation instances served to completion so far.
    #[must_use]
    pub fn served_ops(&self) -> usize {
        self.served_ops
    }
}

/// Bytes of one hybrid key-switching key at these parameters: `dnum`
/// digits, each a pair of polynomials over the extended basis of
/// `L + 1 + K` limbs with `N` 32-bit residues per limb.
#[must_use]
pub fn switch_key_bytes(params: &CkksParams) -> u64 {
    let limbs = params.max_level() as u64 + 1 + params.special_primes() as u64;
    params.dnum() as u64 * 2 * limbs * params.n() as u64 * RESIDUE_BYTES
}

/// Default galois step set: power-of-two rotations in both directions over
/// the `N/2` slots — `2·log2(N/2)` keys, the set bootstrapping and the
/// paper's workloads rotate by.
#[must_use]
pub fn default_galois_steps(params: &CkksParams) -> usize {
    2 * (params.n() / 2).max(2).trailing_zeros() as usize
}

/// Total key-set footprint of a session: one galois key per rotation step
/// plus the relinearisation key, each a full [`switch_key_bytes`] key.
#[must_use]
pub fn key_set_bytes(params: &CkksParams, galois_steps: usize) -> u64 {
    (galois_steps as u64 + 1) * switch_key_bytes(params)
}

/// Jain's fairness index over per-session serviced ops:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`. `1.0` for an empty slice or all-zero
/// service (perfectly fair vacuously), `1/n` when one session got
/// everything.
#[must_use]
pub fn jain_index(served: &[f64]) -> f64 {
    if served.is_empty() {
        return 1.0;
    }
    let sum: f64 = served.iter().sum();
    let sq: f64 = served.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (served.len() as f64 * sq)
    }
}

/// How the coalescer orders candidate requests when filling a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalescePolicy {
    /// Prefer same-session grouping: the scheduled session's requests fill
    /// the batch first, other sessions' compatible requests only top up
    /// the remainder. Fewer distinct key sets ride per batch, so the key
    /// cache thrashes less (the default).
    #[default]
    KeyAffinity,
    /// Fill strictly in queue order regardless of session — the
    /// pre-session coalescing rule, kept as the fig12 comparison arm.
    Blind,
}

/// One key-cache residency event, in occurrence order. The trace is the
/// observable evidence of the residency model: every miss is an `Upload`,
/// every capacity displacement an `Evict`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResidencyEvent {
    /// The session's keys were already resident on the device.
    Hit {
        /// Session whose keys were looked up.
        session: SessionId,
        /// Device index.
        device: usize,
    },
    /// The session's keys were uploaded host→device (a cache miss).
    Upload {
        /// Session whose keys were uploaded.
        session: SessionId,
        /// Device index.
        device: usize,
        /// Bytes copied over PCIe.
        bytes: u64,
    },
    /// A resident key set was displaced to make room.
    Evict {
        /// Session whose keys were evicted.
        session: SessionId,
        /// Device index.
        device: usize,
        /// Bytes released.
        bytes: u64,
    },
}

/// Per-device LRU over session key-set footprints.
///
/// Each device holds up to `capacity_bytes` of resident key material. A
/// batch lookup ([`KeyCache::place`]) chooses the devices it will shard
/// across — preferring devices where more of its key material is already
/// resident — then touches each chosen device: hits refresh recency,
/// misses upload the footprint (evicting least-recently-used sets until it
/// fits). A footprint larger than the whole cache is *streamed*: charged
/// as an upload every time, never made resident.
#[derive(Debug)]
pub struct KeyCache {
    capacity_bytes: u64,
    /// LRU order per device: front = coldest, back = most recently used.
    resident: Vec<VecDeque<(SessionId, u64)>>,
    hits: u64,
    misses: u64,
    evictions: u64,
    uploaded_bytes: u64,
    trace: VecDeque<ResidencyEvent>,
}

impl KeyCache {
    /// Creates a cache with `capacity_bytes` per device.
    #[must_use]
    pub fn new(capacity_bytes: u64, devices: usize) -> Self {
        Self {
            capacity_bytes,
            resident: vec![VecDeque::new(); devices.max(1)],
            hits: 0,
            misses: 0,
            evictions: 0,
            uploaded_bytes: 0,
            trace: VecDeque::new(),
        }
    }

    /// Per-device capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Lookups that found the keys resident.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to upload.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident key sets displaced by uploads.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total bytes copied host→device.
    #[must_use]
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }

    /// Hit rate over all lookups; `1.0` before any lookup (nothing has
    /// ever missed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            1.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Whether a session's keys are resident on a device.
    #[must_use]
    pub fn is_resident(&self, device: usize, session: SessionId) -> bool {
        self.resident
            .get(device)
            .is_some_and(|d| d.iter().any(|&(s, _)| s == session))
    }

    /// The residency event trace, oldest first (a bounded ring: the
    /// newest `TRACE_CAP` events are retained).
    #[must_use]
    pub fn trace(&self) -> Vec<ResidencyEvent> {
        self.trace.iter().copied().collect()
    }

    fn push_trace(&mut self, e: ResidencyEvent) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back(e);
    }

    fn resident_bytes(&self, device: usize) -> u64 {
        self.resident[device].iter().map(|&(_, b)| b).sum()
    }

    /// Places a batch carrying `keys` (distinct session footprints, id
    /// order) onto `shards` devices: chooses the devices with the least
    /// missing key material (ties to the lowest index), touches their
    /// caches, and returns the upload bytes on the critical path — the
    /// *maximum* missing bytes over the chosen devices, since per-device
    /// DMA engines copy in parallel.
    pub fn place(&mut self, keys: &[(SessionId, u64)], shards: usize) -> u64 {
        let devices = self.resident.len();
        let shards = shards.clamp(1, devices);
        let mut order: Vec<usize> = (0..devices).collect();
        if !keys.is_empty() {
            let missing: Vec<u64> = (0..devices)
                .map(|d| {
                    keys.iter()
                        .filter(|&&(s, _)| !self.is_resident(d, s))
                        .map(|&(_, b)| b)
                        .sum()
                })
                .collect();
            order.sort_by(|&a, &b| missing[a].cmp(&missing[b]).then(a.cmp(&b)));
        }
        let chosen: Vec<usize> = order[..shards].to_vec();
        let mut critical = 0u64;
        for d in chosen {
            critical = critical.max(self.touch_device(d, keys));
        }
        critical
    }

    /// Looks up every key set on one device; returns the bytes uploaded.
    fn touch_device(&mut self, device: usize, keys: &[(SessionId, u64)]) -> u64 {
        let mut uploaded = 0u64;
        for &(session, bytes) in keys {
            if let Some(pos) = self.resident[device]
                .iter()
                .position(|&(s, _)| s == session)
            {
                self.hits += 1;
                let entry = self.resident[device].remove(pos).expect("position exists");
                self.resident[device].push_back(entry);
                self.push_trace(ResidencyEvent::Hit { session, device });
                continue;
            }
            self.misses += 1;
            uploaded += bytes;
            self.uploaded_bytes += bytes;
            self.push_trace(ResidencyEvent::Upload {
                session,
                device,
                bytes,
            });
            if bytes > self.capacity_bytes {
                // Streamed: too big to ever be resident; pays the upload
                // on every use but displaces nothing.
                continue;
            }
            while self.resident_bytes(device) + bytes > self.capacity_bytes {
                let (victim, victim_bytes) = self.resident[device]
                    .pop_front()
                    .expect("over capacity implies a resident victim");
                self.evictions += 1;
                self.push_trace(ResidencyEvent::Evict {
                    session: victim,
                    device,
                    bytes: victim_bytes,
                });
            }
            self.resident[device].push_back((session, bytes));
        }
        uploaded
    }
}

/// Deficit-round-robin state across session buckets.
///
/// Each bucket accrues `quantum` credit per top-up round and may be served
/// while its deficit covers the next batch. Buckets with no pending work
/// forfeit their credit (idle sessions do not bank service), so the
/// long-run service share of backlogged sessions is proportional to their
/// quanta and no session with work waits more than one full round — the
/// starvation bound the fairness tests pin.
#[derive(Debug)]
pub(crate) struct DrrState {
    deficits: Vec<f64>,
    cursor: usize,
}

impl DrrState {
    pub(crate) fn new() -> Self {
        Self {
            deficits: Vec::new(),
            cursor: 0,
        }
    }

    /// Tracks a newly registered bucket.
    pub(crate) fn grow(&mut self) {
        self.deficits.push(0.0);
    }

    /// Picks the next bucket to serve. `want[i]` is the width bucket `i`
    /// would put in its next batch (0 = no plannable work); `quantum[i]`
    /// its per-round credit. Returns `None` when nothing wants service.
    pub(crate) fn select(&mut self, want: &[usize], quantum: &[f64]) -> Option<usize> {
        debug_assert_eq!(want.len(), self.deficits.len());
        debug_assert_eq!(quantum.len(), self.deficits.len());
        if want.iter().all(|&w| w == 0) {
            return None;
        }
        for (d, &w) in self.deficits.iter_mut().zip(want) {
            if w == 0 {
                *d = 0.0;
            }
        }
        let n = want.len();
        loop {
            for step in 0..n {
                let i = (self.cursor + step) % n;
                if want[i] > 0 && self.deficits[i] >= want[i] as f64 {
                    self.cursor = i;
                    return Some(i);
                }
            }
            // Top-up round: every backlogged bucket earns its quantum.
            // Positive quanta guarantee progress (validated at
            // registration), so the loop terminates.
            for (d, (&w, &q)) in self.deficits.iter_mut().zip(want.iter().zip(quantum)) {
                if w > 0 {
                    *d += q;
                }
            }
        }
    }

    /// Charges a served batch against its bucket. The cursor stays on the
    /// bucket while its credit lasts (it keeps serving — classic DRR);
    /// once the credit cannot cover even a single op, the pointer moves
    /// to the next bucket.
    pub(crate) fn charge(&mut self, bucket: usize, width: usize) {
        self.deficits[bucket] -= width as f64;
        if self.deficits[bucket] < 1.0 {
            self.cursor = (bucket + 1) % self.deficits.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SessionId {
        SessionId(n)
    }

    #[test]
    fn key_footprint_follows_the_hybrid_keyswitch_shape() {
        let p = CkksParams::test_small();
        let limbs = (p.max_level() + 1 + p.special_primes()) as u64;
        assert_eq!(
            switch_key_bytes(&p),
            p.dnum() as u64 * 2 * limbs * p.n() as u64 * 4
        );
        // One relin key plus one per galois step.
        assert_eq!(key_set_bytes(&p, 0), switch_key_bytes(&p));
        assert_eq!(key_set_bytes(&p, 9), 10 * switch_key_bytes(&p));
        // Default step set: 2·log2(N/2).
        let steps = default_galois_steps(&p);
        assert_eq!(steps, 2 * (p.n() / 2).trailing_zeros() as usize);
        // Paper scale is hundreds of MB: Set-C (N=2^14) must exceed 100 MB.
        let set_c = CkksParams::heax_set_c();
        assert!(
            key_set_bytes(&set_c, default_galois_steps(&set_c)) > 100 << 20,
            "Set-C key set should be paper-scale"
        );
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        // Capacity 100: A(40), B(40) fit; touching A refreshes it, so
        // C(40) must evict B (the least recently used), not A.
        let mut c = KeyCache::new(100, 1);
        c.place(&[(sid(0), 40)], 1); // A: miss + upload
        c.place(&[(sid(1), 40)], 1); // B: miss + upload
        c.place(&[(sid(0), 40)], 1); // A again: hit, refreshes recency
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        c.place(&[(sid(2), 40)], 1); // C: evicts B
        assert_eq!(c.evictions(), 1);
        assert!(c.is_resident(0, sid(0)), "A stays (recently used)");
        assert!(!c.is_resident(0, sid(1)), "B is the LRU victim");
        assert!(c.is_resident(0, sid(2)));
        let evicted: Vec<SessionId> = c
            .trace()
            .iter()
            .filter_map(|e| match e {
                ResidencyEvent::Evict { session, .. } => Some(*session),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![sid(1)], "trace shows the eviction");
    }

    #[test]
    fn oversized_footprints_stream_instead_of_thrashing() {
        let mut c = KeyCache::new(100, 1);
        c.place(&[(sid(0), 60)], 1);
        // 150 > capacity: uploads every time, never resident, evicts
        // nothing.
        let up = c.place(&[(sid(1), 150)], 1);
        assert_eq!(up, 150);
        assert_eq!(c.evictions(), 0);
        assert!(c.is_resident(0, sid(0)), "resident set untouched");
        assert!(!c.is_resident(0, sid(1)));
        let up = c.place(&[(sid(1), 150)], 1);
        assert_eq!(up, 150, "streams again on reuse");
    }

    #[test]
    fn placement_prefers_key_resident_devices() {
        let mut c = KeyCache::new(100, 2);
        // Warm device 0 with A by sharding width-1 (1 device).
        let first = c.place(&[(sid(0), 80)], 1);
        assert_eq!(first, 80);
        // A single-shard batch for A must land on device 0 (no missing
        // bytes) rather than device 1.
        let again = c.place(&[(sid(0), 80)], 1);
        assert_eq!(again, 0, "resident device preferred: no upload");
        assert_eq!(c.hits(), 1);
        assert!(!c.is_resident(1, sid(0)), "device 1 never touched");
        // A two-shard batch must warm the second device too; the critical
        // path is the one missing upload.
        let both = c.place(&[(sid(0), 80)], 2);
        assert_eq!(both, 80, "parallel DMA: max over devices, not sum");
        assert!(c.is_resident(1, sid(0)));
    }

    #[test]
    fn hit_rate_counts_per_device_lookups() {
        let mut c = KeyCache::new(1000, 1);
        assert_eq!(c.hit_rate(), 1.0, "no lookups yet");
        c.place(&[(sid(0), 10), (sid(1), 10)], 1);
        c.place(&[(sid(0), 10), (sid(1), 10)], 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hit_rate(), 0.5);
        assert_eq!(c.uploaded_bytes(), 20);
    }

    #[test]
    fn drr_alternates_between_backlogged_buckets() {
        let mut d = DrrState::new();
        d.grow();
        d.grow();
        let quantum = [16.0, 16.0];
        // Both buckets backlogged at a full batch each: strict
        // alternation regardless of who is "first".
        let mut order = Vec::new();
        let mut want = [160usize, 160];
        for _ in 0..8 {
            let i = d.select(&[want[0].min(16), want[1].min(16)], &quantum);
            let i = i.expect("work pending");
            d.charge(i, 16);
            want[i] -= 16;
            order.push(i);
        }
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn drr_weights_scale_service_shares() {
        let mut d = DrrState::new();
        d.grow();
        d.grow();
        // Bucket 0 has triple weight: over a long backlog it must be
        // served ~3× as often.
        let quantum = [48.0, 16.0];
        let mut served = [0usize, 0];
        for _ in 0..40 {
            let i = d.select(&[16, 16], &quantum).expect("backlogged");
            d.charge(i, 16);
            served[i] += 16;
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.35,
            "3:1 quanta must give ~3:1 service, got {ratio} ({served:?})"
        );
    }

    #[test]
    fn drr_idle_buckets_forfeit_credit() {
        let mut d = DrrState::new();
        d.grow();
        d.grow();
        let quantum = [16.0, 16.0];
        // Bucket 1 idles while bucket 0 is served repeatedly…
        for _ in 0..10 {
            assert_eq!(d.select(&[16, 0], &quantum), Some(0));
            d.charge(0, 16);
        }
        // …then wakes with a backlog: it must not have banked 10 rounds
        // of credit and monopolise the service now.
        let mut consecutive_1 = 0usize;
        let mut max_run = 0usize;
        for _ in 0..12 {
            let i = d.select(&[16, 16], &quantum).expect("backlogged");
            d.charge(i, 16);
            if i == 1 {
                consecutive_1 += 1;
                max_run = max_run.max(consecutive_1);
            } else {
                consecutive_1 = 0;
            }
        }
        assert!(
            max_run <= 2,
            "idle bucket banked credit: served {max_run} in a row"
        );
    }

    #[test]
    fn jain_index_brackets() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One session hogging everything: 1/n.
        assert!((jain_index(&[12.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_index(&[8.0, 4.0]);
        assert!(mid > 0.5 && mid < 1.0, "skew lands between: {mid}");
    }

    #[test]
    fn session_config_builder_round_trips() {
        let c = SessionConfig::new("tenant-a")
            .galois_steps(12)
            .weight(2.5)
            .deadline_us(5_000.0)
            .queue_cap(64);
        assert_eq!(c.name, "tenant-a");
        assert_eq!(c.galois_steps, Some(12));
        assert!((c.weight - 2.5).abs() < 1e-12);
        assert_eq!(c.deadline_us, Some(5_000.0));
        assert_eq!(c.queue_cap, Some(64));
    }
}
