//! The API layer (§IV-E): operation requests → kernel workflows → reports.
//!
//! The API layer "collects and decomposes the requests for FHE operations
//! from the user applications … automatically generates the best batch size
//! … and sequentially invokes the kernels in the workflow". [`TensorFhe`]
//! does exactly that over the simulated device.

use crate::engine::{Engine, EngineConfig, OpStats};
use crate::schedule;
use tensorfhe_ckks::{CkksParams, KernelEvent};

/// A CKKS operation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FheOp {
    /// Ciphertext addition.
    HAdd,
    /// Ciphertext multiplication (with relinearisation).
    HMult,
    /// Ciphertext × plaintext multiplication.
    CMult,
    /// Slot rotation.
    HRotate,
    /// Rescaling.
    Rescale,
    /// Conjugation.
    Conjugate,
    /// Full bootstrap with the given sine parameters.
    Bootstrap {
        /// Taylor degree of the `exp(iθ)` approximation.
        taylor_degree: usize,
        /// Double-angle squarings.
        double_angles: usize,
    },
}

impl FheOp {
    /// Operation name as the paper prints it.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FheOp::HAdd => "HADD",
            FheOp::HMult => "HMULT",
            FheOp::CMult => "CMULT",
            FheOp::HRotate => "HROTATE",
            FheOp::Rescale => "RESCALE",
            FheOp::Conjugate => "HCONJ",
            FheOp::Bootstrap { .. } => "BOOTSTRAP",
        }
    }
}

/// Result of executing one batched operation.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The operation.
    pub op: FheOp,
    /// Batch width used.
    pub batch: usize,
    /// Device wall time for the batch (µs).
    pub time_us: f64,
    /// Amortised time per operation (µs).
    pub per_op_us: f64,
    /// Time-weighted occupancy.
    pub occupancy: f64,
    /// Energy for the batch (J).
    pub energy_j: f64,
    /// Operations per second at this batch width.
    pub ops_per_second: f64,
    /// Operations per watt (Table XI's metric).
    pub ops_per_watt: f64,
    /// Kernel launches issued.
    pub launches: usize,
    /// Per-kernel device time (name → µs).
    pub by_kernel: Vec<(String, f64)>,
}

/// The TensorFHE API layer bound to one parameter set and engine.
#[derive(Debug)]
pub struct TensorFhe {
    params: CkksParams,
    engine: Engine,
}

impl TensorFhe {
    /// Creates the API layer.
    #[must_use]
    pub fn new(params: &CkksParams, cfg: EngineConfig) -> Self {
        Self {
            params: params.clone(),
            engine: Engine::new(cfg),
        }
    }

    /// Parameter set in use.
    #[must_use]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Access to the underlying engine (profiling, tracers).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Read access to the underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The kernel schedule of an operation at a level.
    #[must_use]
    pub fn schedule_of(&self, op: FheOp, level: usize) -> Vec<KernelEvent> {
        match op {
            FheOp::HAdd => schedule::hadd_schedule(&self.params, level),
            FheOp::HMult => schedule::hmult_schedule(&self.params, level),
            FheOp::CMult => schedule::cmult_schedule(&self.params, level),
            FheOp::HRotate => schedule::hrotate_schedule(&self.params, level),
            FheOp::Rescale => schedule::rescale_schedule(&self.params, level),
            FheOp::Conjugate => schedule::conjugate_schedule(&self.params, level),
            FheOp::Bootstrap { taylor_degree, double_angles } => {
                schedule::bootstrap_schedule(&self.params, taylor_degree, double_angles)
            }
        }
    }

    /// The batch size the API layer would choose (VRAM-bounded, capped at
    /// the parameter preset's configured batch).
    #[must_use]
    pub fn auto_batch(&self) -> usize {
        self.engine
            .max_batch(&self.params)
            .min(self.params.batch_size().max(1))
    }

    /// Executes one batched operation in TimingOnly mode and reports.
    pub fn run_op(&mut self, op: FheOp, level: usize, batch: usize) -> OpReport {
        let events = self.schedule_of(op, level);
        let stats = self.engine.run_schedule(op.name(), &events, batch);
        self.report(op, batch, stats)
    }

    /// Executes with the automatically chosen batch size.
    pub fn run_op_auto(&mut self, op: FheOp, level: usize) -> OpReport {
        let b = self.auto_batch();
        self.run_op(op, level, b)
    }

    fn report(&self, op: FheOp, batch: usize, stats: OpStats) -> OpReport {
        let per_op = stats.time_us / batch.max(1) as f64;
        let ops_per_second = if stats.time_us > 0.0 {
            batch as f64 / (stats.time_us * 1e-6)
        } else {
            0.0
        };
        let power = self.engine.config().device.power_watts;
        OpReport {
            op,
            batch,
            time_us: stats.time_us,
            per_op_us: per_op,
            occupancy: stats.occupancy,
            energy_j: stats.energy_j,
            ops_per_second,
            ops_per_watt: ops_per_second / power,
            launches: stats.launches,
            by_kernel: stats.by_kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Variant;

    fn api(variant: Variant) -> TensorFhe {
        TensorFhe::new(&CkksParams::test_small(), EngineConfig::a100(variant))
    }

    #[test]
    fn reports_are_self_consistent() {
        let mut a = api(Variant::TensorCore);
        let level = a.params().max_level();
        let r = a.run_op(FheOp::HMult, level, 8);
        assert_eq!(r.batch, 8);
        assert!((r.per_op_us - r.time_us / 8.0).abs() < 1e-9);
        assert!(r.ops_per_second > 0.0);
        assert!(r.energy_j > 0.0);
        let total: f64 = r.by_kernel.iter().map(|(_, t)| t).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn hmult_is_ntt_dominated() {
        // §VI-B2: "the NTT kernels occupy the most significant proportion in
        // HMULT … 92.1%".
        let mut a = api(Variant::TensorCore);
        let level = a.params().max_level();
        let r = a.run_op(FheOp::HMult, level, 32);
        let ntt_time: f64 = r
            .by_kernel
            .iter()
            .filter(|(k, _)| k.starts_with("ntt") || k.starts_with("intt"))
            .map(|(_, t)| t)
            .sum();
        let total: f64 = r.by_kernel.iter().map(|(_, t)| t).sum();
        assert!(
            ntt_time / total > 0.5,
            "NTT share {} too small in {:?}",
            ntt_time / total,
            r.by_kernel
        );
    }

    #[test]
    fn auto_batch_respects_preset() {
        let a = api(Variant::TensorCore);
        let b = a.auto_batch();
        assert!(b >= 1);
        assert!(b <= a.params().batch_size().max(1));
    }

    #[test]
    fn bootstrap_dwarfs_single_ops() {
        let params =
            CkksParams::new("api-boot", 1 << 10, 19, 4, 5, 28, 26, 8).expect("valid");
        let mut a = TensorFhe::new(&params, EngineConfig::a100(Variant::TensorCore));
        let level = params.max_level();
        let mult = a.run_op(FheOp::HMult, level, 4);
        let boot = a.run_op(
            FheOp::Bootstrap { taylor_degree: 7, double_angles: 3 },
            level,
            4,
        );
        assert!(
            boot.time_us > mult.time_us * 20.0,
            "bootstrap {} vs hmult {}",
            boot.time_us,
            mult.time_us
        );
    }

    #[test]
    fn batching_improves_throughput() {
        // Fig. 14: larger batches raise kernel throughput until saturation.
        let mut a = api(Variant::TensorCore);
        let level = a.params().max_level();
        let b1 = a.run_op(FheOp::HMult, level, 1);
        let b32 = a.run_op(FheOp::HMult, level, 32);
        assert!(
            b32.ops_per_second > b1.ops_per_second * 2.0,
            "batched throughput {} vs single {}",
            b32.ops_per_second,
            b1.ops_per_second
        );
    }
}
