//! The API layer (§IV-E): operation requests → kernel workflows → reports.
//!
//! The API layer "collects and decomposes the requests for FHE operations
//! from the user applications … automatically generates the best batch size
//! … and sequentially invokes the kernels in the workflow". Two entry
//! points build on it:
//!
//! * [`TensorFhe`] — a direct, single-caller handle over one engine, for
//!   costing one schedule at a time: [`TensorFhe::schedule_of`] builds the
//!   kernel workflow, [`crate::engine::Engine::run_schedule`] costs it,
//!   and [`OpReport::from_stats`] turns the window statistics into a
//!   report. (The PR 1-era `run_op`/`run_op_auto` shims that bundled
//!   those three calls are gone; callers that want batching, coalescing
//!   or scheduling belong on the service.)
//! * [`crate::service::FheService`] — the request-stream front end: many
//!   clients submit [`crate::service::FheRequest`]s and the *service*
//!   coalesces them into batches. New code should prefer it; see the
//!   migration note in the crate docs.
//!
//! Both are configured through [`TensorFhe::builder`], which replaces the
//! old `TensorFhe::new(params, EngineConfig)` constructor threading.

use crate::engine::{Engine, EngineConfig, ExecMode, Layout, OpStats, Variant};
use crate::error::{CoreError, CoreResult};
use crate::exec::ExecBackend;
use crate::sched::{AdmissionMode, SchedPolicy};
use crate::schedule;
use crate::service::FheService;
use crate::session::CoalescePolicy;
use tensorfhe_ckks::{CkksParams, KernelEvent};
use tensorfhe_gpu::DeviceConfig;

/// A CKKS operation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FheOp {
    /// Ciphertext addition.
    HAdd,
    /// Ciphertext multiplication (with relinearisation).
    HMult,
    /// Ciphertext × plaintext multiplication.
    CMult,
    /// Slot rotation.
    HRotate,
    /// Rescaling.
    Rescale,
    /// Conjugation.
    Conjugate,
    /// Full bootstrap with the given sine parameters.
    Bootstrap {
        /// Taylor degree of the `exp(iθ)` approximation.
        taylor_degree: usize,
        /// Double-angle squarings.
        double_angles: usize,
    },
}

impl FheOp {
    /// Operation name as the paper prints it.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FheOp::HAdd => "HADD",
            FheOp::HMult => "HMULT",
            FheOp::CMult => "CMULT",
            FheOp::HRotate => "HROTATE",
            FheOp::Rescale => "RESCALE",
            FheOp::Conjugate => "HCONJ",
            FheOp::Bootstrap { .. } => "BOOTSTRAP",
        }
    }
}

/// The kernel schedule of an operation at a level — the workflow the API
/// layer "sequentially invokes" (§IV-E). Shared by [`TensorFhe`] and the
/// request service.
#[must_use]
pub fn schedule_events(params: &CkksParams, op: FheOp, level: usize) -> Vec<KernelEvent> {
    match op {
        FheOp::HAdd => schedule::hadd_schedule(params, level),
        FheOp::HMult => schedule::hmult_schedule(params, level),
        FheOp::CMult => schedule::cmult_schedule(params, level),
        FheOp::HRotate => schedule::hrotate_schedule(params, level),
        FheOp::Rescale => schedule::rescale_schedule(params, level),
        FheOp::Conjugate => schedule::conjugate_schedule(params, level),
        FheOp::Bootstrap {
            taylor_degree,
            double_angles,
        } => schedule::bootstrap_schedule(params, taylor_degree, double_angles),
    }
}

/// Result of executing one batched operation.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The operation.
    pub op: FheOp,
    /// Batch width used.
    pub batch: usize,
    /// Device wall time for the batch (µs).
    pub time_us: f64,
    /// Amortised time per operation (µs).
    pub per_op_us: f64,
    /// Time-weighted occupancy.
    pub occupancy: f64,
    /// Energy for the batch (J).
    pub energy_j: f64,
    /// Operations per second at this batch width.
    pub ops_per_second: f64,
    /// Operations per watt (Table XI's metric).
    pub ops_per_watt: f64,
    /// Kernel launches issued.
    pub launches: usize,
    /// Per-kernel device time (name → µs).
    pub by_kernel: Vec<(String, f64)>,
}

impl OpReport {
    /// Builds a report from raw window statistics at a given device power
    /// draw — the canonical way to cost one engine-level schedule run:
    ///
    /// ```
    /// use tensorfhe_core::{FheOp, OpReport, TensorFhe};
    /// use tensorfhe_ckks::CkksParams;
    ///
    /// let params = CkksParams::test_small();
    /// let mut api = TensorFhe::builder(&params).build()?;
    /// let (op, level, batch) = (FheOp::HMult, params.max_level(), 8);
    /// let events = api.schedule_of(op, level);
    /// let stats = api.engine_mut().run_schedule(op.name(), &events, batch);
    /// let power = api.engine().config().device.power_watts;
    /// let report = OpReport::from_stats(op, batch, power, stats);
    /// assert_eq!(report.batch, 8);
    /// # Ok::<(), tensorfhe_core::CoreError>(())
    /// ```
    #[must_use]
    pub fn from_stats(op: FheOp, batch: usize, power_watts: f64, stats: OpStats) -> OpReport {
        let per_op = stats.time_us / batch.max(1) as f64;
        let ops_per_second = if stats.time_us > 0.0 {
            batch as f64 / (stats.time_us * 1e-6)
        } else {
            0.0
        };
        OpReport {
            op,
            batch,
            time_us: stats.time_us,
            per_op_us: per_op,
            occupancy: stats.occupancy,
            energy_j: stats.energy_j,
            ops_per_second,
            ops_per_watt: ops_per_second / power_watts,
            launches: stats.launches,
            by_kernel: stats.by_kernel,
        }
    }
}

/// Configures a [`TensorFhe`] handle or an [`FheService`]: parameters,
/// device model, NTT variant, data layout, execution mode and device count.
#[derive(Debug, Clone)]
pub struct TensorFheBuilder {
    pub(crate) params: CkksParams,
    pub(crate) device: DeviceConfig,
    pub(crate) variant: Variant,
    pub(crate) layout: Layout,
    pub(crate) exec_mode: ExecMode,
    pub(crate) devices: usize,
    pub(crate) sched: SchedPolicy,
    pub(crate) backend: Option<ExecBackend>,
    pub(crate) batch_cap: Option<usize>,
    pub(crate) key_cache_mb: Option<u64>,
    pub(crate) coalesce: Option<CoalescePolicy>,
    pub(crate) global_queue_cap: Option<usize>,
    pub(crate) rows_cap: Option<usize>,
}

impl TensorFheBuilder {
    /// Starts from the paper's defaults: one simulated A100 running the
    /// full tensor-core variant in the `(L, B, N)` layout, TimingOnly.
    #[must_use]
    pub fn new(params: &CkksParams) -> Self {
        Self {
            params: params.clone(),
            device: DeviceConfig::a100(),
            variant: Variant::TensorCore,
            layout: Layout::Lbn,
            exec_mode: ExecMode::TimingOnly,
            devices: 1,
            sched: SchedPolicy::default(),
            backend: None,
            batch_cap: None,
            key_cache_mb: None,
            coalesce: None,
            global_queue_cap: None,
            rows_cap: None,
        }
    }

    /// Replaces the parameter set (e.g. to re-target a configured builder
    /// at a workload's preset).
    #[must_use]
    pub fn params(mut self, params: &CkksParams) -> Self {
        self.params = params.clone();
        self
    }

    /// Simulated device model (A100/V100/GTX1080Ti or custom).
    #[must_use]
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// NTT lowering variant (Table IV).
    #[must_use]
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Batched-ciphertext layout (Fig. 9).
    #[must_use]
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Execution mode. [`ExecMode::Full`] is for driving the engine with
    /// [`Engine::make_tracer`] attached to a `tensorfhe_ckks::Evaluator`
    /// (real arithmetic, every kernel costed); the costing paths —
    /// [`crate::engine::Engine::run_schedule`] and the request service —
    /// are schedule-only, so [`TensorFheBuilder::service`] rejects `Full`.
    #[must_use]
    pub fn exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }

    /// Number of identical devices (`> 1` shards batches, §VII).
    #[must_use]
    pub fn devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// The unified scheduler policy: worker threads, pipeline depth,
    /// admission mode, scoreboard lookahead and aging bound, as one typed
    /// [`SchedPolicy`] value. Replaces the whole policy (unset fields
    /// resolve through their env var, then their default).
    ///
    /// Resolution order for every knob is *builder → environment →
    /// default*, with malformed or zero values a hard
    /// [`CoreError::InvalidConfig`] at [`TensorFheBuilder::service`] time:
    ///
    /// | knob | env var | default |
    /// |---|---|---|
    /// | `workers` | `TENSORFHE_WORKERS` | 1 (serial executor) |
    /// | `pipeline_depth` | `TENSORFHE_PIPELINE` | 1 (synchronous) |
    /// | `admission` | `TENSORFHE_ADMISSION` (`inorder`/`ooo`) | in-order |
    /// | `lookahead` | — | [`crate::sched::DEFAULT_LOOKAHEAD`] |
    /// | `aging_bound` | — | [`crate::sched::DEFAULT_AGING_BOUND`] |
    ///
    /// The execution backend resolves the same way (builder →
    /// `TENSORFHE_BACKEND` → simulated default) but lives outside
    /// [`SchedPolicy`]; see [`TensorFheBuilder::backend`]. So does the
    /// host real-row cap (builder → `TENSORFHE_ROWS_CAP` → `0` =
    /// uncapped); see [`TensorFheBuilder::rows_cap`].
    ///
    /// Every policy choice is deterministic and leaves drain reports and
    /// [`ServiceStats`] request accounting bit-identical; workers change
    /// host wall-clock only, while depth and admission move only the
    /// overlap metrics ([`crate::service::ServiceStats::elapsed_us`],
    /// [`crate::service::ServiceStats::overlap_fraction`],
    /// [`crate::service::ServiceStats::pipelined_ops_per_second`],
    /// [`crate::service::ServiceStats::inflight_hwm`],
    /// [`crate::service::ServiceStats::reorder_distance`],
    /// [`crate::service::ServiceStats::head_blocked_us`]).
    ///
    /// [`ServiceStats`]: crate::service::ServiceStats
    #[must_use]
    pub fn sched(mut self, policy: SchedPolicy) -> Self {
        self.sched = policy;
        self
    }

    /// Execution backend behind the [`crate::exec::Executor`] seam.
    ///
    /// [`ExecBackend::Sim`] (the default) is the pure timing model —
    /// serial [`crate::exec::SimExecutor`] or the
    /// [`crate::exec::ThreadedPool`] when workers are configured.
    /// [`ExecBackend::HostParallel`] routes every batch through the
    /// [`crate::exec::HostParallelExecutor`], whose per-device worker
    /// threads execute the batched-NTT and basis-conversion GEMMs with
    /// real cache-blocked Montgomery arithmetic on the host;
    /// [`ExecBackend::HostScalar`] is the same executor pinned to the
    /// Barrett scalar reference kernels (the fast kernels' baseline).
    /// Reports and [`crate::service::ServiceStats`] stay bit-identical
    /// across all three — the host backends add only wall-clock and the
    /// [`crate::exec::HostWorkStats`] counters.
    ///
    /// The `TENSORFHE_BACKEND` environment variable (`sim`,
    /// `host-parallel`, `host-scalar`) overrides the default but not this
    /// builder call; malformed spellings are a hard
    /// [`CoreError::InvalidConfig`] at [`TensorFheBuilder::service`] time.
    #[must_use]
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Cap on real rows (NTT) / width factor (Conv) the host backends
    /// execute per kernel-event shard. `0` (the default) is uncapped:
    /// every row of every batch runs through the work-stealing host
    /// executor at full width. A positive cap bounds the real arithmetic
    /// so paper-scale widths stay tractable on slow (e.g. debug-build)
    /// hosts — CI's bounded matrix corners set `TENSORFHE_ROWS_CAP=4`.
    ///
    /// Resolution follows the standard order (builder →
    /// `TENSORFHE_ROWS_CAP` → uncapped), with malformed values a hard
    /// [`CoreError::InvalidConfig`] at [`TensorFheBuilder::service`]
    /// time. The cap never changes drain reports or
    /// [`crate::service::ServiceStats`] — only host wall-clock and the
    /// [`crate::exec::HostWorkStats`] counters. Simulated backends
    /// ignore it.
    #[must_use]
    pub fn rows_cap(mut self, cap: usize) -> Self {
        self.rows_cap = Some(cap);
        self
    }

    /// Number of host worker threads driving the service's devices.
    ///
    /// `1` (the default) selects the serial [`crate::exec::SimExecutor`];
    /// more selects the [`crate::exec::ThreadedPool`], which shards every
    /// coalesced batch across one worker per device (clamped to the device
    /// count). Thin shim over [`TensorFheBuilder::sched`]'s `workers`
    /// field; see that method for the resolution rules.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.sched.workers = Some(workers);
        self
    }

    /// Depth of the service's in-flight batch window (the
    /// [`crate::sched::Scheduler`]'s pipeline).
    ///
    /// `1` (the default) reproduces the strictly synchronous drain — one
    /// batch submitted, joined, then the next. Larger depths keep up to
    /// `n` *independent* coalesced batches submitted-but-unjoined at once
    /// (no two in-flight batches may contain requests from the same client
    /// stream at the same ciphertext level, so chained operations observe
    /// program order). Thin shim over [`TensorFheBuilder::sched`]'s
    /// `pipeline_depth` field; see that method for the resolution rules.
    #[must_use]
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.sched.pipeline = Some(depth);
        self
    }

    /// Window-admission mode: in-order (the default) or the scoreboarded
    /// out-of-order mode that admits independent batches past a blocked
    /// head (see [`crate::sched`]'s module docs). Thin shim over
    /// [`TensorFheBuilder::sched`]'s `admission` field; see that method
    /// for the resolution rules.
    #[must_use]
    pub fn admission(mut self, mode: AdmissionMode) -> Self {
        self.sched.admission = Some(mode);
        self
    }

    /// Overrides the service's coalesced batch cap (defaults to the
    /// VRAM-feasible `auto_batch`, scaled by the device count).
    ///
    /// The cap can only *narrow* batches: values above
    /// `auto_batch × devices` are clamped down so the service's
    /// "VRAM-feasible batches" guarantee holds regardless of caller input.
    /// A zero cap is rejected at [`TensorFheBuilder::service`] time.
    #[must_use]
    pub fn batch_cap(mut self, cap: usize) -> Self {
        self.batch_cap = Some(cap);
        self
    }

    /// Per-device switch-key cache capacity in MiB (the session tier's
    /// residency budget). Defaults to
    /// [`crate::session::KEY_CACHE_VRAM_FRACTION`] of each device's VRAM
    /// — the complement of the 85% working-set budget
    /// [`crate::engine::auto_batch_for_vram`] reserves for ciphertexts.
    /// The `TENSORFHE_KEY_CACHE_MB` environment variable overrides the
    /// default but not this builder call. A zero capacity is rejected at
    /// [`TensorFheBuilder::service`] time.
    #[must_use]
    pub fn key_cache_mb(mut self, mb: u64) -> Self {
        self.key_cache_mb = Some(mb);
        self
    }

    /// Coalescing policy for session traffic:
    /// [`CoalescePolicy::KeyAffinity`] (the default) prefers grouping
    /// requests from the batch's first session together so a batch spans
    /// fewer key sets; [`CoalescePolicy::Blind`] coalesces in pure queue
    /// order, ignoring key residency. Anonymous traffic is unaffected.
    #[must_use]
    pub fn coalesce_policy(mut self, policy: CoalescePolicy) -> Self {
        self.coalesce = Some(policy);
        self
    }

    /// Global admission bound: the total number of queued-but-unserved
    /// session operations the service will hold before rejecting new
    /// session submissions ([`crate::service::RequestStatus::Rejected`]).
    /// Unset means unbounded. Anonymous traffic is never rejected. A zero
    /// cap is rejected at [`TensorFheBuilder::service`] time.
    #[must_use]
    pub fn global_queue_cap(mut self, cap: usize) -> Self {
        self.global_queue_cap = Some(cap);
        self
    }

    /// The engine configuration this builder describes.
    pub(crate) fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            device: self.device.clone(),
            variant: self.variant,
            layout: self.layout,
            exec_mode: self.exec_mode,
        }
    }

    /// Finishes as a direct single-device [`TensorFhe`] handle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless exactly one device is
    /// configured — multi-device execution goes through
    /// [`TensorFheBuilder::service`].
    pub fn build(self) -> CoreResult<TensorFhe> {
        if self.devices != 1 {
            return Err(CoreError::InvalidConfig(format!(
                "TensorFhe binds exactly one device (got {}); use .service() for clusters",
                self.devices
            )));
        }
        let cfg = self.engine_config();
        Ok(TensorFhe {
            params: self.params,
            engine: Engine::new(cfg),
        })
    }

    /// Finishes as a request-stream [`FheService`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero device count or a
    /// zero batch cap.
    pub fn service(self) -> CoreResult<FheService> {
        FheService::from_builder(self)
    }
}

/// The TensorFHE API layer bound to one parameter set and engine.
#[derive(Debug)]
pub struct TensorFhe {
    params: CkksParams,
    engine: Engine,
}

impl TensorFhe {
    /// Starts configuring a handle (or a service) for a parameter set.
    #[must_use]
    pub fn builder(params: &CkksParams) -> TensorFheBuilder {
        TensorFheBuilder::new(params)
    }

    /// Parameter set in use.
    #[must_use]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Access to the underlying engine (profiling, tracers).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Read access to the underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The kernel schedule of an operation at a level.
    #[must_use]
    pub fn schedule_of(&self, op: FheOp, level: usize) -> Vec<KernelEvent> {
        schedule_events(&self.params, op, level)
    }

    /// The batch size the API layer would choose (VRAM-bounded, capped at
    /// the parameter preset's configured batch).
    #[must_use]
    pub fn auto_batch(&self) -> usize {
        self.engine.auto_batch(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Variant;

    fn api(variant: Variant) -> TensorFhe {
        TensorFhe::builder(&CkksParams::test_small())
            .variant(variant)
            .build()
            .expect("single-device build")
    }

    /// Engine-level costing of one batched operation — the three-call
    /// sequence `run_op` used to bundle.
    fn cost(a: &mut TensorFhe, op: FheOp, level: usize, batch: usize) -> OpReport {
        let events = a.schedule_of(op, level);
        let stats = a.engine_mut().run_schedule(op.name(), &events, batch);
        let power = a.engine().config().device.power_watts;
        OpReport::from_stats(op, batch, power, stats)
    }

    #[test]
    fn builder_defaults_match_the_paper() {
        let api = api(Variant::TensorCore);
        let cfg = api.engine().config();
        assert_eq!(cfg.variant, Variant::TensorCore);
        assert_eq!(cfg.layout, Layout::Lbn);
        assert_eq!(cfg.exec_mode, ExecMode::TimingOnly);
        assert_eq!(cfg.device.name, DeviceConfig::a100().name);
    }

    #[test]
    fn builder_rejects_multi_device_direct_handles() {
        let err = TensorFhe::builder(&CkksParams::test_small())
            .devices(4)
            .build()
            .expect_err("clusters need the service");
        assert!(matches!(err, CoreError::InvalidConfig(_)));
        let err = TensorFhe::builder(&CkksParams::test_small())
            .devices(0)
            .build()
            .expect_err("zero devices");
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn reports_are_self_consistent() {
        let mut a = api(Variant::TensorCore);
        let level = a.params().max_level();
        let r = cost(&mut a, FheOp::HMult, level, 8);
        assert_eq!(r.batch, 8);
        assert!((r.per_op_us - r.time_us / 8.0).abs() < 1e-9);
        assert!(r.ops_per_second > 0.0);
        assert!(r.energy_j > 0.0);
        let total: f64 = r.by_kernel.iter().map(|(_, t)| t).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn hmult_is_ntt_dominated() {
        // §VI-B2: "the NTT kernels occupy the most significant proportion in
        // HMULT … 92.1%".
        let mut a = api(Variant::TensorCore);
        let level = a.params().max_level();
        let r = cost(&mut a, FheOp::HMult, level, 32);
        let ntt_time: f64 = r
            .by_kernel
            .iter()
            .filter(|(k, _)| k.starts_with("ntt") || k.starts_with("intt"))
            .map(|(_, t)| t)
            .sum();
        let total: f64 = r.by_kernel.iter().map(|(_, t)| t).sum();
        assert!(
            ntt_time / total > 0.5,
            "NTT share {} too small in {:?}",
            ntt_time / total,
            r.by_kernel
        );
    }

    #[test]
    fn auto_batch_respects_preset() {
        let a = api(Variant::TensorCore);
        let b = a.auto_batch();
        assert!(b >= 1);
        assert!(b <= a.params().batch_size().max(1));
    }

    #[test]
    fn bootstrap_dwarfs_single_ops() {
        let params = CkksParams::new("api-boot", 1 << 10, 19, 4, 5, 28, 26, 8).expect("valid");
        let mut a = TensorFhe::builder(&params).build().expect("build");
        let level = params.max_level();
        let mult = cost(&mut a, FheOp::HMult, level, 4);
        let boot = cost(
            &mut a,
            FheOp::Bootstrap {
                taylor_degree: 7,
                double_angles: 3,
            },
            level,
            4,
        );
        assert!(
            boot.time_us > mult.time_us * 20.0,
            "bootstrap {} vs hmult {}",
            boot.time_us,
            mult.time_us
        );
    }

    #[test]
    fn batching_improves_throughput() {
        // Fig. 14: larger batches raise kernel throughput until saturation.
        let mut a = api(Variant::TensorCore);
        let level = a.params().max_level();
        let b1 = cost(&mut a, FheOp::HMult, level, 1);
        let b32 = cost(&mut a, FheOp::HMult, level, 32);
        assert!(
            b32.ops_per_second > b1.ops_per_second * 2.0,
            "batched throughput {} vs single {}",
            b32.ops_per_second,
            b1.ops_per_second
        );
    }
}
