//! The TensorFHE engine: device ownership, configuration, batching.

use crate::error::{CoreError, CoreResult};
use crate::tracer::GpuTracer;
use std::cell::RefCell;
use std::rc::Rc;
use tensorfhe_ckks::{CkksContext, CkksParams, KernelEvent, KernelTracer};
use tensorfhe_gpu::{DeviceConfig, DeviceSim, Profiler};

/// The NTT lowering variant — Table IV's three TensorFHE configurations.
pub type Variant = tensorfhe_ntt::NttAlgorithm;

/// Batched-ciphertext memory layout (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `(L, B, N)` — limb-major, the paper's optimised layout.
    Lbn,
    /// `(B, L, N)` — operation-major, the naive layout.
    Bln,
}

/// Whether operations execute their arithmetic or only their schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Functional math plus cost model (tests, small parameters).
    Full,
    /// Cost model only — lets paper-scale workloads run in seconds.
    TimingOnly,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated device.
    pub device: DeviceConfig,
    /// NTT lowering.
    pub variant: Variant,
    /// Batched data layout.
    pub layout: Layout,
    /// Whether operations execute their arithmetic or only their schedules.
    pub exec_mode: ExecMode,
}

impl EngineConfig {
    /// A100 with the chosen variant (the paper's primary platform).
    #[must_use]
    pub fn a100(variant: Variant) -> Self {
        Self {
            device: DeviceConfig::a100(),
            variant,
            layout: Layout::Lbn,
            exec_mode: ExecMode::TimingOnly,
        }
    }

    /// V100 (the 100x / PrivFT platform).
    #[must_use]
    pub fn v100(variant: Variant) -> Self {
        Self {
            device: DeviceConfig::v100(),
            variant,
            layout: Layout::Lbn,
            exec_mode: ExecMode::TimingOnly,
        }
    }

    /// Overrides the batched layout (the Fig. 9 ablation).
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides the execution mode (Full-mode arithmetic vs cost model).
    #[must_use]
    pub fn with_exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }
}

/// Statistics for one executed operation window.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Wall time on the device for the whole batched operation (µs).
    pub time_us: f64,
    /// Time-weighted GPU occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Energy attributed to the window (J).
    pub energy_j: f64,
    /// Kernel launches in the window.
    pub launches: usize,
    /// Per-kernel time shares (name → µs).
    pub by_kernel: Vec<(String, f64)>,
}

/// Owner of the simulated device plus the engine configuration.
#[derive(Debug)]
pub struct Engine {
    sim: Rc<RefCell<DeviceSim>>,
    cfg: EngineConfig,
}

impl Engine {
    /// Creates an engine for the configuration.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        Self {
            sim: Rc::new(RefCell::new(DeviceSim::new(cfg.device.clone()))),
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Shared handle to the simulated device.
    #[must_use]
    pub fn device(&self) -> Rc<RefCell<DeviceSim>> {
        Rc::clone(&self.sim)
    }

    /// Creates a kernel tracer for `batch`-wide operations; attach it to a
    /// `tensorfhe_ckks::Evaluator` for Full-mode execution.
    #[must_use]
    pub fn make_tracer(&self, batch: usize) -> GpuTracer {
        GpuTracer::new(
            Rc::clone(&self.sim),
            self.cfg.variant,
            self.cfg.layout,
            batch,
        )
    }

    /// Builds a CKKS context whose arithmetic runs the engine's NTT
    /// [`Variant`] — pair it with [`Engine::make_tracer`] so Full-mode
    /// execution both *computes* and *costs* the selected formulation
    /// (butterfly stages vs batched wide GEMMs) end to end.
    ///
    /// Twiddle plans come from the process-wide plan cache, shared across
    /// engines and contexts with the same `(N, q, variant)` keys.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the parameter set cannot
    /// produce a context (not enough NTT-friendly primes).
    pub fn make_context(&self, params: &CkksParams) -> CoreResult<CkksContext> {
        CkksContext::with_algorithm(params, self.cfg.variant)
            .map_err(|e| CoreError::InvalidConfig(format!("context construction failed: {e}")))
    }

    /// Executes a synthetic kernel schedule (TimingOnly mode) under the
    /// given operation tag and batch, returning the window statistics.
    ///
    /// The window runs on a *fresh, zero-based* device clock: the result is
    /// a pure function of `(device config, events, batch)`, never of what
    /// the engine ran before. Executors and the service's dispatch cache
    /// rely on this — identical batches must cost bit-identically even when
    /// an out-of-order scoreboard dispatches them in a different order, and
    /// `span_us` over a persistent clock would leak the absolute offset
    /// into the last ulp of the window span. Full-mode tracing through
    /// [`Engine::make_tracer`] keeps the engine's persistent sim and
    /// profiler; only synthetic costing windows are isolated.
    pub fn run_schedule(&mut self, tag: &str, events: &[KernelEvent], batch: usize) -> OpStats {
        let sim = Rc::new(RefCell::new(DeviceSim::new(self.cfg.device.clone())));
        let mut tracer = GpuTracer::new(Rc::clone(&sim), self.cfg.variant, self.cfg.layout, batch);
        tracer.op_begin(tag);
        for &e in events {
            tracer.kernel(e);
        }
        sim.borrow_mut().synchronize();
        let sim = sim.borrow();
        let p = Profiler::new(sim.stats().to_vec());
        OpStats {
            time_us: p.span_us(),
            occupancy: p.occupancy(),
            energy_j: p.energy_j(),
            launches: sim.stats().len(),
            by_kernel: p.time_by_kernel(),
        }
    }

    /// Statistics over launches recorded since index `first`.
    #[must_use]
    pub fn window_stats(&self, first: usize) -> OpStats {
        let sim = self.sim.borrow();
        let window = &sim.stats()[first..];
        let p = Profiler::new(window.to_vec());
        OpStats {
            time_us: p.span_us(),
            occupancy: p.occupancy(),
            energy_j: p.energy_j(),
            launches: window.len(),
            by_kernel: p.time_by_kernel(),
        }
    }

    /// Number of launches recorded so far (window bookmarking).
    #[must_use]
    pub fn mark(&self) -> usize {
        self.sim.borrow().stats().len()
    }

    /// Profiler over everything recorded so far.
    #[must_use]
    pub fn profiler(&self) -> Profiler {
        Profiler::new(self.sim.borrow().stats().to_vec())
    }

    /// Total virtual time elapsed (µs).
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.sim.borrow().elapsed_us()
    }

    /// Clears recorded statistics (cost caches are kept).
    pub fn reset(&mut self) {
        self.sim.borrow_mut().reset();
    }

    /// The largest operation batch that fits in VRAM (§IV-E: "the batch
    /// size of TensorFHE is mainly determined by the VRAM capacity").
    ///
    /// Uses a working-set factor of 6 ciphertexts per batched operation
    /// (operands, extended key-switch accumulators, output).
    #[must_use]
    pub fn max_batch(&self, params: &CkksParams) -> usize {
        let per_op = params.ciphertext_bytes() * 6;
        let budget = (self.cfg.device.vram_bytes() as f64 * 0.85) as u64;
        ((budget / per_op.max(1)) as usize).max(1)
    }

    /// The batch size the API layer auto-selects: VRAM-bounded
    /// ([`Engine::max_batch`]), capped at the parameter preset's
    /// configured batch. Single source of the policy for both
    /// `TensorFhe::auto_batch` and the request service's default cap (the
    /// service reads the VRAM figure through its executor's `caps()`).
    #[must_use]
    pub fn auto_batch(&self, params: &CkksParams) -> usize {
        auto_batch_for_vram(self.cfg.device.vram_bytes(), params)
    }
}

/// The §IV-E batch policy as a pure function of device VRAM: the largest
/// operation batch fitting `vram_bytes` (working set of 6 ciphertexts per
/// batched operation, 85% budget), capped at the parameter preset's
/// configured batch. Shared by [`Engine::auto_batch`] and the request
/// service, which reads the VRAM figure from its executor's
/// [`crate::exec::ExecCaps`] so a real backend's capacity flows through.
#[must_use]
pub fn auto_batch_for_vram(vram_bytes: u64, params: &CkksParams) -> usize {
    let per_op = params.ciphertext_bytes() * 6;
    let budget = (vram_bytes as f64 * 0.85) as u64;
    ((budget / per_op.max(1)) as usize)
        .max(1)
        .min(params.batch_size().max(1))
}

/// Deterministic cost of staging `bytes` of switch-key material onto a
/// device: one launch overhead plus the PCIe DMA time of the copy engine
/// ([`tensorfhe_gpu::H2D_BANDWIDTH_GBPS`]). Zero bytes cost nothing —
/// a fully resident key set never touches the bus.
#[must_use]
pub fn key_upload_us(bytes: u64, device: &DeviceConfig) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    device.kernel_launch_us + bytes as f64 / (tensorfhe_gpu::H2D_BANDWIDTH_GBPS * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{hadd_schedule, hmult_schedule};

    fn small() -> CkksParams {
        CkksParams::test_small()
    }

    #[test]
    fn run_schedule_produces_time() {
        let params = small();
        let mut e = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let s = e.run_schedule("HADD", &hadd_schedule(&params, 7), 8);
        assert!(s.time_us > 0.0);
        assert!(s.launches >= 1);
    }

    #[test]
    fn hmult_much_more_expensive_than_hadd() {
        let params = small();
        let mut e = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let add = e.run_schedule("HADD", &hadd_schedule(&params, 7), 8);
        let mult = e.run_schedule("HMULT", &hmult_schedule(&params, 7), 8);
        assert!(
            mult.time_us > add.time_us * 5.0,
            "HMULT {} vs HADD {}",
            mult.time_us,
            add.time_us
        );
    }

    #[test]
    fn variant_ordering_tc_beats_co_beats_nt() {
        // The paper's headline: TensorFHE > TensorFHE-CO > TensorFHE-NT for
        // NTT-heavy operations at the default parameters.
        let params = CkksParams::table_v_default();
        let sched = hmult_schedule(&params, params.max_level());
        let mut times = Vec::new();
        for v in [Variant::Butterfly, Variant::FourStep, Variant::TensorCore] {
            let mut e = Engine::new(EngineConfig::a100(v));
            let s = e.run_schedule("HMULT", &sched, 16);
            times.push((v.label(), s.time_us));
        }
        assert!(times[0].1 > times[1].1, "CO must beat NT: {times:?}");
        assert!(times[1].1 > times[2].1, "TC must beat CO: {times:?}");
    }

    #[test]
    fn lbn_layout_beats_bln_for_batched_ops() {
        let params = small();
        let sched = hadd_schedule(&params, 7);
        let mut fast = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let mut slow =
            Engine::new(EngineConfig::a100(Variant::TensorCore).with_layout(Layout::Bln));
        let f = fast.run_schedule("HADD", &sched, 64);
        let s = slow.run_schedule("HADD", &sched, 64);
        assert!(
            s.time_us > f.time_us * 1.3,
            "(B,L,N) {} should lag (L,B,N) {}",
            s.time_us,
            f.time_us
        );
    }

    #[test]
    fn max_batch_tracks_vram() {
        let e = Engine::new(EngineConfig::a100(Variant::TensorCore));
        let b_default = e.max_batch(&CkksParams::table_v_default());
        assert!(
            (64..=512).contains(&b_default),
            "A100 default-params batch {b_default} out of plausible range"
        );
        let b_small = e.max_batch(&small());
        assert!(b_small > b_default, "smaller ciphertexts → bigger batches");
    }

    #[test]
    fn batched_gemm_ntt_beats_per_limb_butterfly() {
        // The fig08_batch_ntt acceptance property, pinned in the test
        // suite: at N = 2^13, a B·L ≥ 16 block through the batched GEMM
        // pipeline outruns B·L independent per-limb butterfly kernels.
        let n = 1 << 13;
        let per_transform = |variant: Variant, bl: usize| {
            let mut e = Engine::new(EngineConfig::a100(variant));
            let events: Vec<KernelEvent> = if variant == Variant::Butterfly {
                (0..bl)
                    .map(|_| KernelEvent::Ntt {
                        n,
                        limbs: 1,
                        inverse: false,
                    })
                    .collect()
            } else {
                vec![KernelEvent::Ntt {
                    n,
                    limbs: bl,
                    inverse: false,
                }]
            };
            e.run_schedule("NTT", &events, 1).time_us / bl as f64
        };
        for bl in [16usize, 64, 256] {
            let nt = per_transform(Variant::Butterfly, bl);
            let co = per_transform(Variant::FourStep, bl);
            assert!(
                co < nt,
                "batched GEMM must beat per-limb butterflies at B·L={bl}: {co} vs {nt}"
            );
        }
        // The tensor-core pipeline amortizes its 16-plane stages in the
        // deep-batch regime and then wins by an order of magnitude.
        let nt = per_transform(Variant::Butterfly, 256);
        let tc = per_transform(Variant::TensorCore, 256);
        assert!(
            tc * 5.0 < nt,
            "deep tensor-core block must win big: {tc} vs {nt}"
        );
    }

    #[test]
    fn gemm_lowered_conv_beats_scalar_conv_at_paper_scale() {
        // The fig09_basis_conv acceptance property, pinned in the test
        // suite: at the ResNet-20 key-switch shape (N = 2^16, α = 3,
        // L_dst = 30) with the paper's operation batch, the wide-GEMM
        // lowering of the Conv kernel beats the scalar per-residue walk.
        let ev = KernelEvent::Conv {
            n: 1 << 16,
            l_src: 3,
            l_dst: 30,
        };
        let time = |variant: Variant, batch: usize| {
            let mut e = Engine::new(EngineConfig::a100(variant));
            e.run_schedule("CONV", std::slice::from_ref(&ev), batch)
                .time_us
        };
        let nt = time(Variant::Butterfly, 64);
        let co = time(Variant::FourStep, 64);
        assert!(
            co * 2.0 < nt,
            "GEMM conv must win ≥2× at paper scale: CO {co} vs NT {nt}"
        );
        // The win holds across the batch sweep, not just at one width: the
        // serial-chain kernel is latency-bound at low occupancy (where the
        // GEMM win is largest) and bandwidth-bound once deep batches
        // saturate the device — it loses everywhere.
        let ratio_1 = time(Variant::Butterfly, 1) / time(Variant::FourStep, 1);
        assert!(
            ratio_1 >= 2.0,
            "GEMM conv must also win unbatched: ratio {ratio_1}"
        );
    }

    #[test]
    fn occupancy_grows_with_batch() {
        let params = small();
        let sched = hmult_schedule(&params, 7);
        let mut e = Engine::new(EngineConfig::a100(Variant::Butterfly));
        let small_b = e.run_schedule("HMULT", &sched, 1);
        let big_b = e.run_schedule("HMULT", &sched, 128);
        assert!(
            big_b.occupancy > small_b.occupancy * 2.0,
            "batching must raise occupancy: {} vs {}",
            big_b.occupancy,
            small_b.occupancy
        );
    }
}
