//! The request-stream service front end (§IV-E as a *system* job).
//!
//! The paper's API layer "collects and decomposes the requests for FHE
//! operations from the user applications … automatically generates the best
//! batch size … and sequentially invokes the kernels in the workflow". The
//! seed code put the batch in the caller's hands; this module moves it where
//! the paper puts it — the service:
//!
//! 1. Many clients [`FheService::submit`] heterogeneous [`FheRequest`]s
//!    (operation + level + count + client tag) and get typed [`RequestId`]
//!    handles back.
//! 2. [`FheService::drain`] coalesces *compatible* queued requests — same
//!    operation at the same level — into VRAM-feasible batches (the
//!    `auto_batch` bound of §IV-E, multiplied across devices), preserving
//!    FIFO order across client tags. Batch formation and the in-flight
//!    window live in the [`crate::sched::Scheduler`]; `drain` is a thin
//!    loop that fills the window and settles completed batches.
//! 3. Each batch is dispatched through the pluggable
//!    [`crate::exec::Executor`] seam — serial simulated launches
//!    ([`crate::exec::SimExecutor`]) or one worker thread per device
//!    ([`crate::exec::ThreadedPool`], selected by
//!    [`TensorFheBuilder::workers`] or the `TENSORFHE_WORKERS` environment
//!    variable). With a pipeline depth above one
//!    ([`TensorFheBuilder::pipeline_depth`] / `TENSORFHE_PIPELINE`), up to
//!    `depth` *independent* batches stay submitted-but-unjoined at once —
//!    no two in-flight batches may contain requests from the same client
//!    stream at the same ciphertext level, so chained operations observe
//!    program order. Handles are joined in submission order, which keeps
//!    cost attribution back to the requests — every request's
//!    [`OpReport`], queue latency, and the aggregate [`ServiceStats`]
//!    (batch-fill efficiency, per-device utilization, ops/s, ops/W) —
//!    **bit-identical at every depth and worker count**; pipelining only
//!    moves the schedule-level overlap accounting
//!    ([`ServiceStats::elapsed_us`], [`ServiceStats::overlap_fraction`],
//!    [`ServiceStats::pipelined_ops_per_second`]). Every scheduler knob —
//!    workers, depth, and the opt-in out-of-order admission mode
//!    ([`crate::sched::AdmissionMode`], `TENSORFHE_ADMISSION`) with its
//!    lookahead and aging bound — is configured through one typed
//!    [`crate::sched::SchedPolicy`] on the builder
//!    ([`TensorFheBuilder::sched`]).
//!
//! Time is *virtual* (simulated-device microseconds), consistent with the
//! rest of the reproduction: the service clock advances by the wall time of
//! each dispatched batch, so queue latency measures exactly the time a
//! request waited behind earlier batches.
//!
//! Identical batches — same `(op, level, width)` in TimingOnly mode — cost
//! the same by construction, so dispatch results are cached. This is the
//! same device-time-preserving shortcut the workload runner has always used,
//! and it keeps paper-scale streams (tens of thousands of operations)
//! tractable.

use crate::api::{schedule_events, FheOp, OpReport, TensorFheBuilder};
use crate::engine::ExecMode;
use crate::error::{CoreError, CoreResult};
use crate::exec::{build_executor, BatchResult, ExecBackend, ExecBatch, Executor};
use crate::sched::{
    AdmissionMode, BatchPlan, Finished, Plan, Scheduler, SlotView, Work, DEFAULT_AGING_BOUND,
    DEFAULT_LOOKAHEAD,
};
use crate::session::{
    default_galois_steps, jain_index, key_set_bytes, ClientSession, CoalescePolicy, DrrState,
    KeyCache, ResidencyEvent, SessionConfig, SessionId, KEY_CACHE_VRAM_FRACTION,
};
use std::collections::{BTreeSet, HashMap, VecDeque};
use tensorfhe_ckks::CkksParams;
use tensorfhe_gpu::DeviceConfig;

/// Fraction of a session's deadline budget below which its pending work is
/// scheduled *urgently*: earliest slack first, ahead of the fair-share
/// rotation, with partially-filled same-session batches allowed. A quarter
/// of the budget leaves the batch enough runway to actually execute.
const URGENCY_FRACTION: f64 = 0.25;

/// Typed handle to a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw numeric id (monotonically increasing per service).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One client request: `count` invocations of `op` at ciphertext `level`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FheRequest {
    /// The operation.
    pub op: FheOp,
    /// Ciphertext level the operation runs at.
    pub level: usize,
    /// How many independent instances of the operation are requested.
    pub count: usize,
    /// Client tag (for fairness accounting and per-tenant reporting).
    pub client: String,
    /// The registered session this request belongs to, if any. Session
    /// requests ride the fair-share/residency pipeline; anonymous
    /// requests (`None`) keep the plain FIFO path.
    pub session: Option<SessionId>,
}

impl FheRequest {
    /// Creates an anonymous request.
    pub fn new(op: FheOp, level: usize, count: usize, client: impl Into<String>) -> Self {
        Self {
            op,
            level,
            count,
            client: client.into(),
            session: None,
        }
    }

    /// Creates a request inside a registered session. The report tag is
    /// the session's name (set at submission).
    pub fn in_session(op: FheOp, level: usize, count: usize, session: SessionId) -> Self {
        Self {
            op,
            level,
            count,
            client: String::new(),
            session: Some(session),
        }
    }
}

/// Completion report for one request: its attributed share of the batches
/// it rode in, plus queueing behaviour.
#[derive(Debug, Clone)]
pub struct RequestReport {
    /// The request handle.
    pub id: RequestId,
    /// Client tag the request carried.
    pub client: String,
    /// Level the request ran at.
    pub level: usize,
    /// Virtual time spent queued: submission → last instance completed (µs).
    pub queue_us: f64,
    /// Device batches this request's instances were coalesced into.
    pub batches: usize,
    /// The attributed operation report (`batch` = the request's `count`;
    /// time/energy/kernel shares are the request's proportional slice of
    /// the batches it shared with other requests).
    pub report: OpReport,
}

/// Queue state of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Still queued, with this many operation instances left to run;
    /// nothing from this request is currently on a device.
    Queued {
        /// Instances not yet dispatched.
        remaining: usize,
    },
    /// Part of the request is reserved by the scheduler (a mid-drain
    /// state, observable between [`FheService::pump`] steps): inside a
    /// submitted-but-unjoined batch, or — under out-of-order admission —
    /// a plan frozen in the scoreboard or a batch awaiting serial
    /// settlement.
    InFlight {
        /// Instances inside in-flight batches (or scoreboard plans).
        executing: usize,
        /// Instances still queued behind them.
        remaining: usize,
    },
    /// Fully served; its report was (or will be) returned by the drain
    /// that completed it.
    Completed,
    /// Refused at submission by admission control (per-session or global
    /// queue bound); nothing was ever queued for it.
    Rejected,
    /// Dropped by the scheduler: its session's deadline budget expired
    /// before any instance ran, so the service shed it instead of doing
    /// already-late work.
    Shed,
}

/// Aggregate service statistics since construction.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Requests fully served.
    pub requests_completed: usize,
    /// Operation instances ever submitted (accepted *or* refused): every
    /// op is conserved — `ops_submitted = ops_completed + ops_shed +
    /// ops_rejected + pending`, the closure the schedule verifier holds
    /// the service to.
    pub ops_submitted: usize,
    /// Operation instances executed.
    pub ops_completed: usize,
    /// Operation instances dropped when their request was shed (deadline
    /// budget expired unserved).
    pub ops_shed: usize,
    /// Operation instances refused at submission by admission control.
    pub ops_rejected: usize,
    /// Device batches dispatched.
    pub batches_dispatched: usize,
    /// Kernel launches across all dispatched batches. Per-request launch
    /// attribution sums exactly to this total.
    pub launches: usize,
    /// Coalesced batch width the service will not exceed (never above the
    /// VRAM-feasible `auto_batch × devices`; user caps are clamped).
    pub batch_cap: usize,
    /// Devices serving the queue.
    pub devices: usize,
    /// Host worker threads driving the devices (1 = serial executor).
    pub workers: usize,
    /// Execution backend label ([`crate::exec::ExecBackend::label`]):
    /// `"sim"`, `"host-parallel"` or `"host-scalar"`. Every other field
    /// in this struct is bit-identical across all three.
    pub backend: &'static str,
    /// Configured in-flight window depth (1 = strictly synchronous
    /// rounds, the pre-scheduler behaviour).
    pub pipeline_depth: usize,
    /// Configured window-admission mode. Both modes produce bit-identical
    /// reports and request-accounting stats; out-of-order admission moves
    /// only the overlap clock (and the two reorder stats below).
    pub admission: AdmissionMode,
    /// Configured scoreboard lookahead (pending plans); only consulted
    /// under out-of-order admission.
    pub lookahead: usize,
    /// Configured aging bound (eligible bypasses before forced
    /// admission); only consulted under out-of-order admission.
    pub aging_bound: usize,
    /// Max `|admission index − serial plan index|` the scoreboard
    /// actually reordered by. Always 0 under in-order admission.
    pub reorder_distance: usize,
    /// Total time admitted batches spent frozen in the scoreboard behind
    /// a blocked head (µs, virtual). Exactly 0.0 under in-order
    /// admission. A schedule-level diagnostic, excluded — like
    /// `elapsed_us` — from the depth-invariant request accounting.
    pub head_blocked_us: f64,
    /// Most batches ever simultaneously submitted-but-unjoined. `≤ 1`
    /// under a depth-1 window; larger values mean the scheduler really
    /// overlapped independent batches.
    pub inflight_hwm: usize,
    /// Busy time per device (µs, virtual), indexed by device: the sum of
    /// every shard that device executed under the canonical device-order
    /// shard layout. Sums across devices to the total attributed device
    /// time of all dispatched batches, and is depth-invariant (per
    /// *device slot*, not per worker thread — with fewer workers than
    /// devices each worker drives several devices; and with a pipeline
    /// depth above one the overlap clock may re-place shards onto idle
    /// device queues without moving this attribution).
    pub device_busy_us: Vec<f64>,
    /// Busy-time fraction per device: `device_busy_us[i] / busy_us`, i.e.
    /// the share of the service's busy window device `i` spent executing
    /// shards. `1.0` means the device was on the critical path of every
    /// batch (always true for a single device); utilizations times
    /// `busy_us` sum-match the total attributed launch time exactly.
    pub device_utilization: Vec<f64>,
    /// Mean fraction of the batch cap actually filled, in `(0, 1]`.
    pub batch_fill: f64,
    /// Total device busy time (µs, virtual): the sum of every dispatched
    /// batch's wall time — the serial reference clock requests are
    /// accounted against, identical at every pipeline depth.
    pub busy_us: f64,
    /// Overlap-clock makespan (µs, virtual): when the last device went
    /// idle under the scheduler's per-device FIFO model. Bit-identical to
    /// [`ServiceStats::busy_us`] at depth 1; smaller whenever independent
    /// batches really overlapped.
    pub elapsed_us: f64,
    /// `1 − elapsed_us / busy_us`: the fraction of serial batch time the
    /// in-flight window hid by overlapping independent batches. Exactly
    /// `0.0` at depth 1.
    pub overlap_fraction: f64,
    /// Total energy charged (J).
    pub energy_j: f64,
    /// Mean queue latency over completed requests (µs, virtual).
    pub mean_queue_us: f64,
    /// Aggregate throughput: completed operations per second of busy time.
    /// Depth-invariant (the request-accounting metric).
    pub ops_per_second: f64,
    /// Schedule-level throughput: completed operations per second of
    /// *elapsed* (overlap-clock) time. Equals [`ServiceStats::ops_per_second`]
    /// at depth 1 and exceeds it exactly when batches overlapped — the
    /// `fig11_pipeline` metric.
    pub pipelined_ops_per_second: f64,
    /// Aggregate operations per watt (Table XI's service-level metric).
    pub ops_per_watt: f64,
    /// Key-cache hit rate over all residency lookups; `1.0` when no
    /// session traffic ever looked a key set up.
    pub key_cache_hit_rate: f64,
    /// Residency lookups that found the session's keys on-device.
    pub key_cache_hits: u64,
    /// Residency lookups that had to upload over PCIe.
    pub key_cache_misses: u64,
    /// Resident key sets displaced to make room for uploads.
    pub key_cache_evictions: u64,
    /// Batches that stalled on a key upload before their gang start.
    pub key_uploads: usize,
    /// Total key-staging time charged to batch critical paths (µs,
    /// virtual). Part of [`ServiceStats::elapsed_us`], never of
    /// [`ServiceStats::busy_us`] (the copy engine is not device compute).
    pub key_upload_us: f64,
    /// `(session name, ops served)` per registered session, in
    /// registration order.
    pub per_session_ops: Vec<(String, usize)>,
    /// Jain's fairness index over per-session served ops, in `(0, 1]`;
    /// `1.0` with no sessions (vacuously fair).
    pub fairness_index: f64,
    /// Completions that blew their session's deadline budget.
    pub deadline_misses: usize,
    /// Requests shed after their deadline expired unserved.
    pub shed_count: usize,
    /// Submissions refused by admission control.
    pub rejected_count: usize,
    /// Real-work chunks executed by a worker other than their device's
    /// owner ([`crate::exec::StealStats::steals`]). Always 0 on simulated
    /// backends. Scheduling telemetry — depends on thread timing, and is
    /// excluded (like `workers`/`backend`) from bit-identity contracts.
    pub steals: u64,
    /// Work units (NTT rows / Conv columns) inside those stolen chunks.
    /// Always 0 on simulated backends; telemetry like
    /// [`ServiceStats::steals`].
    pub stolen_rows: u64,
    /// Lanes of the register tile the backend's GEMMs run on: 0 for the
    /// simulated backend (no host arithmetic), 1 for `host-scalar`
    /// (Barrett reference), [`tensorfhe_math::simd::active_lanes`] for
    /// `host-parallel`. Names the kernel, never changes results.
    pub simd_lanes: usize,
}

/// A queued request with its accumulated attribution.
#[derive(Debug)]
struct Pending {
    id: RequestId,
    req: FheRequest,
    /// The registered session the request rides in, if any (denormalised
    /// from `req` so the fill walk avoids re-deriving bucket indices).
    session: Option<SessionId>,
    /// The client tag as a shared key: planning walks clone refcounts
    /// into independence keys instead of allocating strings.
    client_key: std::sync::Arc<str>,
    /// Instances not yet planned into any batch.
    remaining: usize,
    /// Instances reserved by submitted-but-unjoined batches.
    executing: usize,
    submitted_us: f64,
    time_us: f64,
    energy_j: f64,
    occ_weighted: f64,
    /// Exact kernel-launch count attributed to this request: shares are
    /// apportioned so every batch's launches sum exactly to the batch total
    /// (largest-remainder, FIFO tie-break).
    launches: u64,
    by_kernel: std::collections::BTreeMap<String, f64>,
    batches: usize,
}

/// The batching FHE service front end.
///
/// The queue holds `Option<Pending>` slots: a completed mid-queue request is
/// finalized in place and leaves a tombstone (`None`). Leading tombstones
/// are compacted away after every settled batch — in-flight take indices
/// are rebased in step ([`crate::sched::Scheduler::rebase`]) — and the
/// `head` cursor keeps planning walks from rescanning dead prefixes, so
/// the per-batch work stays linear in the requests a batch actually
/// touched (a `VecDeque::remove`-based sweep restarting from index 0 made
/// paper-scale streams O(Q²)) and the queue stays bounded by live
/// requests even under sustained pump-driven load.
#[derive(Debug)]
pub struct FheService {
    params: CkksParams,
    executor: Box<dyn Executor>,
    /// Executor capabilities, snapshotted at construction (static for the
    /// service's lifetime; avoids re-querying `caps()` on every stats
    /// call).
    caps: crate::exec::ExecCaps,
    /// Resolved execution backend. Gates the dispatch cache: only the
    /// simulated backend replays costs without touching the executor —
    /// the host backends must execute real arithmetic on every dispatch,
    /// or benches and `host_work` counters would measure cache hits.
    backend: ExecBackend,
    batch_cap: usize,
    power_watts: f64,
    queue: VecDeque<Option<Pending>>,
    /// First queue index that may still need planning (everything before
    /// it is a tombstone or fully reserved).
    head: usize,
    /// The in-flight window + overlap clock.
    sched: Scheduler,
    next_id: u64,
    clock_us: f64,
    // Cumulative accounting.
    requests_completed: usize,
    ops_submitted: usize,
    ops_completed: usize,
    ops_shed: usize,
    ops_rejected: usize,
    batches_dispatched: usize,
    launches_total: usize,
    fill_sum: f64,
    busy_us: f64,
    /// Busy time per device (sum of the shards each device executed).
    device_busy_us: Vec<f64>,
    energy_j: f64,
    queue_latency_sum_us: f64,
    // lint: ordered-ok (keyed get/insert only; never iterated)
    cost_cache: HashMap<(FheOp, usize, usize), BatchResult>,
    // --- Session tier (all inert while `sessions` is empty) ---
    /// Device model, kept for key-upload costing (launch overhead + DMA).
    device: DeviceConfig,
    /// Registered sessions, indexed by `SessionId::raw()`.
    sessions: Vec<ClientSession>,
    /// Per-device LRU over session key-set footprints.
    key_cache: KeyCache,
    /// How the session fill walk orders candidate slots.
    policy: CoalescePolicy,
    /// Deficit-round-robin buckets: 0 = anonymous, session `s` = `s + 1`.
    drr: DrrState,
    /// Global bound on queued session ops (admission control).
    global_queue_cap: Option<usize>,
    /// Session ops currently queued, service-wide.
    queued_session_ops: usize,
    key_upload_us_total: f64,
    key_upload_count: usize,
    rejected: BTreeSet<RequestId>,
    shed: BTreeSet<RequestId>,
    deadline_misses: usize,
}

impl FheService {
    /// Starts configuring a service — equivalent to
    /// [`crate::api::TensorFhe::builder`] followed by
    /// [`TensorFheBuilder::service`].
    #[must_use]
    pub fn builder(params: &CkksParams) -> TensorFheBuilder {
        TensorFheBuilder::new(params)
    }

    pub(crate) fn from_builder(b: TensorFheBuilder) -> CoreResult<Self> {
        if b.devices == 0 {
            return Err(CoreError::InvalidConfig("need at least one device".into()));
        }
        if b.exec_mode == ExecMode::Full {
            return Err(CoreError::InvalidConfig(
                "the request service is schedule-only (TimingOnly); Full-mode \
                 arithmetic runs through Engine::make_tracer + an Evaluator"
                    .into(),
            ));
        }
        let cfg = b.engine_config();
        // Worker-thread count: an explicit builder setting wins, then the
        // `TENSORFHE_WORKERS` environment override (the CI matrix knob),
        // then the serial default. A malformed override is a hard error —
        // silently falling back to the serial executor would let the CI
        // determinism matrix pass vacuously. Executors are deterministic,
        // so the choice only changes host wall-clock, never results.
        let workers = match b.sched.workers {
            Some(w) => w,
            None => match std::env::var("TENSORFHE_WORKERS") {
                Ok(v) => v.trim().parse::<usize>().map_err(|_| {
                    CoreError::InvalidConfig(format!(
                        "TENSORFHE_WORKERS must be a worker count, got {v:?}"
                    ))
                })?,
                Err(_) => 1,
            },
        };
        // Pipeline depth: same resolution order and strictness as the
        // worker count — builder, then the `TENSORFHE_PIPELINE` CI matrix
        // knob, then the depth-1 (strictly synchronous) default. The
        // scheduler is deterministic at every depth, so the choice moves
        // only the overlap accounting, never reports.
        let depth = match b.sched.pipeline {
            Some(d) => d,
            None => match std::env::var("TENSORFHE_PIPELINE") {
                Ok(v) => v.trim().parse::<usize>().map_err(|_| {
                    CoreError::InvalidConfig(format!(
                        "TENSORFHE_PIPELINE must be a window depth, got {v:?}"
                    ))
                })?,
                Err(_) => 1,
            },
        };
        if depth == 0 {
            return Err(CoreError::InvalidConfig(
                "pipeline depth must be non-zero".into(),
            ));
        }
        // Admission mode: builder, then the `TENSORFHE_ADMISSION` CI
        // matrix knob, then the in-order default. Anything but the two
        // documented spellings is a hard error — the same strictness as
        // the other environment knobs. Both modes are deterministic and
        // report-bit-identical; the choice moves only the overlap clock.
        let admission = match b.sched.admission {
            Some(m) => m,
            None => match std::env::var("TENSORFHE_ADMISSION") {
                Ok(v) => match v.trim() {
                    "inorder" => AdmissionMode::InOrder,
                    "ooo" => AdmissionMode::OutOfOrder,
                    _ => {
                        return Err(CoreError::InvalidConfig(format!(
                            "TENSORFHE_ADMISSION must be \"inorder\" or \"ooo\", got {v:?}"
                        )))
                    }
                },
                Err(_) => AdmissionMode::InOrder,
            },
        };
        let lookahead = b.sched.lookahead.unwrap_or(DEFAULT_LOOKAHEAD);
        if lookahead == 0 {
            return Err(CoreError::InvalidConfig(
                "scoreboard lookahead must be non-zero".into(),
            ));
        }
        let aging_bound = b.sched.aging_bound.unwrap_or(DEFAULT_AGING_BOUND);
        if aging_bound == 0 {
            return Err(CoreError::InvalidConfig(
                "scoreboard aging bound must be non-zero".into(),
            ));
        }
        // Execution backend: builder, then the `TENSORFHE_BACKEND` CI
        // matrix knob, then the simulated default. The host backends
        // execute real GEMM arithmetic behind the same seam; reports stay
        // bit-identical, so the choice moves only host wall-clock and the
        // `host_work` counters. Malformed spellings are hard errors, like
        // every other environment knob.
        let backend = match b.backend {
            Some(be) => be,
            None => match std::env::var("TENSORFHE_BACKEND") {
                Ok(v) => ExecBackend::parse(v.trim()).ok_or_else(|| {
                    CoreError::InvalidConfig(format!(
                        "TENSORFHE_BACKEND must be \"sim\", \"host-parallel\" or \
                         \"host-scalar\", got {v:?}"
                    ))
                })?,
                Err(_) => ExecBackend::Sim,
            },
        };
        // Real-row cap for the host backends: builder, then the
        // `TENSORFHE_ROWS_CAP` CI matrix knob, then uncapped (`0` = every
        // row executes, the full-width default). A positive cap bounds
        // real arithmetic per kernel-event shard so paper widths stay
        // tractable on slow (debug-mode) hosts; it never changes reports
        // or the simulated stats, only host wall-clock and the
        // `host_work` counters. Malformed overrides are hard errors, like
        // every other environment knob. Sim backends ignore it.
        let rows_cap = match b.rows_cap {
            Some(cap) => cap,
            None => match std::env::var("TENSORFHE_ROWS_CAP") {
                Ok(v) => v.trim().parse::<usize>().map_err(|_| {
                    CoreError::InvalidConfig(format!(
                        "TENSORFHE_ROWS_CAP must be a row count (0 = uncapped), got {v:?}"
                    ))
                })?,
                Err(_) => crate::exec::host::DEFAULT_ROWS_CAP,
            },
        };
        let executor = build_executor(&cfg, b.devices, workers, backend, rows_cap)?;
        // The executor owns the capability queries: a backend with
        // different board power or VRAM reports it through `caps()`, and
        // the batch policy / ops/W follow automatically.
        let caps = executor.caps();
        let power_watts = caps.power_watts;
        // §IV-E: the batch size is chosen by the API layer, bounded by VRAM
        // (and the parameter preset's configured batch), scaled across the
        // cluster — each device only ever holds its own shard.
        let auto = crate::engine::auto_batch_for_vram(caps.vram_bytes_per_device, &b.params);
        // A user-supplied cap may narrow batches below the VRAM bound but
        // never widen them past it: the docs promise "VRAM-feasible
        // batches", so caps above `auto_batch × devices` are clamped down.
        let vram_cap = auto * b.devices;
        let batch_cap = match b.batch_cap {
            Some(0) => {
                return Err(CoreError::InvalidConfig(
                    "batch cap must be non-zero".into(),
                ))
            }
            Some(cap) => cap.min(vram_cap),
            None => vram_cap,
        };
        // Key-cache capacity: an explicit builder setting wins, then the
        // `TENSORFHE_KEY_CACHE_MB` environment knob, then the VRAM slice
        // the ciphertext batch policy leaves free. Malformed or zero
        // overrides are hard errors — the same strictness as the other
        // environment knobs, since a silently-unbounded cache would let
        // residency experiments pass vacuously.
        let key_cache_bytes = match b.key_cache_mb {
            Some(0) => {
                return Err(CoreError::InvalidConfig(
                    "key cache capacity must be non-zero".into(),
                ))
            }
            Some(mb) => mb.saturating_mul(1 << 20),
            None => match std::env::var("TENSORFHE_KEY_CACHE_MB") {
                Ok(v) => {
                    let mb = v.trim().parse::<u64>().map_err(|_| {
                        CoreError::InvalidConfig(format!(
                            "TENSORFHE_KEY_CACHE_MB must be a capacity in MiB, got {v:?}"
                        ))
                    })?;
                    if mb == 0 {
                        return Err(CoreError::InvalidConfig(
                            "TENSORFHE_KEY_CACHE_MB must be non-zero".into(),
                        ));
                    }
                    mb.saturating_mul(1 << 20)
                }
                Err(_) => (caps.vram_bytes_per_device as f64 * KEY_CACHE_VRAM_FRACTION) as u64,
            },
        };
        if b.global_queue_cap == Some(0) {
            return Err(CoreError::InvalidConfig(
                "global queue cap must be non-zero".into(),
            ));
        }
        // Bucket 0 is the anonymous FIFO traffic; sessions grow from 1.
        let mut drr = DrrState::new();
        drr.grow();
        Ok(Self {
            params: b.params,
            executor,
            caps,
            backend,
            batch_cap,
            power_watts,
            queue: VecDeque::new(),
            head: 0,
            sched: Scheduler::with_policy(depth, b.devices, admission, lookahead, aging_bound),
            next_id: 0,
            clock_us: 0.0,
            requests_completed: 0,
            ops_submitted: 0,
            ops_completed: 0,
            ops_shed: 0,
            ops_rejected: 0,
            batches_dispatched: 0,
            launches_total: 0,
            fill_sum: 0.0,
            busy_us: 0.0,
            device_busy_us: vec![0.0; b.devices],
            energy_j: 0.0,
            queue_latency_sum_us: 0.0,
            cost_cache: HashMap::new(),
            device: b.device,
            sessions: Vec::new(),
            key_cache: KeyCache::new(key_cache_bytes, b.devices),
            policy: b.coalesce.unwrap_or_default(),
            drr,
            global_queue_cap: b.global_queue_cap,
            queued_session_ops: 0,
            key_upload_us_total: 0.0,
            key_upload_count: 0,
            rejected: BTreeSet::new(),
            shed: BTreeSet::new(),
            deadline_misses: 0,
        })
    }

    /// Parameter set the service runs.
    #[must_use]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Number of devices serving the queue.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.caps.devices
    }

    /// Number of host worker threads driving the devices (1 = serial).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.caps.workers
    }

    /// Real-arithmetic counters from the executor, when the service runs
    /// on a host backend ([`crate::exec::HostParallelExecutor`]); `None`
    /// under the simulated backend. The checksum is bit-identical across
    /// worker counts and across the fast/scalar kernel flavours.
    #[must_use]
    pub fn host_work(&self) -> Option<crate::exec::HostWorkStats> {
        self.executor.host_work()
    }

    /// Work-stealing scheduler counters from the executor, when the
    /// service runs on a host backend; `None` under the simulated
    /// backend. `steals`/`stolen_rows` are thread-timing telemetry;
    /// `planned_rows == executed_rows` (work conservation) holds whenever
    /// every submitted batch has been drained.
    #[must_use]
    pub fn steal_stats(&self) -> Option<crate::exec::StealStats> {
        self.executor.steal_stats()
    }

    /// Device model name behind the executor, as reports print it.
    #[must_use]
    pub fn device_name(&self) -> &str {
        &self.caps.device_name
    }

    /// The widest batch the service will coalesce.
    #[must_use]
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// Configured in-flight window depth (1 = strictly synchronous).
    #[must_use]
    pub fn pipeline_depth(&self) -> usize {
        self.sched.depth()
    }

    /// Configured window-admission mode.
    #[must_use]
    pub fn admission(&self) -> AdmissionMode {
        self.sched.admission()
    }

    /// Whether out-of-order admission is actually driving the fill:
    /// configured out-of-order *and* no registered session carries a
    /// deadline. Deadline urgency and shedding read the settle clock,
    /// which under reordering would see a different (though equally
    /// valid) time at each decision point — so any deadline session
    /// drops the service back to the verbatim in-order fill, keeping
    /// deadline semantics exact.
    fn ooo_active(&self) -> bool {
        self.sched.admission() == AdmissionMode::OutOfOrder
            && self.sessions.iter().all(|s| s.deadline_us.is_none())
    }

    /// Registers a client session, deriving its simulated key-set
    /// footprint (galois + relinearisation keys) from the service's
    /// parameter set. Registration is what opts the service into the
    /// fair-share/residency pipeline: with no sessions registered the
    /// anonymous FIFO path runs bit-identical to the pre-session service.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty name, a
    /// non-positive or non-finite weight or deadline, or a zero queue cap.
    pub fn register_session(&mut self, cfg: SessionConfig) -> CoreResult<SessionId> {
        if cfg.name.trim().is_empty() {
            return Err(CoreError::InvalidConfig(
                "session name must be non-empty".into(),
            ));
        }
        if !(cfg.weight.is_finite() && cfg.weight > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "session weight must be positive and finite, got {}",
                cfg.weight
            )));
        }
        if let Some(d) = cfg.deadline_us {
            if !(d.is_finite() && d > 0.0) {
                return Err(CoreError::InvalidConfig(format!(
                    "session deadline must be positive and finite, got {d}"
                )));
            }
            // A deadline session switches an out-of-order service back to
            // the in-order fill (deadline urgency/shedding read the
            // settle clock, which reordering would skew). The switch is
            // only sound from a fully quiescent scheduler: a reordered
            // window or live scoreboard cannot be settled in-order.
            if self.sched.admission() == AdmissionMode::OutOfOrder
                && !(self.sched.scoreboard_idle() && self.sched.in_flight() == 0)
            {
                return Err(CoreError::InvalidConfig(
                    "cannot register a deadline session while out-of-order \
                     batches are in flight; drain the service first"
                        .into(),
                ));
            }
        }
        if cfg.queue_cap == Some(0) {
            return Err(CoreError::InvalidConfig(
                "session queue cap must be non-zero".into(),
            ));
        }
        let steps = cfg
            .galois_steps
            .unwrap_or_else(|| default_galois_steps(&self.params));
        let id = SessionId(self.sessions.len() as u64);
        self.sessions.push(ClientSession {
            id,
            name: cfg.name.as_str().into(),
            key_bytes: key_set_bytes(&self.params, steps),
            weight: cfg.weight,
            deadline_us: cfg.deadline_us,
            queue_cap: cfg.queue_cap,
            queued_ops: 0,
            served_ops: 0,
        });
        self.drr.grow();
        Ok(id)
    }

    /// Registered sessions, in registration order.
    #[must_use]
    pub fn sessions(&self) -> &[ClientSession] {
        &self.sessions
    }

    /// A registered session by handle.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&ClientSession> {
        self.sessions.get(id.0 as usize)
    }

    /// The per-device key cache (residency + hit/miss/eviction
    /// accounting).
    #[must_use]
    pub fn key_cache(&self) -> &KeyCache {
        &self.key_cache
    }

    /// The key-cache residency event trace, oldest first — every miss is
    /// an upload, every displacement an eviction.
    #[must_use]
    pub fn residency_trace(&self) -> Vec<ResidencyEvent> {
        self.key_cache.trace()
    }

    /// The scheduler's structural trace: one [`crate::sched::BatchRecord`]
    /// per joined batch, in join (= admission) order; under out-of-order
    /// admission the serial plan order lives in each record's
    /// `serial_seq`. The schedule verifier in `tensorfhe-analyze` replays
    /// this against [`FheService::stats`] to prove the overlap clock —
    /// and the reorder rule — well-formed.
    #[must_use]
    pub fn schedule_trace(&self) -> &[crate::sched::BatchRecord] {
        self.sched.trace()
    }

    /// Operation instances not yet completed (queued or in flight).
    #[must_use]
    pub fn pending_ops(&self) -> usize {
        self.queue
            .iter()
            .flatten()
            .map(|p| p.remaining + p.executing)
            .sum()
    }

    /// Requests currently queued.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.iter().flatten().count()
    }

    /// Queue slots currently held, including mid-queue tombstones awaiting
    /// their turn at the front. Leading tombstones are reclaimed after
    /// every settled batch, so under sustained FIFO load this tracks the
    /// live request count instead of the total ever served.
    #[must_use]
    pub fn queue_slots(&self) -> usize {
        self.queue.len()
    }

    /// Queue state of a request handle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRequest`] for a handle this service
    /// never issued.
    pub fn status(&self, id: RequestId) -> CoreResult<RequestStatus> {
        if id.0 >= self.next_id {
            return Err(CoreError::UnknownRequest(id));
        }
        if self.rejected.contains(&id) {
            return Ok(RequestStatus::Rejected);
        }
        if self.shed.contains(&id) {
            return Ok(RequestStatus::Shed);
        }
        Ok(match self.queue.iter().flatten().find(|p| p.id == id) {
            Some(p) if p.executing > 0 => RequestStatus::InFlight {
                executing: p.executing,
                remaining: p.remaining,
            },
            Some(p) => RequestStatus::Queued {
                remaining: p.remaining,
            },
            None => RequestStatus::Completed,
        })
    }

    /// Enqueues a request, returning its typed handle.
    ///
    /// A session request past its session's queue bound (or the global
    /// [`crate::api::TensorFheBuilder::global_queue_cap`]) is *not* an
    /// error: it still gets a handle, but nothing is queued and its
    /// status reads [`RequestStatus::Rejected`] — admission control is an
    /// outcome the client observes, not a caller bug.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] for a zero `count`, a level
    /// above the parameter set's modulus chain, or an unregistered
    /// session handle.
    pub fn submit(&mut self, req: FheRequest) -> CoreResult<RequestId> {
        if req.count == 0 {
            return Err(CoreError::InvalidRequest("count must be non-zero".into()));
        }
        if req.level > self.params.max_level() {
            return Err(CoreError::InvalidRequest(format!(
                "level {} exceeds max level {}",
                req.level,
                self.params.max_level()
            )));
        }
        let mut req = req;
        if let Some(sid) = req.session {
            let Some(s) = self.sessions.get(sid.0 as usize) else {
                return Err(CoreError::InvalidRequest(format!(
                    "unknown session id {}",
                    sid.raw()
                )));
            };
            if req.client.is_empty() {
                req.client = s.name.to_string();
            }
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.ops_submitted += req.count;
        if let Some(sid) = req.session {
            let s = &self.sessions[sid.0 as usize];
            let over_session = s
                .queue_cap
                .is_some_and(|cap| s.queued_ops + req.count > cap);
            let over_global = self
                .global_queue_cap
                .is_some_and(|cap| self.queued_session_ops + req.count > cap);
            if over_session || over_global {
                self.rejected.insert(id);
                self.ops_rejected += req.count;
                return Ok(id);
            }
            self.sessions[sid.0 as usize].queued_ops += req.count;
            self.queued_session_ops += req.count;
        }
        let session = req.session;
        let remaining = req.count;
        let client_key: std::sync::Arc<str> = req.client.as_str().into();
        self.queue.push_back(Some(Pending {
            id,
            req,
            session,
            client_key,
            remaining,
            executing: 0,
            submitted_us: self.clock_us,
            time_us: 0.0,
            energy_j: 0.0,
            occ_weighted: 0.0,
            launches: 0,
            by_kernel: Default::default(),
            batches: 0,
        }));
        Ok(id)
    }

    /// Enqueues a whole stream of requests.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid request; earlier ones stay enqueued.
    pub fn submit_stream(
        &mut self,
        reqs: impl IntoIterator<Item = FheRequest>,
    ) -> CoreResult<Vec<RequestId>> {
        reqs.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Serves the queue to exhaustion: keeps the scheduler's in-flight
    /// window filled with independent FIFO-coalesced batches (same
    /// operation, same level, up to the batch cap), joins them in
    /// submission order, and attributes each batch's cost to the requests
    /// that rode in it. Returns the completion reports in completion
    /// order — bit-identical at every pipeline depth and worker count.
    /// Draining an empty queue is a no-op returning no reports.
    pub fn drain(&mut self) -> Vec<RequestReport> {
        let mut done = Vec::new();
        while self.pump_into(&mut done) {
            self.compact();
        }
        done
    }

    /// One scheduler step: tops up the in-flight window, then joins and
    /// settles the oldest in-flight batch (if any), returning whatever
    /// requests that completed. [`FheService::drain`] is exactly a loop
    /// over `pump`; stepping manually lets callers interleave
    /// [`FheService::status`] queries (observing
    /// [`RequestStatus::InFlight`]) or new submissions mid-drain. Returns
    /// an empty vector once the queue and window are exhausted.
    pub fn pump(&mut self) -> Vec<RequestReport> {
        let mut done = Vec::new();
        self.pump_into(&mut done);
        self.compact();
        done
    }

    /// The drain step: fill the window, settle one batch. `false` once
    /// nothing is in flight (the queue holds no plannable work). Under
    /// out-of-order admission the joined batch may park in the reorder
    /// buffer, so one step can settle zero requests (the settle lands on
    /// a later step, once the serial predecessor joins) or several.
    fn pump_into(&mut self, done: &mut Vec<RequestReport>) -> bool {
        self.fill_window();
        if self.ooo_active() {
            if !self.sched.join_next(self.executor.as_mut()) {
                return false;
            }
            for fin in self.sched.drain_settleable() {
                self.settle(fin, done);
            }
            true
        } else {
            let Some(fin) = self.sched.complete_next(self.executor.as_mut()) else {
                return false;
            };
            self.settle(fin, done);
            true
        }
    }

    /// Plans and admits batches until the window is full, the next batch
    /// is blocked on an in-flight client stream, or the queue runs dry.
    /// Reservation happens at *plan* time (`remaining → executing`) so
    /// later plans — made while earlier batches are still in flight —
    /// see exactly the queue state the serial path would. With no
    /// registered sessions the pre-session FIFO walk runs verbatim; with
    /// sessions the fair-share/residency walk takes over.
    fn fill_window(&mut self) {
        if self.ooo_active() {
            self.fill_window_ooo();
        } else if self.sessions.is_empty() {
            self.fill_window_fifo();
        } else {
            self.fill_window_sessions();
        }
        // Harvest whatever already finished on the host workers; purely a
        // channel-draining courtesy, never reordering settlement.
        self.sched.harvest(self.executor.as_mut());
    }

    /// The pre-session-tier FIFO fill, kept verbatim: an all-anonymous
    /// service must stay bit-identical to the service before the session
    /// tier existed.
    fn fill_window_fifo(&mut self) {
        while self.sched.has_room() {
            self.advance_head();
            let plan = {
                let slots = self.queue.iter().enumerate().skip(self.head).map(|(i, s)| {
                    (
                        i,
                        s.as_ref().map(|p| SlotView {
                            op: p.req.op,
                            level: p.req.level,
                            remaining: p.remaining,
                            client: &p.client_key,
                        }),
                    )
                });
                self.sched.plan(self.batch_cap, slots)
            };
            match plan {
                Plan::Batch(plan) => {
                    for &(i, take) in &plan.takes {
                        let p = self.queue[i].as_mut().expect("take targets a live slot");
                        p.remaining -= take;
                        p.executing += take;
                    }
                    let work = self.dispatch(plan.op, plan.level, plan.width);
                    self.sched.admit(plan, work);
                }
                Plan::Blocked | Plan::Empty => break,
            }
        }
    }

    /// The session-tier fill: shed expired deadline work, pick who goes
    /// next — urgent deadline sessions earliest-slack-first, otherwise
    /// deficit round robin across the anonymous bucket and every session
    /// — order the coalescing walk by the residency policy, and charge
    /// key-cache placement to the planned batch before admitting it.
    fn fill_window_sessions(&mut self) {
        while self.sched.has_room() {
            let Some((bucket, same_session_only, order)) = self.session_pick() else {
                break;
            };
            let plan = {
                let queue = &self.queue;
                let slots = order.iter().map(|&i| {
                    (
                        i,
                        queue[i].as_ref().map(|p| SlotView {
                            op: p.req.op,
                            level: p.req.level,
                            remaining: p.remaining,
                            client: &p.client_key,
                        }),
                    )
                });
                self.sched.plan(self.batch_cap, slots)
            };
            match plan {
                Plan::Batch(mut plan) => {
                    self.apply_session_plan(&mut plan, bucket, same_session_only);
                    let work = self.dispatch(plan.op, plan.level, plan.width);
                    self.sched.admit(plan, work);
                }
                Plan::Blocked | Plan::Empty => break,
            }
        }
    }

    /// The out-of-order fill: run the *serial* planning walk speculatively
    /// ahead (freezing up to `lookahead` plans with their reservations and
    /// charges applied, exactly as in-order admission would), then let the
    /// scoreboard admit whatever eligible plan the greedy-then-oldest rule
    /// picks — possibly past a key-blocked head. Admissions free scoreboard
    /// slots and freezes create admission candidates, so the loop
    /// alternates until neither side progresses.
    fn fill_window_ooo(&mut self) {
        loop {
            let mut progressed = false;
            while self.sched.can_freeze() {
                let froze = if self.sessions.is_empty() {
                    self.freeze_next_fifo()
                } else {
                    self.freeze_next_session()
                };
                if !froze {
                    break;
                }
                progressed = true;
            }
            while let Some((op, level, width)) = self.sched.peek_admissible() {
                let work = self.dispatch(op, level, width);
                self.sched.admit_pending(work);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Freezes the next serial FIFO plan into the scoreboard (the exact
    /// [`FheService::fill_window_fifo`] walk, minus the in-flight key
    /// check the scoreboard enforces at admission instead). `false` when
    /// the queue has nothing left to plan.
    fn freeze_next_fifo(&mut self) -> bool {
        self.advance_head();
        let plan = {
            let slots = self.queue.iter().enumerate().skip(self.head).map(|(i, s)| {
                (
                    i,
                    s.as_ref().map(|p| SlotView {
                        op: p.req.op,
                        level: p.req.level,
                        remaining: p.remaining,
                        client: &p.client_key,
                    }),
                )
            });
            self.sched.plan_unchecked(self.batch_cap, slots)
        };
        match plan {
            Some(plan) => {
                for &(i, take) in &plan.takes {
                    let p = self.queue[i].as_mut().expect("take targets a live slot");
                    p.remaining -= take;
                    p.executing += take;
                }
                self.sched.freeze(plan);
                true
            }
            None => false,
        }
    }

    /// Freezes the next serial session-tier plan into the scoreboard: the
    /// same bucket selection, coalescing order and residency/fair-share
    /// charges as [`FheService::fill_window_sessions`], applied at freeze
    /// time so the serial walk behind it sees identical queue state.
    /// (Deadline shedding and urgency inside the shared walk are inert
    /// here: out-of-order filling only runs with no deadline sessions.)
    /// `false` when no bucket has plannable work.
    fn freeze_next_session(&mut self) -> bool {
        let Some((bucket, same_session_only, order)) = self.session_pick() else {
            return false;
        };
        let plan = {
            let queue = &self.queue;
            let slots = order.iter().map(|&i| {
                (
                    i,
                    queue[i].as_ref().map(|p| SlotView {
                        op: p.req.op,
                        level: p.req.level,
                        remaining: p.remaining,
                        client: &p.client_key,
                    }),
                )
            });
            self.sched.plan_unchecked(self.batch_cap, slots)
        };
        match plan {
            Some(mut plan) => {
                self.apply_session_plan(&mut plan, bucket, same_session_only);
                self.sched.freeze(plan);
                true
            }
            None => false,
        }
    }

    /// One session-walk selection, shared by the in-order fill and
    /// out-of-order freezing: shed expired deadline work, pick the next
    /// bucket (urgent deadline sessions earliest-slack-first, otherwise
    /// deficit round robin), and compute the policy-ordered coalescing
    /// order. Returns `(bucket, same_session_only, order)` or `None` when
    /// no bucket has plannable work.
    fn session_pick(&mut self) -> Option<(usize, bool, Vec<usize>)> {
        self.advance_head();
        self.shed_expired();
        // Per-bucket backlog: bucket 0 is anonymous, session `s` is
        // bucket `s + 1`.
        let buckets = self.sessions.len() + 1;
        let mut pending = vec![0usize; buckets];
        let mut first_slot = vec![usize::MAX; buckets];
        for (i, slot) in self.queue.iter().enumerate().skip(self.head) {
            let Some(p) = slot else { continue };
            if p.remaining == 0 {
                continue;
            }
            let b = p.session.map_or(0, |s| s.0 as usize + 1);
            pending[b] += p.remaining;
            if first_slot[b] == usize::MAX {
                first_slot[b] = i;
            }
        }
        // Urgent pass: a deadline session whose oldest pending
        // request's slack dips below URGENCY_FRACTION of its budget
        // jumps the fair-share rotation (earliest slack first) and
        // ships alone — partially filled beats late.
        let mut urgent: Option<(f64, usize)> = None;
        for s in &self.sessions {
            let b = s.id.0 as usize + 1;
            let (Some(deadline), true) = (s.deadline_us, pending[b] > 0) else {
                continue;
            };
            let oldest = self.queue[first_slot[b]]
                .as_ref()
                .expect("first slot is live");
            let slack = deadline - (self.clock_us - oldest.submitted_us);
            if slack <= deadline * URGENCY_FRACTION {
                let better = match urgent {
                    Some((best, _)) => slack < best,
                    None => true,
                };
                if better {
                    urgent = Some((slack, b));
                }
            }
        }
        let (bucket, same_session_only) = match urgent {
            Some((_, b)) => (b, true),
            None => {
                let want: Vec<usize> = pending.iter().map(|&p| p.min(self.batch_cap)).collect();
                let quantum: Vec<f64> = std::iter::once(1.0)
                    .chain(self.sessions.iter().map(|s| s.weight))
                    .map(|w| w * self.batch_cap as f64)
                    .collect();
                self.drr.select(&want, &quantum).map(|b| (b, false))?
            }
        };
        // Coalescing order: the chosen bucket's slots lead (they
        // define the batch's op/level group), then — unless the batch
        // ships same-session-only — the policy decides the top-up:
        // KeyAffinity keeps the rest of the chosen bucket first so a
        // batch spans fewer key sets; Blind tops up in pure queue
        // order, the fig12 comparison arm.
        let mut order: Vec<usize> = Vec::new();
        for (i, slot) in self.queue.iter().enumerate().skip(self.head) {
            let Some(p) = slot else { continue };
            if p.remaining == 0 {
                continue;
            }
            if p.session.map_or(0, |s| s.0 as usize + 1) == bucket {
                order.push(i);
            }
        }
        if !same_session_only {
            match self.policy {
                CoalescePolicy::KeyAffinity => {
                    for (i, slot) in self.queue.iter().enumerate().skip(self.head) {
                        let Some(p) = slot else { continue };
                        if p.remaining == 0 {
                            continue;
                        }
                        if p.session.map_or(0, |s| s.0 as usize + 1) != bucket {
                            order.push(i);
                        }
                    }
                }
                CoalescePolicy::Blind => {
                    let lead = first_slot[bucket];
                    order.clear();
                    order.push(lead);
                    for (i, slot) in self.queue.iter().enumerate().skip(self.head) {
                        let Some(p) = slot else { continue };
                        if p.remaining == 0 || i == lead {
                            continue;
                        }
                        order.push(i);
                    }
                }
            }
        }
        Some((bucket, same_session_only, order))
    }

    /// Applies a planned session batch's plan-time side effects exactly
    /// once — reservation, key-cache residency placement (with the upload
    /// charge on the batch's critical path), and the fair-share credit
    /// charge. In-order admission runs this immediately before admitting;
    /// out-of-order freezing runs it at freeze time, so the serial walk's
    /// inputs evolve identically in both modes.
    fn apply_session_plan(&mut self, plan: &mut BatchPlan, bucket: usize, same_session_only: bool) {
        for &(i, take) in &plan.takes {
            let p = self.queue[i].as_mut().expect("take targets a live slot");
            p.remaining -= take;
            p.executing += take;
        }
        // Residency: the distinct session key sets riding
        // this batch (id order) are placed on the shard
        // devices; non-resident sets pay the upload on the
        // batch's critical path.
        let mut keys: Vec<(SessionId, u64)> = Vec::new();
        let mut charged = 0usize;
        for &(i, take) in &plan.takes {
            let p = self.queue[i].as_ref().expect("take targets a live slot");
            if p.session.map_or(0, |s| s.0 as usize + 1) == bucket {
                charged += take;
            }
            if let Some(sid) = p.session {
                if !keys.iter().any(|&(s, _)| s == sid) {
                    keys.push((sid, self.sessions[sid.0 as usize].key_bytes));
                }
            }
        }
        keys.sort_by_key(|&(s, _)| s);
        plan.sessioned = !keys.is_empty();
        if !keys.is_empty() {
            let shards = crate::exec::shard_widths(plan.width, self.devices())
                .iter()
                .filter(|&&w| w > 0)
                .count();
            let upload_bytes = self.key_cache.place(&keys, shards);
            if upload_bytes > 0 {
                plan.upload_us = crate::engine::key_upload_us(upload_bytes, &self.device);
                self.key_upload_us_total += plan.upload_us;
                self.key_upload_count += 1;
            }
        }
        // Urgent batches jump the rotation without spending
        // credit; fair-share batches are charged only the
        // width their own bucket contributed (top-up from
        // other sessions is their service, not this one's).
        if !same_session_only {
            self.drr.charge(bucket, charged);
        }
    }

    /// Sheds session requests whose deadline budget expired before any
    /// instance ran: they leave the queue as tombstones (safe — nothing
    /// in flight references an unplanned slot) and surface as
    /// [`RequestStatus::Shed`]. Partially-served requests are never shed;
    /// their eventual completion counts as a deadline miss instead.
    fn shed_expired(&mut self) {
        for i in self.head..self.queue.len() {
            let Some(p) = &self.queue[i] else { continue };
            let Some(sid) = p.session else { continue };
            let Some(deadline) = self.sessions[sid.0 as usize].deadline_us else {
                continue;
            };
            if p.executing == 0 && p.batches == 0 && self.clock_us - p.submitted_us > deadline {
                let p = self.queue[i].take().expect("checked live");
                self.shed.insert(p.id);
                self.ops_shed += p.remaining;
                self.sessions[sid.0 as usize].queued_ops -= p.remaining;
                self.queued_session_ops -= p.remaining;
            }
        }
    }

    /// Attributes one completed batch to the requests that rode in it and
    /// finalizes any that are now fully served. `takes` is in queue
    /// (= submission) order and batches settle in submission order, so
    /// report order is FIFO exactly as the synchronous drain produced.
    fn settle(&mut self, fin: Finished, done: &mut Vec<RequestReport>) {
        let Finished {
            plan,
            result,
            executed,
        } = fin;
        let BatchPlan {
            op,
            level,
            width,
            ref takes,
            ..
        } = plan;
        if executed && self.backend == ExecBackend::Sim {
            self.cost_cache.insert((op, level, width), result.clone());
        }
        let cap = self.batch_cap;
        for (dev, t) in result.per_device_us.iter().enumerate() {
            self.device_busy_us[dev] += t;
        }
        let stats = result.stats;
        self.clock_us += stats.time_us;
        self.busy_us += stats.time_us;
        self.energy_j += stats.energy_j;
        self.batches_dispatched += 1;
        self.launches_total += stats.launches;
        self.fill_sum += width as f64 / cap as f64;
        self.ops_completed += width;

        let launch_shares = Self::apportion(stats.launches as u64, takes, width);
        for (&(i, take), &launches) in takes.iter().zip(&launch_shares) {
            let share = take as f64 / width as f64;
            let p = self.queue[i].as_mut().expect("take targets a live slot");
            p.executing -= take;
            p.batches += 1;
            p.time_us += stats.time_us * share;
            p.energy_j += stats.energy_j * share;
            p.occ_weighted += stats.occupancy * stats.time_us * share;
            p.launches += launches;
            for (k, t) in &stats.by_kernel {
                *p.by_kernel.entry(k.clone()).or_insert(0.0) += t * share;
            }
            if let Some(sid) = p.session {
                let s = &mut self.sessions[sid.0 as usize];
                s.served_ops += take;
                s.queued_ops -= take;
                self.queued_session_ops -= take;
            }
        }

        // Completion sweep: only requests the batch touched can have
        // completed. Completed entries leave tombstones in place —
        // compaction waits until the window is empty so in-flight take
        // indices stay valid.
        for &(i, _) in takes {
            if self.queue[i]
                .as_ref()
                .is_some_and(|p| p.remaining == 0 && p.executing == 0)
            {
                let p = self.queue[i].take().expect("checked live");
                done.push(self.finalize(p));
            }
        }
    }

    /// Advances the planning cursor past tombstones and fully-reserved
    /// slots so repeated planning walks stay linear over a drain.
    fn advance_head(&mut self) {
        while let Some(slot) = self.queue.get(self.head) {
            match slot {
                None => self.head += 1,
                Some(p) if p.remaining == 0 => self.head += 1,
                Some(_) => break,
            }
        }
    }

    /// Pops leading tombstones and rebases the planning cursor plus every
    /// in-flight plan's take indices. A finalized slot is by definition
    /// referenced by no in-flight plan, so popping the dead prefix is
    /// always safe — this runs after every settle, keeping the queue
    /// bounded by *live* requests even for a pump-driven service under
    /// sustained load (where the window never empties).
    fn compact(&mut self) {
        let mut popped = 0usize;
        while matches!(self.queue.front(), Some(None)) {
            self.queue.pop_front();
            popped += 1;
        }
        if popped > 0 {
            self.head = self.head.saturating_sub(popped);
            self.sched.rebase(popped);
        }
    }

    /// Cumulative service statistics.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let ops_per_second = if self.busy_us > 0.0 {
            self.ops_completed as f64 / (self.busy_us * 1e-6)
        } else {
            0.0
        };
        let device_utilization = self
            .device_busy_us
            .iter()
            .map(|&t| {
                if self.busy_us > 0.0 {
                    t / self.busy_us
                } else {
                    0.0
                }
            })
            .collect();
        let elapsed_us = self.sched.elapsed_us();
        // At depth 1 `elapsed` and `busy` are the same accumulation, so
        // the ratio is exactly 1.0 and the overlap exactly 0.0.
        let overlap_fraction = if self.busy_us > 0.0 {
            1.0 - elapsed_us / self.busy_us
        } else {
            0.0
        };
        let pipelined_ops_per_second = if elapsed_us > 0.0 {
            self.ops_completed as f64 / (elapsed_us * 1e-6)
        } else {
            0.0
        };
        ServiceStats {
            requests_completed: self.requests_completed,
            ops_submitted: self.ops_submitted,
            ops_completed: self.ops_completed,
            ops_shed: self.ops_shed,
            ops_rejected: self.ops_rejected,
            batches_dispatched: self.batches_dispatched,
            launches: self.launches_total,
            batch_cap: self.batch_cap,
            devices: self.devices(),
            workers: self.workers(),
            backend: self.backend.label(),
            pipeline_depth: self.sched.depth(),
            admission: self.sched.admission(),
            lookahead: self.sched.lookahead(),
            aging_bound: self.sched.aging_bound(),
            reorder_distance: self.sched.reorder_distance(),
            head_blocked_us: self.sched.head_blocked_us(),
            inflight_hwm: self.sched.inflight_hwm(),
            device_busy_us: self.device_busy_us.clone(),
            device_utilization,
            batch_fill: if self.batches_dispatched > 0 {
                self.fill_sum / self.batches_dispatched as f64
            } else {
                0.0
            },
            busy_us: self.busy_us,
            elapsed_us,
            overlap_fraction,
            energy_j: self.energy_j,
            mean_queue_us: if self.requests_completed > 0 {
                self.queue_latency_sum_us / self.requests_completed as f64
            } else {
                0.0
            },
            ops_per_second,
            pipelined_ops_per_second,
            ops_per_watt: ops_per_second / self.power_watts,
            key_cache_hit_rate: self.key_cache.hit_rate(),
            key_cache_hits: self.key_cache.hits(),
            key_cache_misses: self.key_cache.misses(),
            key_cache_evictions: self.key_cache.evictions(),
            key_uploads: self.key_upload_count,
            key_upload_us: self.key_upload_us_total,
            per_session_ops: self
                .sessions
                .iter()
                .map(|s| (s.name.to_string(), s.served_ops))
                .collect(),
            fairness_index: jain_index(
                &self
                    .sessions
                    .iter()
                    .map(|s| s.served_ops as f64)
                    .collect::<Vec<_>>(),
            ),
            deadline_misses: self.deadline_misses,
            shed_count: self.shed.len(),
            rejected_count: self.rejected.len(),
            steals: self.executor.steal_stats().map_or(0, |s| s.steals),
            stolen_rows: self.executor.steal_stats().map_or(0, |s| s.stolen_rows),
            simd_lanes: match self.backend {
                ExecBackend::Sim => 0,
                ExecBackend::HostScalar => 1,
                ExecBackend::HostParallel => tensorfhe_math::simd::active_lanes(),
            },
        }
    }

    /// Splits a batch's `total` launches across its `takes` proportionally
    /// to instance counts so the shares sum *exactly* to `total`
    /// (largest-remainder apportionment, FIFO tie-break). `round()`-ing each
    /// share independently let per-request launch totals drift from the
    /// batch totals.
    fn apportion(total: u64, takes: &[(usize, usize)], width: usize) -> Vec<u64> {
        let width = width as u64;
        let mut shares: Vec<u64> = takes
            .iter()
            .map(|&(_, take)| total * take as u64 / width)
            .collect();
        let mut remainder = total - shares.iter().sum::<u64>();
        // Stable sort keeps submission order among equal remainders.
        let mut order: Vec<usize> = (0..takes.len()).collect();
        order.sort_by_key(|&j| std::cmp::Reverse(total * takes[j].1 as u64 % width));
        for &j in &order {
            if remainder == 0 {
                break;
            }
            shares[j] += 1;
            remainder -= 1;
        }
        shares
    }

    /// Sources the work for one coalesced batch: a dispatch-cache replay
    /// when an identical batch already ran (executors are deterministic
    /// *and* history-free, so identical batches cost the same by
    /// contract), otherwise a live executor submission joined later in
    /// submission order.
    fn dispatch(&mut self, op: FheOp, level: usize, width: usize) -> Work {
        // Only the simulated backend replays from the dispatch cache: the
        // host backends exist to *execute* the batch, so every dispatch
        // must reach the executor (reports are identical either way — the
        // cache is purely a simulation shortcut).
        if self.backend == ExecBackend::Sim {
            if let Some(hit) = self.cost_cache.get(&(op, level, width)) {
                return Work::Cached(hit.clone());
            }
        }
        let events = schedule_events(&self.params, op, level);
        let handle = self.executor.submit(ExecBatch {
            tag: op.name().into(),
            events: events.into(),
            width,
        });
        Work::Submitted(handle)
    }

    fn finalize(&mut self, p: Pending) -> RequestReport {
        let queue_us = self.clock_us - p.submitted_us;
        self.requests_completed += 1;
        self.queue_latency_sum_us += queue_us;
        if let Some(sid) = p.session {
            if self.sessions[sid.0 as usize]
                .deadline_us
                .is_some_and(|d| queue_us > d)
            {
                self.deadline_misses += 1;
            }
        }
        let count = p.req.count;
        let ops_per_second = if p.time_us > 0.0 {
            count as f64 / (p.time_us * 1e-6)
        } else {
            0.0
        };
        RequestReport {
            id: p.id,
            client: p.req.client,
            level: p.req.level,
            queue_us,
            batches: p.batches,
            report: OpReport {
                op: p.req.op,
                batch: count,
                time_us: p.time_us,
                per_op_us: p.time_us / count.max(1) as f64,
                occupancy: if p.time_us > 0.0 {
                    p.occ_weighted / p.time_us
                } else {
                    0.0
                },
                energy_j: p.energy_j,
                ops_per_second,
                ops_per_watt: ops_per_second / self.power_watts,
                launches: p.launches as usize,
                by_kernel: p.by_kernel.into_iter().collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TensorFhe;
    use crate::engine::Variant;

    fn service() -> FheService {
        TensorFhe::builder(&CkksParams::test_small())
            .variant(Variant::TensorCore)
            .service()
            .expect("valid service config")
    }

    #[test]
    fn empty_queue_drain_is_a_noop() {
        let mut svc = service();
        let reports = svc.drain();
        assert!(reports.is_empty());
        let s = svc.stats();
        assert_eq!(s.batches_dispatched, 0);
        assert_eq!(s.ops_completed, 0);
        assert_eq!(s.busy_us, 0.0);
    }

    #[test]
    fn mixed_op_stream_coalesces_into_full_batches() {
        let mut svc = service();
        let cap = svc.batch_cap();
        assert!(cap >= 2, "test needs a coalescible cap, got {cap}");
        let level = svc.params().max_level();
        // Interleave two ops; each op's total fills its batch cap exactly
        // twice, but no single request does.
        for _ in 0..4 {
            svc.submit(FheRequest::new(FheOp::HMult, level, cap / 2, "a"))
                .expect("valid");
            svc.submit(FheRequest::new(FheOp::Rescale, level, cap / 2, "b"))
                .expect("valid");
        }
        let reports = svc.drain();
        assert_eq!(reports.len(), 8);
        let s = svc.stats();
        assert_eq!(s.ops_completed, 4 * cap);
        // Coalescing must have produced full batches: 2 per op if cap is
        // even, never one batch per request.
        assert!(
            s.batches_dispatched < 8,
            "requests were not coalesced: {} batches",
            s.batches_dispatched
        );
        assert!(
            s.batch_fill > 0.99,
            "expected full batches, fill = {}",
            s.batch_fill
        );
    }

    #[test]
    fn per_request_reports_sum_to_service_totals() {
        let mut svc = service();
        let level = svc.params().max_level();
        let stream = vec![
            FheRequest::new(FheOp::HMult, level, 5, "a"),
            FheRequest::new(FheOp::HRotate, level, 3, "b"),
            FheRequest::new(FheOp::HMult, level, 7, "c"),
            FheRequest::new(FheOp::Rescale, level - 1, 2, "a"),
            FheRequest::new(FheOp::HRotate, level, 9, "c"),
        ];
        svc.submit_stream(stream).expect("valid stream");
        let reports = svc.drain();
        let s = svc.stats();
        let time: f64 = reports.iter().map(|r| r.report.time_us).sum();
        let energy: f64 = reports.iter().map(|r| r.report.energy_j).sum();
        let ops: usize = reports.iter().map(|r| r.report.batch).sum();
        let launches: usize = reports.iter().map(|r| r.report.launches).sum();
        assert!((time - s.busy_us).abs() < 1e-6 * s.busy_us.max(1.0));
        assert!((energy - s.energy_j).abs() < 1e-6 * s.energy_j.max(1.0));
        assert_eq!(ops, s.ops_completed);
        assert_eq!(reports.len(), s.requests_completed);
        // Launch attribution is exact, not rounded: per-request launches
        // must sum to the batch totals with no drift.
        assert_eq!(launches, s.launches, "launch attribution drifted");
        assert!(s.launches > 0, "batches must have launched kernels");
    }

    #[test]
    fn launch_apportionment_is_exact_for_uneven_shares() {
        // Three requests whose takes (5, 3, 7) cannot split any plausible
        // launch count evenly — per-request rounding would drift here.
        let mut svc = service();
        let level = svc.params().max_level();
        for (count, client) in [(5, "a"), (3, "b"), (7, "c")] {
            svc.submit(FheRequest::new(FheOp::HMult, level, count, client))
                .expect("valid");
        }
        let reports = svc.drain();
        let total: usize = reports.iter().map(|r| r.report.launches).sum();
        assert_eq!(total, svc.stats().launches);
        // Larger requests must never be attributed fewer launches.
        let by_count: Vec<(usize, usize)> = reports
            .iter()
            .map(|r| (r.report.batch, r.report.launches))
            .collect();
        for w in by_count.iter() {
            assert!(
                w.1 > 0,
                "every served request owns some launches: {by_count:?}"
            );
        }
    }

    #[test]
    fn user_batch_cap_cannot_exceed_vram_bound() {
        let params = CkksParams::test_small();
        let auto = TensorFhe::builder(&params)
            .service()
            .expect("valid")
            .batch_cap();
        // A cap far above the VRAM-feasible bound is clamped to it.
        let svc = TensorFhe::builder(&params)
            .batch_cap(auto * 1000)
            .service()
            .expect("valid");
        assert_eq!(
            svc.batch_cap(),
            auto,
            "cap must clamp to auto_batch × devices"
        );
        // A narrower cap is honoured verbatim.
        let svc = TensorFhe::builder(&params)
            .batch_cap(auto.max(2) - 1)
            .service()
            .expect("valid");
        assert_eq!(svc.batch_cap(), auto.max(2) - 1);
        // Multi-device bounds scale with the cluster.
        let svc = TensorFhe::builder(&params)
            .devices(4)
            .batch_cap(usize::MAX)
            .service()
            .expect("valid");
        assert_eq!(svc.batch_cap(), auto * 4);
    }

    #[test]
    fn paper_scale_stream_drains_fifo_with_linear_sweep() {
        // A thousand single-op requests: the tombstone sweep must complete
        // them all in submission order (the old remove-and-rescan sweep made
        // this quadratic; the cost cache keeps dispatch O(1) per batch).
        let mut svc = service();
        let level = svc.params().max_level();
        let mut expected = Vec::new();
        for i in 0..1000 {
            expected.push(
                svc.submit(FheRequest::new(FheOp::HMult, level, 1, format!("c{i}")))
                    .expect("valid"),
            );
        }
        let reports = svc.drain();
        let got: Vec<RequestId> = reports.iter().map(|r| r.id).collect();
        assert_eq!(got, expected, "FIFO completion order");
        assert_eq!(svc.pending_requests(), 0);
        assert_eq!(svc.pending_ops(), 0);
        let s = svc.stats();
        assert_eq!(s.ops_completed, 1000);
        assert!(s.batch_fill > 0.99, "full-width coalescing expected");
    }

    #[test]
    fn fifo_fairness_across_client_tags() {
        let mut svc = service();
        let level = svc.params().max_level();
        let clients = ["alice", "bob", "carol"];
        let mut expected = Vec::new();
        for round in 0..3 {
            for c in clients {
                let id = svc
                    .submit(FheRequest::new(FheOp::HMult, level, round + 1, c))
                    .expect("valid");
                expected.push(id);
            }
        }
        let reports = svc.drain();
        let got: Vec<RequestId> = reports.iter().map(|r| r.id).collect();
        assert_eq!(got, expected, "completion order must be FIFO");
        // Queue latency must be non-decreasing in submission order.
        for w in reports.windows(2) {
            assert!(
                w[1].queue_us >= w[0].queue_us - 1e-9,
                "later submission finished earlier: {} then {}",
                w[0].queue_us,
                w[1].queue_us
            );
        }
    }

    #[test]
    fn status_tracks_request_lifecycle() {
        let mut svc = service();
        let level = svc.params().max_level();
        let id = svc
            .submit(FheRequest::new(FheOp::HMult, level, 5, "a"))
            .expect("valid");
        assert_eq!(
            svc.status(id).expect("known"),
            RequestStatus::Queued { remaining: 5 }
        );
        svc.drain();
        assert_eq!(svc.status(id).expect("known"), RequestStatus::Completed);
        let bogus = svc.status(RequestId(999)).expect_err("never issued");
        assert!(matches!(bogus, CoreError::UnknownRequest(_)));
    }

    #[test]
    fn full_exec_mode_is_rejected_for_services() {
        let err = TensorFhe::builder(&CkksParams::test_small())
            .exec_mode(crate::engine::ExecMode::Full)
            .service()
            .expect_err("service is schedule-only");
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn invalid_requests_are_rejected_not_panicked() {
        let mut svc = service();
        let level = svc.params().max_level();
        let err = svc
            .submit(FheRequest::new(FheOp::HAdd, level, 0, "a"))
            .expect_err("zero count");
        assert!(matches!(err, CoreError::InvalidRequest(_)));
        let err = svc
            .submit(FheRequest::new(FheOp::HAdd, level + 1, 4, "a"))
            .expect_err("level too deep");
        assert!(matches!(err, CoreError::InvalidRequest(_)));
        assert_eq!(svc.pending_requests(), 0);
    }

    #[test]
    fn oversized_requests_span_multiple_batches() {
        let mut svc = service();
        let cap = svc.batch_cap();
        let level = svc.params().max_level();
        let id = svc
            .submit(FheRequest::new(FheOp::HMult, level, cap * 3 + 1, "big"))
            .expect("valid");
        let reports = svc.drain();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, id);
        assert_eq!(reports[0].batches, 4, "3 full batches plus a remainder");
        assert_eq!(svc.stats().batches_dispatched, 4);
    }

    #[test]
    fn cluster_service_outpaces_single_device() {
        let params = CkksParams::test_small();
        let level = params.max_level();
        let run = |devices: usize| {
            let mut svc = TensorFhe::builder(&params)
                .devices(devices)
                .service()
                .expect("valid");
            for c in 0..4 {
                svc.submit(FheRequest::new(FheOp::HMult, level, 64, format!("c{c}")))
                    .expect("valid");
            }
            svc.drain();
            svc.stats().ops_per_second
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four > one * 2.0,
            "4-device service should scale throughput: {four} vs {one}"
        );
    }
}
