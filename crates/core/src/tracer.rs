//! The kernel layer: translating CKKS kernel events into GPU launches.
//!
//! [`GpuTracer`] implements [`KernelTracer`]; attach it to a
//! `tensorfhe_ckks::Evaluator` (Full mode) or feed it a synthetic schedule
//! (TimingOnly mode) and every kernel of every operation becomes a launch on
//! the simulated device. The NTT lowering depends on the engine variant:
//!
//! * `Butterfly` — one monolithic butterfly kernel per launch
//!   (TensorFHE-NT).
//! * `FourStep` — `GEMM → twiddle Hadamard → GEMM` on the CUDA cores
//!   (TensorFHE-CO, Eq. 9).
//! * `TensorCore` — the five-stage Fig. 8 pipeline: segmentation, 16 u8
//!   plane GEMMs spread over 16 CUDA streams, Booth fusion + Hadamard +
//!   re-segmentation, 16 more plane GEMMs, final fusion/modulo.
//!
//! The `Conv` kernel (fast basis conversion) is variant-dependent too:
//! Butterfly launches the scalar per-residue walk (`basis-conv`), while
//! both GEMM formulations launch the batched `y` stage plus one wide
//! `(L_dst × L_src) × (L_src × B·N)` GEMM (`conv-gemm`) — the same
//! lowering `tensorfhe_ckks::keyswitch` executes on the host.

use crate::engine::{Layout, Variant};
use std::cell::RefCell;
use std::rc::Rc;
use tensorfhe_ckks::{KernelEvent, KernelTracer};
use tensorfhe_gpu::{DeviceSim, KernelClass, KernelDesc, StreamId};

/// Number of concurrent streams used for the segmented plane GEMMs
/// (`SEGMENTS² = 16`, §IV-C "assigning each GEMM to a separate stream").
pub const TCU_STREAMS: usize = 16;

/// A [`KernelTracer`] that lowers kernel events onto a [`DeviceSim`].
pub struct GpuTracer {
    sim: Rc<RefCell<DeviceSim>>,
    variant: Variant,
    layout: Layout,
    /// Operation-level batch: every event's limb count is multiplied by
    /// this (the B dimension of Fig. 9).
    batch: usize,
    main: StreamId,
    tcu: Vec<StreamId>,
}

impl std::fmt::Debug for GpuTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuTracer")
            .field("variant", &self.variant.label())
            .field("batch", &self.batch)
            .finish()
    }
}

impl GpuTracer {
    /// Creates a tracer for the shared device.
    #[must_use]
    pub fn new(
        sim: Rc<RefCell<DeviceSim>>,
        variant: Variant,
        layout: Layout,
        batch: usize,
    ) -> Self {
        let (main, tcu) = {
            let mut s = sim.borrow_mut();
            let main = s.create_stream();
            let tcu = (0..TCU_STREAMS).map(|_| s.create_stream()).collect();
            (main, tcu)
        };
        Self {
            sim,
            variant,
            layout,
            batch: batch.max(1),
            main,
            tcu,
        }
    }

    /// The operation batch width.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The shared device simulator this tracer lowers onto. Exposed so
    /// the schedule verifier can replay [`DeviceSim::intervals`] after a
    /// traced run and hold the launch streams to the per-stream
    /// structural invariants.
    #[must_use]
    pub fn device(&self) -> Rc<RefCell<DeviceSim>> {
        Rc::clone(&self.sim)
    }

    /// Stages a client key-set upload on the main stream (the session
    /// tier's residency model in a Full-mode trace): one
    /// [`KernelClass::KeyUpload`] DMA, costed by the copy-engine model
    /// rather than the warp simulator. A zero-byte upload is a no-op.
    pub fn upload_keys(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.sim.borrow_mut().launch(
            self.main,
            KernelDesc::new(KernelClass::KeyUpload { bytes }, "key-upload"),
        );
    }

    fn coalesced(&self) -> bool {
        // Batched loads from the (B, L, N) layout straddle discontiguous
        // groups (Fig. 9a); the optimised (L, B, N) layout packs them.
        self.batch == 1 || self.layout == Layout::Lbn
    }

    fn launch_main(&self, desc: KernelDesc) {
        let desc = if self.coalesced() {
            desc
        } else {
            desc.with_strided_layout()
        };
        // Unbatched execution reproduces the baseline launch configuration
        // of §III-B (512 threads/SM was the best-performing unbatched
        // config — 16K threads total); batching is what unlocks the full
        // thread grid.
        let desc = if self.batch == 1 && !matches!(desc.class, KernelClass::GemmTcu { .. }) {
            let natural = desc.threads();
            desc.with_threads(natural.min(16_384))
        } else {
            desc
        };
        self.sim.borrow_mut().launch(self.main, desc);
    }

    fn elementwise(&self, name: &str, elems: u64, ops: u32, bytes: u32) {
        self.launch_main(KernelDesc::new(
            KernelClass::Elementwise {
                elems,
                ops_per_elem: ops,
                bytes_per_elem: bytes,
            },
            name,
        ));
    }

    fn launch_ntt(&mut self, n: usize, limbs: usize, inverse: bool) {
        let batch = limbs * self.batch;
        let name = if inverse { "intt" } else { "ntt" };
        match self.variant {
            Variant::Butterfly => {
                self.launch_main(KernelDesc::new(
                    KernelClass::ButterflyNtt { n, batch },
                    name,
                ));
            }
            Variant::FourStep => {
                let (n1, n2) = split(n);
                self.launch_main(KernelDesc::new(
                    KernelClass::GemmCuda {
                        m: n1,
                        k: n2,
                        cols: n2,
                        batch,
                    },
                    name,
                ));
                self.elementwise(name, (n * batch) as u64, 2, 12);
                self.launch_main(KernelDesc::new(
                    KernelClass::GemmCuda {
                        m: n1,
                        k: n1,
                        cols: n2,
                        batch,
                    },
                    name,
                ));
            }
            Variant::TensorCore => {
                let (n1, n2) = split(n);
                // Stage 1: input segmentation (u32 → 4×u8 planes).
                self.elementwise(name, (n * batch) as u64, 1, 8);
                // Stage 2: 16 plane GEMMs across dedicated streams.
                self.plane_gemms(name, n1, n2, n2, batch);
                // Stage 3: Booth fusion + twiddle Hadamard + re-segmentation
                // run as one fused epilogue kernel (partials stay L2
                // resident; see the GemmTcu traffic model).
                self.elementwise(name, (n * batch) as u64, 6, 8);
                // Stage 4: 16 plane GEMMs with the outer DFT matrix.
                self.plane_gemms(name, n1, n1, n2, batch);
                // Stage 5: fusion + final modulo (+ N^{-1} fold for INTT).
                self.elementwise(name, (n * batch) as u64, 4, 8);
            }
        }
    }

    fn plane_gemms(&mut self, name: &str, m: usize, k: usize, cols: usize, batch: usize) {
        // At saturating batch the 16 plane GEMMs each fill the device on
        // their own, so the streams no longer overlap anything; issue them
        // as one fat launch (fewer host round trips — what a production
        // CUTLASS grouped-GEMM call does).
        if batch >= 64 {
            self.sim.borrow_mut().launch(
                self.main,
                KernelDesc::new(
                    KernelClass::GemmTcu {
                        m,
                        k,
                        cols,
                        batch: batch * TCU_STREAMS,
                    },
                    format!("{name}-planes"),
                ),
            );
            return;
        }
        {
            let mut sim = self.sim.borrow_mut();
            for (i, stream) in self.tcu.iter().enumerate() {
                sim.launch(
                    *stream,
                    KernelDesc::new(
                        KernelClass::GemmTcu { m, k, cols, batch },
                        format!("{name}-plane{i}"),
                    ),
                );
            }
        }
        // Stage barrier: fusion depends on all 16 plane products.
        self.sim.borrow_mut().synchronize();
    }
}

/// The four-step `(N1, N2)` split (`N1 ≥ N2`).
#[must_use]
pub fn split(n: usize) -> (usize, usize) {
    let log = n.trailing_zeros();
    let n1 = 1usize << log.div_ceil(2);
    (n1, n / n1)
}

impl KernelTracer for GpuTracer {
    fn kernel(&mut self, event: KernelEvent) {
        let b = self.batch as u64;
        match event {
            KernelEvent::Ntt { n, limbs, inverse } => self.launch_ntt(n, limbs, inverse),
            KernelEvent::HadaMult { n, limbs } => {
                self.elementwise("hada-mult", (n * limbs) as u64 * b, 2, 12);
            }
            KernelEvent::EleAdd { n, limbs } => {
                self.elementwise("ele-add", (n * limbs) as u64 * b, 1, 12);
            }
            KernelEvent::EleSub { n, limbs } => {
                self.elementwise("ele-sub", (n * limbs) as u64 * b, 1, 12);
            }
            KernelEvent::FrobeniusMap { n, limbs } => {
                self.launch_main(KernelDesc::new(
                    KernelClass::Permute {
                        elems: (n * limbs) as u64 * b,
                    },
                    "forbenius-map",
                ));
            }
            KernelEvent::Conjugate { n, limbs } => {
                self.launch_main(KernelDesc::new(
                    KernelClass::Permute {
                        elems: (n * limbs) as u64 * b,
                    },
                    "conjugate",
                ));
            }
            KernelEvent::Conv { n, l_src, l_dst } => match self.variant {
                // TensorFHE-NT: the scalar per-residue walk.
                Variant::Butterfly => {
                    self.launch_main(KernelDesc::new(
                        KernelClass::BasisConv {
                            elems: (n * l_dst) as u64 * b,
                            l_src,
                        },
                        "conv",
                    ));
                }
                // GEMM formulations: batched y stage + one wide
                // `(L_dst × L_src) × (L_src × B·N)` GEMM. The conversion
                // matrix is far below tensor-core tile shapes (L_src is as
                // small as 1 at the paper's Default α), so even the TC
                // variant issues the dense GEMM on the CUDA cores —
                // padding to 16×8×32 tiles would waste an order of
                // magnitude more MACs than the product contains.
                Variant::FourStep | Variant::TensorCore => {
                    self.elementwise("conv-y", (n * l_src) as u64 * b, 2, 12);
                    self.launch_main(KernelDesc::new(
                        KernelClass::GemmCuda {
                            m: l_dst,
                            k: l_src,
                            cols: n * self.batch,
                            batch: 1,
                        },
                        "conv-gemm",
                    ));
                }
            },
        }
    }

    fn op_begin(&mut self, name: &str) {
        self.sim.borrow_mut().set_scope(name);
    }

    fn op_end(&mut self, _name: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensorfhe_gpu::DeviceConfig;

    fn sim() -> Rc<RefCell<DeviceSim>> {
        Rc::new(RefCell::new(DeviceSim::new(DeviceConfig::a100())))
    }

    #[test]
    fn split_shapes() {
        assert_eq!(split(1 << 16), (256, 256));
        assert_eq!(split(1 << 13), (128, 64));
        assert_eq!(split(16), (4, 4));
    }

    #[test]
    fn butterfly_variant_launches_one_kernel_per_ntt() {
        let s = sim();
        let mut t = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Lbn, 1);
        t.kernel(KernelEvent::Ntt {
            n: 1 << 12,
            limbs: 4,
            inverse: false,
        });
        s.borrow_mut().synchronize();
        assert_eq!(s.borrow().stats().len(), 1);
        assert_eq!(s.borrow().stats()[0].class_tag, "butterfly-ntt");
    }

    #[test]
    fn tensor_core_variant_launches_fig8_pipeline() {
        let s = sim();
        let mut t = GpuTracer::new(Rc::clone(&s), Variant::TensorCore, Layout::Lbn, 1);
        t.kernel(KernelEvent::Ntt {
            n: 1 << 12,
            limbs: 4,
            inverse: false,
        });
        s.borrow_mut().synchronize();
        let stats = s.borrow().stats().to_vec();
        let tcu = stats.iter().filter(|k| k.class_tag == "gemm-tcu").count();
        assert_eq!(tcu, 32, "two stages of 16 plane GEMMs");
        let ew = stats
            .iter()
            .filter(|k| k.class_tag == "elementwise")
            .count();
        assert_eq!(ew, 3, "segment / fused-epilogue / final-fusion stages");
    }

    #[test]
    fn plane_gemms_use_distinct_streams() {
        let s = sim();
        let mut t = GpuTracer::new(Rc::clone(&s), Variant::TensorCore, Layout::Lbn, 1);
        t.kernel(KernelEvent::Ntt {
            n: 1 << 12,
            limbs: 1,
            inverse: false,
        });
        s.borrow_mut().synchronize();
        let streams: std::collections::HashSet<usize> = s
            .borrow()
            .stats()
            .iter()
            .filter(|k| k.class_tag == "gemm-tcu")
            .map(|k| k.stream)
            .collect();
        assert_eq!(streams.len(), TCU_STREAMS);
    }

    #[test]
    fn bln_layout_marks_batched_kernels_strided() {
        let s = sim();
        let mut t = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Bln, 8);
        t.kernel(KernelEvent::EleAdd {
            n: 1 << 12,
            limbs: 2,
        });
        let mut t2 = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Lbn, 8);
        t2.kernel(KernelEvent::EleAdd {
            n: 1 << 12,
            limbs: 2,
        });
        s.borrow_mut().synchronize();
        let stats = s.borrow().stats().to_vec();
        let strided = &stats[0];
        let packed = &stats[1];
        assert!(
            strided.standalone_us > packed.standalone_us * 1.3,
            "(B,L,N) layout must be slower: {} vs {}",
            strided.standalone_us,
            packed.standalone_us
        );
    }

    #[test]
    fn conv_lowering_is_variant_dependent() {
        let ev = KernelEvent::Conv {
            n: 1 << 12,
            l_src: 3,
            l_dst: 12,
        };
        let s = sim();
        let mut nt = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Lbn, 4);
        nt.kernel(ev);
        let mut co = GpuTracer::new(Rc::clone(&s), Variant::FourStep, Layout::Lbn, 4);
        co.kernel(ev);
        let mut tc = GpuTracer::new(Rc::clone(&s), Variant::TensorCore, Layout::Lbn, 4);
        tc.kernel(ev);
        s.borrow_mut().synchronize();
        let tags: Vec<&str> = s
            .borrow()
            .stats()
            .iter()
            .map(|k| k.class_tag)
            .collect::<Vec<_>>();
        assert_eq!(
            tags,
            vec![
                "basis-conv",  // NT: one scalar kernel
                "elementwise", // CO: batched y stage…
                "gemm-cuda",   // …plus the wide GEMM
                "elementwise", // TC rides the same dense-GEMM lowering
                "gemm-cuda",
            ],
        );
    }

    #[test]
    fn batch_multiplies_work() {
        let s = sim();
        let mut t1 = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Lbn, 1);
        t1.kernel(KernelEvent::HadaMult {
            n: 1 << 12,
            limbs: 4,
        });
        let mut t64 = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Lbn, 64);
        t64.kernel(KernelEvent::HadaMult {
            n: 1 << 12,
            limbs: 4,
        });
        s.borrow_mut().synchronize();
        let stats = s.borrow().stats().to_vec();
        assert!(stats[1].bytes > stats[0].bytes * 32);
    }

    #[test]
    fn op_scope_propagates() {
        let s = sim();
        let mut t = GpuTracer::new(Rc::clone(&s), Variant::Butterfly, Layout::Lbn, 1);
        t.op_begin("HMULT");
        t.kernel(KernelEvent::EleAdd { n: 64, limbs: 1 });
        s.borrow_mut().synchronize();
        assert_eq!(s.borrow().stats()[0].op_tag, "HMULT");
    }
}
