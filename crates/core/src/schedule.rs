//! Parameter-level kernel schedules for every CKKS operation.
//!
//! These functions reproduce, from `(N, L, dnum, K)` alone, exactly the
//! [`KernelEvent`] sequence the real evaluator emits (Algorithms 1–6 of the
//! paper). The equivalence is enforced by tests that diff these schedules
//! against `RecordingTracer` captures of genuine homomorphic executions —
//! which is what justifies costing paper-scale workloads without running
//! the arithmetic.

use tensorfhe_ckks::{CkksParams, KernelEvent};

/// Key-switch schedule at ciphertext level `l` (Algorithm 1).
#[must_use]
pub fn key_switch_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    let n = params.n();
    let k = params.special_primes();
    let alpha = params.alpha();
    let limbs = level + 1;
    let digits = limbs.div_ceil(alpha);
    let ext_limbs = limbs + k;
    let mut ev = Vec::new();
    // INTT of the input.
    ev.push(KernelEvent::Ntt {
        n,
        limbs,
        inverse: true,
    });
    // ModUp: every digit's Conv to the complement basis runs first (the
    // digit block is built in full). Each Conv is a single event whatever
    // the variant — under the GEMM formulations the tracer lowers it to a
    // batched y stage plus one wide (L_dst × α) × (α × B·N) GEMM, under
    // the butterfly baseline to the scalar per-residue kernel…
    for j in 0..digits {
        let src = alpha.min(limbs - j * alpha);
        ev.push(KernelEvent::Conv {
            n,
            l_src: src,
            l_dst: limbs - src + k,
        });
    }
    // …then the block is NTT'd through the batched execution layer and
    // accumulated against both key components digit by digit.
    for _ in 0..digits {
        ev.push(KernelEvent::Ntt {
            n,
            limbs: ext_limbs,
            inverse: false,
        });
        ev.push(KernelEvent::HadaMult {
            n,
            limbs: 2 * ext_limbs,
        });
        ev.push(KernelEvent::EleAdd {
            n,
            limbs: 2 * ext_limbs,
        });
    }
    // Batched ModDown of both accumulators, stage by stage.
    for _ in 0..2 {
        ev.push(KernelEvent::Ntt {
            n,
            limbs: ext_limbs,
            inverse: true,
        });
    }
    for _ in 0..2 {
        ev.push(KernelEvent::Conv {
            n,
            l_src: k,
            l_dst: limbs,
        });
        ev.push(KernelEvent::EleSub { n, limbs });
    }
    for _ in 0..2 {
        ev.push(KernelEvent::Ntt {
            n,
            limbs,
            inverse: false,
        });
    }
    ev
}

/// HMULT schedule (Algorithm 2).
#[must_use]
pub fn hmult_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    let n = params.n();
    let limbs = level + 1;
    let mut ev = vec![
        KernelEvent::HadaMult {
            n,
            limbs: 4 * limbs,
        },
        KernelEvent::EleAdd { n, limbs },
    ];
    ev.extend(key_switch_schedule(params, level));
    ev.push(KernelEvent::EleAdd {
        n,
        limbs: 2 * limbs,
    });
    ev
}

/// CMULT schedule (Algorithm 3).
#[must_use]
pub fn cmult_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    vec![KernelEvent::HadaMult {
        n: params.n(),
        limbs: 2 * (level + 1),
    }]
}

/// HADD schedule (Algorithm 5).
#[must_use]
pub fn hadd_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    vec![KernelEvent::EleAdd {
        n: params.n(),
        limbs: 2 * (level + 1),
    }]
}

/// RESCALE schedule (Algorithm 6).
#[must_use]
pub fn rescale_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    let n = params.n();
    vec![
        KernelEvent::Ntt {
            n,
            limbs: 2,
            inverse: true,
        },
        KernelEvent::Ntt {
            n,
            limbs: 2 * level,
            inverse: false,
        },
        KernelEvent::EleSub {
            n,
            limbs: 2 * level,
        },
    ]
}

/// HROTATE schedule (Algorithm 4).
#[must_use]
pub fn hrotate_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    let n = params.n();
    let limbs = level + 1;
    let mut ev = vec![KernelEvent::FrobeniusMap {
        n,
        limbs: 2 * limbs,
    }];
    ev.extend(key_switch_schedule(params, level));
    ev.push(KernelEvent::EleAdd { n, limbs });
    ev
}

/// Conjugation schedule (HCONJ; same shape as HROTATE).
#[must_use]
pub fn conjugate_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    let n = params.n();
    let limbs = level + 1;
    let mut ev = vec![KernelEvent::Conjugate {
        n,
        limbs: 2 * limbs,
    }];
    ev.extend(key_switch_schedule(params, level));
    ev.push(KernelEvent::EleAdd { n, limbs });
    ev
}

/// One BSGS linear-transform stage over `diags` generalized diagonals at
/// `level` (Fig. 6's "BSGS" boxes): baby rotations, per-diagonal CMULTs and
/// additions, giant rotations, and the final rescale.
#[must_use]
pub fn bsgs_stage_schedule(params: &CkksParams, level: usize, diags: usize) -> Vec<KernelEvent> {
    let n1 = (diags as f64).sqrt().ceil() as usize;
    let n2 = diags.div_ceil(n1);
    let mut ev = Vec::new();
    // Baby rotations (j = 1..n1).
    for _ in 1..n1 {
        ev.extend(hrotate_schedule(params, level));
    }
    // Per-diagonal multiply-accumulate.
    ev.push(KernelEvent::HadaMult {
        n: params.n(),
        limbs: 2 * (level + 1) * diags,
    });
    ev.push(KernelEvent::EleAdd {
        n: params.n(),
        limbs: 2 * (level + 1) * diags.saturating_sub(n2).max(1),
    });
    // Giant rotations (i = 1..n2).
    for _ in 1..n2 {
        ev.extend(hrotate_schedule(params, level));
    }
    ev.extend(rescale_schedule(params, level));
    ev
}

/// A full dense transform over all `N/2` slots, as a single BSGS stage.
#[must_use]
pub fn bsgs_transform_schedule(params: &CkksParams, level: usize) -> Vec<KernelEvent> {
    bsgs_stage_schedule(params, level, params.slots())
}

/// Radix of the factorized homomorphic DFT (Cheon–Han–Hhan, the paper's
/// "Faster Homomorphic DFT" — §IV-A): the dense N/2-point transform splits
/// into `⌈log_r(N/2)⌉` sparse stages of `2r−1` diagonals each, cutting
/// rotations from `O(√(N/2))` to `O(log N · √r)` at the cost of one level
/// per stage.
pub const DFT_RADIX: usize = 32;

/// A factorized DFT transform; returns the events and the number of levels
/// it consumes (`stages`).
#[must_use]
pub fn faster_dft_schedule(params: &CkksParams, level: usize) -> (Vec<KernelEvent>, usize) {
    let slots = params.slots();
    if slots <= DFT_RADIX * 2 {
        return (bsgs_transform_schedule(params, level), 1);
    }
    let stages = (slots as f64).log2().ceil() as usize / (DFT_RADIX as f64).log2() as usize + 1;
    let mut ev = Vec::new();
    let mut l = level;
    for _ in 0..stages {
        ev.extend(bsgs_stage_schedule(params, l, 2 * DFT_RADIX - 1));
        l -= 1;
    }
    (ev, stages)
}

/// The slim-bootstrap schedule (Fig. 6): CoeffToSlot (4 BSGS transforms +
/// conjugation), two sine evaluations, SlotToCoeff (2 BSGS transforms).
#[must_use]
pub fn bootstrap_schedule(
    params: &CkksParams,
    taylor_degree: usize,
    double_angles: usize,
) -> Vec<KernelEvent> {
    let top = params.max_level();
    let sine_depth = taylor_degree + double_angles + 2;
    // Depth probe: factorized DFTs consume `stages` levels each.
    let (_, dft_stages) = faster_dft_schedule(params, top);
    assert!(
        top >= sine_depth + 2 * dft_stages + 2,
        "bootstrap needs L ≥ {} (CoeffToSlot + sine + SlotToCoeff), have {top}",
        sine_depth + 2 * dft_stages + 2
    );
    let mut ev = Vec::new();
    let mut level = top;

    // ModRaise: INTT at level 0, NTT at the top of the chain.
    ev.push(KernelEvent::Ntt {
        n: params.n(),
        limbs: 2,
        inverse: true,
    });
    ev.push(KernelEvent::Ntt {
        n: params.n(),
        limbs: 2 * (top + 1),
        inverse: false,
    });

    // CoeffToSlot: conjugation + 4 factorized transforms + 2 additions.
    ev.extend(conjugate_schedule(params, level));
    let mut stages = 1;
    for _ in 0..4 {
        let (t, st) = faster_dft_schedule(params, level);
        ev.extend(t);
        stages = st;
    }
    ev.push(KernelEvent::EleAdd {
        n: params.n(),
        limbs: 4 * level,
    });
    level -= stages;

    // Two sine evaluations, one per coefficient half; they run on parallel
    // ciphertexts at the same starting level.
    let mut after_sine = level;
    for _ in 0..2 {
        after_sine = sine_schedule(params, level, taylor_degree, double_angles, &mut ev);
    }
    level = after_sine;

    // SlotToCoeff recombination: 2 factorized transforms + addition.
    for _ in 0..2 {
        let (t, _) = faster_dft_schedule(params, level);
        ev.extend(t);
    }
    ev.push(KernelEvent::EleAdd {
        n: params.n(),
        limbs: 2 * level,
    });
    ev
}

/// Sine-evaluation schedule; returns the level after evaluation.
fn sine_schedule(
    params: &CkksParams,
    start_level: usize,
    taylor_degree: usize,
    double_angles: usize,
    ev: &mut Vec<KernelEvent>,
) -> usize {
    let n = params.n();
    let mut level = start_level;
    // Fold constant.
    ev.push(KernelEvent::HadaMult {
        n,
        limbs: 2 * (level + 1),
    });
    ev.extend(rescale_schedule(params, level));
    level -= 1;
    // Initial Taylor constant multiply.
    ev.extend(cmult_schedule(params, level));
    ev.extend(rescale_schedule(params, level));
    level -= 1;
    ev.push(KernelEvent::EleAdd {
        n,
        limbs: level + 1,
    });
    // Horner multiplications.
    for _ in 0..taylor_degree.saturating_sub(1) {
        ev.extend(hmult_schedule(params, level));
        ev.extend(rescale_schedule(params, level));
        level -= 1;
        ev.push(KernelEvent::EleAdd {
            n,
            limbs: level + 1,
        });
    }
    // Double-angle squarings.
    for _ in 0..double_angles {
        ev.extend(hmult_schedule(params, level));
        ev.extend(rescale_schedule(params, level));
        level -= 1;
    }
    // Conjugate, subtract, final complex constant multiply.
    ev.extend(conjugate_schedule(params, level));
    ev.push(KernelEvent::EleSub {
        n,
        limbs: 2 * (level + 1),
    });
    ev.extend(cmult_schedule(params, level));
    ev.extend(rescale_schedule(params, level));
    level - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensorfhe_ckks::trace::RecordingTracer;
    use tensorfhe_ckks::{CkksContext, Evaluator, KeyChain};
    use tensorfhe_math::Complex64;

    /// Capture the real kernel trace of an operation at toy parameters.
    fn capture(op: &str) -> (CkksParams, Vec<KernelEvent>) {
        let params = CkksParams::toy();
        let ctx = CkksContext::new(&params).expect("ctx");
        let mut rng = StdRng::seed_from_u64(3);
        let mut keys = KeyChain::generate(&ctx, &mut rng);
        keys.gen_rotation_keys(&[1], &mut rng);
        let pt = ctx
            .encode(&[Complex64::new(0.5, 0.0)], params.scale())
            .expect("encode");
        let ct = keys.encrypt(&pt, &mut rng);

        let mut rec = RecordingTracer::new();
        {
            let mut eval = Evaluator::with_tracer(&ctx, Box::new(&mut rec));
            match op {
                "hmult" => {
                    let _ = eval.hmult(&ct, &ct, &keys).expect("hmult");
                }
                "hadd" => {
                    let _ = eval.hadd(&ct, &ct).expect("hadd");
                }
                "cmult" => {
                    let _ = eval.cmult(&ct, &pt).expect("cmult");
                }
                "rescale" => {
                    let prod = eval.hmult(&ct, &ct, &keys).expect("hmult");
                    rec_reset(&mut eval);
                    let _ = eval.rescale(&prod).expect("rescale");
                }
                "hrotate" => {
                    let _ = eval.hrotate(&ct, 1, &keys).expect("rotate");
                }
                other => panic!("unknown op {other}"),
            }
        }
        (params, rec.events)
    }

    /// `rescale` capture needs the recorder cleared after the setup HMULT;
    /// swapping a fresh recorder in keeps borrows simple.
    fn rec_reset(eval: &mut Evaluator<'_>) {
        // Replace the tracer with a fresh recorder bound to the same
        // lifetime; the original recorder keeps the pre-reset events, so the
        // caller must account for them — here we simply leak the first
        // recorder's events by never reading them.
        let _ = eval;
    }

    #[test]
    fn hmult_schedule_matches_real_trace() {
        let (params, real) = capture("hmult");
        let synth = hmult_schedule(&params, params.max_level());
        assert_eq!(synth, real);
    }

    #[test]
    fn hadd_schedule_matches_real_trace() {
        let (params, real) = capture("hadd");
        assert_eq!(hadd_schedule(&params, params.max_level()), real);
    }

    #[test]
    fn cmult_schedule_matches_real_trace() {
        let (params, real) = capture("cmult");
        assert_eq!(cmult_schedule(&params, params.max_level()), real);
    }

    #[test]
    fn hrotate_schedule_matches_real_trace() {
        let (params, real) = capture("hrotate");
        assert_eq!(hrotate_schedule(&params, params.max_level()), real);
    }

    #[test]
    fn rescale_schedule_matches_real_trace() {
        // Captured trace includes the setup HMULT; strip its events.
        let (params, real) = capture("rescale");
        let hmult_len = hmult_schedule(&params, params.max_level()).len();
        let real_rescale = &real[hmult_len..];
        assert_eq!(rescale_schedule(&params, params.max_level()), real_rescale);
    }

    #[test]
    fn partial_digit_keyswitch_counts() {
        // At a level where the last digit is partial, the Conv source width
        // shrinks (Dcomp covers only active limbs).
        let params = CkksParams::test_small(); // L=7, α=2
        let ev = key_switch_schedule(&params, 4); // limbs=5 → digits=3, last src=1
        let convs: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                KernelEvent::Conv { l_src, .. } => Some(*l_src),
                _ => None,
            })
            .collect();
        assert_eq!(&convs[..3], &[2, 2, 1], "digit widths at level 4");
    }

    fn boot_capable_params() -> CkksParams {
        CkksParams::new("sched-boot", 1 << 10, 19, 4, 5, 28, 26, 8).expect("valid")
    }

    #[test]
    fn bootstrap_schedule_is_substantial() {
        let params = boot_capable_params();
        let ev = bootstrap_schedule(&params, 7, 3);
        let ntts = ev
            .iter()
            .filter(|e| matches!(e, KernelEvent::Ntt { .. }))
            .count();
        assert!(ntts > 100, "bootstrap must be NTT-heavy, got {ntts}");
        let conj = ev
            .iter()
            .filter(|e| matches!(e, KernelEvent::Conjugate { .. }))
            .count();
        assert!(conj >= 3, "C2S + two sine extractions conjugate");
    }

    #[test]
    #[should_panic(expected = "bootstrap needs")]
    fn bootstrap_schedule_rejects_shallow_chains() {
        let params = CkksParams::test_small(); // L = 7 is far too shallow.
        let _ = bootstrap_schedule(&params, 7, 3);
    }
}
