//! The unified error type of the engine and service layers.
//!
//! The seed code panicked on bad configurations (`MultiGpu::new` asserted a
//! non-zero device count) and validated requests with ad-hoc `assert!`s.
//! A service front end cannot afford that: one malformed client request must
//! fail *that request*, not the process. Every fallible entry point of
//! `tensorfhe-core` now returns [`CoreError`].

use crate::service::RequestId;
use std::fmt;

/// Unified error type for engine construction and request handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The builder or cluster configuration is unusable (zero devices,
    /// zero batch cap, …).
    InvalidConfig(String),
    /// A request is malformed (zero operation count, level above the
    /// parameter set's modulus chain, …).
    InvalidRequest(String),
    /// A request handle does not belong to this service instance.
    UnknownRequest(RequestId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            CoreError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            CoreError::UnknownRequest(id) => write!(f, "unknown request id {}", id.raw()),
        }
    }
}

impl std::error::Error for CoreError {}

/// Shorthand result alias used across the crate.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_lowercase_and_informative() {
        let e = CoreError::InvalidConfig("need at least one device".into());
        assert_eq!(
            e.to_string(),
            "invalid configuration: need at least one device"
        );
        let e = CoreError::InvalidRequest("count must be non-zero".into());
        assert!(e.to_string().contains("count must be non-zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn takes<T: Send + Sync + std::error::Error>() {}
        takes::<CoreError>();
    }
}
